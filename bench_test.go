package gameofcoins_test

// One benchmark per reproduced table/figure (DESIGN.md §6, EXPERIMENTS.md).
// Each bench regenerates its experiment end to end, so `go test -bench=.`
// doubles as the reproduction harness; per-iteration workloads are the same
// fixed-seed workloads the experiment suite validates.

import (
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/experiments"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/potential"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/schedbench"
)

// BenchmarkE1BtcBchMigration regenerates Figure 1 (rate swing → hashrate
// migration) on a reduced fleet per iteration.
func BenchmarkE1BtcBchMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := replay.New(replay.ScenarioParams{
			Miners:    100,
			Epochs:    24 * 40,
			SpikeHour: 24 * 15,
			Seed:      uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		sc.Run()
		out := sc.Outcome()
		if out.PeakBCHShare <= out.PreSpikeBCHShare {
			b.Fatal("no migration")
		}
	}
}

// BenchmarkE2RewardDesignTrace regenerates Figure 2 (Algorithm 2 stages).
func BenchmarkE2RewardDesignTrace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E2(uint64(i + 1)); !rep.Pass {
			b.Fatalf("E2 failed:\n%s", rep)
		}
	}
}

// BenchmarkE3ExactPotentialCycle verifies Proposition 1's 4-cycle in exact
// arithmetic plus the float-engine witness search.
func BenchmarkE3ExactPotentialCycle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E3(); !rep.Pass {
			b.Fatal("E3 failed")
		}
	}
}

// BenchmarkE4Convergence measures better-response convergence (Theorem 1)
// per game size; sub-benchmarks give the table's rows.
func BenchmarkE4Convergence(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		for _, m := range []int{2, 8} {
			b.Run(benchName("n", n, "m", m), func(b *testing.B) {
				r := rng.New(uint64(n*100 + m))
				g, err := core.RandomGame(r, core.GenSpec{Miners: n, Coins: m})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s0 := core.RandomConfig(r, g)
					res, err := learning.Run(g, s0, learning.NewRandom(), r.Split(), learning.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Converged {
						b.Fatal("did not converge")
					}
				}
			})
		}
	}
}

// BenchmarkE5SymmetricPotential measures the Appendix-B potential check
// along a full improving path.
func BenchmarkE5SymmetricPotential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E5(uint64(i + 1)); !rep.Pass {
			b.Fatal("E5 failed")
		}
	}
}

// BenchmarkE6BetterEquilibrium measures equilibrium enumeration plus the
// Proposition-2 dominating-equilibrium search.
func BenchmarkE6BetterEquilibrium(b *testing.B) {
	r := rng.New(6)
	g, err := core.RandomGame(r, core.GenSpec{Miners: 6, Coins: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eqs, err := equilibria.Enumerate(g)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range eqs {
			_, _ = equilibria.BetterEquilibriumFor(g, e)
		}
	}
}

// BenchmarkE7DesignTermination measures a full Algorithm-2 run between two
// equilibria (Theorem 2).
func BenchmarkE7DesignTermination(b *testing.B) {
	g := benchDesignGame(b)
	eqs, err := equilibria.Enumerate(g)
	if err != nil || len(eqs) < 2 {
		b.Fatalf("equilibria: %v (%d)", err, len(eqs))
	}
	d, err := design.NewDesigner(g, design.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := d.Run(eqs[0], eqs[len(eqs)-1], r.Split())
		if err != nil {
			b.Fatal(err)
		}
		if res.TotalSteps == 0 {
			b.Fatal("trivial run")
		}
	}
}

// BenchmarkE8ConvergenceSpeed measures steps-to-equilibrium per scheduler
// (the §6 open-question series).
func BenchmarkE8ConvergenceSpeed(b *testing.B) {
	for _, sched := range learning.AllSchedulers() {
		b.Run(sched.Name(), func(b *testing.B) {
			r := rng.New(8)
			g, err := core.RandomGame(r, core.GenSpec{Miners: 32, Coins: 4})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s0 := core.RandomConfig(r, g)
				if _, err := learning.Run(g, s0, freshScheduler(sched.Name()), r.Split(), learning.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE9WhaleROI measures the manipulation-economics pipeline:
// equilibrium enumeration, dominating-equilibrium search, and design cost.
func BenchmarkE9WhaleROI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E9(uint64(i + 1)); !rep.Pass {
			b.Fatalf("E9 failed:\n%s", rep)
		}
	}
}

// BenchmarkE10Asymmetric measures convergence on eligibility-restricted
// games (§6 asymmetric extension).
func BenchmarkE10Asymmetric(b *testing.B) {
	g, err := core.NewGame(
		[]core.Miner{
			{Name: "p1", Power: 13}, {Name: "p2", Power: 11}, {Name: "p3", Power: 7},
			{Name: "p4", Power: 5}, {Name: "p5", Power: 3}, {Name: "p6", Power: 2},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{17, 19, 23},
		core.WithEligibility(func(p core.MinerID, c core.CoinID) bool {
			return (p+c)%3 != 0 || p < 2
		}),
	)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s0 := core.RandomConfig(r, g)
		res, err := learning.Run(g, s0, learning.NewRandom(), r.Split(), learning.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !g.IsEquilibrium(res.Final) {
			b.Fatal("not an equilibrium")
		}
	}
}

// BenchmarkCorePayoff and friends measure the hot-path primitives.
func BenchmarkCorePayoff(b *testing.B) {
	r := rng.New(20)
	g, err := core.RandomGame(r, core.GenSpec{Miners: 64, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	s := core.RandomConfig(r, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Payoffs(s)
	}
}

func BenchmarkCoreIsEquilibrium(b *testing.B) {
	r := rng.New(21)
	g, err := core.RandomGame(r, core.GenSpec{Miners: 64, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	s := core.RandomConfig(r, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.IsEquilibrium(s)
	}
}

func BenchmarkPotentialList(b *testing.B) {
	r := rng.New(22)
	g, err := core.RandomGame(r, core.GenSpec{Miners: 64, Coins: 8})
	if err != nil {
		b.Fatal(err)
	}
	s := core.RandomConfig(r, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = potential.List(g, s)
	}
}

func benchName(parts ...any) string {
	out := ""
	for i := 0; i+1 < len(parts); i += 2 {
		if i > 0 {
			out += "_"
		}
		out += parts[i].(string) + "=" + itoa(parts[i+1].(int))
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	digits := ""
	for n > 0 {
		digits = string(rune('0'+n%10)) + digits
		n /= 10
	}
	return digits
}

func freshScheduler(name string) learning.Scheduler {
	for _, s := range learning.AllSchedulers() {
		if s.Name() == name {
			return s
		}
	}
	panic("unknown scheduler")
}

func benchDesignGame(b *testing.B) *core.Game {
	b.Helper()
	g, err := core.NewGame(
		[]core.Miner{
			{Name: "p1", Power: 13}, {Name: "p2", Power: 11}, {Name: "p3", Power: 7},
			{Name: "p4", Power: 5}, {Name: "p5", Power: 3},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{17, 19},
	)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkSchedTailLatency measures the engine scheduler on the skewed-cost
// sweep (internal/schedbench): FIFO vs size-aware LPT dispatch at 8 workers,
// with the speedup and both p99 task latencies reported as custom metrics.
// Task costs are sleeps, so ns/op is dominated by the benchmark's fixed
// wall-clock shape; the custom metrics are the point. scripts/bench.sh
// records the same numbers into BENCH_sched.json.
func BenchmarkSchedTailLatency(b *testing.B) {
	var last schedbench.Report
	for i := 0; i < b.N; i++ {
		rep, err := schedbench.Run(schedbench.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = rep
	}
	b.ReportMetric(last.Speedup, "fifo/lpt-speedup")
	b.ReportMetric(last.FIFO.P99TaskMS, "fifo-p99-ms")
	b.ReportMetric(last.LPT.P99TaskMS, "lpt-p99-ms")
	b.ReportMetric(float64(last.Steals), "steals")
}

// BenchmarkE11SecurityTrajectory measures the security-metric sweep along a
// full reward-design run.
func BenchmarkE11SecurityTrajectory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E11(uint64(i + 1)); !rep.Pass {
			b.Fatalf("E11 failed:\n%s", rep)
		}
	}
}

// BenchmarkE12SimultaneousAblation measures the simultaneous-vs-sequential
// dynamics comparison.
func BenchmarkE12SimultaneousAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E12(uint64(i + 1)); !rep.Pass {
			b.Fatalf("E12 failed:\n%s", rep)
		}
	}
}

// BenchmarkE13NaiveBaseline measures the staged-vs-naive design ablation.
func BenchmarkE13NaiveBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rep := experiments.E13(uint64(i + 1)); !rep.Pass {
			b.Fatalf("E13 failed:\n%s", rep)
		}
	}
}
