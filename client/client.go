// Package client is the typed Go SDK for the gocserve v2 job API: introspect
// the versioned spec catalog, submit self-describing spec envelopes (singly
// or batched), watch progress as a live stream, fetch deterministic results,
// and release per-client job handles.
//
// A Client is cheap and safe for concurrent use. Spec and result types are
// the facade's aliases (gameofcoins.EquilibriumSweep, …), so external
// callers never import internal packages. The minimal session:
//
//	c := client.New("http://localhost:8372")
//	h, err := c.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
//		Gen: gameofcoins.GenSpec{Miners: 5, Coins: 2}, Games: 200,
//	}, 7)
//	st, err := h.Wait(ctx)           // streams progress under the hood
//	var res gameofcoins.EquilibriumSweepResult
//	err = h.Result(ctx, &res)
//	_ = h.Release(ctx)               // drop this client's claim on the job
//
// Spec kinds are versioned server-side: a bare kind runs the latest
// registered version, and client.AtVersion(n) pins an exact one —
//
//	h, err := c.Submit(ctx, "learn_sweep", 7, spec, client.AtVersion(1))
//
// Catalog fetches every kind@version with its JSON-Schema (what the server
// will 422 against) and the catalog fingerprint identifying the accepted
// wire surface; SubmitBatch sends up to server.MaxBatchJobs envelopes in one
// round-trip and returns per-item handles or per-item errors.
//
// Results are also reachable before the aggregate exists: ResultRange
// fetches any fully-computed span of per-task result documents mid-run, and
// StreamResult delivers every per-task document in order as it completes —
// validated against the "task" $def of the kind's result schema from the
// catalog — then returns the terminal status:
//
//	st, err := h.StreamResult(ctx, func(task int, doc json.RawMessage) error {
//		fmt.Printf("task %d: %s\n", task, doc)
//		return nil
//	})
//
// The fingerprint is also a submission guard: client.WithFingerprint(fp)
// pins every request to a captured catalog, and a server whose spec surface
// has drifted refuses pinned submissions with 409. Nothing else changes
// client-side when the server runs a distributed fleet — remote gocworker
// processes (started with `gocworker -coordinator URL`) make jobs finish
// faster, and determinism keeps the result bytes identical to a
// single-machine run, so handles, caching, and Watch behave exactly as
// documented here.
//
// Handles reference-count the server-side job: identical submissions from
// several clients share one computation, and Release drops only the caller's
// interest — the job is canceled only when its last handle is released.
//
// Against a server running with persistence (gocserve -data DIR), results
// and handles survive server restarts: a handle minted before a restart
// still resolves afterwards, a finished job's result is served from the
// rehydrated cache byte-identically, and a job that was mid-run is
// resubmitted server-side under its original seed. Watch rides restarts out
// on its own: a stream that drops mid-job reconnects with backoff and the
// standard Last-Event-ID header instead of closing its channel, so Wait and
// Watch simply see the job running again.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/server"
)

// Client talks to one gocserve instance.
type Client struct {
	base    string
	hc      *http.Client
	fp      string
	key     string
	retries int
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts, proxies,
// test transports). The default is http.DefaultClient, which suits the SDK's
// long-lived Watch streams (no client-side timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithFingerprint pins every request to a catalog fingerprint (as returned
// by Catalog). A server whose spec surface has drifted — upgraded in place,
// or a different replica behind the same address — refuses pinned
// submissions with 409 instead of resolving kinds against a catalog the
// client never saw. Workers joining the fleet (gocworker) make the same
// assertion automatically.
func WithFingerprint(fp string) Option {
	return func(c *Client) { c.fp = fp }
}

// WithAPIKey authenticates every request with an API key ("Authorization:
// Bearer <key>"). Required against a gocserve running with -keys; a server
// without a keyring ignores it.
func WithAPIKey(key string) Option {
	return func(c *Client) { c.key = key }
}

// WithRetryLimit caps how many times a rate-limited (429) request is retried
// before the APIError surfaces to the caller. The default is
// DefaultRetryLimit; 0 disables retries entirely, so every 429 is returned
// immediately — what a load generator probing the limiter wants.
func WithRetryLimit(n int) Option {
	return func(c *Client) { c.retries = n }
}

// DefaultRetryLimit is how many times a 429-rejected request is retried
// (waiting out the server's Retry-After each time) before giving up.
const DefaultRetryLimit = 4

// Rate-limit retry pacing: the wait is the server's Retry-After when given,
// otherwise an exponential backoff from retryBackoffMin, capped at
// retryWaitMax so a misconfigured server cannot park a client forever.
const (
	retryBackoffMin = 250 * time.Millisecond
	retryWaitMax    = 5 * time.Second
)

// New returns a client for the gocserve instance at baseURL
// (e.g. "http://localhost:8372").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient, retries: DefaultRetryLimit}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the server's Retry-After hint on 429 responses (zero
	// when absent): how long until the rate limiter will admit the client's
	// next submission.
	RetryAfter time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
}

// do runs one JSON request. in (if non-nil) is the request body; out (if
// non-nil) receives the decoded response. A 429 is retried up to the
// client's retry limit, waiting out the server's Retry-After (or a capped
// exponential backoff when the hint is missing) between attempts — a 429
// means the submission was never admitted, so retrying any method is safe.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
		body = b
	}
	backoff := retryBackoffMin
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.fp != "" {
			req.Header.Set(server.FingerprintHeader, c.fp)
		}
		if c.key != "" {
			req.Header.Set("Authorization", "Bearer "+c.key)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return err
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < c.retries {
			apiErr := decodeAPIError(resp)
			resp.Body.Close()
			wait := backoff
			var ae *APIError
			if errors.As(apiErr, &ae) && ae.RetryAfter > wait {
				wait = ae.RetryAfter
			}
			if wait > retryWaitMax {
				wait = retryWaitMax
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return ctx.Err()
			}
			if backoff *= 2; backoff > retryWaitMax {
				backoff = retryWaitMax
			}
			continue
		}
		if resp.StatusCode < 200 || resp.StatusCode > 299 {
			err := decodeAPIError(resp)
			resp.Body.Close()
			return err
		}
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				resp.Body.Close()
				return fmt.Errorf("client: decode response: %w", err)
			}
		}
		resp.Body.Close()
		return nil
	}
}

func decodeAPIError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		e.Error = resp.Status
	}
	apiErr := &APIError{StatusCode: resp.StatusCode, Message: e.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return apiErr
}

// SpecKinds lists the bare spec kinds the server's registry accepts.
func (c *Client) SpecKinds(ctx context.Context) ([]string, error) {
	var out struct {
		Kinds []string `json:"kinds"`
	}
	if err := c.do(ctx, http.MethodGet, "/v2/specs", nil, &out); err != nil {
		return nil, err
	}
	return out.Kinds, nil
}

// Catalog is the server's spec catalog: every registered kind@version with
// its schema, plus the catalog fingerprint identifying the accepted wire
// surface as a whole.
type Catalog struct {
	Fingerprint string                `json:"fingerprint"`
	Specs       []engine.CatalogEntry `json:"specs"`
}

// Catalog fetches the full spec catalog from GET /v2/specs: kinds,
// versions, latest/deprecated flags, and per-version JSON-Schemas clients
// can validate against before submitting.
func (c *Client) Catalog(ctx context.Context) (Catalog, error) {
	var out Catalog
	err := c.do(ctx, http.MethodGet, "/v2/specs", nil, &out)
	return out, err
}

// Spec fetches one catalog entry from GET /v2/specs/{kind}: a bare kind
// names its latest version, "kind@vN" pins one.
func (c *Client) Spec(ctx context.Context, wire string) (engine.CatalogEntry, error) {
	var out engine.CatalogEntry
	err := c.do(ctx, http.MethodGet, "/v2/specs/"+wire, nil, &out)
	return out, err
}

// RegisterGame registers a game and returns its content-addressed ID, which
// LearnSweep specs may reference via GameID.
func (c *Client) RegisterGame(ctx context.Context, g *core.Game) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/games", g, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Handle is one client's claim on a server-side job. It is returned by the
// Submit family and released with Release.
type Handle struct {
	c  *Client
	id string
	// Submitted is the handle's submission-time snapshot: the underlying
	// job's ID and status, the live-handle count, and whether the submission
	// was answered from the server's result cache.
	Submitted server.JobHandle
}

// SubmitOption configures one submission (Submit, SubmitSpec, the typed
// helpers, and batch items via BatchItem.Version).
type SubmitOption func(*submitOptions)

type submitOptions struct {
	version  int
	priority string
}

// AtVersion pins the submission to an exact registered spec version: the
// envelope goes out as "kind@vN" instead of the bare kind, so the job runs
// under that version's wire format even after the server registers a newer
// one. Pinning version 1 shares cache lines with bare-kind submissions —
// v1 is the bare wire format.
func AtVersion(version int) SubmitOption {
	return func(o *submitOptions) { o.version = version }
}

// WithPriority sets the submission's admission-control priority class:
// "low", "normal", or "high". Priority biases how fast the job's tasks are
// scheduled under contention — never what they compute or whether they cache
// — and an unknown class is rejected server-side with 422. Unset means
// "normal".
func WithPriority(priority string) SubmitOption {
	return func(o *submitOptions) { o.priority = priority }
}

// versionedWire renders the wire name for a (kind, pinned version): the
// bare kind when no pin is requested, "kind@vN" otherwise — the one place
// the client spells the version-suffix syntax.
func versionedWire(kind string, version int) string {
	if version <= 0 {
		return kind
	}
	return fmt.Sprintf("%s@v%d", kind, version)
}

// applyOpts folds submit options into their struct form.
func applyOpts(opts []SubmitOption) submitOptions {
	var o submitOptions
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// Submit sends a raw envelope: kind names a registered spec kind — the
// server resolves it to the kind's latest version unless AtVersion pins one
// — seed roots the job's deterministic randomness, and spec is any
// JSON-encodable value matching the resolved version's spec document
// (typically the engine spec struct itself; the server validates it against
// the version's published schema and rejects shape mismatches with a 422
// APIError naming the offending field). Prefer the typed Submit* helpers
// for the built-in sweeps.
func (c *Client) Submit(ctx context.Context, kind string, seed uint64, spec any, opts ...SubmitOption) (*Handle, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode %s spec: %w", kind, err)
	}
	o := applyOpts(opts)
	env := engine.JobEnvelope{Kind: versionedWire(kind, o.version), Seed: seed, Spec: raw, Priority: o.priority}
	var jh server.JobHandle
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", env, &jh); err != nil {
		return nil, err
	}
	return &Handle{c: c, id: jh.Handle, Submitted: jh}, nil
}

// SubmitSpec submits a typed engine spec under its own Kind.
func (c *Client) SubmitSpec(ctx context.Context, spec engine.Spec, seed uint64, opts ...SubmitOption) (*Handle, error) {
	return c.Submit(ctx, spec.Kind(), seed, spec, opts...)
}

// SubmitLearnSweep submits a better-response learning sweep.
func (c *Client) SubmitLearnSweep(ctx context.Context, spec engine.LearnSweep, seed uint64, opts ...SubmitOption) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed, opts...)
}

// SubmitDesignSweep submits a Section-5 reward-design sweep.
func (c *Client) SubmitDesignSweep(ctx context.Context, spec engine.DesignSweep, seed uint64, opts ...SubmitOption) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed, opts...)
}

// SubmitReplaySweep submits a market-replay sweep.
func (c *Client) SubmitReplaySweep(ctx context.Context, spec engine.ReplaySweep, seed uint64, opts ...SubmitOption) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed, opts...)
}

// SubmitEquilibriumSweep submits an equilibrium-census sweep.
func (c *Client) SubmitEquilibriumSweep(ctx context.Context, spec engine.EquilibriumSweep, seed uint64, opts ...SubmitOption) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed, opts...)
}

// BatchItem is one envelope of a SubmitBatch call.
type BatchItem struct {
	// Kind names a registered spec kind (bare; set Version to pin).
	Kind string
	// Seed roots the item's deterministic randomness.
	Seed uint64
	// Spec is any JSON-encodable value matching the kind's spec document.
	Spec any
	// Version pins an exact registered spec version (0 = latest).
	Version int
	// Priority is the item's admission-control class ("low", "normal",
	// "high"; empty = normal), exactly like WithPriority on Submit.
	Priority string
}

// BatchError is one item's failure inside an otherwise delivered batch: the
// status code and message the single-submit path would have produced, plus
// the JSON-pointer path into the item's spec document for 422 schema
// mismatches.
type BatchError struct {
	StatusCode int
	Message    string
	Path       string
	// RetryAfter is the server's per-item backoff hint on 429 items (zero
	// otherwise): how long until the rate limiter will admit this client's
	// next submission. SubmitBatch has already waited it out up to the
	// client's retry limit by the time this error surfaces.
	RetryAfter time.Duration
}

// Error implements error.
func (e *BatchError) Error() string {
	if e.Path != "" {
		return fmt.Sprintf("server: %s (HTTP %d, at %s)", e.Message, e.StatusCode, e.Path)
	}
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
}

// BatchResult is one item's outcome, index-aligned with the submitted
// items: a live Handle (exactly as if the item had been submitted alone) or
// a *BatchError.
type BatchResult struct {
	Handle *Handle
	Err    error
}

// SubmitBatch submits up to server.MaxBatchJobs envelopes in one round-trip
// (POST /v2/batch). Items are processed server-side in order through the
// same dedupe/refcount path as single submissions: identical items attach
// to one job (each with its own handle), and a failing item costs only its
// own slot — inspect each BatchResult. The returned error covers the batch
// call itself (encoding, transport, a rejected request); per-item failures
// live in the results.
//
// The server admits batch items individually against the client's rate
// limit, so a large batch can be partially throttled: some items minted,
// the rest 429 with per-item Retry-After hints. SubmitBatch honors those
// hints the way Submit honors the header — it waits out the longest hint
// and resubmits only the throttled items, up to the client's retry limit
// (WithRetryLimit) — so by the time results return, a 429 BatchError means
// the retry budget is spent. Handles already minted are never resubmitted.
func (c *Client) SubmitBatch(ctx context.Context, items []BatchItem) ([]BatchResult, error) {
	envs := make([]engine.JobEnvelope, len(items))
	for i, it := range items {
		raw, err := json.Marshal(it.Spec)
		if err != nil {
			return nil, fmt.Errorf("client: encode %s spec (item %d): %w", it.Kind, i, err)
		}
		envs[i] = engine.JobEnvelope{Kind: versionedWire(it.Kind, it.Version), Seed: it.Seed, Spec: raw, Priority: it.Priority}
	}
	results := make([]BatchResult, len(items))
	pending := make([]int, len(items))
	for i := range items {
		pending[i] = i
	}
	backoff := retryBackoffMin
	for attempt := 0; ; attempt++ {
		sub := make([]engine.JobEnvelope, len(pending))
		for j, i := range pending {
			sub[j] = envs[i]
		}
		var out struct {
			Results []server.BatchResult `json:"results"`
		}
		if err := c.do(ctx, http.MethodPost, "/v2/batch", server.BatchRequest{Jobs: sub}, &out); err != nil {
			return nil, err
		}
		if len(out.Results) != len(sub) {
			return nil, fmt.Errorf("client: batch returned %d results for %d items", len(out.Results), len(sub))
		}
		var throttled []int
		var wait time.Duration
		for j, r := range out.Results {
			i := pending[j]
			if r.Job != nil {
				results[i] = BatchResult{Handle: &Handle{c: c, id: r.Job.Handle, Submitted: *r.Job}}
				continue
			}
			be := &BatchError{StatusCode: r.Code, Message: r.Error, Path: r.Path,
				RetryAfter: time.Duration(r.RetryAfter) * time.Second}
			results[i] = BatchResult{Err: be}
			if r.Code == http.StatusTooManyRequests {
				throttled = append(throttled, i)
				if be.RetryAfter > wait {
					wait = be.RetryAfter
				}
			}
		}
		if len(throttled) == 0 || attempt >= c.retries {
			return results, nil
		}
		if wait < backoff {
			wait = backoff
		}
		if wait > retryWaitMax {
			wait = retryWaitMax
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			// Hand back what was minted so the caller can release it; the
			// still-throttled slots keep their 429 errors.
			return results, ctx.Err()
		}
		if backoff *= 2; backoff > retryWaitMax {
			backoff = retryWaitMax
		}
		pending = throttled
	}
}

// ID returns the server-side handle identifier.
func (h *Handle) ID() string { return h.id }

// Status polls the handle's job status once.
func (h *Handle) Status(ctx context.Context) (server.JobHandle, error) {
	var jh server.JobHandle
	err := h.c.do(ctx, http.MethodGet, "/v2/jobs/"+h.id, nil, &jh)
	return jh, err
}

// Watch reconnection backoff: starts small (a restarting gocserve is
// usually back within a second), doubles per failed attempt, and caps so a
// long outage polls gently rather than hammering.
const (
	watchBackoffMin = 100 * time.Millisecond
	watchBackoffMax = 2 * time.Second
)

// Watch subscribes to the job's SSE event stream. The channel carries status
// snapshots — progress updates coalesced to the latest, then the terminal
// status — and closes after the terminal status is delivered. Canceling ctx
// tears the stream down.
//
// A stream that drops mid-job (server restart, proxy idle timeout) does NOT
// close the channel: Watch reconnects with exponential backoff, passing the
// standard Last-Event-ID header so the server suppresses progress already
// seen. Against a persistent server (gocserve -data) the handle survives
// the restart and the watch simply resumes — an interrupted job is
// resubmitted server-side and watched to its (deterministic) end. The watch
// gives up and closes the channel only when ctx is canceled or the handle
// itself is gone (404/410 — evicted, or a store-less restart forgot it);
// Wait then reports the stream as cut.
func (h *Handle) Watch(ctx context.Context) (<-chan engine.Status, error) {
	resp, err := h.connectEvents(ctx, "")
	if err != nil {
		return nil, err
	}
	ch := make(chan engine.Status)
	go func() {
		defer close(ch)
		body := resp.Body
		var lastEventID string
		backoff := watchBackoffMin
		for {
			terminal, delivered := streamEvents(ctx, body, ch, &lastEventID)
			body.Close()
			if terminal || ctx.Err() != nil {
				return
			}
			if delivered {
				// The connection was healthy before it dropped; restart the
				// backoff clock instead of compounding across reconnects.
				backoff = watchBackoffMin
			}
			var retryAfter time.Duration
			for {
				// A 429 from the previous attempt overrides the backoff with
				// the server's own Retry-After, so a rate-limited reconnect
				// waits the limiter out instead of burning attempts.
				wait := backoff
				if retryAfter > wait {
					wait = retryAfter
				}
				if wait > retryWaitMax {
					wait = retryWaitMax
				}
				retryAfter = 0
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return
				}
				if backoff *= 2; backoff > watchBackoffMax {
					backoff = watchBackoffMax
				}
				next, err := h.connectEvents(ctx, lastEventID)
				if err != nil {
					var apiErr *APIError
					if errors.As(err, &apiErr) {
						if apiErr.StatusCode == http.StatusNotFound || apiErr.StatusCode == http.StatusGone {
							// The handle is gone server-side; no retry revives it.
							return
						}
						retryAfter = apiErr.RetryAfter
					}
					if ctx.Err() != nil {
						return
					}
					continue // transport error, 5xx, or 429: retry with the wait above
				}
				body = next.Body
				break
			}
		}
	}()
	return ch, nil
}

// connectEvents opens one SSE connection to the handle's event stream.
func (h *Handle) connectEvents(ctx context.Context, lastEventID string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.c.base+"/v2/jobs/"+h.id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	if h.c.key != "" {
		req.Header.Set("Authorization", "Bearer "+h.c.key)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := h.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	return resp, nil
}

// streamEvents consumes one SSE connection, forwarding status snapshots to
// ch and recording the last seen event ID for reconnects. Only "progress"
// and "end" events carry status documents; other event types — the server's
// "result-range" notifications — advance the event ID (so a reconnect
// resumes ranges correctly) but are not statuses and are never delivered
// here. It returns whether the terminal status was delivered (the stream is
// complete) and whether anything was delivered at all (the connection was
// healthy).
func streamEvents(ctx context.Context, body io.Reader, ch chan<- engine.Status, lastEventID *string) (terminal, delivered bool) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data, event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // blank line terminates one SSE event
			if data == "" || (event != "progress" && event != "end") {
				data, event = "", ""
				continue
			}
			var st engine.Status
			if err := json.Unmarshal([]byte(data), &st); err == nil {
				select {
				case ch <- st:
					delivered = true
				case <-ctx.Done():
					return false, delivered
				}
				if st.State.Terminal() {
					return true, true
				}
			}
			data, event = "", ""
		case strings.HasPrefix(line, "id:"):
			*lastEventID = strings.TrimSpace(strings.TrimPrefix(line, "id:"))
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	return false, delivered
}

// Wait streams the job via Watch until it reaches a terminal state and
// returns the terminal status. A failed or canceled job is not an error
// here — inspect the returned State; errors mean the wait itself broke
// (transport failure, canceled ctx, stream cut before a terminal status).
func (h *Handle) Wait(ctx context.Context) (engine.Status, error) {
	ch, err := h.Watch(ctx)
	if err != nil {
		return engine.Status{}, err
	}
	var last engine.Status
	for st := range ch {
		last = st
	}
	if !last.State.Terminal() {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		return last, fmt.Errorf("client: event stream ended before job %s finished", last.ID)
	}
	return last, nil
}

// Result fetches the finished job's result into out (any JSON-decodable
// value; the matching engine *Result struct preserves typing). It returns an
// *APIError with StatusCode 409 while the job is still running and 410 if
// the job failed or was canceled.
func (h *Handle) Result(ctx context.Context, out any) error {
	var wrapper struct {
		Result json.RawMessage `json:"result"`
	}
	if err := h.c.do(ctx, http.MethodGet, "/v2/jobs/"+h.id+"/result", nil, &wrapper); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(wrapper.Result, out); err != nil {
		return fmt.Errorf("client: decode result: %w", err)
	}
	return nil
}

// ResultRange fetches the per-task result documents of tasks [lo, hi) from
// the job's result ledger (GET ?range=lo-hi). It works mid-run: any span the
// server has fully computed is served before the job finishes. The returned
// *APIError carries 400 for an out-of-bounds span, 409 while some task in
// the span is still computing (retry once the watermark passes hi), and 410
// for jobs without per-task documents (non-streamable kinds, or a job
// restored already-finished from a previous server life).
func (h *Handle) ResultRange(ctx context.Context, lo, hi int) ([]json.RawMessage, error) {
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	path := fmt.Sprintf("/v2/jobs/%s/result?range=%d-%d", h.id, lo, hi)
	if err := h.c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return out.Results, nil
}

// StreamResult streams the job's per-task result documents in task order as
// they complete, calling fn for each, and returns the job's terminal status
// once every task has been delivered. It rides the SSE stream's watermark:
// each time the contiguous completed prefix advances, the newly completed
// span is fetched with ResultRange and handed to fn task by task — so a
// consumer sees every result exactly once, in order, long before the
// aggregate exists, and a stream cut by a server restart resumes where it
// left off (persisted ranges survive the restart; nothing is re-delivered).
//
// Every document is validated against the "task" $def of the kind's result
// schema from the server's catalog before fn sees it; a kind that publishes
// no result schema (or no "task" def) streams unvalidated. fn returning an
// error aborts the stream and returns that error.
func (h *Handle) StreamResult(ctx context.Context, fn func(task int, doc json.RawMessage) error) (engine.Status, error) {
	return h.StreamResultFrom(ctx, 0, fn)
}

// StreamResultFrom is StreamResult resuming at task index `from`: tasks
// below it are assumed already delivered (a previous stream the caller
// persisted before being cut) and are never re-fetched or re-delivered — fn
// sees exactly the tasks [from, total), in order. The resume point composes
// with the server's own persistence: after a restart the persisted prefix
// prefills the new job's ledger, so the watermark passes `from` as soon as
// the uncovered suffix computes.
func (h *Handle) StreamResultFrom(ctx context.Context, from int, fn func(task int, doc json.RawMessage) error) (engine.Status, error) {
	entry, err := h.c.Spec(ctx, h.Submitted.Kind)
	if err != nil {
		return engine.Status{}, fmt.Errorf("client: fetch result schema: %w", err)
	}
	schema := entry.ResultSchema
	// Watch on a derived context so an early return (fn error, validation
	// failure) releases the stream goroutine instead of stranding it.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, err := h.Watch(wctx)
	if err != nil {
		return engine.Status{}, err
	}
	next := from
	var last engine.Status
	for st := range ch {
		last = st
		wm := st.Progress.Watermark
		if wm <= next {
			continue
		}
		docs, err := h.ResultRange(ctx, next, wm)
		if err != nil {
			// A restart can briefly rewind the servable prefix below an
			// already-announced watermark (409); the next snapshots catch it
			// back up. Anything else is fatal for the stream.
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict {
				continue
			}
			return last, err
		}
		for k, doc := range docs {
			if err := schema.ValidateDef("task", doc); err != nil {
				return last, fmt.Errorf("client: task %d result: %w", next+k, err)
			}
			if err := fn(next+k, doc); err != nil {
				return last, err
			}
		}
		next = wm
	}
	if !last.State.Terminal() {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		return last, fmt.Errorf("client: event stream ended before job %s finished", last.ID)
	}
	if last.State == engine.StateDone && next < last.Progress.Total {
		return last, fmt.Errorf("client: job %s finished but only tasks [0,%d) of %d streamed", last.ID, next, last.Progress.Total)
	}
	return last, nil
}

// Release drops this client's claim on the job. The server cancels the
// underlying job only when its last handle is released; other clients
// attached to the same deduplicated job are unaffected.
func (h *Handle) Release(ctx context.Context) error {
	return h.c.do(ctx, http.MethodDelete, "/v2/jobs/"+h.id, nil, nil)
}
