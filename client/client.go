// Package client is the typed Go SDK for the gocserve v2 job API: submit
// self-describing spec envelopes, watch progress as a live stream, fetch
// deterministic results, and release per-client job handles.
//
// A Client is cheap and safe for concurrent use. Spec and result types are
// the facade's aliases (gameofcoins.EquilibriumSweep, …), so external
// callers never import internal packages. The minimal session:
//
//	c := client.New("http://localhost:8372")
//	h, err := c.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
//		Gen: gameofcoins.GenSpec{Miners: 5, Coins: 2}, Games: 200,
//	}, 7)
//	st, err := h.Wait(ctx)           // streams progress under the hood
//	var res gameofcoins.EquilibriumSweepResult
//	err = h.Result(ctx, &res)
//	_ = h.Release(ctx)               // drop this client's claim on the job
//
// Handles reference-count the server-side job: identical submissions from
// several clients share one computation, and Release drops only the caller's
// interest — the job is canceled only when its last handle is released.
//
// Against a server running with persistence (gocserve -data DIR), results
// and handles survive server restarts: a handle minted before a restart
// still resolves afterwards, a finished job's result is served from the
// rehydrated cache byte-identically, and a job that was mid-run is
// resubmitted server-side under its original seed — Wait and Watch simply
// see it running again. Clients need no special handling beyond retrying
// the usual transport errors while the server is down.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/server"
)

// Client talks to one gocserve instance.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (timeouts, proxies,
// test transports). The default is http.DefaultClient, which suits the SDK's
// long-lived Watch streams (no client-side timeout).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New returns a client for the gocserve instance at baseURL
// (e.g. "http://localhost:8372").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// APIError is a non-2xx server response.
type APIError struct {
	StatusCode int
	Message    string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
}

// do runs one JSON request. in (if non-nil) is the request body; out (if
// non-nil) receives the decoded response.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body bytes.Buffer
	if in != nil {
		if err := json.NewEncoder(&body).Encode(in); err != nil {
			return fmt.Errorf("client: encode request: %w", err)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeAPIError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("client: decode response: %w", err)
		}
	}
	return nil
}

func decodeAPIError(resp *http.Response) error {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		e.Error = resp.Status
	}
	return &APIError{StatusCode: resp.StatusCode, Message: e.Error}
}

// SpecKinds lists the spec kinds the server's registry accepts.
func (c *Client) SpecKinds(ctx context.Context) ([]string, error) {
	var out struct {
		Kinds []string `json:"kinds"`
	}
	if err := c.do(ctx, http.MethodGet, "/v2/specs", nil, &out); err != nil {
		return nil, err
	}
	return out.Kinds, nil
}

// RegisterGame registers a game and returns its content-addressed ID, which
// LearnSweep specs may reference via GameID.
func (c *Client) RegisterGame(ctx context.Context, g *core.Game) (string, error) {
	var out struct {
		ID string `json:"id"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/games", g, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Handle is one client's claim on a server-side job. It is returned by the
// Submit family and released with Release.
type Handle struct {
	c  *Client
	id string
	// Submitted is the handle's submission-time snapshot: the underlying
	// job's ID and status, the live-handle count, and whether the submission
	// was answered from the server's result cache.
	Submitted server.JobHandle
}

// Submit sends a raw envelope: kind names a registered spec kind, seed roots
// the job's deterministic randomness, and spec is any JSON-encodable value
// matching the kind's spec document (typically the engine spec struct
// itself). Prefer the typed Submit* helpers for the built-in sweeps.
func (c *Client) Submit(ctx context.Context, kind string, seed uint64, spec any) (*Handle, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: encode %s spec: %w", kind, err)
	}
	env := engine.JobEnvelope{Kind: kind, Seed: seed, Spec: raw}
	var jh server.JobHandle
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", env, &jh); err != nil {
		return nil, err
	}
	return &Handle{c: c, id: jh.Handle, Submitted: jh}, nil
}

// SubmitSpec submits a typed engine spec under its own Kind.
func (c *Client) SubmitSpec(ctx context.Context, spec engine.Spec, seed uint64) (*Handle, error) {
	return c.Submit(ctx, spec.Kind(), seed, spec)
}

// SubmitLearnSweep submits a better-response learning sweep.
func (c *Client) SubmitLearnSweep(ctx context.Context, spec engine.LearnSweep, seed uint64) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed)
}

// SubmitDesignSweep submits a Section-5 reward-design sweep.
func (c *Client) SubmitDesignSweep(ctx context.Context, spec engine.DesignSweep, seed uint64) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed)
}

// SubmitReplaySweep submits a market-replay sweep.
func (c *Client) SubmitReplaySweep(ctx context.Context, spec engine.ReplaySweep, seed uint64) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed)
}

// SubmitEquilibriumSweep submits an equilibrium-census sweep.
func (c *Client) SubmitEquilibriumSweep(ctx context.Context, spec engine.EquilibriumSweep, seed uint64) (*Handle, error) {
	return c.SubmitSpec(ctx, spec, seed)
}

// ID returns the server-side handle identifier.
func (h *Handle) ID() string { return h.id }

// Status polls the handle's job status once.
func (h *Handle) Status(ctx context.Context) (server.JobHandle, error) {
	var jh server.JobHandle
	err := h.c.do(ctx, http.MethodGet, "/v2/jobs/"+h.id, nil, &jh)
	return jh, err
}

// Watch subscribes to the job's SSE event stream. The channel carries status
// snapshots — progress updates coalesced to the latest, then the terminal
// status — and closes when the stream ends. Canceling ctx tears the stream
// down.
func (h *Handle) Watch(ctx context.Context) (<-chan engine.Status, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.c.base+"/v2/jobs/"+h.id+"/events", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := h.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeAPIError(resp)
	}
	ch := make(chan engine.Status)
	go func() {
		defer resp.Body.Close()
		defer close(ch)
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		var data string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "": // blank line terminates one SSE event
				if data == "" {
					continue
				}
				var st engine.Status
				if err := json.Unmarshal([]byte(data), &st); err == nil {
					select {
					case ch <- st:
					case <-ctx.Done():
						return
					}
				}
				data = ""
			case strings.HasPrefix(line, "data:"):
				data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
			}
		}
	}()
	return ch, nil
}

// Wait streams the job via Watch until it reaches a terminal state and
// returns the terminal status. A failed or canceled job is not an error
// here — inspect the returned State; errors mean the wait itself broke
// (transport failure, canceled ctx, stream cut before a terminal status).
func (h *Handle) Wait(ctx context.Context) (engine.Status, error) {
	ch, err := h.Watch(ctx)
	if err != nil {
		return engine.Status{}, err
	}
	var last engine.Status
	for st := range ch {
		last = st
	}
	if !last.State.Terminal() {
		if err := ctx.Err(); err != nil {
			return last, err
		}
		return last, fmt.Errorf("client: event stream ended before job %s finished", last.ID)
	}
	return last, nil
}

// Result fetches the finished job's result into out (any JSON-decodable
// value; the matching engine *Result struct preserves typing). It returns an
// *APIError with StatusCode 409 while the job is still running and 410 if
// the job failed or was canceled.
func (h *Handle) Result(ctx context.Context, out any) error {
	var wrapper struct {
		Result json.RawMessage `json:"result"`
	}
	if err := h.c.do(ctx, http.MethodGet, "/v2/jobs/"+h.id+"/result", nil, &wrapper); err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(wrapper.Result, out); err != nil {
		return fmt.Errorf("client: decode result: %w", err)
	}
	return nil
}

// Release drops this client's claim on the job. The server cancels the
// underlying job only when its last handle is released; other clients
// attached to the same deduplicated job are unaffected.
func (h *Handle) Release(ctx context.Context) error {
	return h.c.do(ctx, http.MethodDelete, "/v2/jobs/"+h.id, nil, nil)
}
