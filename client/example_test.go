package client_test

import (
	"context"
	"fmt"
	"log"

	"gameofcoins"
	"gameofcoins/client"
)

// Example demonstrates the minimal session: submit, wait, fetch, release.
// (Compile-checked only: it needs a running gocserve.)
func Example() {
	ctx := context.Background()
	c := client.New("http://localhost:8372")
	h, err := c.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
		Gen: gameofcoins.GenSpec{Miners: 5, Coins: 2}, Games: 200,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		log.Fatal(err)
	}
	var res gameofcoins.EquilibriumSweepResult
	if err := h.Result(ctx, &res); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d/%d games had multiple equilibria\n", res.Multiple, res.Games)
	_ = h.Release(ctx)
}

// ExampleClient_Catalog introspects the versioned spec catalog: kinds,
// versions, schemas, and the fingerprint identifying the accepted wire
// surface.
func ExampleClient_Catalog() {
	ctx := context.Background()
	c := client.New("http://localhost:8372")
	cat, err := c.Catalog(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("catalog", cat.Fingerprint)
	for _, e := range cat.Specs {
		fmt.Printf("%s v%d latest=%v deprecated=%v\n", e.Wire, e.Version, e.Latest, e.Deprecated)
	}
}

// ExampleAtVersion pins a submission to an exact spec version: the envelope
// goes out as "learn_sweep@v1" and keeps that wire format even after the
// server registers a v2 (pinning v1 shares cache lines with bare-kind
// submissions — v1 is the bare wire format).
func ExampleAtVersion() {
	ctx := context.Background()
	c := client.New("http://localhost:8372")
	h, err := c.SubmitLearnSweep(ctx, gameofcoins.LearnSweep{
		Gen: gameofcoins.GenSpec{Miners: 6, Coins: 2}, Runs: 50,
	}, 11, client.AtVersion(1))
	if err != nil {
		log.Fatal(err)
	}
	defer h.Release(ctx)
}

// ExampleClient_SubmitBatch submits a sweep-of-sweeps in one round-trip:
// per-item handles (or per-item errors — one bad item never sinks the
// batch), each behaving exactly like a single submission's.
func ExampleClient_SubmitBatch() {
	ctx := context.Background()
	c := client.New("http://localhost:8372")
	var items []client.BatchItem
	for seed := uint64(1); seed <= 10; seed++ {
		items = append(items, client.BatchItem{
			Kind: "equilibrium_sweep", Seed: seed,
			Spec: gameofcoins.EquilibriumSweep{Gen: gameofcoins.GenSpec{Miners: 5, Coins: 2}, Games: 100},
		})
	}
	results, err := c.SubmitBatch(ctx, items)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			log.Printf("item %d: %v", i, r.Err)
			continue
		}
		if _, err := r.Handle.Wait(ctx); err != nil {
			log.Fatal(err)
		}
		var res gameofcoins.EquilibriumSweepResult
		if err := r.Handle.Result(ctx, &res); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("seed %d: %d multiple-equilibria games\n", items[i].Seed, res.Multiple)
		_ = r.Handle.Release(ctx)
	}
}

// ExampleHandle_Watch streams a job's progress. The channel stays open
// across server restarts: a dropped stream reconnects with backoff and
// Last-Event-ID, and closes only after the terminal status (or when ctx is
// canceled / the handle is gone).
func ExampleHandle_Watch() {
	ctx := context.Background()
	c := client.New("http://localhost:8372")
	h, err := c.SubmitReplaySweep(ctx, gameofcoins.ReplaySweep{
		Params: gameofcoins.ReplayScenarioParams{Miners: 100, Epochs: 720, SpikeHour: 240},
		Runs:   32,
	}, 5)
	if err != nil {
		log.Fatal(err)
	}
	ch, err := h.Watch(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for st := range ch {
		fmt.Printf("%s %d/%d\n", st.State, st.Progress.Done, st.Progress.Total)
	}
}
