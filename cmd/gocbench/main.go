// Command gocbench regenerates the paper-reproduction experiments (E1–E13,
// see DESIGN.md §4 and EXPERIMENTS.md) and prints their tables and ASCII
// figures.
//
// With -parallel N the suite is fanned across N workers through the
// concurrent experiment engine (internal/engine); the printed tables are
// byte-identical to a sequential run — every experiment derives its
// randomness from the seed alone — only wall-clock time changes.
//
// Usage:
//
//	gocbench [-seed N] [-run E1,E4,...] [-parallel N]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"gameofcoins/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gocbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "experiment seed")
	only := fs.String("run", "", "comma-separated experiment IDs (default all)")
	parallel := fs.Int("parallel", 0,
		fmt.Sprintf("worker count for the experiment engine; 0 runs sequentially, -1 uses all %d cores", runtime.GOMAXPROCS(0)))
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	// The filter is applied before execution: -run E3 runs one experiment,
	// not the whole suite.
	var reports []*experiments.Report
	if *parallel != 0 {
		var err error
		if reports, err = experiments.SelectedParallel(context.Background(), *seed, *parallel, want); err != nil {
			return err
		}
	} else {
		reports = experiments.Selected(*seed, want)
	}
	failures := 0
	for _, rep := range reports {
		fmt.Fprintln(w, rep.String())
		if !rep.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce the expected shape", failures)
	}
	return nil
}
