// Command gocbench regenerates the paper-reproduction experiments (E1–E10,
// see DESIGN.md §4 and EXPERIMENTS.md) and prints their tables and ASCII
// figures.
//
// Usage:
//
//	gocbench [-seed N] [-run E1,E4,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gameofcoins/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "experiment seed")
	only := fs.String("run", "", "comma-separated experiment IDs (default all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	failures := 0
	for _, rep := range experiments.All(*seed) {
		if len(want) > 0 && !want[rep.ID] {
			continue
		}
		fmt.Println(rep.String())
		if !rep.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce the expected shape", failures)
	}
	return nil
}
