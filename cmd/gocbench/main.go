// Command gocbench regenerates the paper-reproduction experiments (E1–E13,
// see DESIGN.md §6 and EXPERIMENTS.md) and prints their tables and ASCII
// figures.
//
// With -parallel N the suite is fanned across N workers through the
// concurrent experiment engine (internal/engine); the printed tables are
// byte-identical to a sequential run — every experiment derives its
// randomness from the seed alone — only wall-clock time changes.
//
// With -sched FILE it instead runs the engine scheduler's tail-latency
// benchmark — a skewed-cost sweep under FIFO vs size-aware (LPT) dispatch,
// plus a concurrent fair-share phase — and writes the JSON report (makespan,
// p50/p99 task latency, speedup, steal count) to FILE ("-" for stdout).
// scripts/bench.sh uses it to emit BENCH_sched.json.
//
// With -dist FILE it runs the distributed-execution benchmark instead
// (internal/distbench): one sweep on a starved local pool alone, the same
// sweep on that pool plus an in-process remote-worker fleet behind the lease
// coordinator, reporting both makespans, the speedup, and whether the
// distributed result stayed byte-identical. scripts/bench.sh uses it to emit
// BENCH_dist.json.
//
// With -traffic FILE it runs the multi-tenant admission-control load harness
// (internal/trafficbench): four keyed tenants at mixed priorities and job
// sizes drive an in-process rate-limited server, reporting each tenant's
// measured capacity share against its priority-weighted fair share, the
// 401/429 edges (with Retry-After), and whether every tenant's result stayed
// byte-identical to a single-client rerun. scripts/bench.sh uses it to emit
// BENCH_traffic.json.
//
// Usage:
//
//	gocbench [-seed N] [-run E1,E4,...] [-parallel N]
//	gocbench -sched BENCH_sched.json [-sched-scale F]
//	gocbench -dist BENCH_dist.json [-dist-scale F]
//	gocbench -traffic BENCH_traffic.json [-traffic-scale F]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"gameofcoins/internal/distbench"
	"gameofcoins/internal/experiments"
	"gameofcoins/internal/schedbench"
	"gameofcoins/internal/trafficbench"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocbench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("gocbench", flag.ContinueOnError)
	seed := fs.Uint64("seed", 11, "experiment seed")
	only := fs.String("run", "", "comma-separated experiment IDs (default all)")
	parallel := fs.Int("parallel", 0,
		fmt.Sprintf("worker count for the experiment engine; 0 runs sequentially, -1 uses all %d cores", runtime.GOMAXPROCS(0)))
	sched := fs.String("sched", "", "run the scheduler tail-latency benchmark and write its JSON report to this file ('-' = stdout) instead of the experiment suite")
	schedScale := fs.Float64("sched-scale", 1, "scale factor for the scheduler benchmark's task durations")
	distOut := fs.String("dist", "", "run the distributed-execution benchmark and write its JSON report to this file ('-' = stdout) instead of the experiment suite")
	distScale := fs.Float64("dist-scale", 1, "scale factor for the distributed benchmark's task durations")
	trafficOut := fs.String("traffic", "", "run the multi-tenant admission-control load harness and write its JSON report to this file ('-' = stdout) instead of the experiment suite")
	trafficScale := fs.Float64("traffic-scale", 1, "scale factor for the traffic harness's task durations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sched != "" {
		return runSched(w, *sched, *schedScale)
	}
	if *distOut != "" {
		return runDist(w, *distOut, *distScale)
	}
	if *trafficOut != "" {
		return runTraffic(w, *trafficOut, *trafficScale)
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	// The filter is applied before execution: -run E3 runs one experiment,
	// not the whole suite.
	var reports []*experiments.Report
	if *parallel != 0 {
		var err error
		if reports, err = experiments.SelectedParallel(context.Background(), *seed, *parallel, want); err != nil {
			return err
		}
	} else {
		reports = experiments.Selected(*seed, want)
	}
	failures := 0
	for _, rep := range reports {
		fmt.Fprintln(w, rep.String())
		if !rep.Pass {
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) did not reproduce the expected shape", failures)
	}
	return nil
}

// runSched runs the scheduler benchmark and writes its JSON report to path.
// "-" streams the report itself to w — and only the report, so the stdout
// mode stays machine-readable; writing to a file prints the one-line summary
// instead.
func runSched(w io.Writer, path string, scale float64) error {
	rep, err := schedbench.Run(schedbench.Options{Scale: scale})
	if err != nil {
		return fmt.Errorf("sched benchmark: %w", err)
	}
	return writeReport(w, path, rep, rep.String())
}

// runDist runs the distributed-execution benchmark, same output contract.
func runDist(w io.Writer, path string, scale float64) error {
	rep, err := distbench.Run(distbench.Options{Scale: scale})
	if err != nil {
		return fmt.Errorf("dist benchmark: %w", err)
	}
	return writeReport(w, path, rep, rep.String())
}

// runTraffic runs the multi-tenant admission-control harness, same output
// contract.
func runTraffic(w io.Writer, path string, scale float64) error {
	rep, err := trafficbench.Run(trafficbench.Options{Scale: scale})
	if err != nil {
		return fmt.Errorf("traffic harness: %w", err)
	}
	return writeReport(w, path, rep, rep.String())
}

func writeReport(w io.Writer, path string, rep any, summary string) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err := w.Write(b)
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, summary)
	return nil
}
