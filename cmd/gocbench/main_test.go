package main

import (
	"bytes"
	"io"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run(io.Discard, []string{"-seed", "11", "-run", "E3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Filtering to a non-existent ID runs nothing and therefore fails
	// nothing.
	if err := run(io.Discard, []string{"-run", "E99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(io.Discard, []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestParallelOutputByteIdentical is the engine's end-to-end reproducibility
// guarantee on the paper-reproduction path itself: the full experiment
// output under -parallel 8 is byte-for-byte the sequential output.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var seq, par bytes.Buffer
	if err := run(&seq, []string{"-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, []string{"-seed", "11", "-parallel", "8"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output differs from sequential (%d vs %d bytes)", seq.Len(), par.Len())
	}
}
