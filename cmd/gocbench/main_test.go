package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-seed", "11", "-run", "E3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Filtering to a non-existent ID runs nothing and therefore fails
	// nothing.
	if err := run([]string{"-run", "E99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
