package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"testing"

	"gameofcoins/internal/schedbench"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run(io.Discard, []string{"-seed", "11", "-run", "E3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Filtering to a non-existent ID runs nothing and therefore fails
	// nothing.
	if err := run(io.Discard, []string{"-run", "E99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(io.Discard, []string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestSchedBenchmarkWritesReport: -sched runs the scheduler benchmark
// (scaled down for test time) and writes a coherent JSON report.
func TestSchedBenchmarkWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sched.json")
	var buf bytes.Buffer
	if err := run(&buf, []string{"-sched", out, "-sched-scale", "0.25"}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep schedbench.Report
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Speedup <= 1 || rep.FIFO.MakespanMS <= 0 || rep.LPT.P99TaskMS <= 0 {
		t.Fatalf("incoherent report: %+v", rep)
	}
	if buf.Len() == 0 {
		t.Fatal("no summary printed")
	}
}

// TestParallelOutputByteIdentical is the engine's end-to-end reproducibility
// guarantee on the paper-reproduction path itself: the full experiment
// output under -parallel 8 is byte-for-byte the sequential output.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var seq, par bytes.Buffer
	if err := run(&seq, []string{"-seed", "11"}); err != nil {
		t.Fatal(err)
	}
	if err := run(&par, []string{"-seed", "11", "-parallel", "8"}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel output differs from sequential (%d vs %d bytes)", seq.Len(), par.Len())
	}
}
