// Command goccompat replays the golden wire-compat corpus
// (internal/engine/testdata/wire_corpus.json) against a live gocserve and
// fails loudly on any drift. It is the live half of the corpus gate: the
// unit tests prove the versioned registry still decodes and cache-keys
// recorded PR 2/3-era payloads byte-identically; goccompat proves a freshly
// built server *serves* them identically — old-format (bare-kind)
// submissions run, an explicit @v1 pin dedupes onto the same job and
// returns byte-identical result bodies, batch submission hits the same
// cache lines, and the catalog advertises every corpus kind at v1.
//
// Usage:
//
//	goccompat [-base http://127.0.0.1:8372] [-corpus PATH] [-timeout 5m]
//
// CI runs it via scripts/compat_smoke.sh.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
)

// corpusEnvelope reads just the envelope out of each corpus entry. The
// recorded cache_key is deliberately ignored here: the server never exposes
// raw cache keys, so key drift against the recorded values is enforced by
// the unit gate (internal/engine/compat_test.go), while this tool proves
// the *serving* consequences — bare and @v1 submissions landing on one
// cache line with byte-identical results.
type corpusEnvelope struct {
	Envelope engine.JobEnvelope `json:"envelope"`
}

type corpus struct {
	Envelopes []corpusEnvelope `json:"envelopes"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "goccompat:", err)
		os.Exit(1)
	}
	fmt.Println("goccompat: corpus replay OK")
}

func run(args []string) error {
	fs := flag.NewFlagSet("goccompat", flag.ContinueOnError)
	base := fs.String("base", "http://127.0.0.1:8372", "gocserve base URL")
	corpusPath := fs.String("corpus", "internal/engine/testdata/wire_corpus.json", "wire-compat corpus file")
	timeout := fs.Duration("timeout", 5*time.Minute, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	raw, err := os.ReadFile(*corpusPath)
	if err != nil {
		return err
	}
	var corp corpus
	if err := json.Unmarshal(raw, &corp); err != nil {
		return fmt.Errorf("corpus unreadable: %w", err)
	}
	if len(corp.Envelopes) == 0 {
		return fmt.Errorf("corpus has no envelopes")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*base)

	// The catalog must advertise every corpus kind at v1 with a schema, and
	// /healthz must agree with it on the fingerprint.
	cat, err := c.Catalog(ctx)
	if err != nil {
		return fmt.Errorf("fetch catalog: %w", err)
	}
	v1 := map[string]bool{}
	for _, e := range cat.Specs {
		if e.Version == 1 {
			v1[e.Kind] = e.Schema != nil
		}
	}
	for _, ce := range corp.Envelopes {
		if hasSchema, ok := v1[ce.Envelope.Kind]; !ok {
			return fmt.Errorf("catalog lost %s@v1", ce.Envelope.Kind)
		} else if !hasSchema {
			return fmt.Errorf("catalog serves no schema for %s@v1", ce.Envelope.Kind)
		}
	}
	var hz struct {
		Fingerprint string `json:"catalog_fingerprint"`
	}
	if err := getJSON(ctx, *base+"/healthz", &hz); err != nil {
		return err
	}
	if hz.Fingerprint != cat.Fingerprint {
		return fmt.Errorf("healthz fingerprint %q != catalog %q", hz.Fingerprint, cat.Fingerprint)
	}

	// Replay each old-format envelope: submit bare (exactly the recorded
	// bytes), run to completion, then resubmit pinned @v1 — it must dedupe
	// onto the same job and serve a byte-identical result body.
	results := make([][]byte, len(corp.Envelopes))
	for i, ce := range corp.Envelopes {
		h, err := c.Submit(ctx, ce.Envelope.Kind, ce.Envelope.Seed, ce.Envelope.Spec)
		if err != nil {
			return fmt.Errorf("%s: old-format submit rejected: %w", ce.Envelope.Kind, err)
		}
		st, err := h.Wait(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", ce.Envelope.Kind, err)
		}
		if st.State != engine.StateDone {
			return fmt.Errorf("%s: job ended %s: %s", ce.Envelope.Kind, st.State, st.Error)
		}
		before, err := getRaw(ctx, *base+"/v2/jobs/"+h.ID()+"/result")
		if err != nil {
			return fmt.Errorf("%s: %w", ce.Envelope.Kind, err)
		}
		results[i] = before

		pinned, err := c.Submit(ctx, ce.Envelope.Kind, ce.Envelope.Seed, ce.Envelope.Spec, client.AtVersion(1))
		if err != nil {
			return fmt.Errorf("%s: @v1 pin rejected: %w", ce.Envelope.Kind, err)
		}
		if !pinned.Submitted.Cached || pinned.Submitted.Status.ID != h.Submitted.Status.ID {
			return fmt.Errorf("%s: @v1 pin missed the bare-kind cache entry (cached=%v job=%s vs %s) — v1 cache keys drifted",
				ce.Envelope.Kind, pinned.Submitted.Cached, pinned.Submitted.Status.ID, h.Submitted.Status.ID)
		}
		after, err := getRaw(ctx, *base+"/v2/jobs/"+pinned.ID()+"/result")
		if err != nil {
			return fmt.Errorf("%s: %w", ce.Envelope.Kind, err)
		}
		if !bytes.Equal(before, after) {
			return fmt.Errorf("%s: result bodies differ between bare and @v1 submissions", ce.Envelope.Kind)
		}
		fmt.Printf("goccompat: %s OK (job %s, %d result bytes)\n", ce.Envelope.Kind, st.ID, len(before))
	}

	// The whole corpus as one batch: every item must be answered from cache
	// (same keys), proving batch submission shares the dedupe path.
	items := make([]client.BatchItem, len(corp.Envelopes))
	for i, ce := range corp.Envelopes {
		items[i] = client.BatchItem{Kind: ce.Envelope.Kind, Seed: ce.Envelope.Seed, Spec: ce.Envelope.Spec}
	}
	batch, err := c.SubmitBatch(ctx, items)
	if err != nil {
		return fmt.Errorf("batch replay: %w", err)
	}
	for i, r := range batch {
		if r.Err != nil {
			return fmt.Errorf("batch item %d (%s): %w", i, items[i].Kind, r.Err)
		}
		if !r.Handle.Submitted.Cached {
			return fmt.Errorf("batch item %d (%s) recomputed instead of hitting the cache", i, items[i].Kind)
		}
		after, err := getRaw(ctx, *base+"/v2/jobs/"+r.Handle.ID()+"/result")
		if err != nil {
			return fmt.Errorf("batch item %d: %w", i, err)
		}
		if !bytes.Equal(results[i], after) {
			return fmt.Errorf("batch item %d (%s): result bytes differ from the single-submit replay", i, items[i].Kind)
		}
	}
	fmt.Printf("goccompat: batch of %d OK, fingerprint %s\n", len(items), cat.Fingerprint)
	return nil
}

func getRaw(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, b)
	}
	return b, nil
}

func getJSON(ctx context.Context, url string, out any) error {
	b, err := getRaw(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}
