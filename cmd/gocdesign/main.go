// Command gocdesign demonstrates the Section-5 dynamic reward design
// mechanism on a random game: it enumerates two equilibria, runs Algorithm 2
// to move the system between them, and prints the per-stage trace.
//
// With -pairs N it instead runs a reward-design *sweep* — the same
// engine.DesignSweep spec gocserve executes for design_sweep jobs — fanned
// across -parallel workers, and prints the aggregate reach/cost/steps
// statistics. Results are worker-count independent (the engine forks one
// rng stream per task), so -parallel only changes wall-clock time.
//
// Usage:
//
//	gocdesign [-miners N] [-coins M] [-seed N]             single traced run
//	gocdesign -pairs N [-parallel W] [-miners N] [-coins M] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocdesign:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocdesign", flag.ContinueOnError)
	miners := fs.Int("miners", 6, "number of miners")
	coins := fs.Int("coins", 2, "number of coins")
	seed := fs.Uint64("seed", 7, "seed")
	pairs := fs.Int("pairs", 0, "run a design sweep over N equilibrium pairs through the experiment engine (0 = single traced run)")
	parallel := fs.Int("parallel", 0, "engine worker count for -pairs; 0 or -1 uses all cores")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pairs > 0 {
		return runSweep(*miners, *coins, *seed, *pairs, *parallel)
	}
	r := rng.New(*seed)
	// Draw games until one has strictly descending powers and ≥2 equilibria.
	for trial := 0; trial < 500; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: *miners, Coins: *coins})
		if err != nil {
			return err
		}
		strict := true
		for p := 0; p+1 < g.NumMiners(); p++ {
			if !(g.Power(p) > g.Power(p+1)) {
				strict = false
				break
			}
		}
		if !strict {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		s0, sf := eqs[0], eqs[len(eqs)-1]
		fmt.Printf("game: %d miners, %d coins; moving %v → %v\n\n", *miners, *coins, s0, sf)
		d, err := design.NewDesigner(g, design.Options{})
		if err != nil {
			return err
		}
		res, err := d.Run(s0, sf, r.Split())
		if err != nil {
			return err
		}
		tbl := trace.NewTable("stage", "target", "iterations", "steps", "cost")
		for _, st := range res.Stages {
			tbl.AddRow(st.Stage, fmt.Sprintf("c%d", sf[st.Stage-1]), st.Iterations, st.Steps, st.Cost)
		}
		fmt.Println(tbl.String())
		fmt.Printf("reached %v in %d better-response steps, total cost %.4g\n",
			res.Final, res.TotalSteps, res.TotalCost)
		return nil
	}
	return fmt.Errorf("no suitable random game found; try another seed")
}

// runSweep runs the same engine.DesignSweep spec gocserve serves for
// design_sweep jobs, locally, fanned across the worker pool. The spec takes
// the exact wire path a v2 envelope would — versioned-kind resolution,
// schema validation, the registered decoder — so the CLI can never drift
// from what the server accepts.
func runSweep(miners, coins int, seed uint64, pairs, parallel int) error {
	spec := engine.DesignSweep{Gen: core.GenSpec{Miners: miners, Coins: coins}, Pairs: pairs}
	res, err := engine.RunWire(context.Background(), engine.New(parallel), spec, seed)
	if err != nil {
		return err
	}
	dr := res.(engine.DesignSweepResult)
	tbl := trace.NewTable("pairs", "reached", "skipped", "mean cost", "mean steps")
	tbl.AddRow(dr.Pairs, dr.Reached, dr.Skipped, dr.Cost.Mean, dr.Steps.Mean)
	fmt.Println(tbl.String())
	if dr.Errors > 0 {
		fmt.Printf("%d game draws errored (last: %s)\n", dr.Errors, dr.LastError)
	}
	return nil
}
