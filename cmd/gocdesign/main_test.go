package main

import "testing"

func TestRunFindsGameAndConverges(t *testing.T) {
	if err := run([]string{"-miners", "5", "-coins", "2", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMode(t *testing.T) {
	if err := run([]string{"-pairs", "2", "-miners", "4", "-parallel", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
