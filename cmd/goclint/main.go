// Command goclint is the repo's static-enforcement multichecker: it loads
// the named packages (./... by default), runs every analyzer in the goclint
// suite — the determinism rules (nodeterm, maporder, rngfork, errdrop) and
// the concurrency rules (lockguard, blockinglock, lockorder, ctxleak) — and
// exits nonzero if any finding survives the //goclint:allow directives. CI
// gates on it via scripts/lint.sh; see DESIGN.md "Determinism invariants and
// static enforcement" for the rules and the directive grammar.
//
// With -unused-allows, directives that no longer suppress anything are
// printed as warnings (stale suppressions rot the audit trail); warnings do
// not affect the exit status.
//
// Usage:
//
//	goclint [-list] [-unused-allows] [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"gameofcoins/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	unusedAllows := flag.Bool("unused-allows", false, "warn about //goclint:allow directives that suppress no finding")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: goclint [-list] [-unused-allows] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goclint:", err)
		os.Exit(2)
	}
	diags, unused, err := analysis.LintWithUnused(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "goclint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if *unusedAllows {
		for _, u := range unused {
			fmt.Printf("warning: %s\n", u)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "goclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
