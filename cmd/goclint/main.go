// Command goclint is the repo's determinism multichecker: it loads the named
// packages (./... by default), runs every analyzer in the goclint suite —
// nodeterm, maporder, rngfork, errdrop — and exits nonzero if any finding
// survives the //goclint:allow directives. CI gates on it via
// scripts/lint.sh; see DESIGN.md "Determinism invariants and static
// enforcement" for the rules and the directive grammar.
//
// Usage:
//
//	goclint [-list] [packages]
package main

import (
	"flag"
	"fmt"
	"os"

	"gameofcoins/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers in the suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: goclint [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.LoadPackages(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "goclint:", err)
		os.Exit(2)
	}
	diags, err := analysis.Lint(pkgs, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "goclint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "goclint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
