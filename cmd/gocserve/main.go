// Command gocserve exposes the concurrent experiment engine as an HTTP JSON
// service: register games, submit learning/design/replay/enumeration jobs,
// poll progress, cancel, and fetch cached deterministic results.
//
// Usage:
//
//	gocserve [-addr :8372] [-workers N]
//
// The API is documented in internal/server. A quick session:
//
//	curl -X POST :8372/v1/jobs -d '{"type":"learn_sweep","seed":11,"gen":{"Miners":8,"Coins":3},"runs":50}'
//	curl :8372/v1/jobs/job-1
//	curl :8372/v1/jobs/job-1/result
//
// On SIGINT/SIGTERM the listener drains in-flight requests, then running
// jobs are canceled.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gameofcoins/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gocserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8372", "listen address")
	workers := fs.Int("workers", 0, "engine worker count (0 = all cores)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period")
	if err := fs.Parse(args); err != nil {
		return err
	}

	api := server.New(*workers)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gocserve: listening on %s (workers=%d)\n", *addr, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain requests, then cancel jobs.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	api.Close()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "gocserve: drained and stopped")
	return nil
}
