// Command gocserve exposes the concurrent experiment engine as an HTTP JSON
// service: register games, submit learning/design/replay/enumeration jobs,
// stream progress, cancel, and fetch cached deterministic results.
//
// Usage:
//
//	gocserve [-addr :8372] [-workers N] [-data DIR] [-fail-interrupted]
//	         [-keys FILE] [-rate N] [-burst N] [-max-share F]
//	gocserve -version
//
// The preferred API is v2, the self-describing envelope form: POST a
// {"kind", "seed", "spec"} document and the server resolves it purely
// through the engine's versioned spec registry — new spec kinds (and new
// versions of existing kinds) plug in via engine.RegisterSpec with zero
// server changes. GET /v2/specs serves the full catalog: every registered
// kind@version with its JSON-Schema, so clients can introspect and validate
// before submitting; a bare kind in an envelope resolves to the latest
// version, "kind@vN" pins one, and submissions whose spec document doesn't
// match the resolved version's schema are rejected with 422 and a
// JSON-pointer path. POST /v2/batch submits up to 256 envelopes in one
// round-trip with per-item handles/errors. A v2 session:
//
//	curl -X POST :8372/v2/jobs -d '{"kind":"learn_sweep","seed":11,"spec":{"gen":{"Miners":8,"Coins":3},"runs":50}}'
//	curl :8372/v2/jobs/h-1                    # poll the handle
//	curl -N :8372/v2/jobs/h-1/events          # SSE: "progress" events, then one "end"
//	curl :8372/v2/jobs/h-1/result
//	curl -X DELETE :8372/v2/jobs/h-1          # release the handle
//
// POST /v2/jobs returns a per-client *handle* (h-N), not a raw job id.
// Identical submissions deduplicate onto one underlying job, and each
// handle is one client's reference-counted claim on it: DELETE releases
// only the caller's interest, and the shared job is canceled only when its
// last handle is released — one client's cancel can no longer kill another
// client's computation. (The v1 endpoints remain for compatibility; they
// address jobs directly, so a v1 DELETE still cancels the shared job
// outright, and a job any v1 client submitted or attached to is pinned:
// v1 clients hold no handles, so v2 releases never cancel it.)
//
// The full endpoint reference is in internal/server. Results are cached by
// (canonical spec, seed): identical submissions are answered instantly, and
// the cache is sound because every job is a deterministic function of the
// two. On SIGINT/SIGTERM the listener drains in-flight requests, then
// running jobs are canceled.
//
// With -keys FILE the server runs multi-tenant: every job endpoint requires
// an API key ("Authorization: Bearer" or "X-API-Key") resolving to a client
// identity from the keyring file, submissions are attributed and rate
// limited per client (-rate/-burst, over-rate answered 429 + Retry-After),
// -max-share caps any one client's slice of in-flight work cost while
// others wait, and an envelope's optional "priority" ("low"/"normal"/
// "high") weights the fair-share scheduler without preemption. Admission
// control changes WHO runs WHEN, never results: results stay a pure
// function of (canonical spec, seed), cached and deduplicated across
// clients. /healthz and GET /v2/specs stay open.
//
// With -data DIR the cache is durable: games, job records, results, and v2
// handles are written to an append-only log under DIR and rehydrated on the
// next start — a result computed before a restart is served from cache
// (same bytes, cached:true) afterwards, and jobs that were mid-run when the
// process stopped are resubmitted under their original spec and seed
// (determinism recomputes the identical result). -fail-interrupted marks
// them failed instead, for operators who'd rather nothing recomputes
// without an explicit resubmission. Without -data, everything is in-memory
// exactly as before.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
	"gameofcoins/internal/traffic"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocserve:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gocserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8372", "listen address")
	workers := fs.Int("workers", 0, "engine worker count (0 = all cores)")
	grace := fs.Duration("grace", 10*time.Second, "shutdown grace period")
	dataDir := fs.String("data", "", "persist games, jobs, and results to this directory (empty = in-memory only)")
	failInterrupted := fs.Bool("fail-interrupted", false, "on restart, mark jobs that were mid-run as failed instead of resubmitting them")
	leaseTTL := fs.Duration("lease-ttl", dist.DefaultLeaseTTL, "how long a remote worker may go silent before its leased tasks are requeued")
	leaseTasks := fs.Int("lease-tasks", dist.DefaultMaxLeaseTasks, "max tasks per remote worker lease")
	leaseTarget := fs.Float64("lease-target-ms", dist.DefaultTargetLeaseMillis, "target predicted wall-clock per lease once task latency is observed")
	keysFile := fs.String("keys", "", "API keyring file (\"client:key\" per line); when set, job endpoints require a key and submissions are attributed per client")
	rate := fs.Float64("rate", 0, "per-client submission rate limit in jobs/sec (0 = unlimited; without -keys every caller shares one anonymous bucket, so one noisy client can exhaust it for all)")
	burst := fs.Int("burst", 0, "submission burst allowance per client (defaults to max(2*rate, 1))")
	maxShare := fs.Float64("max-share", 0, "per-client cap on the share of in-flight work cost, in (0,1); enforced only while other clients are waiting (0 = uncapped)")
	compactRanges := fs.Int("compact-ranges", 0, fmt.Sprintf("per-job cap on persisted streamed-result documents (0 = default %d, negative = unbounded)", store.DefaultMaxRangeDocs))
	version := fs.Bool("version", false, "print the server version and catalog fingerprint, then exit")
	fs.Usage = func() {
		out := fs.Output()
		fmt.Fprintf(out, "Usage: gocserve [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, `
v2 API (self-describing, versioned spec envelopes):
  GET    /v2/specs                full catalog: kinds@versions + JSON schemas
                                  + the catalog fingerprint
  GET    /v2/specs/{kind}         one entry ("kind" = latest, "kind@vN" pins)
  POST   /v2/jobs                 {"kind","seed","spec"} -> per-client handle;
                                  schema mismatches are 422 with a JSON-pointer
                                  "path" into the spec document
  POST   /v2/batch                {"jobs":[envelope,...]} (<= 256) -> per-item
                                  handles/errors, in request order; the rate
                                  limit is charged per item, so a partial
                                  throttle 429s only the items past the
                                  budget, each with a "retry_after" hint
  GET    /v2/jobs/{h}             poll the handle's job status
  GET    /v2/jobs/{h}/events      SSE progress stream, then one "end" event
                                  (reconnect with Last-Event-ID to skip
                                  already-seen progress)
  GET    /v2/jobs/{h}/result      fetch the finished job's result
  DELETE /v2/jobs/{h}             release the handle; the deduplicated job is
                                  canceled only when its last handle is gone

v1 API (legacy flat requests; DELETE cancels the shared job for everyone —
under -keys only for the submitting client, and only while no other
client holds a v2 handle on it):
  POST /v1/games · GET /v1/games/{id} · POST /v1/jobs · GET /v1/jobs[/{id}]
  GET /v1/jobs/{id}/result · DELETE /v1/jobs/{id} · GET /healthz

Example:
  curl -X POST :8372/v2/jobs -d '{"kind":"equilibrium_sweep","seed":7,"spec":{"gen":{"Miners":5,"Coins":2},"games":500}}'
  curl -N :8372/v2/jobs/h-1/events

Persistence:
  gocserve -data /var/lib/gocserve    # games, jobs, results, and handles are
                                      # logged to DIR and rehydrated on restart;
                                      # interrupted jobs resubmit (deterministic,
                                      # so results are byte-identical) unless
                                      # -fail-interrupted is set

Admission control (multi-tenant):
  gocserve -keys keys.txt -rate 5 -burst 10 -max-share 0.5
  keys.txt holds one "client:key" per line; submissions then require the key
  ("Authorization: Bearer <key>" or "X-API-Key: <key>"), are rate limited per
  client (429 + Retry-After), and fair-share scheduling weighs the envelope's
  "priority" ("low"/"normal"/"high"). /healthz reports per-client counters.

Distributed execution:
  Remote gocworker processes join over /dist/join (refused with 409 unless
  their catalog fingerprint matches), lease task ranges of running jobs, and
  stream results back; a worker that dies mid-lease costs only its in-flight
  range (requeued after -lease-ttl), and results are byte-identical however
  tasks are distributed. The fleet is visible in /healthz under "dist".
  gocworker -coordinator http://host:8372
`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		// The same identity /healthz serves, for offline use: the catalog
		// fingerprint hashes the registered kinds@versions, so two binaries
		// printing the same line accept the same wire surface.
		fmt.Printf("gocserve %s (%s) catalog %s (%d kinds)\n",
			server.Version, runtime.Version(), engine.CatalogFingerprint(), len(engine.SpecKinds()))
		return nil
	}

	opts := server.Options{
		FailInterrupted: *failInterrupted,
		Dist: dist.Config{
			LeaseTTL:          *leaseTTL,
			MaxLeaseTasks:     *leaseTasks,
			TargetLeaseMillis: *leaseTarget,
		},
	}
	if *keysFile != "" || *rate > 0 || *maxShare > 0 {
		tc := traffic.Config{Rate: *rate, Burst: *burst, MaxShare: *maxShare}
		if tc.Burst == 0 && tc.Rate > 0 {
			// Default burst: a couple of seconds of headroom at the
			// configured rate, so well-behaved clients never see a 429 for
			// an isolated back-to-back pair of submissions.
			tc.Burst = max(int(2*tc.Rate), 1)
		}
		if *keysFile != "" {
			kr, err := traffic.LoadKeyring(*keysFile)
			if err != nil {
				return err
			}
			tc.Keyring = kr
			fmt.Fprintf(os.Stderr, "gocserve: admission control on for %d clients (rate=%g/s burst=%d max-share=%g)\n",
				kr.Len(), tc.Rate, tc.Burst, tc.MaxShare)
		} else {
			fmt.Fprintf(os.Stderr, "gocserve: rate limiting without -keys applies one shared anonymous bucket\n")
		}
		opts.Traffic = traffic.New(tc)
	}
	if *dataDir != "" {
		st, err := store.OpenFile(*dataDir)
		if err != nil {
			return err
		}
		st.MaxRangeDocs = *compactRanges
		// Closed after shutdown below, so terminal records from the last
		// finishing jobs can still land in the log.
		defer st.Close()
		opts.Store = st
		fmt.Fprintf(os.Stderr, "gocserve: persisting to %s\n", *dataDir)
	}
	api, err := server.NewWithOptions(*workers, opts)
	if err != nil {
		return err
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "gocserve: listening on %s (workers=%d)\n", *addr, *workers)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting and drain requests while canceling
	// jobs. The cancel must run concurrently with the drain, not after it —
	// an open SSE /events stream only ends when its job reaches a terminal
	// state, so draining first would burn the whole grace period and exit
	// non-zero whenever a watcher is connected.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(shutdownCtx) }()
	api.Close()
	if err := <-done; err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "gocserve: drained and stopped")
	return nil
}
