package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestServeAndGracefulShutdown boots the real server on an ephemeral port,
// checks liveness, then cancels the context and verifies a clean exit.
func TestServeAndGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, []string{"-addr", addr, "-workers", "2"}) }()

	// Wait for the listener.
	url := fmt.Sprintf("http://%s/healthz", addr)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			var body map[string]string
			_ = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if body["status"] != "ok" {
				t.Fatalf("healthz = %v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not shut down")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestVersionFlag: -version prints and exits without serving (run returns
// immediately, no listener).
func TestVersionFlag(t *testing.T) {
	done := make(chan error, 1)
	go func() { done <- run(context.Background(), []string{"-version"}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run -version: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("-version did not exit")
	}
}
