// Command gocsim runs the multi-coin market simulator on the synthetic
// BTC/BCH scenario and emits the recorded series as CSV (stdout) or as
// ASCII plots (-plot).
//
// Usage:
//
//	gocsim [-miners N] [-epochs H] [-spike H] [-seed N] [-plot]
package main

import (
	"flag"
	"fmt"
	"os"

	"gameofcoins/internal/replay"
	"gameofcoins/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocsim", flag.ContinueOnError)
	miners := fs.Int("miners", 200, "fleet size")
	epochs := fs.Int("epochs", 24*120, "simulation length in hours")
	spike := fs.Int("spike", 1200, "hour at which the BCH rate spike begins")
	seed := fs.Uint64("seed", 1, "simulation seed")
	plot := fs.Bool("plot", false, "render ASCII plots instead of CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    *miners,
		Epochs:    *epochs,
		SpikeHour: *spike,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	sc.Run()
	out := sc.Outcome()
	fmt.Fprintf(os.Stderr, "pre-spike BCH share %.3f, peak %.3f, final %.3f\n",
		out.PreSpikeBCHShare, out.PeakBCHShare, out.FinalBCHShare)
	s := sc.Sim
	if *plot {
		fmt.Println(trace.Plot(trace.PlotOptions{Title: "BCH hashrate share", Width: 72, Height: 14},
			s.ShareSeries[sc.BCH]))
		fmt.Println(trace.Plot(trace.PlotOptions{Title: "exchange rates", Width: 72, Height: 14},
			s.RateSeries[sc.BTC], s.RateSeries[sc.BCH]))
		return nil
	}
	return trace.WriteCSV(os.Stdout,
		s.ShareSeries[sc.BTC], s.ShareSeries[sc.BCH],
		s.RateSeries[sc.BTC], s.RateSeries[sc.BCH],
		s.WeightSeries[sc.BTC], s.WeightSeries[sc.BCH],
		s.SwitchSeries)
}
