// Command gocsim runs the multi-coin market simulator on the synthetic
// BTC/BCH scenario and emits the recorded series as CSV (stdout) or as
// ASCII plots (-plot).
//
// With -runs N (N > 1) it instead replays the scenario N times with derived
// seeds — the same engine.ReplaySweep spec gocserve executes for
// replay_sweep jobs — fanned across -parallel workers, and prints the
// aggregate migration statistics. Results are worker-count independent, so
// -parallel only changes wall-clock time.
//
// Usage:
//
//	gocsim [-miners N] [-epochs H] [-spike H] [-seed N] [-plot]   single run
//	gocsim -runs N [-parallel W] [-miners N] [-epochs H] [-spike H] [-seed N]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gocsim", flag.ContinueOnError)
	miners := fs.Int("miners", 200, "fleet size")
	epochs := fs.Int("epochs", 24*120, "simulation length in hours")
	spike := fs.Int("spike", 1200, "hour at which the BCH rate spike begins")
	seed := fs.Uint64("seed", 1, "simulation seed")
	plot := fs.Bool("plot", false, "render ASCII plots instead of CSV")
	runs := fs.Int("runs", 1, "replay the scenario N times through the experiment engine and print aggregate stats (1 = single run with full series output)")
	parallel := fs.Int("parallel", 0, "engine worker count for -runs; 0 or -1 uses all cores")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs > 1 {
		return runSweep(replay.ScenarioParams{
			Miners:    *miners,
			Epochs:    *epochs,
			SpikeHour: *spike,
		}, *seed, *runs, *parallel)
	}
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    *miners,
		Epochs:    *epochs,
		SpikeHour: *spike,
		Seed:      *seed,
	})
	if err != nil {
		return err
	}
	sc.Run()
	out := sc.Outcome()
	fmt.Fprintf(os.Stderr, "pre-spike BCH share %.3f, peak %.3f, final %.3f\n",
		out.PreSpikeBCHShare, out.PeakBCHShare, out.FinalBCHShare)
	s := sc.Sim
	if *plot {
		fmt.Println(trace.Plot(trace.PlotOptions{Title: "BCH hashrate share", Width: 72, Height: 14},
			s.ShareSeries[sc.BCH]))
		fmt.Println(trace.Plot(trace.PlotOptions{Title: "exchange rates", Width: 72, Height: 14},
			s.RateSeries[sc.BTC], s.RateSeries[sc.BCH]))
		return nil
	}
	return trace.WriteCSV(os.Stdout,
		s.ShareSeries[sc.BTC], s.ShareSeries[sc.BCH],
		s.RateSeries[sc.BTC], s.RateSeries[sc.BCH],
		s.WeightSeries[sc.BTC], s.WeightSeries[sc.BCH],
		s.SwitchSeries)
}

// runSweep runs the same engine.ReplaySweep spec gocserve serves for
// replay_sweep jobs, locally, fanned across the worker pool. The per-run
// seeds derive from the job seed, so the aggregate is reproducible and
// independent of the worker count.
func runSweep(params replay.ScenarioParams, seed uint64, runs, parallel int) error {
	spec := engine.ReplaySweep{Params: params, Runs: runs}
	res, err := engine.RunWire(context.Background(), engine.New(parallel), spec, seed)
	if err != nil {
		return err
	}
	sr := res.(engine.ReplaySweepResult)
	tbl := trace.NewTable("runs", "migrated", "pre-spike mean", "peak mean", "final mean")
	tbl.AddRow(sr.Runs, sr.Migrated, sr.PreSpike.Mean, sr.Peak.Mean, sr.Final.Mean)
	fmt.Println(tbl.String())
	return nil
}
