package main

import "testing"

func TestRunSmallScenarioCSV(t *testing.T) {
	if err := run([]string{"-miners", "30", "-epochs", "48", "-spike", "24", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallScenarioPlot(t *testing.T) {
	if err := run([]string{"-miners", "30", "-epochs", "48", "-spike", "24", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSweepMode(t *testing.T) {
	if err := run([]string{"-runs", "3", "-miners", "30", "-epochs", "48", "-spike", "24", "-parallel", "2", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
