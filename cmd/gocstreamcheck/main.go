// Command gocstreamcheck drives the result data plane end to end against a
// running gocserve: it submits an equilibrium sweep, streams the per-task
// result documents over SSE as they complete (the SDK validates each against
// the catalog's task schema), then re-fetches the whole span with ?range=
// and requires the streamed bytes to match task for task. Exit status is the
// verdict; scripts/stream_smoke.sh gates CI on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8390", "gocserve base URL")
	games := flag.Int("games", 200, "equilibrium_sweep size (one task per game)")
	seed := flag.Uint64("seed", 7, "job seed")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("gocstreamcheck: ")

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c := client.New(*server)

	// The kind must publish a result schema with the per-task $def the SDK
	// validates streamed documents against — that is the catalog contract.
	entry, err := c.Spec(ctx, "equilibrium_sweep")
	if err != nil {
		log.Fatalf("catalog: %v", err)
	}
	if entry.ResultSchema == nil || entry.ResultSchema.Defs["task"] == nil {
		log.Fatal("catalog: equilibrium_sweep has no per-task result schema")
	}

	spec := map[string]any{"gen": map[string]any{"Miners": 9, "Coins": 3}, "games": *games}
	h, err := c.Submit(ctx, "equilibrium_sweep", *seed, spec)
	if err != nil {
		log.Fatalf("submit: %v", err)
	}

	var streamed []json.RawMessage
	st, err := h.StreamResult(ctx, func(task int, doc json.RawMessage) error {
		if task != len(streamed) {
			return fmt.Errorf("task %d delivered out of order (have %d)", task, len(streamed))
		}
		streamed = append(streamed, doc)
		return nil
	})
	if err != nil {
		log.Fatalf("stream: %v", err)
	}
	if st.State != engine.StateDone {
		log.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if len(streamed) != *games {
		log.Fatalf("streamed %d documents, want %d", len(streamed), *games)
	}

	docs, err := h.ResultRange(ctx, 0, *games)
	if err != nil {
		log.Fatalf("range fetch: %v", err)
	}
	if len(docs) != len(streamed) {
		log.Fatalf("?range served %d documents, streamed %d", len(docs), len(streamed))
	}
	for i := range docs {
		if string(docs[i]) != string(streamed[i]) {
			log.Fatalf("task %d: streamed %s, ?range %s", i, streamed[i], docs[i])
		}
	}
	var agg json.RawMessage
	if err := h.Result(ctx, &agg); err != nil {
		log.Fatalf("aggregate fetch: %v", err)
	}
	if err := entry.ResultSchema.Validate(agg); err != nil {
		log.Fatalf("aggregate does not match the catalog result schema: %v", err)
	}
	fmt.Printf("stream check OK: %d tasks streamed in order, schema-validated, bytes match ?range fetch; aggregate validates\n", len(streamed))
}
