// Command gocstreamcheck drives the result data plane end to end against a
// running gocserve: it submits an equilibrium sweep, streams the per-task
// result documents over SSE as they complete (the SDK validates each against
// the catalog's task schema), then re-fetches the whole span with ?range=
// and requires the streamed bytes to match task for task. Exit status is the
// verdict; scripts/stream_smoke.sh gates CI on it.
//
// With -resume FILE the streamed documents are persisted to a JSONL ledger
// as they arrive, and a rerun picks up after the last persisted task instead
// of starting over — even against a different server instance, as long as it
// shares the first one's store. -pause-after N cuts the stream after N newly
// delivered tasks, which is how the smoke test (and main_test.go) exercise a
// download surviving a server restart mid-stream.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
)

// errPaused is the sentinel a -pause-after cut propagates out of the stream
// callback; run translates it into a clean exit so the caller can resume.
var errPaused = errors.New("paused")

func main() {
	log.SetFlags(0)
	log.SetPrefix("gocstreamcheck: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gocstreamcheck", flag.ContinueOnError)
	server := fs.String("server", "http://127.0.0.1:8390", "gocserve base URL")
	games := fs.Int("games", 200, "equilibrium_sweep size (one task per game)")
	seed := fs.Uint64("seed", 7, "job seed")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall deadline")
	resume := fs.String("resume", "", "JSONL ledger: streamed documents append here, and a rerun resumes after the last persisted task")
	pauseAfter := fs.Int("pause-after", 0, "cut the stream after this many newly delivered tasks (0 = run to completion; requires -resume)")
	key := fs.String("key", "", "API key, for servers running with -keys")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pauseAfter > 0 && *resume == "" {
		return errors.New("-pause-after without -resume would discard the delivered prefix")
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var copts []client.Option
	if *key != "" {
		copts = append(copts, client.WithAPIKey(*key))
	}
	c := client.New(*server, copts...)

	// The kind must publish a result schema with the per-task $def the SDK
	// validates streamed documents against — that is the catalog contract.
	entry, err := c.Spec(ctx, "equilibrium_sweep")
	if err != nil {
		return fmt.Errorf("catalog: %w", err)
	}
	if entry.ResultSchema == nil || entry.ResultSchema.Defs["task"] == nil {
		return errors.New("catalog: equilibrium_sweep has no per-task result schema")
	}

	// The ledger's line count is the resume point: tasks [0, from) were
	// delivered (and verified well-formed) by a previous run.
	docs, err := loadLedger(*resume)
	if err != nil {
		return err
	}
	from := len(docs)
	if from > *games {
		return fmt.Errorf("ledger holds %d documents but the sweep has only %d tasks (wrong -games or wrong ledger?)", from, *games)
	}
	var ledger *os.File
	if *resume != "" {
		ledger, err = os.OpenFile(*resume, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer ledger.Close()
	}

	// Resubmission is idempotent: the same spec and seed lands on the same
	// cache line, so a resume run attaches to the original computation (or,
	// after a restart, to its persisted prefix plus a recomputed suffix).
	spec := map[string]any{"gen": map[string]any{"Miners": 9, "Coins": 3}, "games": *games}
	h, err := c.Submit(ctx, "equilibrium_sweep", *seed, spec)
	if err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	delivered := 0
	st, err := h.StreamResultFrom(ctx, from, func(task int, doc json.RawMessage) error {
		if task != len(docs) {
			return fmt.Errorf("task %d delivered out of order (have %d)", task, len(docs))
		}
		docs = append(docs, doc)
		if ledger != nil {
			if err := appendLedger(ledger, doc); err != nil {
				return err
			}
		}
		delivered++
		if *pauseAfter > 0 && delivered >= *pauseAfter {
			return errPaused
		}
		return nil
	})
	if errors.Is(err, errPaused) {
		fmt.Fprintf(stdout, "stream paused after %d new tasks (%d of %d persisted); rerun with -resume to continue\n", delivered, len(docs), *games)
		return nil
	}
	if err != nil {
		return fmt.Errorf("stream: %w", err)
	}
	if st.State != engine.StateDone {
		return fmt.Errorf("job ended %s: %s", st.State, st.Error)
	}
	if len(docs) != *games {
		return fmt.Errorf("streamed %d documents, want %d", len(docs), *games)
	}

	// The full span — resumed prefix plus freshly streamed suffix — must be
	// byte-identical to a cold ?range fetch of the whole result.
	ranged, err := h.ResultRange(ctx, 0, *games)
	if err != nil {
		return fmt.Errorf("range fetch: %w", err)
	}
	if len(ranged) != len(docs) {
		return fmt.Errorf("?range served %d documents, streamed %d", len(ranged), len(docs))
	}
	for i := range ranged {
		if string(ranged[i]) != string(docs[i]) {
			return fmt.Errorf("task %d: streamed %s, ?range %s", i, docs[i], ranged[i])
		}
	}
	var agg json.RawMessage
	if err := h.Result(ctx, &agg); err != nil {
		return fmt.Errorf("aggregate fetch: %w", err)
	}
	if err := entry.ResultSchema.Validate(agg); err != nil {
		return fmt.Errorf("aggregate does not match the catalog result schema: %w", err)
	}
	fmt.Fprintf(stdout, "stream check OK: %d tasks (%d resumed + %d streamed) in order, schema-validated, bytes match ?range fetch; aggregate validates\n", len(docs), from, delivered)
	return nil
}

// loadLedger reads a resume ledger written by a previous run: one compact
// JSON document per line, in task order. A missing file (or no -resume at
// all) is an empty ledger.
func loadLedger(path string) ([]json.RawMessage, error) {
	if path == "" {
		return nil, nil
	}
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var docs []json.RawMessage
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			return nil, fmt.Errorf("ledger %s line %d is not valid JSON (truncated write? delete the file to restart)", path, len(docs)+1)
		}
		docs = append(docs, json.RawMessage(append([]byte(nil), line...)))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger %s: %w", path, err)
	}
	return docs, nil
}

// appendLedger persists one streamed document as a ledger line, compacted so
// the document can never span lines.
func appendLedger(f *os.File, doc json.RawMessage) error {
	var buf bytes.Buffer
	if err := json.Compact(&buf, doc); err != nil {
		return err
	}
	buf.WriteByte('\n')
	if _, err := f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("ledger append: %w", err)
	}
	return nil
}
