package main

import (
	"bufio"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
)

// TestResumeAcrossServerRestart: a -pause-after run persists a prefix to the
// ledger, the server is torn down and replaced by a fresh instance over the
// same store, and the -resume rerun completes the download — with the full
// span byte-identical to a cold ?range fetch (run verifies that internally).
func TestResumeAcrossServerRestart(t *testing.T) {
	st := store.NewMem()
	ledger := filepath.Join(t.TempDir(), "tasks.jsonl")

	start := func() (*server.Server, *httptest.Server) {
		t.Helper()
		s, err := server.NewWithOptions(4, server.Options{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return s, httptest.NewServer(s)
	}

	s1, ts1 := start()
	var out strings.Builder
	err := run([]string{
		"-server", ts1.URL, "-games", "40", "-seed", "3",
		"-resume", ledger, "-pause-after", "10", "-timeout", "30s",
	}, &out)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if !strings.Contains(out.String(), "paused") {
		t.Fatalf("first run did not pause: %q", out.String())
	}
	if n := ledgerLines(t, ledger); n < 10 || n >= 40 {
		t.Fatalf("ledger holds %d lines after pause, want [10,40)", n)
	}

	// Restart: new server instance, same store. The rerun resumes after the
	// persisted prefix and must finish the remaining tasks.
	ts1.Close()
	s1.Close()
	s2, ts2 := start()
	defer ts2.Close()
	defer s2.Close()

	out.Reset()
	err = run([]string{
		"-server", ts2.URL, "-games", "40", "-seed", "3",
		"-resume", ledger, "-timeout", "60s",
	}, &out)
	if err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !strings.Contains(out.String(), "stream check OK") {
		t.Fatalf("resume run output: %q", out.String())
	}
	if n := ledgerLines(t, ledger); n != 40 {
		t.Fatalf("ledger holds %d lines after resume, want 40", n)
	}

	// A third run over the complete ledger is a no-op stream (0 new tasks)
	// that still verifies the whole span against ?range.
	out.Reset()
	if err := run([]string{
		"-server", ts2.URL, "-games", "40", "-seed", "3",
		"-resume", ledger, "-timeout", "30s",
	}, &out); err != nil {
		t.Fatalf("verify run: %v", err)
	}
	if !strings.Contains(out.String(), "40 resumed + 0 streamed") {
		t.Fatalf("verify run output: %q", out.String())
	}
}

func ledgerLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) > 0 {
			n++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}
