// Command gocworker is a remote execution node for a gocserve coordinator:
// it joins the coordinator's fleet, leases contiguous task ranges of running
// jobs, executes them on a local engine (same registry, same per-task rng
// forks — so results are byte-identical to coordinator-local execution), and
// streams completed results back.
//
// Usage:
//
//	gocworker -coordinator http://host:8372 [-workers N] [-name LABEL]
//	gocworker -version
//
// The catalog fingerprint is the safety interlock: at join the worker
// presents engine.CatalogFingerprint(), and a coordinator serving a
// different spec surface (other kinds, other versions) refuses it with 409 —
// a drifted binary exits instead of silently computing wrong-version tasks.
//
// Failure handling is lease-based and needs no operator choreography:
//
//   - SIGKILL / crash / partition: the worker just stops reporting; after
//     the lease TTL the coordinator requeues the unreported remainder of
//     its range and someone else computes it, byte-identically.
//   - SIGINT / SIGTERM: the worker abandons its lease gracefully, returning
//     completed results and the unfinished range in one final report.
//   - Coordinator restart: the worker's ID and leases vanish; it re-joins
//     and continues. Jobs themselves rehydrate server-side.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"flag"

	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gocworker:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gocworker", flag.ContinueOnError)
	coordinator := fs.String("coordinator", "", "base URL of the gocserve coordinator (required)")
	workers := fs.Int("workers", 0, "local engine worker count (0 = all cores)")
	name := fs.String("name", "", "fleet label for this worker (default: hostname)")
	version := fs.Bool("version", false, "print the worker version and catalog fingerprint, then exit")
	fs.Usage = func() {
		out := fs.Output()
		fmt.Fprintf(out, "Usage: gocworker -coordinator URL [flags]\n\nFlags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(out, `
Example:
  gocserve -addr :8372 &                         # the coordinator
  gocworker -coordinator http://localhost:8372   # one worker, all cores

Workers join the coordinator's fleet (409 unless their catalog fingerprint
matches), lease task ranges of running jobs, and stream results back.
Killing a worker mid-job costs only its in-flight range: the coordinator
requeues it after the lease TTL and the job's results stay byte-identical.
`)
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Printf("gocworker %s (%s) catalog %s (%d kinds)\n",
			server.Version, runtime.Version(), engine.CatalogFingerprint(), len(engine.SpecKinds()))
		return nil
	}
	if *coordinator == "" {
		fs.Usage()
		return fmt.Errorf("-coordinator is required")
	}
	if *name == "" {
		if host, err := os.Hostname(); err == nil {
			*name = host
		}
	}

	logger := log.New(os.Stderr, "gocworker: ", log.LstdFlags)
	runner := &dist.Runner{
		Transport: dist.NewHTTP(*coordinator),
		Name:      *name,
		Workers:   *workers,
		Logf:      logger.Printf,
	}
	logger.Printf("serving %s (catalog %s)", *coordinator, engine.CatalogFingerprint())
	err := runner.Run(ctx)
	if err != nil {
		return err
	}
	logger.Printf("stopped")
	return nil
}
