package gameofcoins_test

import (
	"fmt"

	"gameofcoins"
)

// ExampleLearn demonstrates Theorem 1: better-response learning converges
// to a pure equilibrium from any starting configuration.
func ExampleLearn() {
	g, _ := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	res, _ := gameofcoins.Learn(g, gameofcoins.UniformConfig(5, 0),
		gameofcoins.NewRoundRobinScheduler(), gameofcoins.NewRand(1),
		gameofcoins.LearnOptions{})
	fmt.Println("converged:", res.Converged)
	fmt.Println("equilibrium:", g.IsEquilibrium(res.Final))
	// Output:
	// converged: true
	// equilibrium: true
}

// ExampleNewDesigner demonstrates Theorem 2: the reward design mechanism
// moves the system between any two equilibria at bounded cost.
func ExampleNewDesigner() {
	g, _ := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	s0, sf, _ := gameofcoins.TwoDistinctEquilibria(g)
	d, _ := gameofcoins.NewDesigner(g, gameofcoins.DesignOptions{})
	res, _ := d.Run(s0, sf, gameofcoins.NewRand(3))
	fmt.Println("reached target:", res.Final.Equal(sf))
	fmt.Println("cost is positive and bounded:", res.TotalCost > 0)
	// Output:
	// reached target: true
	// cost is positive and bounded: true
}

// ExampleBetterEquilibriumFor demonstrates Proposition 2: some miner always
// prefers another equilibrium.
func ExampleBetterEquilibriumFor() {
	g, _ := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	eq, _ := gameofcoins.ConstructEquilibrium(g)
	imp, _ := gameofcoins.BetterEquilibriumFor(g, eq)
	fmt.Println("some miner gains elsewhere:", imp.Gain > 0)
	// Output:
	// some miner gains elsewhere: true
}
