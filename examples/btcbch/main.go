// btcbch replays the paper's Figure-1 scenario: the November-2017 BCH
// exchange-rate spike and the hashrate migration it triggered, on a
// synthetic two-chain market with 200 profit-chasing miners.
package main

import (
	"fmt"
	"log"

	"gameofcoins/internal/replay"
	"gameofcoins/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    200,
		Epochs:    24 * 90, // three simulated months, hourly epochs
		SpikeHour: 24 * 40, // the "November 12" event
		Seed:      2017,
	})
	if err != nil {
		return err
	}
	sc.Run()

	fmt.Println(trace.Plot(trace.PlotOptions{
		Title: "(a) exchange rates (btc held ≈1, bch spikes)", Width: 70, Height: 12,
	}, sc.Sim.RateSeries[sc.BTC], sc.Sim.RateSeries[sc.BCH]))
	fmt.Println(trace.Plot(trace.PlotOptions{
		Title: "(b) hashrate shares — miners move from btc to bch", Width: 70, Height: 12,
	}, sc.Sim.ShareSeries[sc.BTC], sc.Sim.ShareSeries[sc.BCH]))

	out := sc.Outcome()
	fmt.Printf("BCH hashrate share: pre-spike %.1f%%, peak %.1f%%, final %.1f%%\n",
		100*out.PreSpikeBCHShare, 100*out.PeakBCHShare, 100*out.FinalBCHShare)
	return nil
}
