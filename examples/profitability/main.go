// profitability reproduces the whattomine.com workflow the paper's
// introduction cites as evidence of reward-based coin switching: a miner
// enters their hashrate and electricity cost and gets the coins ranked by
// profitability — which is exactly the better-response computation of the
// game, evaluated on live market weights.
package main

import (
	"fmt"
	"log"

	"gameofcoins/internal/market"
	"gameofcoins/internal/replay"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Spin the synthetic BTC/BCH market forward into the spike window, then
	// ask "where should I mine?" for three miner profiles.
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    150,
		Epochs:    1,
		SpikeHour: 24 * 10,
		Seed:      5,
	})
	if err != nil {
		return err
	}
	s := sc.Sim
	s.Run(24 * 11) // one day into the spike

	weights := s.Weights()
	powers := s.CoinPowers()
	names := []string{"btc", "bch"}

	fmt.Printf("market state (epoch %d):\n", s.Epoch())
	for c := range weights {
		fmt.Printf("  %-4s weight %.1f fiat/h, hashrate %.3f\n", names[c], weights[c], powers[c])
	}

	profiles := []struct {
		label string
		power float64
		cost  float64
	}{
		{"hobbyist", 0.002, 0.05},
		{"small farm", 0.02, 0.4},
		{"industrial", 0.2, 3.0},
	}
	for _, p := range profiles {
		fmt.Printf("\n%s (power %.3f, cost %.2f/h):\n", p.label, p.power, p.cost)
		for rank, e := range market.ProfitabilityIndex(weights, powers, p.power, p.cost) {
			fmt.Printf("  #%d %-4s profit %.3f fiat/h\n", rank+1, names[e.Coin], e.ProfitPerHour)
		}
	}
	fmt.Println("\nthe ranking is the game's PayoffAfterMove: joining congests the destination,")
	fmt.Println("so bigger miners see smaller per-unit gains — the core of the paper's model.")
	return nil
}
