// Quickstart: build a game, run better-response learning to equilibrium,
// and inspect payoffs — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"gameofcoins"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Five miners with descending power compete over two coins whose
	// rewards (weights) reflect fees × exchange rate.
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "pool-a", Power: 13},
			{Name: "pool-b", Power: 11},
			{Name: "pool-c", Power: 7},
			{Name: "solo-1", Power: 5},
			{Name: "solo-2", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	if err != nil {
		return err
	}

	// Start with everyone on btc and let arbitrary better-response learning
	// run. Theorem 1: it converges, whatever the order of moves.
	start := gameofcoins.UniformConfig(g.NumMiners(), 0)
	res, err := gameofcoins.Learn(g, start, gameofcoins.NewRandomScheduler(),
		gameofcoins.NewRand(42), gameofcoins.LearnOptions{RecordMoves: true})
	if err != nil {
		return err
	}

	fmt.Printf("converged after %d better-response steps\n", res.Steps)
	for _, mv := range res.Moves {
		fmt.Printf("  %s: c%d → c%d (payoff %.3f → %.3f)\n",
			g.Miner(mv.Miner).Name, mv.From, mv.To, mv.PayoffBefore, mv.PayoffAfter)
	}
	fmt.Printf("equilibrium: %v (stable: %v)\n", res.Final, g.IsEquilibrium(res.Final))
	for p := 0; p < g.NumMiners(); p++ {
		fmt.Printf("  %-7s on %s earns %.3f\n",
			g.Miner(p).Name, g.Coin(res.Final[p]).Name, g.Payoff(res.Final, p))
	}
	return nil
}
