// Remote: drive the experiment service over HTTP with the typed client SDK —
// the v2 flow end to end. An in-process gocserve instance stands in for a
// remote deployment; everything below the net.Listen line is exactly what a
// real remote client would write.
//
// The flow: introspect the versioned spec catalog, register a game, submit
// a learning sweep as a self-describing spec envelope, stream progress over
// SSE, fetch the deterministic result, release the per-client job handle,
// and submit a sweep-of-sweeps as one batch round-trip.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"

	"gameofcoins"
	"gameofcoins/client"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Stand-in for a remote deployment: gocserve's handler on a loopback
	// listener. A real client would just point client.New at the server URL.
	api := gameofcoins.NewServer(0)
	defer api.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: api}
	go srv.Serve(ln)
	defer srv.Close()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	// The catalog is the server's self-description: every registered
	// kind@version with its JSON-Schema, plus a fingerprint identifying the
	// accepted wire surface (compare it across replicas to detect drift).
	cat, err := c.Catalog(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("catalog %s:\n", cat.Fingerprint)
	for _, e := range cat.Specs {
		latest := ""
		if e.Latest {
			latest = " (latest)"
		}
		fmt.Printf("  %-20s v%d%s\n", e.Wire, e.Version, latest)
	}

	// Register the quick-start game; the spec references it by ID.
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "pool-a", Power: 13}, {Name: "pool-b", Power: 11},
			{Name: "pool-c", Power: 7}, {Name: "solo-1", Power: 5}, {Name: "solo-2", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	if err != nil {
		return err
	}
	gameID, err := c.RegisterGame(ctx, g)
	if err != nil {
		return err
	}
	fmt.Printf("registered game %s\n", gameID)

	// Submit a learning sweep as a v2 envelope and watch it live: the SSE
	// stream carries progress snapshots, then the terminal status.
	h, err := c.SubmitLearnSweep(ctx, gameofcoins.LearnSweep{
		GameID:     gameID,
		Schedulers: []string{"random", "round-robin", "max-gain"},
		Runs:       40,
	}, 11)
	if err != nil {
		return err
	}
	fmt.Printf("handle %s → job %s (cached=%v, clients=%d)\n",
		h.ID(), h.Submitted.Status.ID, h.Submitted.Cached, h.Submitted.Clients)

	ch, err := h.Watch(ctx)
	if err != nil {
		return err
	}
	for st := range ch {
		fmt.Printf("  %-8s %d/%d tasks\n", st.State, st.Progress.Done, st.Progress.Total)
	}

	var res gameofcoins.LearnSweepResult
	if err := h.Result(ctx, &res); err != nil {
		return err
	}
	for _, s := range res.Schedulers {
		fmt.Printf("%-12s converged %d/%d, steps mean %.2f (p95 %.0f)\n",
			s.Scheduler, s.Converged, s.Runs, s.Steps.Mean, s.Steps.P95)
	}

	// Drop this client's claim. The job is shared infrastructure: releasing
	// a handle only cancels the job when no other client still holds one.
	if err := h.Release(ctx); err != nil {
		return err
	}

	// A sweep-of-sweeps in one round-trip: POST /v2/batch submits several
	// envelopes at once and returns per-item handles (or per-item errors —
	// one bad item never sinks the batch). Each handle behaves exactly like
	// a single submission's.
	var items []client.BatchItem
	for seed := uint64(1); seed <= 3; seed++ {
		items = append(items, client.BatchItem{
			Kind: "equilibrium_sweep", Seed: seed,
			Spec: gameofcoins.EquilibriumSweep{Gen: gameofcoins.GenSpec{Miners: 4, Coins: 2}, Games: 50},
		})
	}
	batch, err := c.SubmitBatch(ctx, items)
	if err != nil {
		return err
	}
	for i, r := range batch {
		if r.Err != nil {
			return fmt.Errorf("batch item %d: %w", i, r.Err)
		}
		if _, err := r.Handle.Wait(ctx); err != nil {
			return err
		}
		var eq gameofcoins.EquilibriumSweepResult
		if err := r.Handle.Result(ctx, &eq); err != nil {
			return err
		}
		fmt.Printf("batch seed %d: %d/%d games with multiple equilibria\n",
			items[i].Seed, eq.Multiple, eq.Games)
		if err := r.Handle.Release(ctx); err != nil {
			return err
		}
	}
	return nil
}
