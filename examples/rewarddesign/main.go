// rewarddesign walks through Algorithm 2 stage by stage (the paper's
// Figure 2): a manipulator moves eight miners from one equilibrium to
// another by temporarily inflating coin rewards, and we narrate every stage,
// its mover sequence, and the cost.
package main

import (
	"fmt"
	"log"

	"gameofcoins"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "p1", Power: 23}, {Name: "p2", Power: 17},
			{Name: "p3", Power: 13}, {Name: "p4", Power: 11},
			{Name: "p5", Power: 7}, {Name: "p6", Power: 5},
			{Name: "p7", Power: 3}, {Name: "p8", Power: 2},
		},
		[]gameofcoins.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{29, 31, 37},
	)
	if err != nil {
		return err
	}
	eqs, err := gameofcoins.EnumerateEquilibria(g)
	if err != nil {
		return err
	}
	if len(eqs) < 2 {
		return fmt.Errorf("need two equilibria, found %d", len(eqs))
	}
	s0, sf := eqs[0], eqs[len(eqs)-1]
	fmt.Printf("initial equilibrium s0 = %v\ndesired equilibrium sf = %v\n\n", s0, sf)

	d, err := gameofcoins.NewDesigner(g, gameofcoins.DesignOptions{})
	if err != nil {
		return err
	}
	res, err := d.Run(s0, sf, gameofcoins.NewRand(8))
	if err != nil {
		return err
	}
	for _, ph := range res.Phases {
		fmt.Printf("stage %d iter %d: mover %-3s → c%d  (%d steps, cost %.4g)\n",
			ph.Stage, ph.Iteration, g.Miner(ph.Mover).Name, sf[ph.Stage-1], ph.Steps, ph.Cost)
	}
	fmt.Printf("\nreached %v; total %d steps, bounded cost %.4g — and sf is stable under the ORIGINAL rewards,\n",
		res.Final, res.TotalSteps, res.TotalCost)
	fmt.Println("so the manipulator stops paying and the system stays put (Theorem 2).")
	return nil
}
