// whaleattack shows the §1/§5 manipulation channel on the live market
// simulator: a whale repeatedly injects high-fee transactions into BCH,
// inflating its weight; profit-chasing miners migrate; the ledger tracks
// the whale's spend against the hashrate it bought.
package main

import (
	"fmt"
	"log"

	"gameofcoins/internal/manip"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Market with no natural rate spike: any migration is the whale's doing.
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    120,
		Epochs:    1,
		SpikeHour: 1 << 30,
		Seed:      99,
	})
	if err != nil {
		return err
	}
	s := sc.Sim
	var ledger manip.Ledger

	const (
		quietEpochs = 24 * 5
		whaleEpochs = 24 * 10
		afterEpochs = 24 * 5
		feePerEpoch = 40
	)
	s.Run(quietEpochs)
	for e := 0; e < whaleEpochs; e++ {
		if err := manip.WhaleTx(s, &ledger, sc.BCH, feePerEpoch); err != nil {
			return err
		}
		s.Run(1)
	}
	s.Run(afterEpochs)

	fmt.Println(trace.Plot(trace.PlotOptions{
		Title: "BCH hashrate share (whale active epochs 120–360)", Width: 70, Height: 12,
	}, s.ShareSeries[sc.BCH]))

	share := s.ShareSeries[sc.BCH]
	fmt.Printf("share before whale: %.1f%%\n", 100*share.YAt(float64(quietEpochs-1)))
	fmt.Printf("share at whale end: %.1f%%\n", 100*share.YAt(float64(quietEpochs+whaleEpochs-1)))
	fmt.Printf("share after whale:  %.1f%%\n", 100*share.Ys[share.Len()-1])
	fmt.Printf("whale spend (fiat): %.1f over %d injections\n", ledger.Total(), len(ledger.Events()))
	fmt.Println("\nthe whale pays while fees are pending; once it stops, weights revert and")
	fmt.Println("the market relaxes — unless the bought configuration is itself an equilibrium (§5).")
	return nil
}
