package gameofcoins_test

// Facade-level coverage for the concurrent experiment engine and the
// gocserve handler: everything here goes through the public gameofcoins
// package only, which is how users are expected to reach the subsystem.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"gameofcoins"
)

func TestFacadeEngineDeterministicSweep(t *testing.T) {
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}, {Name: "p4", Power: 2}},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 9},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec := gameofcoins.LearnSweep{Game: g, Schedulers: []string{"random"}, Runs: 16}
	res1, err := gameofcoins.RunJob(context.Background(), gameofcoins.NewEngine(1), spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	res8, err := gameofcoins.RunJob(context.Background(), gameofcoins.NewEngine(8), spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res8) {
		t.Fatalf("facade sweep not worker-count independent:\n%+v\n%+v", res1, res8)
	}
	sweep := res1.(gameofcoins.LearnSweepResult)
	if sweep.TotalRuns != 16 || sweep.Schedulers[0].Converged != 16 {
		t.Fatalf("sweep = %+v", sweep)
	}
}

func TestFacadeRandForkIsExported(t *testing.T) {
	r := gameofcoins.NewRand(5)
	a, b := r.Fork(3), r.Fork(3)
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork is not a pure function of (state, index)")
	}
}

func TestFacadeServerRoundTrip(t *testing.T) {
	api := gameofcoins.NewServer(2)
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()

	body := strings.NewReader(`{"type":"equilibrium_sweep","seed":7,"gen":{"Miners":4,"Coins":2},"games":6}`)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var st gameofcoins.EngineJobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || st.ID == "" {
		t.Fatalf("submit: %d %+v", resp.StatusCode, st)
	}
	for !st.State.Terminal() {
		r2, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r2.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
	}
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	r3, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Body.Close()
	var out struct {
		Result gameofcoins.EquilibriumSweepResult `json:"result"`
	}
	if err := json.NewDecoder(r3.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Result.Games != 6 {
		t.Fatalf("result = %+v", out.Result)
	}
}

// TestFacadeV2Surface drives the v2 redesign end to end through the public
// facade alone: RegisterSpec visibility via SpecKinds, NewClient + envelope
// submission against NewServer, SSE Watch, typed result, handle release.
func TestFacadeV2Surface(t *testing.T) {
	kinds := gameofcoins.SpecKinds()
	for _, want := range []string{"learn_sweep", "design_sweep", "replay_sweep", "equilibrium_sweep"} {
		found := false
		for _, k := range kinds {
			found = found || k == want
		}
		if !found {
			t.Fatalf("built-in kind %s missing from SpecKinds %v", want, kinds)
		}
	}

	// The versioned catalog is visible through the facade too: every built-in
	// registers at version 1 with a schema, and the fingerprint is stable.
	catalog := gameofcoins.SpecCatalog()
	seen := map[string]gameofcoins.SpecCatalogEntry{}
	for _, e := range catalog {
		seen[e.Wire] = e
	}
	for _, want := range kinds {
		e, ok := seen[want]
		if !ok || e.Version != 1 || !e.Latest {
			t.Fatalf("catalog entry for %s = %+v", want, e)
		}
	}
	if ls := seen["learn_sweep"]; ls.Schema == nil || ls.Schema.Properties["runs"] == nil {
		t.Fatalf("learn_sweep schema missing from facade catalog: %+v", seen["learn_sweep"])
	}
	if fp := gameofcoins.CatalogFingerprint(); fp == "" || fp != gameofcoins.CatalogFingerprint() {
		t.Fatal("catalog fingerprint unstable")
	}

	api := gameofcoins.NewServer(2)
	defer api.Close()
	ts := httptest.NewServer(api)
	defer ts.Close()
	c := gameofcoins.NewClient(ts.URL)
	ctx := context.Background()

	h, err := c.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
		Gen: gameofcoins.GenSpec{Miners: 4, Coins: 2}, Games: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	var handle gameofcoins.JobHandle = h.Submitted
	if handle.Handle == "" || handle.Clients != 1 {
		t.Fatalf("handle = %+v", handle)
	}
	st, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	var res gameofcoins.EquilibriumSweepResult
	if err := h.Result(ctx, &res); err != nil {
		t.Fatal(err)
	}
	if res.Games != 6 {
		t.Fatalf("result = %+v", res)
	}
	if err := h.Release(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestFacadePersistentServer drives the persistence knob end to end through
// the public facade alone: NewFileStore + NewServerWithOptions, a computed
// result, a restart on the same directory, and the byte-identical cached
// answer (the same flow `gocserve -data DIR` runs).
func TestFacadePersistentServer(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	open := func() (gameofcoins.Store, *gameofcoins.Server, *httptest.Server) {
		st, err := gameofcoins.NewFileStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		api, err := gameofcoins.NewServerWithOptions(2, gameofcoins.ServerOptions{Store: st})
		if err != nil {
			t.Fatal(err)
		}
		return st, api, httptest.NewServer(api)
	}

	st1, api1, ts1 := open()
	c1 := gameofcoins.NewClient(ts1.URL)
	h, err := c1.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
		Gen: gameofcoins.GenSpec{Miners: 4, Coins: 2}, Games: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var before gameofcoins.EquilibriumSweepResult
	if err := h.Result(ctx, &before); err != nil {
		t.Fatal(err)
	}
	jobID := h.Submitted.Status.ID
	// Wait for the terminal record to land (it is written asynchronously
	// when the job finishes) before simulating the restart.
	deadline := time.Now().Add(30 * time.Second)
	for {
		snap, err := st1.Load()
		if err != nil {
			t.Fatal(err)
		}
		var rec gameofcoins.JobRecord = snap.Jobs[jobID]
		if rec.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("terminal record for %s never persisted (last: %+v)", jobID, rec)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	api1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, api2, ts2 := open()
	defer func() { ts2.Close(); api2.Close(); st2.Close() }()
	c2 := gameofcoins.NewClient(ts2.URL)
	h2, err := c2.SubmitEquilibriumSweep(ctx, gameofcoins.EquilibriumSweep{
		Gen: gameofcoins.GenSpec{Miners: 4, Coins: 2}, Games: 6,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Submitted.Cached || h2.Submitted.Status.ID != jobID {
		t.Fatalf("post-restart resubmit missed the rehydrated cache: %+v", h2.Submitted)
	}
	var after gameofcoins.EquilibriumSweepResult
	if err := h2.Result(ctx, &after); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("rehydrated result differs:\n%+v\n%+v", before, after)
	}
}
