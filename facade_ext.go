package gameofcoins

import (
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/exact"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/security"
)

// Extended facade: ablations, verification, and security analysis.

// SimultaneousResult reports a LearnSimultaneous run.
type SimultaneousResult = learning.SimultaneousResult

// LearnSimultaneous runs the simultaneous-best-response ablation dynamic:
// unlike the sequential model Theorem 1 covers, it may cycle (Result.Cycled).
func LearnSimultaneous(g *Game, s0 Config, maxRounds int) (SimultaneousResult, error) {
	return learning.RunSimultaneous(g, s0, maxRounds)
}

// NaiveDesignResult reports a NaiveOneShotDesign attempt.
type NaiveDesignResult = design.NaiveResult

// NaiveOneShotDesign is the baseline manipulation strategy the staged
// Designer is measured against: a single subsidy shot followed by
// relaxation. It frequently misses the target (see EXPERIMENTS.md E13).
func NaiveOneShotDesign(g *Game, s0, sf Config, sched Scheduler, r *Rand) (NaiveDesignResult, error) {
	return design.NaiveOneShot(g, s0, sf, sched, r)
}

// CoinSecurity is the per-coin decentralization snapshot (max miner share,
// HHI, Nakamoto coefficient).
type CoinSecurity = security.CoinReport

// SecuritySnapshot computes per-coin decentralization metrics for s.
func SecuritySnapshot(g *Game, s Config) []CoinSecurity { return security.Snapshot(g, s) }

// Insecure reports whether any non-empty coin of s has a 51% attacker.
func Insecure(g *Game, s Config) bool { return security.Insecure(g, s) }

// EngineDisagreement is a configuration/miner/coin triple on which the fast
// float engine and the exact rational engine disagree about a better
// response — evidence of a near-tie the epsilon resolves.
type EngineDisagreement = exact.Disagreement

// CrossValidate compares every better-response decision of the float engine
// against exact big.Rat arithmetic at configuration s.
func CrossValidate(g *Game, s Config) []EngineDisagreement { return exact.CrossValidate(g, s) }

// PayoffSpread is a miner's min/max payoff across a set of equilibria.
type PayoffSpread = equilibria.PayoffSpread

// EquilibriumSpreads computes per-miner payoff spreads over equilibria —
// the redistribution a Section-5 manipulator can shop from.
func EquilibriumSpreads(g *Game, eqs []Config) []PayoffSpread { return equilibria.Spreads(g, eqs) }

// BestEquilibriumFor returns the equilibrium in eqs that maximizes miner
// p's payoff, and that payoff.
func BestEquilibriumFor(g *Game, eqs []Config, p MinerID) (Config, float64) {
	return equilibria.BestTargetFor(g, eqs, p)
}
