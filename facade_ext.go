package gameofcoins

import (
	"context"
	"encoding/json"
	"net/http"

	"gameofcoins/client"
	"gameofcoins/internal/design"
	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/exact"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/security"
	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
	"gameofcoins/internal/traffic"
)

// Extended facade: ablations, verification, and security analysis.

// SimultaneousResult reports a LearnSimultaneous run.
type SimultaneousResult = learning.SimultaneousResult

// LearnSimultaneous runs the simultaneous-best-response ablation dynamic:
// unlike the sequential model Theorem 1 covers, it may cycle (Result.Cycled).
func LearnSimultaneous(g *Game, s0 Config, maxRounds int) (SimultaneousResult, error) {
	return learning.RunSimultaneous(g, s0, maxRounds)
}

// NaiveDesignResult reports a NaiveOneShotDesign attempt.
type NaiveDesignResult = design.NaiveResult

// NaiveOneShotDesign is the baseline manipulation strategy the staged
// Designer is measured against: a single subsidy shot followed by
// relaxation. It frequently misses the target (see EXPERIMENTS.md E13).
func NaiveOneShotDesign(g *Game, s0, sf Config, sched Scheduler, r *Rand) (NaiveDesignResult, error) {
	return design.NaiveOneShot(g, s0, sf, sched, r)
}

// CoinSecurity is the per-coin decentralization snapshot (max miner share,
// HHI, Nakamoto coefficient).
type CoinSecurity = security.CoinReport

// SecuritySnapshot computes per-coin decentralization metrics for s.
func SecuritySnapshot(g *Game, s Config) []CoinSecurity { return security.Snapshot(g, s) }

// Insecure reports whether any non-empty coin of s has a 51% attacker.
func Insecure(g *Game, s Config) bool { return security.Insecure(g, s) }

// EngineDisagreement is a configuration/miner/coin triple on which the fast
// float engine and the exact rational engine disagree about a better
// response — evidence of a near-tie the epsilon resolves.
type EngineDisagreement = exact.Disagreement

// CrossValidate compares every better-response decision of the float engine
// against exact big.Rat arithmetic at configuration s.
func CrossValidate(g *Game, s Config) []EngineDisagreement { return exact.CrossValidate(g, s) }

// PayoffSpread is a miner's min/max payoff across a set of equilibria.
type PayoffSpread = equilibria.PayoffSpread

// EquilibriumSpreads computes per-miner payoff spreads over equilibria —
// the redistribution a Section-5 manipulator can shop from.
func EquilibriumSpreads(g *Game, eqs []Config) []PayoffSpread { return equilibria.Spreads(g, eqs) }

// BestEquilibriumFor returns the equilibrium in eqs that maximizes miner
// p's payoff, and that payoff.
func BestEquilibriumFor(g *Game, eqs []Config, p MinerID) (Config, float64) {
	return equilibria.BestTargetFor(g, eqs, p)
}

// Concurrent experiment engine (internal/engine) and the gocserve HTTP
// service (internal/server). The engine fans deterministic job specs across
// a worker pool; results are bit-identical for any worker count because
// every task draws from an index-forked rng stream (Rand.Fork).
type (
	// Engine runs one job spec synchronously over a worker pool.
	Engine = engine.Engine
	// EngineSpec is a typed, deterministic, parallelizable job.
	EngineSpec = engine.Spec
	// EngineProgress reports completed/total tasks of a running job, plus
	// the scheduler's running/queued counts as of the last completed task.
	EngineProgress = engine.Progress
	// Sizer is implemented by specs that can estimate per-task cost up
	// front; the engine then dispatches their tasks longest-first, cutting
	// tail latency on skewed workloads. Ordering never affects results.
	Sizer = engine.Sizer
	// EngineSchedStats snapshots the engine's shared dispatcher (workers,
	// active jobs, queued/running tasks, steals); served from /healthz.
	EngineSchedStats = engine.SchedStats
	// EngineJob tracks an asynchronous engine run.
	EngineJob = engine.Job
	// EngineJobStatus is a point-in-time job snapshot.
	EngineJobStatus = engine.Status
	// EngineJobState is a job lifecycle state (pending … done/failed/canceled).
	EngineJobState = engine.State
	// JobManager submits, tracks, and cancels asynchronous engine jobs.
	JobManager = engine.Manager

	// LearnSweep sweeps better-response learning across schedulers and
	// seeds on a fixed or randomly generated game.
	LearnSweep = engine.LearnSweep
	// LearnSweepResult aggregates per-scheduler convergence statistics.
	LearnSweepResult = engine.LearnSweepResult
	// DesignSweep runs the Section-5 reward-design mechanism on random games.
	DesignSweep = engine.DesignSweep
	// DesignSweepResult aggregates design cost/steps statistics.
	DesignSweepResult = engine.DesignSweepResult
	// ReplaySweep replays the Figure-1 market scenario across derived seeds.
	ReplaySweep = engine.ReplaySweep
	// ReplaySweepResult aggregates migration outcomes.
	ReplaySweepResult = engine.ReplaySweepResult
	// EquilibriumSweep enumerates pure equilibria over random games.
	EquilibriumSweep = engine.EquilibriumSweep
	// EquilibriumSweepResult aggregates the equilibrium-count distribution.
	EquilibriumSweepResult = engine.EquilibriumSweepResult

	// ReplayScenarioParams tune the synthetic Figure-1 replay scenario.
	ReplayScenarioParams = replay.ScenarioParams

	// Server is the gocserve HTTP handler (games, jobs, results, cache).
	Server = server.Server
	// ServerOptions configure a Server beyond the worker count: the
	// persistence Store, the interrupted-job recovery policy, and the
	// admission controller (Traffic).
	ServerOptions = server.Options

	// TrafficConfig configures admission control for a multi-tenant
	// Server: the API keyring, the per-client submission token bucket
	// (Rate/Burst → 429 + Retry-After), and the per-client cap on the
	// share of in-flight work cost (MaxShare).
	TrafficConfig = traffic.Config
	// TrafficController enforces a TrafficConfig; set it as
	// ServerOptions.Traffic. Admission control changes who runs when,
	// never result bytes.
	TrafficController = traffic.Controller
	// TrafficKeyring maps API keys to client identities (constant-time
	// lookup). See ParseKeyring / LoadKeyring.
	TrafficKeyring = traffic.Keyring
	// TrafficStats is the controller's per-client admitted/throttled/
	// unauthorized counters, served from /healthz under "traffic".
	TrafficStats = traffic.Stats
	// JobRequest is the legacy (v1) flat wire form of a job submission.
	JobRequest = server.JobRequest

	// Store is the pluggable persistence backend for the gocserve server:
	// games, job records, deterministic results, and v2 handles. See
	// NewMemStore and NewFileStore.
	Store = store.Store
	// JobRecord is the durable form of one job in a Store.
	JobRecord = store.JobRecord

	// JobEnvelope is the self-describing v2 wire form of a job: a registered
	// spec kind — bare ("learn_sweep", latest version) or version-pinned
	// ("learn_sweep@v2") — a seed, and the spec document the registry
	// decodes.
	JobEnvelope = engine.JobEnvelope
	// SpecSchema is the JSON-Schema (draft 2020-12 subset) describing one
	// spec version's wire document, served from GET /v2/specs.
	SpecSchema = engine.Schema
	// SpecCatalogEntry is one (kind, version) of the spec catalog.
	SpecCatalogEntry = engine.CatalogEntry
	// TaskRange is a half-open span [Lo, Hi) of task indices — the one
	// range representation the result data plane uses end to end: lease
	// spans, completed-result ranges, ?range=lo-hi queries, store records.
	TaskRange = engine.TaskRange
	// JobHandle is the v2 wire form of a per-client job handle: one client's
	// reference-counted claim on a deduplicated server-side job.
	JobHandle = server.JobHandle
	// GameResolver resolves registered-game references when decoding specs.
	GameResolver = engine.GameResolver

	// Client is the typed Go SDK for the gocserve v2 API (package client).
	Client = client.Client
	// ClientOption configures a Client (client.WithHTTPClient,
	// client.WithFingerprint, …).
	ClientOption = client.Option
	// ClientHandle is the SDK-side job handle (Wait, Watch, Result, Release).
	ClientHandle = client.Handle

	// DistConfig tunes the lease-based fleet coordinator embedded in every
	// Server: lease TTL, lease sizing, poll cadence (internal/dist).
	DistConfig = dist.Config
	// DistStats is the coordinator's fleet snapshot (workers, leases,
	// counters), served from /healthz under "dist".
	DistStats = dist.Stats
	// DistWorkerStats is one fleet worker's view within DistStats.
	DistWorkerStats = dist.WorkerStats
	// WorkerRunner is the worker-side loop gocworker wraps: join a
	// coordinator, then lease → execute → report until the context ends.
	// Embedders can run one in-process against any coordinator.
	WorkerRunner = dist.Runner
	// WorkerTransport carries the worker↔coordinator protocol; HTTP in
	// production (NewWorkerTransport), in-process for tests.
	WorkerTransport = dist.Transport
)

// NewEngine returns a worker-pool engine; workers <= 0 selects GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// NewJobManager returns a manager running asynchronous jobs on e.
func NewJobManager(e *Engine) *JobManager { return engine.NewManager(e) }

// RunJob executes spec on e and returns its aggregated result. The seed
// roots all job randomness; results do not depend on e's worker count.
func RunJob(ctx context.Context, e *Engine, spec EngineSpec, seed uint64) (any, error) {
	return e.Run(ctx, spec, seed, nil)
}

// NewServer returns the gocserve HTTP handler backed by a fresh engine with
// the given worker count. Mount it on any mux or serve it directly; call
// Server.Close during shutdown to cancel running jobs.
func NewServer(workers int) *Server { return server.New(workers) }

// NewServerWithOptions is NewServer with persistence: the server mirrors
// its state into opts.Store and rehydrates from it on construction, so
// finished jobs reappear as servable cached results (same bytes,
// cached:true) and jobs interrupted mid-run are resubmitted under their
// original spec and seed — or marked failed with opts.FailInterrupted. It
// fails only if the store cannot be read.
func NewServerWithOptions(workers int, opts ServerOptions) (*Server, error) {
	return server.NewWithOptions(workers, opts)
}

// NewMemStore returns the in-memory Store: the same write-through code path
// as the file-backed store, but nothing survives the process. Useful for
// in-process restart scenarios (tests); NewServer itself runs with no store
// at all.
func NewMemStore() Store { return store.NewMem() }

// NewFileStore opens (creating if needed) the file-backed Store rooted at
// dir: an append-only JSONL operation log, replayed on open and compacted
// periodically. It is what `gocserve -data DIR` uses; close it after the
// server shuts down.
func NewFileStore(dir string) (Store, error) { return store.OpenFile(dir) }

// RegisterResultCodec registers a decoder reviving stored results of a
// custom spec kind and version into their typed form after a restart, plus
// an optional result schema describing the aggregate result document (served
// from GET /v2/specs as result_schema). By convention the schema's $defs
// carry "task" — the per-task document the result data plane streams, which
// the client SDK validates during Handle.StreamResult — and "summary" for
// shared stats blocks. The codec itself is optional — versions without one
// still round-trip byte-identically as raw JSON — but a registered codec
// means in-process consumers (Job.Result) see the same types before and
// after rehydration. The (kind, version) must already be registered via
// RegisterSpec.
func RegisterResultCodec(kind string, version int, decode func(json.RawMessage) (any, error), schema *SpecSchema) {
	engine.RegisterResultCodec(kind, version, decode, schema)
}

// RegisterSpec registers a decoder for one version of a job-spec kind
// (version 1 is the kind's original wire format; a breaking change to the
// spec's JSON shape ships as version+1 and coexists with the old one). Once
// registered, the version is accepted end to end — POST /v2/jobs as "kind"
// (latest) or "kind@vN" (pinned), POST /v2/batch, result caching, the
// client SDK — with zero changes to the server: the serving layers resolve
// every envelope purely through this registry. schema, if non-nil, is
// served from GET /v2/specs and enforced on submissions (422 on shape
// mismatch); it must accept exactly the documents decode accepts. Call
// RegisterSpec from an init function, next to the spec type; it panics on
// duplicate (kind, version) pairs.
func RegisterSpec(kind string, version int, decode func(json.RawMessage) (EngineSpec, error), schema *SpecSchema) {
	engine.RegisterSpec(kind, version, decode, schema)
}

// SpecKinds returns the registered job-spec kinds (bare, unversioned),
// sorted.
func SpecKinds() []string { return engine.SpecKinds() }

// SpecCatalog returns every registered (kind, version) with its wire name,
// latest/deprecated flags, and schema — what gocserve serves from
// GET /v2/specs.
func SpecCatalog() []SpecCatalogEntry { return engine.Catalog() }

// CatalogFingerprint hashes the registered kinds@versions into a short
// identifier: two processes with the same fingerprint accept the same wire
// surface.
func CatalogFingerprint() string { return engine.CatalogFingerprint() }

// NewClient returns the typed SDK client for a gocserve instance at url.
// Options pin behavior per client — e.g. client.WithFingerprint(fp) asserts
// every submission against a captured catalog fingerprint (409 on drift).
func NewClient(url string, opts ...ClientOption) *Client { return client.New(url, opts...) }

// NewTrafficController returns the admission controller for cfg; set it as
// ServerOptions.Traffic to run a Server multi-tenant (what `gocserve -keys
// -rate -burst -max-share` does).
func NewTrafficController(cfg TrafficConfig) *TrafficController { return traffic.New(cfg) }

// LoadKeyring reads a "client:key"-per-line API keyring file.
func LoadKeyring(path string) (*TrafficKeyring, error) { return traffic.LoadKeyring(path) }

// NewWorkerTransport returns the HTTP transport a WorkerRunner uses to reach
// the coordinator embedded in a gocserve instance at url — the same wire
// protocol the gocworker binary speaks.
func NewWorkerTransport(url string) WorkerTransport { return dist.NewHTTP(url) }

// Compile-time check that the facade server is a plain http.Handler.
var _ http.Handler = (*Server)(nil)
