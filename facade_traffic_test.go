package gameofcoins_test

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"gameofcoins"
	"gameofcoins/client"
)

// TestFacadeTrafficControl drives the admission-control surface purely
// through the root facade: a keyring loaded from disk, a controller on
// ServerOptions.Traffic, an unkeyed submission bounced with 401, and a keyed
// one completing normally.
func TestFacadeTrafficControl(t *testing.T) {
	keys := filepath.Join(t.TempDir(), "keys.txt")
	if err := os.WriteFile(keys, []byte("ada:ada-secret-000001\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	kr, err := gameofcoins.LoadKeyring(keys)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := gameofcoins.NewServerWithOptions(2, gameofcoins.ServerOptions{
		Traffic: gameofcoins.NewTrafficController(gameofcoins.TrafficConfig{Keyring: kr}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx := context.Background()
	spec := gameofcoins.EquilibriumSweep{Gen: gameofcoins.GenSpec{Miners: 4, Coins: 2}, Games: 5}

	_, err = gameofcoins.NewClient(ts.URL).SubmitEquilibriumSweep(ctx, spec, 1)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 401 {
		t.Fatalf("unkeyed submission: got %v, want HTTP 401", err)
	}

	keyed := gameofcoins.NewClient(ts.URL, client.WithAPIKey("ada-secret-000001"))
	h, err := keyed.SubmitEquilibriumSweep(ctx, spec, 1)
	if err != nil {
		t.Fatalf("keyed submission: %v", err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	var res gameofcoins.EquilibriumSweepResult
	if err := h.Result(ctx, &res); err != nil {
		t.Fatal(err)
	}
	if res.Games != 5 {
		t.Fatalf("result covers %d games, want 5", res.Games)
	}
}
