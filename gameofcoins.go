// Package gameofcoins is a Go implementation of "Game of Coins"
// (Spiegelman, Keidar, Tennenholtz — ICDCS 2021): strategic mining in
// multi-cryptocurrency markets as a game, convergence of arbitrary
// better-response learning to pure equilibrium, and dynamic reward design
// that steers learners between equilibria at bounded cost.
//
// This package is the stable public facade; it re-exports the library's
// types and constructors so users never import internal packages directly.
//
// # Quick start
//
//	g, err := gameofcoins.NewGame(
//		[]gameofcoins.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}, {Name: "p4", Power: 2}},
//		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
//		[]float64{17, 9},
//	)
//	res, err := gameofcoins.Learn(g, gameofcoins.UniformConfig(4, 0), gameofcoins.NewRandomScheduler(), gameofcoins.NewRand(1), gameofcoins.LearnOptions{})
//	// res.Final is a pure equilibrium (Theorem 1 guarantees convergence).
//
// # Concurrent experiment engine and gocserve
//
// Heavy workloads — learning sweeps across schedulers and seeds, reward
// design runs, market-simulator replays, equilibrium enumeration over
// random games — run through the concurrent experiment engine:
//
//	eng := gameofcoins.NewEngine(0) // 0 = all cores
//	res, err := gameofcoins.RunJob(ctx, eng, gameofcoins.LearnSweep{
//		Gen:  gameofcoins.GenSpec{Miners: 32, Coins: 4},
//		Runs: 100,
//	}, 11)
//
// The engine forks one deterministic rng stream per task index
// (Rand.Fork), so results are bit-identical for any worker count and any
// scheduling order; the same guarantee makes the in-memory result cache of
// the HTTP service sound. Scheduling is size-aware and fair: specs
// implementing Sizer run longest-tasks-first, and concurrent jobs share the
// worker pool evenly instead of queueing behind each other.
// NewServer returns that service — the handler behind cmd/gocserve — with
// POST /v1/games, POST /v1/jobs, GET /v1/jobs/{id}, GET
// /v1/jobs/{id}/result, and DELETE /v1/jobs/{id} for cancellation.
// cmd/gocbench's -parallel flag drives the E1–E13 paper reproduction
// through the same engine.
//
// See the examples/ directory for runnable scenarios, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the paper-reproduction results.
package gameofcoins

import (
	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/potential"
	"gameofcoins/internal/rng"
)

// Core game model (internal/core).
type (
	// Miner is a player with mining power (the paper's p with m_p).
	Miner = core.Miner
	// Coin is a resource miners compete over.
	Coin = core.Coin
	// Game is an immutable game instance G_{Π,C,F}.
	Game = core.Game
	// Config assigns each miner a coin (the paper's s ∈ Cⁿ).
	Config = core.Config
	// MinerID indexes miners in descending-power order.
	MinerID = core.MinerID
	// CoinID indexes coins.
	CoinID = core.CoinID
	// GameOption configures NewGame.
	GameOption = core.Option
	// GenSpec parameterizes RandomGame.
	GenSpec = core.GenSpec
)

// NewGame constructs a game from miners, coins, and the reward function F
// (rewards[c] = F(c)). Miners are sorted by descending power.
func NewGame(miners []Miner, coins []Coin, rewards []float64, opts ...GameOption) (*Game, error) {
	return core.NewGame(miners, coins, rewards, opts...)
}

// WithEpsilon sets the relative tolerance for payoff comparisons.
func WithEpsilon(eps float64) GameOption { return core.WithEpsilon(eps) }

// WithEligibility restricts which miners may mine which coins (the paper's
// §6 asymmetric extension).
func WithEligibility(allowed func(p MinerID, c CoinID) bool) GameOption {
	return core.WithEligibility(allowed)
}

// UniformConfig puts all n miners on coin c.
func UniformConfig(n int, c CoinID) Config { return core.UniformConfig(n, c) }

// RandomGame draws a random game for experimentation.
func RandomGame(r *Rand, spec GenSpec) (*Game, error) { return core.RandomGame(r, spec) }

// RandomConfig draws a uniform random valid configuration.
func RandomConfig(r *Rand, g *Game) Config { return core.RandomConfig(r, g) }

// Deterministic randomness (internal/rng).
type (
	// Rand is the library's deterministic splittable PRNG.
	Rand = rng.Rand
)

// NewRand returns a deterministic generator for the given seed.
func NewRand(seed uint64) *Rand { return rng.New(seed) }

// Better-response learning (internal/learning).
type (
	// Scheduler picks which improving move is played next; Theorem 1
	// guarantees convergence for every implementation.
	Scheduler = learning.Scheduler
	// LearnOptions configure Learn.
	LearnOptions = learning.Options
	// LearnResult reports a finished learning run.
	LearnResult = learning.Result
	// Move is one better-response step.
	Move = learning.Move
)

// Learn runs better-response dynamics from s0 until a pure equilibrium.
func Learn(g *Game, s0 Config, sched Scheduler, r *Rand, opts LearnOptions) (LearnResult, error) {
	return learning.Run(g, s0, sched, r, opts)
}

// Scheduler constructors.
func NewRoundRobinScheduler() Scheduler    { return learning.NewRoundRobin() }
func NewRandomScheduler() Scheduler        { return learning.NewRandom() }
func NewMaxGainScheduler() Scheduler       { return learning.NewMaxGain() }
func NewMinGainScheduler() Scheduler       { return learning.NewMinGain() }
func NewSmallestFirstScheduler() Scheduler { return learning.NewSmallestFirst() }
func NewLargestFirstScheduler() Scheduler  { return learning.NewLargestFirst() }

// AllSchedulers returns a fresh instance of every built-in scheduler.
func AllSchedulers() []Scheduler { return learning.AllSchedulers() }

// Equilibria (internal/equilibria).

// ConstructEquilibrium builds a pure equilibrium constructively
// (Appendix A / Proposition 3).
func ConstructEquilibrium(g *Game) (Config, error) { return equilibria.Construct(g) }

// TwoDistinctEquilibria builds two different pure equilibria (Lemma 2;
// requires Assumptions 1–2 in general).
func TwoDistinctEquilibria(g *Game) (Config, Config, error) { return equilibria.TwoDistinct(g) }

// EnumerateEquilibria lists every pure equilibrium of a small game.
func EnumerateEquilibria(g *Game) ([]Config, error) { return equilibria.Enumerate(g) }

// Improvement is a Proposition-2 witness.
type Improvement = equilibria.Improvement

// BetterEquilibriumFor finds a miner who strictly prefers another
// equilibrium (Proposition 2).
func BetterEquilibriumFor(g *Game, s Config) (Improvement, error) {
	return equilibria.BetterEquilibriumFor(g, s)
}

// Ordinal potential (internal/potential).

// PotentialLess reports whether the Theorem-1 ordinal potential of s is
// strictly below that of sp; it increases along every better-response step.
func PotentialLess(g *Game, s, sp Config) bool { return potential.Less(g, s, sp) }

// Reward design (internal/design).
type (
	// Designer runs the Section-5 dynamic reward design mechanism.
	Designer = design.Designer
	// DesignOptions configure a Designer.
	DesignOptions = design.Options
	// DesignResult reports a completed run: stages, phases, steps, cost.
	DesignResult = design.Result
)

// NewDesigner builds a reward designer over the base game g.
func NewDesigner(g *Game, opts DesignOptions) (*Designer, error) {
	return design.NewDesigner(g, opts)
}
