package gameofcoins_test

import (
	"testing"

	"gameofcoins"
)

// The facade tests double as the public-API contract: everything a user
// needs for the paper's three headline results must be reachable without
// touching internal packages.

func newGame(t *testing.T) *gameofcoins.Game {
	t.Helper()
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]gameofcoins.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTheorem1ThroughFacade(t *testing.T) {
	g := newGame(t)
	for _, sched := range gameofcoins.AllSchedulers() {
		res, err := gameofcoins.Learn(g, gameofcoins.UniformConfig(5, 0), sched, gameofcoins.NewRand(1), gameofcoins.LearnOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !res.Converged || !g.IsEquilibrium(res.Final) {
			t.Fatalf("%s: did not converge to equilibrium", sched.Name())
		}
	}
}

func TestPotentialThroughFacade(t *testing.T) {
	g := newGame(t)
	s := gameofcoins.UniformConfig(5, 0)
	res, err := gameofcoins.Learn(g, s, gameofcoins.NewMaxGainScheduler(), gameofcoins.NewRand(2), gameofcoins.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 0 && !gameofcoins.PotentialLess(g, s, res.Final) {
		t.Fatal("potential did not increase over the run")
	}
}

func TestProposition2ThroughFacade(t *testing.T) {
	g := newGame(t)
	eq, err := gameofcoins.ConstructEquilibrium(g)
	if err != nil {
		t.Fatal(err)
	}
	imp, err := gameofcoins.BetterEquilibriumFor(g, eq)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Gain <= 0 {
		t.Fatalf("improvement gain %v", imp.Gain)
	}
}

func TestTheorem2ThroughFacade(t *testing.T) {
	g := newGame(t)
	a, b, err := gameofcoins.TwoDistinctEquilibria(g)
	if err != nil {
		t.Fatal(err)
	}
	d, err := gameofcoins.NewDesigner(g, gameofcoins.DesignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(a, b, gameofcoins.NewRand(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Equal(b) {
		t.Fatalf("design ended at %v, want %v", res.Final, b)
	}
	if res.TotalCost <= 0 {
		t.Fatal("no cost accounted")
	}
}

func TestEnumerateThroughFacade(t *testing.T) {
	g := newGame(t)
	eqs, err := gameofcoins.EnumerateEquilibria(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) < 2 {
		t.Fatalf("found %d equilibria", len(eqs))
	}
}

func TestRandomGameThroughFacade(t *testing.T) {
	r := gameofcoins.NewRand(4)
	g, err := gameofcoins.RandomGame(r, gameofcoins.GenSpec{Miners: 6, Coins: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := gameofcoins.RandomConfig(r, g)
	if err := g.ValidateConfig(s); err != nil {
		t.Fatal(err)
	}
}

func TestAsymmetricThroughFacade(t *testing.T) {
	g, err := gameofcoins.NewGame(
		[]gameofcoins.Miner{{Name: "a", Power: 3}, {Name: "b", Power: 2}, {Name: "c", Power: 1}},
		[]gameofcoins.Coin{{Name: "x"}, {Name: "y"}},
		[]float64{5, 7},
		gameofcoins.WithEligibility(func(p gameofcoins.MinerID, c gameofcoins.CoinID) bool {
			return p != 2 || c == 1
		}),
		gameofcoins.WithEpsilon(1e-12),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gameofcoins.Learn(g, gameofcoins.Config{0, 0, 1}, gameofcoins.NewRoundRobinScheduler(), gameofcoins.NewRand(5), gameofcoins.LearnOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsEquilibrium(res.Final) {
		t.Fatal("restricted game did not converge")
	}
}

func TestExtendedFacade(t *testing.T) {
	g := newGame(t)

	// Security metrics.
	s := gameofcoins.UniformConfig(5, 0)
	reps := gameofcoins.SecuritySnapshot(g, s)
	if len(reps) != 2 {
		t.Fatalf("security snapshot has %d coins", len(reps))
	}
	if gameofcoins.Insecure(g, s) {
		t.Fatal("13/39 < 0.5 share flagged insecure")
	}

	// Cross-validation: integer game, no disagreements.
	if ds := gameofcoins.CrossValidate(g, s); len(ds) != 0 {
		t.Fatalf("engines disagree: %v", ds)
	}

	// Naive design baseline runs.
	a, b, err := gameofcoins.TwoDistinctEquilibria(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gameofcoins.NaiveOneShotDesign(g, a, b, gameofcoins.NewRandomScheduler(), gameofcoins.NewRand(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Fatal("naive design cost not accounted")
	}

	// Simultaneous ablation runs.
	sres, err := gameofcoins.LearnSimultaneous(g, s, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !sres.Converged && !sres.Cycled && sres.Rounds < 200 {
		t.Fatalf("simultaneous run inconsistent: %+v", sres)
	}
}

func TestFacadeSpreadsAndSchedulers(t *testing.T) {
	g := newGame(t)
	eqs, err := gameofcoins.EnumerateEquilibria(g)
	if err != nil {
		t.Fatal(err)
	}
	spreads := gameofcoins.EquilibriumSpreads(g, eqs)
	if len(spreads) != g.NumMiners() {
		t.Fatalf("spreads = %d", len(spreads))
	}
	for p := 0; p < g.NumMiners(); p++ {
		target, u := gameofcoins.BestEquilibriumFor(g, eqs, p)
		if g.Payoff(target, p) != u {
			t.Fatal("best target payoff mismatch")
		}
		if u < spreads[p].Min || u > spreads[p].Max {
			t.Fatal("best payoff outside spread")
		}
	}
	// Every named scheduler constructor yields a working scheduler.
	for _, sched := range []gameofcoins.Scheduler{
		gameofcoins.NewRoundRobinScheduler(),
		gameofcoins.NewRandomScheduler(),
		gameofcoins.NewMaxGainScheduler(),
		gameofcoins.NewMinGainScheduler(),
		gameofcoins.NewSmallestFirstScheduler(),
		gameofcoins.NewLargestFirstScheduler(),
	} {
		res, err := gameofcoins.Learn(g, gameofcoins.UniformConfig(5, 1), sched, gameofcoins.NewRand(9), gameofcoins.LearnOptions{})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !g.IsEquilibrium(res.Final) {
			t.Fatalf("%s: bad final", sched.Name())
		}
	}
	// Potential comparator and random-game helpers.
	r := gameofcoins.NewRand(10)
	rg, err := gameofcoins.RandomGame(r, gameofcoins.GenSpec{Miners: 4, Coins: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := gameofcoins.RandomConfig(r, rg)
	if gameofcoins.PotentialLess(rg, s, s) {
		t.Fatal("potential less reflexive")
	}
}
