module gameofcoins

go 1.24
