package analysis

import (
	"reflect"
	"testing"
)

// TestParseAllowDirective pins the directive grammar documented in DESIGN.md:
// //goclint:allow rule[,rule...] [-- rationale].
func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		text  string
		rules []string
	}{
		{"//goclint:allow nodeterm", []string{"nodeterm"}},
		{"//goclint:allow nodeterm -- scheduler EWMA timing", []string{"nodeterm"}},
		{"//goclint:allow nodeterm, maporder", []string{"nodeterm", "maporder"}},
		{"//goclint:allow nodeterm,maporder -- both apply", []string{"nodeterm", "maporder"}},
		{"//goclint:allow\terrdrop", []string{"errdrop"}},
		{"//goclint:allow", nil},                   // no rules named
		{"//goclint:allow -- rationale only", nil}, // still no rules
		{"//goclint:allowance nodeterm", nil},      // not the directive
		{"// goclint:allow nodeterm", nil},         // directives have no space after //
		{"//goclint:deny nodeterm", nil},
		{"// plain comment", nil},
	}
	for _, c := range cases {
		rules, ok := parseAllowDirective(c.text)
		if ok != (c.rules != nil) || !reflect.DeepEqual(rules, c.rules) {
			t.Errorf("parseAllowDirective(%q) = %v, %v; want %v", c.text, rules, ok, c.rules)
		}
	}
}
