// Package analysis is the home of goclint, the repo's static enforcement of
// its determinism contract. Every guarantee the serving stack makes — sweep
// results byte-identical at any worker count, across restarts, and through
// distributed worker failures — reduces to source-level conventions: task
// randomness derives from the forked per-task *rng.Rand, compute paths never
// consult ambient state (wall clock, process environment, global RNGs), map
// iteration order never leaks into marshaled output, and error values on the
// persistence path are never silently dropped. This package checks those
// conventions at analysis time instead of hoping property tests catch every
// regression.
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// shape (Analyzer, Pass, Diagnostic) so analyzers could be ported to the real
// multichecker if the dependency ever becomes available; it is implemented on
// the standard library alone because this repo builds offline with zero
// third-party modules.
//
// Suppression: a finding is suppressed by a directive comment
//
//	//goclint:allow <rule>[,<rule>...] [-- rationale]
//
// placed on the flagged line or on the line immediately above it. Directives
// are deliberately narrow — one line, named rules only — so an allow can
// never silently blanket future violations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the rule that fired, and a message
// telling the author what to do instead.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Analyzer is one named rule. Run inspects a fully type-checked package and
// reports findings through the Pass.
type Analyzer struct {
	// Name is the rule name — what directives name and diagnostics carry.
	Name string
	// Doc is a one-paragraph description of what the rule enforces and why.
	Doc string
	// AppliesTo reports whether the rule runs on the given import path. A nil
	// AppliesTo runs everywhere.
	AppliesTo func(pkgPath string) bool
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Pkg.Fset.Position(pos),
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Lint runs every applicable analyzer over every package and returns the
// surviving findings sorted by position, with //goclint:allow-suppressed
// findings removed. The returned findings are ready to print.
func Lint(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := LintWithUnused(pkgs, analyzers)
	return diags, err
}

// UnusedAllow is one //goclint:allow directive (one rule of one) that
// suppressed nothing when the suite ran — a stale suppression whose hazard
// has since been fixed, moved, or never existed. Stale allows rot the audit
// trail: they read as "this line is dangerous on purpose" about code that is
// no longer dangerous at all.
type UnusedAllow struct {
	Pos  token.Position // the directive comment's position
	Rule string
}

// String renders the warning in file:line form.
func (u UnusedAllow) String() string {
	return fmt.Sprintf("%s:%d: unused //goclint:allow %s (suppresses no current finding)", u.Pos.Filename, u.Pos.Line, u.Rule)
}

// LintWithUnused is Lint plus the stale-directive report: every parsed allow
// that matched no diagnostic of any analyzer that ran. An allow naming a rule
// whose analyzer does not apply to the package is unused by definition.
func LintWithUnused(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []UnusedAllow, error) {
	var all []Diagnostic
	var unused []UnusedAllow
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		used := map[allowKey]bool{}
		for _, a := range analyzers {
			if a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			var diags []Diagnostic
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range diags {
				if key, ok := allows.match(d); ok {
					used[key] = true
				} else {
					all = append(all, d)
				}
			}
		}
		for key := range allows {
			if !used[key] {
				unused = append(unused, UnusedAllow{
					Pos:  token.Position{Filename: key.file, Line: key.line},
					Rule: key.rule,
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	sort.Slice(unused, func(i, j int) bool {
		a, b := unused[i], unused[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return all, unused, nil
}

// allowKey identifies one (file, line, rule) a directive covers.
type allowKey struct {
	file string
	line int
	rule string
}

// allowSet is the package's parsed //goclint:allow directives.
type allowSet map[allowKey]bool

// suppresses reports whether a directive covers the diagnostic: the rule must
// be named on the flagged line itself or the line directly above it.
func (s allowSet) suppresses(d Diagnostic) bool {
	_, ok := s.match(d)
	return ok
}

// match returns the directive key covering the diagnostic, preferring the
// same-line directive over the line-above one.
func (s allowSet) match(d Diagnostic) (allowKey, bool) {
	if key := (allowKey{d.Pos.Filename, d.Pos.Line, d.Rule}); s[key] {
		return key, true
	}
	if key := (allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Rule}); s[key] {
		return key, true
	}
	return allowKey{}, false
}

const allowPrefix = "//goclint:allow"

// collectAllows parses every //goclint:allow directive in the package.
func collectAllows(pkg *Package) allowSet {
	allows := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, rule := range rules {
					allows[allowKey{pos.Filename, pos.Line, rule}] = true
				}
			}
		}
	}
	return allows
}

// parseAllowDirective parses one comment as an allow directive, returning the
// named rules. The grammar is
//
//	//goclint:allow rule[,rule...] [-- rationale]
//
// following Go's directive convention: no space after //, everything past an
// optional " -- " is free-form rationale.
func parseAllowDirective(text string) ([]string, bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, false
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //goclint:allowance
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		rest = rest[:i]
	}
	var rules []string
	for _, r := range strings.Split(rest, ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

// forEachFunc walks every function or method body in the package, handing the
// enclosing declaration node and its body to fn. Function literals are walked
// as part of the enclosing declaration's body, not reported separately.
func forEachFunc(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
