package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"gameofcoins/internal/analysis"
	"gameofcoins/internal/analysis/analysistest"
)

// The golden suites: each exercises positive findings (the `// want` lines),
// negative space (idiomatic code that must stay silent), and
// //goclint:allow suppression in one package under testdata/src.

func TestNodetermGolden(t *testing.T) {
	analysistest.Run(t, "nodeterm", analysis.Nodeterm)
}

func TestMaporderGolden(t *testing.T) {
	analysistest.Run(t, "maporder", analysis.Maporder)
}

func TestRngforkGolden(t *testing.T) {
	analysistest.Run(t, "rngfork", analysis.Rngfork)
}

func TestErrdropGolden(t *testing.T) {
	analysistest.Run(t, "errdrop", analysis.Errdrop)
}

func TestLockguardGolden(t *testing.T) {
	analysistest.Run(t, "lockguard", analysis.Lockguard)
}

func TestBlockinglockGolden(t *testing.T) {
	analysistest.Run(t, "blockinglock", analysis.Blockinglock)
}

func TestLockorderGolden(t *testing.T) {
	analysistest.Run(t, "lockorder", analysis.Lockorder)
}

func TestCtxleakGolden(t *testing.T) {
	analysistest.Run(t, "ctxleak", analysis.Ctxleak)
}

// TestAppliesTo pins the package scoping: the determinism rules bind the
// result-producing packages and stay out of the serving/scheduling layers
// (whose wall-clock use is legitimate), while errdrop does the reverse.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		path     string
		want     bool
	}{
		{analysis.Nodeterm, "gameofcoins/internal/core", true},
		{analysis.Nodeterm, "gameofcoins/internal/engine", true},
		{analysis.Nodeterm, "gameofcoins/internal/equilibria", true},
		{analysis.Nodeterm, "gameofcoins/internal/server", false},
		{analysis.Nodeterm, "gameofcoins/internal/dist", false},
		{analysis.Nodeterm, "gameofcoins/internal/schedbench", false},
		{analysis.Rngfork, "gameofcoins/internal/replay", true},
		{analysis.Rngfork, "gameofcoins/internal/server", false},
		{analysis.Errdrop, "gameofcoins/internal/server", true},
		{analysis.Errdrop, "gameofcoins/internal/store", true},
		{analysis.Errdrop, "gameofcoins/internal/core", false},
		{analysis.Lockguard, "gameofcoins/internal/server", true},
		{analysis.Lockguard, "gameofcoins/internal/engine", true},
		{analysis.Lockguard, "gameofcoins/internal/traffic", true},
		{analysis.Lockguard, "gameofcoins/internal/core", false},
		{analysis.Blockinglock, "gameofcoins/internal/store", true},
		{analysis.Blockinglock, "gameofcoins/internal/dist", true},
		{analysis.Blockinglock, "gameofcoins/internal/equilibria", false},
		{analysis.Lockorder, "gameofcoins/internal/engine", true},
		{analysis.Lockorder, "gameofcoins/internal/rng", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if analysis.Maporder.AppliesTo != nil {
		t.Error("maporder is a universal rule; AppliesTo should be nil")
	}
}

// TestUnusedAllows pins the stale-directive report: a //goclint:allow that
// suppresses a live finding is used; one whose hazard was fixed underneath
// it — or that names a rule that does not exist — surfaces from
// LintWithUnused so `goclint -unused-allows` can warn about it.
func TestUnusedAllows(t *testing.T) {
	src := filepath.Join("testdata", "src", "unusedallow")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join(src, "a.go"), nil,
		parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.CheckFiles(src, "unusedallow", fset, []*ast.File{f})
	if err != nil {
		t.Fatal(err)
	}
	errdrop := *analysis.Errdrop
	errdrop.AppliesTo = nil
	diags, unused, err := analysis.LintWithUnused(
		[]*analysis.Package{pkg}, []*analysis.Analyzer{&errdrop})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding should have been suppressed: %s", d)
	}
	if len(unused) != 2 {
		t.Fatalf("got %d unused allows, want 2: %v", len(unused), unused)
	}
	// Sorted by position: clean's stale errdrop first, then ghost's typo.
	if unused[0].Rule != "errdrop" || unused[1].Rule != "nosuchrule" {
		t.Errorf("unused rules = [%s, %s], want [errdrop, nosuchrule]",
			unused[0].Rule, unused[1].Rule)
	}
	for _, u := range unused {
		if !strings.Contains(u.String(), "unused //goclint:allow") {
			t.Errorf("unused allow renders as %q; want the directive named", u)
		}
	}
}

// TestSelfClean gates the suite on its own codebase: goclint must pass over
// the full module, so `go test ./...` fails the moment a determinism
// violation lands anywhere — the same check scripts/lint.sh runs in CI, held
// here too so the gate survives even where only the test step runs.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost most of the module", len(pkgs))
	}
	diags, err := analysis.Lint(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("goclint finding: %s", d)
	}
}
