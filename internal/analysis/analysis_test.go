package analysis_test

import (
	"testing"

	"gameofcoins/internal/analysis"
	"gameofcoins/internal/analysis/analysistest"
)

// The four golden suites: each exercises positive findings (the `// want`
// lines), negative space (idiomatic code that must stay silent), and
// //goclint:allow suppression in one package under testdata/src.

func TestNodetermGolden(t *testing.T) {
	analysistest.Run(t, "nodeterm", analysis.Nodeterm)
}

func TestMaporderGolden(t *testing.T) {
	analysistest.Run(t, "maporder", analysis.Maporder)
}

func TestRngforkGolden(t *testing.T) {
	analysistest.Run(t, "rngfork", analysis.Rngfork)
}

func TestErrdropGolden(t *testing.T) {
	analysistest.Run(t, "errdrop", analysis.Errdrop)
}

// TestAppliesTo pins the package scoping: the determinism rules bind the
// result-producing packages and stay out of the serving/scheduling layers
// (whose wall-clock use is legitimate), while errdrop does the reverse.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		analyzer *analysis.Analyzer
		path     string
		want     bool
	}{
		{analysis.Nodeterm, "gameofcoins/internal/core", true},
		{analysis.Nodeterm, "gameofcoins/internal/engine", true},
		{analysis.Nodeterm, "gameofcoins/internal/equilibria", true},
		{analysis.Nodeterm, "gameofcoins/internal/server", false},
		{analysis.Nodeterm, "gameofcoins/internal/dist", false},
		{analysis.Nodeterm, "gameofcoins/internal/schedbench", false},
		{analysis.Rngfork, "gameofcoins/internal/replay", true},
		{analysis.Rngfork, "gameofcoins/internal/server", false},
		{analysis.Errdrop, "gameofcoins/internal/server", true},
		{analysis.Errdrop, "gameofcoins/internal/store", true},
		{analysis.Errdrop, "gameofcoins/internal/core", false},
	}
	for _, c := range cases {
		if got := c.analyzer.AppliesTo(c.path); got != c.want {
			t.Errorf("%s.AppliesTo(%q) = %v, want %v", c.analyzer.Name, c.path, got, c.want)
		}
	}
	if analysis.Maporder.AppliesTo != nil {
		t.Error("maporder is a universal rule; AppliesTo should be nil")
	}
}

// TestSelfClean gates the suite on its own codebase: goclint must pass over
// the full module, so `go test ./...` fails the moment a determinism
// violation lands anywhere — the same check scripts/lint.sh runs in CI, held
// here too so the gate survives even where only the test step runs.
func TestSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, err := analysis.LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; loader lost most of the module", len(pkgs))
	}
	diags, err := analysis.Lint(pkgs, analysis.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("goclint finding: %s", d)
	}
}
