// Package analysistest runs a goclint analyzer over a golden testdata
// package and checks its findings against `// want` annotations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library alone.
//
// A golden package lives in testdata/src/<name>/ and is ordinary Go source
// (it may import the stdlib and this module's packages). Lines expected to
// produce a finding carry a trailing comment:
//
//	r := rng.New(7) // want `constructs a fresh root generator`
//
// The backquoted string is a regexp matched against the diagnostic message.
// Every want must be matched by a finding on its line, every finding must be
// covered by a want, and findings suppressed by //goclint:allow directives
// must not surface at all — so each golden suite exercises positive,
// negative, and suppressed cases in one package.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"gameofcoins/internal/analysis"
)

// wantRe extracts the expectation from a `// want ...` comment. Both
// backquoted and double-quoted patterns are accepted.
var wantRe = regexp.MustCompile("//\\s*want\\s+(`([^`]*)`|\"([^\"]*)\")")

// Run loads testdata/src/<dir> (relative to the calling test's directory),
// type-checks it against the real module, runs the analyzer with its package
// filter disabled (golden packages have synthetic import paths; the filter
// has its own unit tests), applies //goclint:allow suppression, and diffs
// the findings against the `// want` annotations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	src := filepath.Join("testdata", "src", dir)
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatalf("read golden package: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var paths []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(src, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		paths = append(paths, path)
	}
	if len(files) == 0 {
		t.Fatalf("golden package %s has no Go files", src)
	}
	pkg, err := analysis.CheckFiles(src, dir, fset, files)
	if err != nil {
		t.Fatalf("type-check golden package %s: %v", dir, err)
	}
	unfiltered := *a
	unfiltered.AppliesTo = nil
	diags, err := analysis.Lint([]*analysis.Package{pkg}, []*analysis.Analyzer{&unfiltered})
	if err != nil {
		t.Fatal(err)
	}
	checkDiags(t, diags, collectWants(t, paths))
}

// want is one expectation: a file/line plus the message pattern.
type want struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, paths []string) []*want {
	t.Helper()
	var wants []*want
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pat := m[2]
			if pat == "" {
				pat = m[3]
			}
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
			}
			wants = append(wants, &want{file: path, line: i + 1, pattern: re})
		}
	}
	return wants
}

func checkDiags(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		covered := false
		for _, w := range wants {
			if w.matched || !sameFile(w.file, d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if !w.pattern.MatchString(d.Message) {
				t.Errorf("%s: message does not match want pattern %q", d, w.pattern)
			}
			w.matched = true
			covered = true
			break
		}
		if !covered {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// sameFile compares paths loosely: the parser records the relative testdata
// path it was handed, but absolute paths are tolerated too.
func sameFile(wantPath, gotPath string) bool {
	return wantPath == gotPath ||
		(filepath.Base(wantPath) == filepath.Base(gotPath) &&
			strings.HasSuffix(filepath.Dir(gotPath), filepath.Dir(wantPath)))
}
