package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Blockinglock flags operations that can block indefinitely while a
// sync.Mutex/RWMutex is held: a channel send or receive outside a select
// with a default case, a select without a default, ranging over a channel,
// `net`/`net/http` calls, store.Store method calls, time.Sleep, and zero-arg
// Wait() methods (WaitGroup, Cond, exec.Cmd). Any of these inside a critical
// section stalls every other goroutine contending for the mutex — the exact
// hazard the server's single-writer persist queue exists to avoid (store ops
// are enqueued under s.mu but the I/O runs outside it). This analyzer makes
// that design rule checkable.
//
// The model is linear within a function body: Lock adds, Unlock removes, a
// deferred Unlock holds to the end. Closures are scanned with an empty held
// set (they may run on another goroutine).
var Blockinglock = &Analyzer{
	Name:      "blockinglock",
	Doc:       "flag blocking operations (channel ops, net/http, store I/O, Sleep, Wait) while a mutex is held",
	AppliesTo: func(path string) bool { return concurrencyPackages[path] },
	Run:       runBlockinglock,
}

func runBlockinglock(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		// Comm clauses are judged at the select level: a select with a
		// default never blocks (its comms are exempt); one without is
		// reported once as a whole, not per clause. Collected up front so
		// the held-scan can skip comm statements positionally.
		exemptComms := map[ast.Stmt]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectStmt); ok {
				for _, clause := range sel.Body.List {
					if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
						exemptComms[cc.Comm] = true
					}
				}
			}
			return true
		})

		reported := map[token.Pos]bool{}
		heldScan(info, decl.Body, func(n ast.Node, held []heldMutex) {
			if len(held) == 0 {
				return
			}
			h := sortedHeld(held)[0]
			report := func(pos token.Pos, what string) {
				if reported[pos] {
					return
				}
				reported[pos] = true
				pass.Reportf(pos, "%s while %s is held (acquired at %s); move it outside the critical section or //goclint:allow blockinglock with a rationale",
					what, h.key, pass.Pkg.Fset.Position(h.pos))
			}
			switch node := n.(type) {
			case *ast.SendStmt:
				if !exemptComms[ast.Stmt(node)] {
					report(node.Arrow, "channel send")
				}
			case *ast.UnaryExpr:
				if node.Op == token.ARROW && !receiveInComm(node, exemptComms) {
					report(node.OpPos, "channel receive")
				}
			case *ast.SelectStmt:
				if !selectHasDefault(node) {
					report(node.Select, "select without a default case")
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(node.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						report(node.For, "range over a channel")
					}
				}
			case *ast.CallExpr:
				if what, blocking := blockingCall(info, node, pass.Pkg.Path); blocking {
					report(node.Pos(), what)
				}
			}
		})
	})
	return nil
}

// receiveInComm reports whether the receive expression is a select comm
// (`case v := <-ch:` or `case <-ch:`) — judged at the select level, not
// individually. The comm statement wraps the receive in an AssignStmt or
// ExprStmt; match by position containment.
func receiveInComm(recv *ast.UnaryExpr, comms map[ast.Stmt]bool) bool {
	for comm := range comms {
		if within(recv.Pos(), comm) {
			return true
		}
	}
	return false
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// blockingNetFuncs are the package-level net / net/http functions that do
// network I/O (constructors and pure helpers like http.NewRequest or
// net.JoinHostPort are not blocking points).
var blockingNetFuncs = map[string]bool{
	"net.Dial": true, "net.DialTimeout": true, "net.Listen": true, "net.ListenPacket": true,
	"net.LookupHost": true, "net.LookupAddr": true, "net.LookupIP": true,
	"net/http.Get": true, "net/http.Post": true, "net/http.PostForm": true, "net/http.Head": true,
	"net/http.ListenAndServe": true, "net/http.ListenAndServeTLS": true,
	"net/http.Serve": true, "net/http.ServeTLS": true,
}

// blockingNetMethods are methods on net / net/http types that block on the
// wire: conn reads/writes, accepts, request round-trips, server loops.
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "Do": true, "Get": true, "Post": true,
	"PostForm": true, "Head": true, "RoundTrip": true, "Serve": true,
	"ListenAndServe": true, "ListenAndServeTLS": true, "Shutdown": true,
}

// blockingCall classifies a call as a known indefinitely-blocking operation.
// callerPath scopes the store.Store rule: the store package's own helpers
// run under its single-writer mutex by design and are exempt — the rule is
// for store *clients* (server, engine) doing durable I/O inside their own
// critical sections.
func blockingCall(info *types.Info, call *ast.CallExpr, callerPath string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	if name := pkgFuncName(f); name != "" {
		if name == "time.Sleep" {
			return "time.Sleep", true
		}
		return "call of " + name, blockingNetFuncs[name]
	}
	// Methods.
	if f.Pkg() != nil {
		pkg := f.Pkg().Path()
		if (pkg == "net" || pkg == "net/http") && blockingNetMethods[f.Name()] {
			return "call of " + pkg + " method " + f.Name(), true
		}
		if strings.HasSuffix(pkg, "/internal/store") && !strings.HasSuffix(callerPath, "/internal/store") {
			return "store I/O call store." + f.Name(), true
		}
	}
	if f.Name() == "Wait" && len(call.Args) == 0 {
		return "call of Wait", true
	}
	return "", false
}
