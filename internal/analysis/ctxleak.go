package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxleak flags context.WithCancel/WithTimeout/WithDeadline (and their
// *Cause variants) whose cancel function goes nowhere: assigned to the blank
// identifier, or bound to a variable that is never used again. A dropped
// cancel pins the derived context's goroutine and timer for the parent's
// lifetime — in a long-lived server that is a slow leak, not a crash.
//
// Any further use of the cancel variable counts as handling: a defer, a
// direct call, passing it to a function, storing it in a field or map, or
// returning it all transfer responsibility visibly. The rule is deliberately
// shallow — it catches the drop-on-the-floor shape, not every missed return
// path — so it can stay zero-false-positive on idiomatic code.
var Ctxleak = &Analyzer{
	Name: "ctxleak",
	Doc:  "flag context cancel functions that are discarded or never used",
	Run:  runCtxleak,
}

// cancelSources are the context constructors whose second result must not be
// dropped.
var cancelSources = map[string]bool{
	"context.WithCancel":        true,
	"context.WithTimeout":       true,
	"context.WithDeadline":      true,
	"context.WithCancelCause":   true,
	"context.WithTimeoutCause":  true,
	"context.WithDeadlineCause": true,
}

func runCtxleak(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
				return true
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			name := pkgFuncName(calleeFunc(info, call))
			if !cancelSources[name] {
				return true
			}
			cancelExpr := assign.Lhs[1]
			id, ok := cancelExpr.(*ast.Ident)
			if !ok {
				return true // stored straight into a field/index: handled
			}
			if id.Name == "_" {
				pass.Reportf(id.Pos(), "cancel func from %s discarded; the derived context leaks until its parent ends — defer it, call it on every return path, or store it", name)
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id] // plain `=` rebind of an existing variable
			}
			if obj == nil {
				return true
			}
			if !usedAfter(info, decl, obj, id) {
				pass.Reportf(id.Pos(), "cancel func from %s assigned to %s but never used; defer it, call it on every return path, or store it", name, id.Name)
			}
			return true
		})
	})
	return nil
}

// usedAfter reports whether obj has any meaningful use in the function other
// than the binding identifier itself. `_ = cancel` is not meaningful — it
// launders the unused-variable error without transferring responsibility —
// so it is collected first and excluded.
func usedAfter(info *types.Info, decl *ast.FuncDecl, obj types.Object, binding *ast.Ident) bool {
	laundered := map[*ast.Ident]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		if !isBlank(assign.Lhs[0]) {
			return true
		}
		if id, ok := assign.Rhs[0].(*ast.Ident); ok {
			laundered[id] = true
		}
		return true
	})
	used := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id == binding || laundered[id] {
			return true
		}
		if info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
