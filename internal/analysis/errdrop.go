package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// watchedPkgFuncs are package-level functions whose error result, when
// dropped on the persistence/serving path, loses durable state or serves a
// silently-wrong document. PR 3's bugfix history is exactly this class.
var watchedPkgFuncs = map[string]bool{
	"encoding/json.Marshal":       true,
	"encoding/json.MarshalIndent": true,
	"encoding/json.Unmarshal":     true,
	"os.WriteFile":                true,
	"os.Rename":                   true,
	"os.Remove":                   true,
	"os.RemoveAll":                true,
	"os.MkdirAll":                 true,
}

// watchedMethods are method names whose dropped errors hide I/O failures —
// writers, encoders, and flush/sync on any receiver.
var watchedMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"Flush":       true,
	"Sync":        true,
	"Encode":      true,
}

// Errdrop flags discarded errors from marshaling, writes, and store
// operations in the persistence and serving packages: a bare call statement
// that drops an error result, or a `_` in the error position of an
// assignment. Both forms hide disk-full, short-write, and encode failures —
// the store then diverges from memory and the next restart rehydrates the
// wrong world. Deliberate drops (response writes after headers are sent)
// carry //goclint:allow errdrop with the rationale inline.
var Errdrop = &Analyzer{
	Name:      "errdrop",
	Doc:       "flag discarded errors from marshal/write/store calls on the persistence path",
	AppliesTo: func(path string) bool { return errdropPackages[path] },
	Run:       runErrdrop,
}

func runErrdrop(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, watched := watchedErrCall(info, call); watched {
					pass.Reportf(call.Pos(), "error from %s discarded by bare call; handle it or //goclint:allow errdrop with a rationale", name)
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, watched := watchedErrCall(info, call)
				if !watched {
					return true
				}
				// The error is the last result; flag a blank in that slot.
				if last := stmt.Lhs[len(stmt.Lhs)-1]; isBlank(last) {
					pass.Reportf(last.Pos(), "error from %s assigned to _; handle it or //goclint:allow errdrop with a rationale", name)
				}
			}
			return true
		})
	})
	return nil
}

func isBlank(expr ast.Expr) bool {
	id, ok := expr.(*ast.Ident)
	return ok && id.Name == "_"
}

// watchedErrCall reports whether call is a watched function or method whose
// last result is an error, returning a printable name.
func watchedErrCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return "", false
	}
	if name := pkgFuncName(f); name != "" {
		return name, watchedPkgFuncs[name]
	}
	// Methods: watched by name anywhere, and every error-returning method of
	// the store package itself (PutJob, Append, Compact, …) — those are the
	// durability writes.
	if watchedMethods[f.Name()] {
		return "(method) " + f.Name(), true
	}
	if f.Pkg() != nil && strings.HasSuffix(f.Pkg().Path(), "/internal/store") {
		return "store." + f.Name(), true
	}
	return "", false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
