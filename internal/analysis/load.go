package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one fully loaded, type-checked package under analysis.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
}

// LoadPackages loads and type-checks the packages matching the given go-list
// patterns (plus their full dependency graph) and returns the matched
// packages ready for analysis, sorted by import path.
//
// The loader is built on `go list -deps -json` + go/types instead of
// golang.org/x/tools/go/packages because this repo builds offline with no
// third-party modules. go list is invoked with CGO_ENABLED=0 so the reported
// file sets form a self-consistent pure-Go build (the module itself is pure
// Go; only stdlib deps like net have cgo variants). Only non-test files are
// loaded: the determinism contract binds production code, and tests routinely
// poll wall-clock deadlines on purpose.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	targets, err := goList(dir, nil, patterns...)
	if err != nil {
		return nil, err
	}
	graph, err := goList(dir, []string{"-deps"}, patterns...)
	if err != nil {
		return nil, err
	}
	targetSet := make(map[string]bool, len(targets))
	for _, t := range targets {
		targetSet[t.ImportPath] = true
	}
	return typeCheck(graph, targetSet)
}

// goList runs `go list -json` and decodes the package stream.
func goList(dir string, extraFlags []string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-json=ImportPath,Name,Dir,Standard,GoFiles,Imports,ImportMap"}, extraFlags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// graphImporter resolves imports against the already-type-checked graph,
// honoring the importing package's vendor/ImportMap view.
type graphImporter struct {
	checked   map[string]*types.Package
	importMap map[string]string
}

func (g graphImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := g.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg := g.checked[path]; pkg != nil {
		return pkg, nil
	}
	return nil, fmt.Errorf("package %q not in load graph", path)
}

// typeCheck type-checks the dependency-ordered graph (go list -deps emits
// dependencies before dependents) and returns the target packages with full
// syntax and type info. Dependencies are checked with IgnoreFuncBodies —
// analyzers only need their exported API — and their type errors are
// tolerated; a target package failing to type-check is a hard error, because
// analyzers would silently miss findings on incomplete type info.
func typeCheck(graph []*listedPackage, targetSet map[string]bool) ([]*Package, error) {
	fset := token.NewFileSet()
	checked := make(map[string]*types.Package, len(graph))
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var out []*Package
	for _, lp := range graph {
		if lp.ImportPath == "unsafe" {
			checked["unsafe"] = types.Unsafe
			continue
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		target := targetSet[lp.ImportPath]
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				if target {
					return nil, fmt.Errorf("parse %s: %w", lp.ImportPath, err)
				}
				continue
			}
			files = append(files, f)
		}
		var firstErr error
		cfg := types.Config{
			Importer:         graphImporter{checked: checked, importMap: lp.ImportMap},
			Sizes:            sizes,
			IgnoreFuncBodies: !target,
			FakeImportC:      true,
			Error: func(err error) {
				if firstErr == nil {
					firstErr = err
				}
			},
		}
		var info *types.Info
		if target {
			info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Uses:       map[*ast.Ident]types.Object{},
				Defs:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Scopes:     map[ast.Node]*types.Scope{},
			}
		}
		pkg, _ := cfg.Check(lp.ImportPath, fset, files, info)
		if target && firstErr != nil {
			return nil, fmt.Errorf("type-check %s: %v", lp.ImportPath, firstErr)
		}
		if pkg != nil {
			checked[lp.ImportPath] = pkg
		}
		if target {
			out = append(out, &Package{
				Path:  lp.ImportPath,
				Name:  lp.Name,
				Dir:   lp.Dir,
				Fset:  fset,
				Files: files,
				Types: pkg,
				Info:  info,
			})
		}
	}
	return out, nil
}

// CheckFiles type-checks a single already-parsed package (the analysistest
// path: testdata sources that go list cannot enumerate) against the stdlib
// and any module-internal imports it names. fset must be the FileSet the
// files were parsed with; path names the synthetic package.
func CheckFiles(dir, path string, fset *token.FileSet, files []*ast.File) (*Package, error) {
	// Resolve the testdata package's imports through the same go-list loader,
	// so `gameofcoins/internal/rng` and stdlib imports land in one graph.
	var imports []string
	seen := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p != "" && p != "unsafe" && !seen[p] {
				seen[p] = true
				imports = append(imports, p)
			}
		}
	}
	checked := map[string]*types.Package{}
	if len(imports) > 0 {
		graph, err := goList(dir, []string{"-deps"}, imports...)
		if err != nil {
			return nil, err
		}
		// The graph importer needs packages in the shared FileSet for
		// positions to stay coherent; re-check deps into fset.
		deps, err := checkDeps(graph, fset)
		if err != nil {
			return nil, err
		}
		checked = deps
	}
	var firstErr error
	cfg := types.Config{
		Importer: graphImporter{checked: checked},
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	pkg, _ := cfg.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("type-check %s: %v", path, firstErr)
	}
	return &Package{Path: path, Name: pkg.Name(), Dir: dir, Fset: fset, Files: files, Types: pkg, Info: info}, nil
}

// checkDeps type-checks a dependency graph API-only (IgnoreFuncBodies) into
// the given FileSet and returns the package map.
func checkDeps(graph []*listedPackage, fset *token.FileSet) (map[string]*types.Package, error) {
	checked := map[string]*types.Package{}
	for _, lp := range graph {
		if lp.ImportPath == "unsafe" {
			checked["unsafe"] = types.Unsafe
			continue
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.SkipObjectResolution)
			if err != nil {
				continue
			}
			files = append(files, f)
		}
		cfg := types.Config{
			Importer:         graphImporter{checked: checked, importMap: lp.ImportMap},
			Sizes:            types.SizesFor("gc", runtime.GOARCH),
			IgnoreFuncBodies: true,
			FakeImportC:      true,
			Error:            func(error) {},
		}
		if pkg, _ := cfg.Check(lp.ImportPath, fset, files, nil); pkg != nil {
			checked[lp.ImportPath] = pkg
		}
	}
	return checked, nil
}
