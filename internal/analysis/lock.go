package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// concurrencyPackages are the packages with real shared-mutable-state
// concurrency: the serving stack's mutex-guarded sections. The lock rules
// (lockguard, blockinglock, lockorder) run here; the compute packages are
// single-goroutine per task by construction and stay out of scope.
var concurrencyPackages = map[string]bool{
	ModulePath + "/internal/server":  true,
	ModulePath + "/internal/engine":  true,
	ModulePath + "/internal/dist":    true,
	ModulePath + "/internal/store":   true,
	ModulePath + "/internal/traffic": true,
}

// IsConcurrencyPackage reports whether the import path is bound by the lock
// rules (see concurrencyPackages).
func IsConcurrencyPackage(path string) bool { return concurrencyPackages[path] }

// isSyncMutex reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// lockOp classifies one sync.(RW)Mutex method call.
type lockOp int

const (
	opNone   lockOp = iota
	opLock          // Lock, RLock — blocking acquisition
	opUnlock        // Unlock, RUnlock — release
)

// mutexCall resolves call as a method call on a sync.Mutex/RWMutex value,
// returning the operation and the mutex expression (the method's receiver,
// e.g. the `s.mu` in `s.mu.Lock()`). TryLock/TryRLock are neither acquisition
// edges nor releases for the lock rules (they cannot block, and their success
// is conditional), so they classify as opNone.
func mutexCall(info *types.Info, call *ast.CallExpr) (lockOp, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, nil
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return opNone, nil
	}
	switch f.Name() {
	case "Lock", "RLock":
		return opLock, sel.X
	case "Unlock", "RUnlock":
		return opUnlock, sel.X
	}
	return opNone, nil
}

// mutexNode names a mutex for the intra-package lock graph: a struct field
// mutex is identified by its owning type ("Server.mu" — every instance shares
// the one ordering discipline), anything else by its printed expression.
func mutexNode(info *types.Info, expr ast.Expr) string {
	if sel, ok := ast.Unparen(expr).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if owner := namedRecv(s.Recv()); owner != "" {
				return owner + "." + s.Obj().Name()
			}
		}
	}
	return types.ExprString(expr)
}

// mutexKey identifies a held mutex within one function body: the printed
// expression ("s.mu", "j.pmu") so distinct receivers stay distinct locally.
func mutexKey(expr ast.Expr) string { return types.ExprString(expr) }

// namedRecv unwraps a selection receiver type to its named-type name.
func namedRecv(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// heldMutex is one acquisition in flight during a heldScan.
type heldMutex struct {
	key  string    // printed mutex expression, e.g. "s.mu"
	node string    // graph node, e.g. "Server.mu"
	pos  token.Pos // acquisition site
}

// heldScan walks one function body in source order, tracking the set of
// mutexes held at each point, and invokes visit on every node with the
// current held set. The model is deliberately linear: Lock adds, Unlock
// removes, a deferred Unlock keeps the mutex held to the end of the body
// (the dominant lock-then-defer idiom). Function literals are scanned
// separately with an empty held set — a closure may run on another goroutine
// (go/defer), where the enclosing lock is not held.
func heldScan(info *types.Info, body *ast.BlockStmt, visit func(n ast.Node, held []heldMutex)) {
	var held []heldMutex
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			heldScan(info, node.Body, visit)
			return false
		case *ast.DeferStmt:
			// A deferred Unlock releases at return: for the linear model the
			// mutex stays held for the rest of the body. A deferred call of
			// anything else is not a blocking point now.
			return false
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				switch op, mx := mutexCall(info, call); op {
				case opLock:
					visit(n, held)
					held = append(held, heldMutex{key: mutexKey(mx), node: mutexNode(info, mx), pos: call.Pos()})
					return false
				case opUnlock:
					key := mutexKey(mx)
					for i := len(held) - 1; i >= 0; i-- {
						if held[i].key == key {
							held = append(held[:i:i], held[i+1:]...)
							break
						}
					}
					return false
				}
			}
		}
		visit(n, held)
		return true
	}
	ast.Inspect(body, walk)
}

// sortedHeld returns the held set ordered by key for deterministic messages.
func sortedHeld(held []heldMutex) []heldMutex {
	out := append([]heldMutex(nil), held...)
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// lockedSuffix reports whether the function name follows the
// caller-holds-the-lock naming convention (pruneHandlesLocked, evictLocked).
func lockedSuffix(name string) bool {
	return strings.HasSuffix(name, "Locked") || strings.HasSuffix(name, "locked")
}

// recvIdent returns the declared receiver identifier of a method ("" for
// functions and anonymous receivers).
func recvIdent(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return ""
	}
	return decl.Recv.List[0].Names[0].Name
}
