package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Lockguard enforces annotation-driven guarded-field discipline. A struct
// field whose declaration carries a `// guarded by mu` comment (doc or
// trailing line comment; `mu` must name a sync.Mutex/RWMutex field of the
// same struct) may only be read or written by functions that acquire that
// mutex on the same base expression — `s.mu.Lock()` covers `s.games`,
// `j.mu.Lock()` covers `j.state` — or that follow the caller-holds-the-lock
// convention (a `...Locked`-suffixed method accessing through its receiver).
// Values constructed in the same function (`j := &Job{...}`) are exempt:
// before publication no other goroutine can see them, which is exactly the
// rehydrate/prefill initialization pattern.
//
// One diagnostic is reported per (function, mutex) pair at the first
// offending access, listing every guarded field the function touches — so an
// intentional lock-free function needs one //goclint:allow lockguard line,
// not one per field read.
var Lockguard = &Analyzer{
	Name:      "lockguard",
	Doc:       "check `// guarded by mu` annotated struct fields are only accessed under their mutex",
	AppliesTo: func(path string) bool { return concurrencyPackages[path] },
	Run:       runLockguard,
}

// guardedByRe extracts the mutex field name from an annotation comment. The
// grammar rides inside ordinary prose ("Lifetime counters, guarded by mu."),
// mirroring how the codebase already documents its invariants.
var guardedByRe = regexp.MustCompile(`(?i)\bguarded by ([A-Za-z_][A-Za-z0-9_]*)`)

// fieldGuard records that one struct field is protected by a sibling mutex.
type fieldGuard struct {
	structName string
	mutex      string // sibling field name of type sync.Mutex/RWMutex
}

// collectGuards parses every struct declaration's field annotations into a
// map from the field's types.Var. An annotation naming something that is not
// a mutex field of the same struct is ignored — free-form prose like
// "guarded by the engine mutex" stays prose.
func collectGuards(pkg *Package) map[*types.Var]fieldGuard {
	guards := map[*types.Var]fieldGuard{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			// First pass: the struct's mutex fields by name.
			mutexes := map[string]bool{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok && isSyncMutex(obj.Type()) {
						mutexes[name.Name] = true
					}
				}
			}
			if len(mutexes) == 0 {
				return true
			}
			for _, field := range st.Fields.List {
				mu := annotatedMutex(field)
				if mu == "" || !mutexes[mu] {
					continue
				}
				for _, name := range field.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[obj] = fieldGuard{structName: ts.Name.Name, mutex: mu}
					}
				}
			}
			return true
		})
	}
	return guards
}

// annotatedMutex returns the mutex name from a field's doc or line comment.
func annotatedMutex(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

func runLockguard(pass *Pass) error {
	guards := collectGuards(pass.Pkg)
	if len(guards) == 0 {
		return nil
	}
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		checkGuardedAccess(pass, guards, decl)
	})
	return nil
}

// violation accumulates one function's unguarded accesses to fields behind
// one mutex expression.
type violation struct {
	pos    token.Pos
	fields map[string]bool
}

func checkGuardedAccess(pass *Pass, guards map[*types.Var]fieldGuard, decl *ast.FuncDecl) {
	info := pass.Pkg.Info

	// Mutexes this function acquires, keyed by printed expression ("s.mu").
	// Position inside the body is irrelevant for lockguard: acquiring the
	// right lock anywhere makes the function a lock-holding context.
	locked := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if op, mx := mutexCall(info, call); op != opNone {
				locked[mutexKey(mx)] = true
			}
		}
		return true
	})

	recv := recvIdent(decl)
	callerHolds := lockedSuffix(decl.Name.Name)

	// Objects constructed in this function body: pre-publication, exempt.
	constructed := constructedLocals(info, decl.Body)

	// One violation per mutex expression, first access wins the position.
	viols := map[string]*violation{} // "Server.mu via s.mu" message key → fields
	order := []string{}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		fv, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		guard, guarded := guards[fv]
		if !guarded {
			return true
		}
		base := types.ExprString(sel.X)
		if locked[base+"."+guard.mutex] {
			return true
		}
		if callerHolds && recv != "" && base == recv {
			return true
		}
		if root := rootObject(info, sel.X); root != nil && constructed[root] {
			return true
		}
		key := guard.structName + "." + guard.mutex + "|" + base
		v := viols[key]
		if v == nil {
			v = &violation{pos: sel.Pos(), fields: map[string]bool{}}
			viols[key] = v
			order = append(order, key)
		}
		v.fields[fv.Name()] = true
		return true
	})

	for _, key := range order {
		v := viols[key]
		i := strings.IndexByte(key, '|')
		node, base := key[:i], key[i+1:]
		mu := node[strings.IndexByte(node, '.')+1:]
		fields := make([]string, 0, len(v.fields))
		for f := range v.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		pass.Reportf(v.pos,
			"%s accesses %s (guarded by %s) without acquiring %s.%s; lock it, rename the helper with a Locked suffix, or //goclint:allow lockguard with a rationale",
			decl.Name.Name, strings.Join(fields, ", "), node, base, mu)
	}
}

// constructedLocals returns the set of local objects assigned from a
// composite literal (`x := T{...}`, `x := &T{...}`) or new() in this body —
// values that cannot yet be shared with another goroutine.
func constructedLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != len(assign.Rhs) {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil || !isConstruction(info, assign.Rhs[i]) {
				continue
			}
			out[obj] = true
		}
		return true
	})
	return out
}

// isConstruction reports whether expr builds a fresh value: a composite
// literal, &composite, or new(T).
func isConstruction(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
			b, ok := info.Uses[id].(*types.Builtin)
			return ok && b.Name() == "new"
		}
	}
	return false
}
