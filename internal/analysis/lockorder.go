package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Lockorder builds an intra-package lock-acquisition graph — an edge A→B
// means mutex B was acquired somewhere while A was held, either directly in
// one function body or through one level of same-package calls (holding A
// and calling a method that acquires B) — and reports every cycle as a
// potential deadlock, with both acquisition sites in the diagnostic. Mutex
// identity is (struct type, field): every instance of Server.mu shares one
// position in the ordering discipline, which is how the codebase documents
// its lock hierarchy ("lock order is server.mu → manager/job mutexes").
//
// Deliberate same-type edges (locking two instances of one struct) trip the
// self-edge check; if a canonical instance order makes that safe, carry a
// //goclint:allow lockorder with the rationale.
var Lockorder = &Analyzer{
	Name:      "lockorder",
	Doc:       "detect lock-acquisition-order cycles (potential deadlocks) within a package",
	AppliesTo: func(path string) bool { return concurrencyPackages[path] },
	Run:       runLockorder,
}

// lockEdge is one observed A-held-while-B-acquired pair, with the two
// acquisition sites: where A was locked and where B was locked under it.
type lockEdge struct {
	from, to       string
	fromPos, toPos token.Pos
	throughCall    string // callee name when resolved through a call, "" when direct
}

func runLockorder(pass *Pass) error {
	info := pass.Pkg.Info

	// Pass 1: per function, the mutexes it acquires directly (node, site).
	type acquisition struct {
		node string
		pos  token.Pos
	}
	directLocks := map[*types.Func][]acquisition{}
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		fn, _ := info.Defs[decl.Name].(*types.Func)
		if fn == nil {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // closures may run elsewhere; not this function's locks
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if op, mx := mutexCall(info, call); op == opLock {
				directLocks[fn] = append(directLocks[fn], acquisition{node: mutexNode(info, mx), pos: call.Pos()})
				return false
			}
			return true
		})
	})

	// Pass 2: edges — direct nested locks, plus locks acquired by a
	// same-package callee invoked while holding.
	var edges []lockEdge
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		heldScan(info, decl.Body, func(n ast.Node, held []heldMutex) {
			if len(held) == 0 {
				return
			}
			// Direct nested acquisition: heldScan hands lock calls to the
			// visitor as their enclosing statement, before updating held.
			if stmt, ok := n.(*ast.ExprStmt); ok {
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if op, mx := mutexCall(info, call); op == opLock {
						node := mutexNode(info, mx)
						for _, h := range held {
							edges = append(edges, lockEdge{from: h.node, to: node, fromPos: h.pos, toPos: call.Pos()})
						}
					}
				}
				return
			}
			// One level of call resolution: holding a lock and calling a
			// same-package function that acquires its own.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			callee := calleeFunc(info, call)
			if callee == nil || callee.Pkg() != pass.Pkg.Types {
				return
			}
			for _, acq := range directLocks[callee] {
				for _, h := range held {
					edges = append(edges, lockEdge{from: h.node, to: acq.node, fromPos: h.pos, toPos: acq.pos, throughCall: callee.Name()})
				}
			}
		})
	})

	// Keep the first edge per (from, to) pair, in deterministic source order.
	sort.SliceStable(edges, func(i, j int) bool {
		return pass.Pkg.Fset.Position(edges[i].toPos).Offset < pass.Pkg.Fset.Position(edges[j].toPos).Offset
	})
	graph := map[string]map[string]lockEdge{}
	for _, e := range edges {
		if graph[e.from] == nil {
			graph[e.from] = map[string]lockEdge{}
		}
		if _, seen := graph[e.from][e.to]; !seen {
			graph[e.from][e.to] = e
		}
	}

	// Cycle detection: an edge A→B closes a cycle when B can reach A. Each
	// 2-cycle reports once (lexicographically smaller `from`); a self-edge
	// (A held while another A is acquired) is its own report.
	var nodes []string
	for from := range graph {
		nodes = append(nodes, from)
	}
	sort.Strings(nodes)
	for _, from := range nodes {
		var tos []string
		for to := range graph[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			e := graph[from][to]
			if from == to {
				pass.Reportf(e.toPos, "%s acquired while another %s is already held (at %s)%s; two instances locked without a canonical order can deadlock",
					to, from, pass.Pkg.Fset.Position(e.fromPos), throughSuffix(e))
				continue
			}
			if !reaches(graph, to, from) {
				continue
			}
			if from > to {
				continue // the cycle reports from its smaller endpoint
			}
			back := backEdge(graph, to, from)
			pass.Reportf(e.toPos, "lock order cycle: %s acquired while %s is held (at %s)%s, but %s is also acquired while %s is held (at %s); pick one order",
				to, from, pass.Pkg.Fset.Position(e.fromPos), throughSuffix(e),
				back.to, back.from, pass.Pkg.Fset.Position(back.toPos))
		}
	}
	return nil
}

func throughSuffix(e lockEdge) string {
	if e.throughCall == "" {
		return ""
	}
	return fmt.Sprintf(" via call of %s", e.throughCall)
}

// reaches reports whether to is reachable from `start` in the lock graph.
func reaches(graph map[string]map[string]lockEdge, start, target string) bool {
	seen := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		if n == target {
			return true
		}
		if seen[n] {
			return false
		}
		seen[n] = true
		var next []string
		for to := range graph[n] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if dfs(to) {
				return true
			}
		}
		return false
	}
	return dfs(start)
}

// backEdge returns the first edge on a path start⇝target whose head is
// target — the "other half" of the cycle for the diagnostic.
func backEdge(graph map[string]map[string]lockEdge, start, target string) lockEdge {
	seen := map[string]bool{}
	var dfs func(n string) (lockEdge, bool)
	dfs = func(n string) (lockEdge, bool) {
		if seen[n] {
			return lockEdge{}, false
		}
		seen[n] = true
		var next []string
		for to := range graph[n] {
			next = append(next, to)
		}
		sort.Strings(next)
		for _, to := range next {
			if to == target {
				return graph[n][to], true
			}
		}
		for _, to := range next {
			if e, ok := dfs(to); ok {
				return e, true
			}
		}
		return lockEdge{}, false
	}
	e, _ := dfs(start)
	return e
}
