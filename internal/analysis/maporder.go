package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Maporder flags `for range` over a map whose body leaks iteration order into
// ordered output: appending to a slice that is never subsequently sorted,
// writing bytes (io writes, fmt prints, encoder calls), marshaling JSON, or
// accumulating floating-point sums (float addition is not associative, so the
// low bits depend on visit order). Go randomizes map iteration per run, so
// any of these silently breaks byte-identical results — the classic killer in
// catalog, stats, and result assembly.
//
// The benign collect-then-sort idiom is recognized: an append target that is
// passed to a sort.* or slices.Sort* call later in the same function does not
// fire.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order leaks into slices, output, or float accumulation",
	Run:  runMaporder,
}

func runMaporder(pass *Pass) error {
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.Pkg.Info.TypeOf(rs.X); t == nil || !isMap(t) {
				return true
			}
			checkMapRangeBody(pass, decl, rs)
			return true
		})
	})
	return nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody looks for order-sensitive sinks inside one map-range body.
func checkMapRangeBody(pass *Pass, decl *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBuiltinAppend(info, node) && len(node.Args) > 0 {
				obj := rootObject(info, node.Args[0])
				if obj != nil && !within(obj.Pos(), rs) && !sortedAfter(info, decl, rs, obj) {
					pass.Reportf(node.Pos(),
						"append to %s inside map iteration leaks map order; iterate sorted keys or sort %s before use",
						obj.Name(), obj.Name())
				}
				return true
			}
			if name, sink := orderedSink(info, node); sink {
				pass.Reportf(node.Pos(),
					"%s inside map iteration emits output in map order; iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			if node.Tok != token.ADD_ASSIGN && node.Tok != token.SUB_ASSIGN {
				return true
			}
			for _, lhs := range node.Lhs {
				obj := rootObject(info, lhs)
				if obj == nil || within(obj.Pos(), rs) {
					continue
				}
				if t := info.TypeOf(lhs); t != nil && isFloat(t) {
					pass.Reportf(node.Pos(),
						"floating-point accumulation into %s inside map iteration is order-dependent in the low bits; sum over sorted keys",
						obj.Name())
				}
			}
		}
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedSink reports whether call writes ordered output: io/fmt writes,
// streaming encoders, or per-iteration JSON marshaling.
func orderedSink(info *types.Info, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	switch pkgFuncName(f) {
	case "fmt.Print", "fmt.Printf", "fmt.Println", "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
		"encoding/json.Marshal", "encoding/json.MarshalIndent":
		return pkgFuncName(f), true
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch f.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
			return "call of " + f.Name(), true
		}
	}
	return "", false
}

// rootObject resolves the base identifier of an lvalue-ish expression
// (x, x.f, x[i], *x) to its declaring object.
func rootObject(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return obj
			}
			return info.Defs[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside the node's source extent.
func within(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedAfter reports whether obj is passed to a sort.* / slices.* call after
// the range statement in the same function — the collect-then-sort idiom.
func sortedAfter(info *types.Info, decl *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		f := calleeFunc(info, call)
		if f == nil || f.Pkg() == nil {
			return true
		}
		if p := f.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					mentions = true
					return false
				}
				return true
			})
			if mentions {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
