package analysis

import (
	"go/ast"
	"strings"
)

// bannedImports are packages whose mere presence in a result-producing
// package is a determinism bug: every value they yield differs run to run.
var bannedImports = map[string]string{
	"math/rand":    "use the deterministic gameofcoins/internal/rng streams instead",
	"math/rand/v2": "use the deterministic gameofcoins/internal/rng streams instead",
	"crypto/rand":  "use the deterministic gameofcoins/internal/rng streams instead",
}

// bannedFuncs are ambient-state reads from otherwise legitimate packages:
// importing time for time.Duration arithmetic is fine, reading the wall clock
// is not.
var bannedFuncs = map[string]string{
	"time.Now":       "wall-clock reads make results differ run to run",
	"time.Since":     "wall-clock reads make results differ run to run",
	"time.Until":     "wall-clock reads make results differ run to run",
	"time.Sleep":     "timing-dependent control flow makes results scheduling-dependent",
	"time.After":     "timing-dependent control flow makes results scheduling-dependent",
	"time.AfterFunc": "timing-dependent control flow makes results scheduling-dependent",
	"time.Tick":      "timing-dependent control flow makes results scheduling-dependent",
	"time.NewTimer":  "timing-dependent control flow makes results scheduling-dependent",
	"time.NewTicker": "timing-dependent control flow makes results scheduling-dependent",
	"os.Getenv":      "process environment is ambient state invisible to the cache key",
	"os.LookupEnv":   "process environment is ambient state invisible to the cache key",
	"os.Environ":     "process environment is ambient state invisible to the cache key",
	"os.ExpandEnv":   "process environment is ambient state invisible to the cache key",
	"os.Getpid":      "process identity is ambient state invisible to the cache key",
	"os.Hostname":    "host identity is ambient state invisible to the cache key",
}

// Nodeterm forbids ambient nondeterminism — wall clock, global/OS randomness,
// process environment — inside the result-producing packages. Results must be
// a pure function of (canonical spec JSON, seed, version): that is what makes
// the result cache, restart recomputation (PR 3), and distributed
// first-writer-wins publication (PR 6) sound. Scheduler and coordinator code
// where wall-clock is legitimate (EWMA cost models, lease deadlines) either
// lives outside these packages or carries //goclint:allow nodeterm with a
// rationale.
var Nodeterm = &Analyzer{
	Name:      "nodeterm",
	Doc:       "forbid wall-clock, ambient randomness, and environment reads in result-producing packages",
	AppliesTo: IsDeterminismPackage,
	Run:       runNodeterm,
}

func runNodeterm(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %s in a result-producing package: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgName := usedPackage(pass.Pkg.Info, sel)
			if pkgName == nil {
				return true
			}
			name := pkgName.Imported().Path() + "." + sel.Sel.Name
			if why, banned := bannedFuncs[name]; banned {
				pass.Reportf(sel.Pos(), "call of %s in a result-producing package: %s", name, why)
			}
			return true
		})
	}
	return nil
}
