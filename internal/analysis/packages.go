package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ModulePath is the import-path root of this repository.
const ModulePath = "gameofcoins"

// determinismPackages are the result-producing packages bound by the full
// determinism contract: everything a sweep result is computed from. A
// nondeterministic value observed anywhere here can change marshaled result
// bytes, which breaks the byte-identical guarantees PR 1 (worker-count
// independence), PR 3 (restart recomputation), and PR 6 (distributed
// first-writer-wins) are built on. Scheduler and serving code (internal/dist,
// internal/server, the benches) are deliberately absent: wall-clock is
// legitimate there, and the engine's own timing sites carry explicit
// //goclint:allow directives instead.
var determinismPackages = map[string]bool{
	ModulePath + "/internal/core":        true,
	ModulePath + "/internal/equilibria":  true,
	ModulePath + "/internal/design":      true,
	ModulePath + "/internal/learning":    true,
	ModulePath + "/internal/replay":      true,
	ModulePath + "/internal/market":      true,
	ModulePath + "/internal/sim":         true,
	ModulePath + "/internal/manip":       true,
	ModulePath + "/internal/security":    true,
	ModulePath + "/internal/exact":       true,
	ModulePath + "/internal/engine":      true,
	ModulePath + "/internal/rng":         true,
	ModulePath + "/internal/stats":       true,
	ModulePath + "/internal/chain":       true,
	ModulePath + "/internal/mining":      true,
	ModulePath + "/internal/potential":   true,
	ModulePath + "/internal/numeric":     true,
	ModulePath + "/internal/experiments": true,
}

// IsDeterminismPackage reports whether the import path is bound by the
// determinism contract (see determinismPackages).
func IsDeterminismPackage(path string) bool { return determinismPackages[path] }

// errdropPackages are the persistence/serving packages where a silently
// dropped error loses durable state — PR 3's bugfix history is exactly this
// class (store writes and marshals whose failures vanished).
var errdropPackages = map[string]bool{
	ModulePath + "/internal/server": true,
	ModulePath + "/internal/store":  true,
}

// usedPackage resolves expr as a reference to an imported package: for
// `time.Now` it returns the *types.PkgName for `time`. Returns nil when expr
// is not a package-qualified selector (e.g. a method call, or the name is
// shadowed by a local variable).
func usedPackage(info *types.Info, expr ast.Expr) *types.PkgName {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pkgName, _ := info.Uses[id].(*types.PkgName)
	return pkgName
}

// calleeFunc resolves a call's callee to its *types.Func (package function or
// method), or nil for builtins, conversions, and calls of function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// pkgFuncName returns "path.Name" for a package-level function, or "" for
// methods and nil funcs.
func pkgFuncName(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return f.Pkg().Path() + "." + f.Name()
}

// isRngPath reports whether path is the deterministic rng package (matched by
// suffix so analysistest fixtures exercising a vendored copy still resolve).
func isRngPath(path string) bool {
	return path == ModulePath+"/internal/rng" || strings.HasSuffix(path, "/internal/rng")
}
