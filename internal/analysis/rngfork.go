package analysis

import (
	"go/ast"
	"go/types"
)

// Rngfork requires task-level randomness to derive from the forked *rng.Rand
// stream a task is handed. Constructing a fresh root generator (rng.New,
// rng.NewStream) inside a function that already holds a forked stream
// re-roots the randomness tree: the draws stop being a pure function of
// (job seed, task index) and start depending on whatever ad-hoc seed the call
// site picked — typically correlated across tasks, and invisible to the
// engine's worker-count-independence guarantee. Root generators are
// constructed exactly once per job, by the engine (rng.New(seed)); everything
// below forks.
var Rngfork = &Analyzer{
	Name:      "rngfork",
	Doc:       "require task randomness to derive from the forked *rng.Rand parameter, not fresh rng.New roots",
	AppliesTo: IsDeterminismPackage,
	Run:       runRngfork,
}

func runRngfork(pass *Pass) error {
	if isRngPath(pass.Pkg.Path) {
		// The rng package itself constructs generators: Split and Fork are
		// exactly the sanctioned NewStream call sites.
		return nil
	}
	forEachFunc(pass.Pkg, func(decl *ast.FuncDecl) {
		if !hasRandParam(pass.Pkg.Info, decl) {
			return
		}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := calleeFunc(pass.Pkg.Info, call)
			if f == nil || f.Pkg() == nil || !isRngPath(f.Pkg().Path()) {
				return true
			}
			if f.Name() == "New" || f.Name() == "NewStream" {
				pass.Reportf(call.Pos(),
					"rng.%s constructs a fresh root generator in a function that already holds a forked *rng.Rand; derive from that stream (Fork/Split) instead",
					f.Name())
			}
			return true
		})
	})
	return nil
}

// hasRandParam reports whether the function signature includes a *rng.Rand
// parameter — the marker of task-context code handed a forked stream.
func hasRandParam(info *types.Info, decl *ast.FuncDecl) bool {
	if decl.Type.Params == nil {
		return false
	}
	for _, field := range decl.Type.Params.List {
		if t := info.TypeOf(field.Type); t != nil && isRandType(t) {
			return true
		}
	}
	return false
}

// isRandType reports whether t is rng.Rand or *rng.Rand.
func isRandType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Rand" && obj.Pkg() != nil && isRngPath(obj.Pkg().Path())
}
