package analysis

// All returns the full goclint suite in reporting order: the determinism
// rules (PR 7), then the concurrency rules. cmd/goclint runs exactly this
// set; adding an analyzer here is all it takes to gate CI on it.
func All() []*Analyzer {
	return []*Analyzer{
		Nodeterm, Maporder, Rngfork, Errdrop,
		Lockguard, Blockinglock, Lockorder, Ctxleak,
	}
}
