package analysis

// All returns the full goclint suite in reporting order. cmd/goclint runs
// exactly this set; adding an analyzer here is all it takes to gate CI on it.
func All() []*Analyzer {
	return []*Analyzer{Nodeterm, Maporder, Rngfork, Errdrop}
}
