// Package blockinglock is the golden suite for the blockinglock analyzer:
// operations that can block indefinitely — channel sends/receives outside a
// select-with-default, selects without default, net/http I/O, store.Store
// calls, time.Sleep, Wait() — are flagged while a mutex is held, and stay
// silent outside critical sections, inside nonblocking selects, and inside
// closures (which may run on another goroutine).
package blockinglock

import (
	"net/http"
	"sync"
	"time"

	"gameofcoins/internal/store"
)

type q struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// sendUnderLock holds q.mu across a bare channel send: finding.
func (x *q) sendUnderLock() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.ch <- 1 // want `channel send while x\.mu is held`
}

// sendOutside releases before sending: silent.
func (x *q) sendOutside() {
	x.mu.Lock()
	x.mu.Unlock()
	x.ch <- 1
}

// nonblockingKick is the single-writer queue idiom — select with default
// under the lock never blocks: silent.
func (x *q) nonblockingKick() {
	x.mu.Lock()
	defer x.mu.Unlock()
	select {
	case x.ch <- 1:
	default:
	}
}

// blockingSelect has no default: one finding at the select, not per clause.
func (x *q) blockingSelect() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	select { // want `select without a default case while x\.mu is held`
	case v := <-x.ch:
		return v
	}
}

// recvUnderLock blocks on a bare receive: finding.
func (x *q) recvUnderLock() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return <-x.ch // want `channel receive while x\.mu is held`
}

// rangeUnderLock blocks draining a channel: finding.
func (x *q) rangeUnderLock() (n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	for range x.ch { // want `range over a channel while x\.mu is held`
		n++
	}
	return n
}

// sleepUnderLock stalls every contender for the mutex: finding.
func (x *q) sleepUnderLock() {
	x.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while x\.mu is held`
	x.mu.Unlock()
}

// waitUnderLock parks holding the mutex: finding.
func (x *q) waitUnderLock() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.wg.Wait() // want `call of Wait while x\.mu is held`
}

// httpUnderLock does network I/O inside the critical section: finding.
func (x *q) httpUnderLock() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	resp, err := http.Get("http://localhost/") // want `call of net/http\.Get while x\.mu is held`
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// storeUnderLock does durable I/O inside the critical section — the exact
// hazard the server's persist queue exists to avoid: finding.
func storeUnderLock(mu *sync.Mutex, s store.Store, rec store.JobRecord) error {
	mu.Lock()
	defer mu.Unlock()
	return s.PutJob(rec) // want `store I/O call store\.PutJob while mu is held`
}

// storeOutsideLock enqueues under the lock, writes outside it: silent.
func storeOutsideLock(mu *sync.Mutex, s store.Store, rec store.JobRecord) error {
	mu.Lock()
	pending := rec
	mu.Unlock()
	return s.PutJob(pending)
}

// closureEscapes hands the send to another goroutine — the lock is not held
// where the send runs: silent.
func (x *q) closureEscapes() {
	x.mu.Lock()
	defer x.mu.Unlock()
	go func() { x.ch <- 1 }()
}

// allowedSend is a deliberate bounded-channel send with the directive:
// suppressed.
func (x *q) allowedSend() {
	x.mu.Lock()
	defer x.mu.Unlock()
	//goclint:allow blockinglock -- golden: buffered channel with a dedicated drainer, cannot block
	x.ch <- 1
}

// pureCallsUnderLock: ordinary non-blocking calls stay silent.
func (x *q) pureCallsUnderLock(r *http.Request) string {
	x.mu.Lock()
	defer x.mu.Unlock()
	return r.PathValue("id") + http.StatusText(http.StatusOK)
}
