// Package ctxleak is the golden suite for the ctxleak analyzer: a context
// cancel func that is discarded (blank) or never meaningfully used leaks the
// derived context until its parent ends; deferring it, calling it, passing
// it on, storing it, or returning it all count as handling.
package ctxleak

import (
	"context"
	"time"
)

// leakBlank throws the cancel away at the binding: finding.
func leakBlank(ctx context.Context) context.Context {
	c, _ := context.WithCancel(ctx) // want `cancel func from context\.WithCancel discarded`
	return c
}

// leakLaundered satisfies the compiler with `_ = cancel` but still never
// calls, defers, stores, or passes it: finding.
func leakLaundered(ctx context.Context) context.Context {
	c, cancel := context.WithTimeout(ctx, time.Second) // want `cancel func from context\.WithTimeout assigned to cancel but never used`
	_ = cancel
	return c
}

// deferred is the canonical shape: silent.
func deferred(ctx context.Context) error {
	c, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return c.Err()
}

// calledOnPaths cancels explicitly: any real call counts as handling.
func calledOnPaths(ctx context.Context, fail bool) error {
	c, cancel := context.WithDeadline(ctx, time.Now().Add(time.Second))
	if fail {
		cancel()
		return c.Err()
	}
	cancel()
	return nil
}

type holder struct {
	cancel context.CancelFunc
}

// stored transfers responsibility to a field (the long-lived-server shape —
// Manager.stop): silent.
func (h *holder) stored(ctx context.Context) context.Context {
	c, cancel := context.WithCancel(ctx)
	h.cancel = cancel
	return c
}

// storedAtBinding lands the cancel straight in a field: silent.
func (h *holder) storedAtBinding(ctx context.Context) (c context.Context) {
	c, h.cancel = context.WithCancel(ctx)
	return c
}

// passed hands the cancel to another function: silent.
func passed(ctx context.Context, run func(context.Context, context.CancelFunc)) {
	c, cancel := context.WithCancel(ctx)
	run(c, cancel)
}

// returned makes the caller responsible: silent.
func returned(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}

// allowedDrop carries the directive: suppressed.
func allowedDrop(ctx context.Context) context.Context {
	//goclint:allow ctxleak -- golden: parent is ephemeral in this test harness
	c, _ := context.WithCancel(ctx)
	return c
}
