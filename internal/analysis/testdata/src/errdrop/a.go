// Package errdrop is the golden suite for the errdrop analyzer: discarded
// errors from marshals, writes, and store operations are flagged — both the
// bare-call and the blank-assignment form — while propagated or handled
// errors and deferred calls are not.
package errdrop

import (
	"encoding/json"
	"os"

	"gameofcoins/internal/store"
)

func bareMarshal(v any) {
	json.Marshal(v) // want `error from encoding/json.Marshal discarded by bare call`
}

func blankMarshal(v any) []byte {
	b, _ := json.Marshal(v) // want `error from encoding/json.Marshal assigned to _`
	return b
}

func propagated(v any) ([]byte, error) {
	return json.Marshal(v)
}

func handled(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func bareRemove(path string) {
	os.Remove(path) // want `error from os.Remove discarded by bare call`
}

func allowedCleanup(path string) {
	//goclint:allow errdrop -- golden: best-effort cleanup on an error path
	os.Remove(path)
}

func storeBlank(s store.Store, rec store.JobRecord) {
	_ = s.PutJob(rec) // want `error from store.PutJob assigned to _`
}

func storeBare(s store.Store, jobID string) {
	s.PutPin(jobID) // want `error from store.PutPin discarded by bare call`
}

func storePropagated(s store.Store, rec store.JobRecord) error {
	return s.PutJob(rec)
}

func storeRangeBlank(s store.Store, jobID string, docs []json.RawMessage) {
	_ = s.PutJobRange(jobID, 0, docs) // want `error from store.PutJobRange assigned to _`
}

func storeRangeBare(s store.Store, jobID string, docs []json.RawMessage) {
	s.PutJobRange(jobID, 0, docs) // want `error from store.PutJobRange discarded by bare call`
}

func storeRangeHandled(s store.Store, jobID string, docs []json.RawMessage) error {
	return s.PutJobRange(jobID, 0, docs)
}

type sink struct{}

func (sink) Write(p []byte) (int, error) { return len(p), nil }

func writeBare(w sink, p []byte) {
	w.Write(p) // want `error from \(method\) Write discarded by bare call`
}

func writeBlank(w sink, p []byte) int {
	n, _ := w.Write(p) // want `error from \(method\) Write assigned to _`
	return n
}

// deferredClose is the conventional defer-drop; defer statements are not
// bare-call statements and stay out of scope for this rule.
func deferredClose(f *os.File, p []byte) {
	defer f.Sync()
}

// unwatchedCalls returning errors are someone else's business: errdrop is
// scoped to the marshal/write/store class PR 3's history shows recurs.
func unwatched(path string) {
	os.Chdir(path)
}
