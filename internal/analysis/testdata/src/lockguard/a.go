// Package lockguard is the golden suite for the lockguard analyzer: fields
// annotated `// guarded by mu` must only be touched by functions that lock
// that mutex on the same base expression, follow the Locked-suffix
// convention, or operate on a value they constructed themselves.
package lockguard

import "sync"

type counter struct {
	mu   sync.Mutex
	n    int            // guarded by mu
	m    map[string]int // guarded by mu
	name string         // unannotated: out of scope
}

// bump locks before touching n: silent.
func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// racyRead reads n without the lock: one finding.
func (c *counter) racyRead() int {
	return c.n // want `racyRead accesses n \(guarded by counter\.mu\) without acquiring c\.mu`
}

// doubleAccess touches two guarded fields: ONE finding at the first access,
// listing both fields — an intentional lock-free function needs one allow
// line, not one per field.
func (c *counter) doubleAccess() {
	c.n++ // want `doubleAccess accesses m, n \(guarded by counter\.mu\)`
	c.m["x"] = 1
}

// sweepLocked follows the caller-holds-the-lock naming convention: silent.
func (c *counter) sweepLocked() {
	c.n = 0
	for k := range c.m {
		delete(c.m, k)
	}
}

// newCounter mutates a value it constructed: pre-publication, silent.
func newCounter() *counter {
	c := &counter{m: map[string]int{}}
	c.n = 1
	return c
}

// drain is not a method, but it locks the right mutex on the same base
// expression: silent.
func drain(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n = 0
}

// racyDrain is the same shape without the lock: one finding.
func racyDrain(c *counter) {
	c.n = 0 // want `racyDrain accesses n \(guarded by counter\.mu\)`
}

// nameRead touches only the unannotated field: silent.
func (c *counter) nameRead() string { return c.name }

// allowedPeek is a deliberate unlocked read with the directive: suppressed.
func (c *counter) allowedPeek() int {
	//goclint:allow lockguard -- golden: racy-read gauge, staleness is acceptable here
	return c.n
}

// gauge exercises the RWMutex path.
type gauge struct {
	rw sync.RWMutex
	v  float64 // guarded by rw
}

// read RLocks: silent.
func (g *gauge) read() float64 {
	g.rw.RLock()
	defer g.rw.RUnlock()
	return g.v
}

// poke writes without any lock: one finding.
func (g *gauge) poke() {
	g.v = 1 // want `poke accesses v \(guarded by gauge\.rw\)`
}

// prose documents a mutex in free text; "guarded by the" names no field of
// the struct, so it parses as prose, not as an annotation.
type prose struct {
	mu sync.Mutex
	// guarded by the mutex above, informally speaking
	x int
}

// proseRead stays silent: x carries no machine-readable annotation.
func (p *prose) proseRead() int { return p.x }
