// Package lockorder is the golden suite for the lockorder analyzer: two
// functions acquiring the same pair of mutexes in opposite orders — directly
// or through one level of same-package calls — form a cycle (potential
// deadlock); a consistent hierarchy and unrelated locks stay silent.
package lockorder

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

// lockAB and lockBA together form the classic ABBA deadlock. The cycle is
// reported once, at the smaller endpoint's edge (a.mu → b.mu).
func lockAB(x *a, y *b) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.mu.Lock() // want `lock order cycle: b\.mu acquired while a\.mu is held`
	defer y.mu.Unlock()
}

func lockBA(x *a, y *b) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}

// c/d close their cycle through one level of method calls: lockThenCall
// holds c.mu while grab acquires d.mu, and reverse acquires c.mu under
// d.mu. The via-call edge reports at the acquisition site inside the callee.
type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

func (x *c) lockThenCall(y *d) {
	x.mu.Lock()
	defer x.mu.Unlock()
	y.grab()
}

func (y *d) grab() {
	y.mu.Lock() // want `lock order cycle: d\.mu acquired while c\.mu is held .*via call of grab`
	defer y.mu.Unlock()
}

func (y *d) reverse(x *c) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}

// outer/inner form a consistent hierarchy — outer.mu always before
// inner.mu, never the reverse: silent.
type inner struct{ mu sync.Mutex }
type outer struct {
	mu sync.Mutex
	in inner
}

func (o *outer) nested() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.in.mu.Lock()
	o.in.mu.Unlock()
}

func (o *outer) nestedAgain() {
	o.mu.Lock()
	o.in.mu.Lock()
	o.in.mu.Unlock()
	o.mu.Unlock()
}

// sequential release-then-acquire holds nothing across the second lock:
// silent, whatever the order elsewhere.
func (o *outer) sequential() {
	o.in.mu.Lock()
	o.in.mu.Unlock()
	o.mu.Lock()
	o.mu.Unlock()
}

// node: two instances of one type locked while one is held — no canonical
// instance order, self-deadlock shape.
type node struct{ mu sync.Mutex }

func link(p, q *node) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock() // want `node\.mu acquired while another node\.mu is already held`
	defer q.mu.Unlock()
}

// e/f cycle with the directive on the reporting edge: suppressed.
type e struct{ mu sync.Mutex }
type f struct{ mu sync.Mutex }

func lockEF(x *e, y *f) {
	x.mu.Lock()
	defer x.mu.Unlock()
	//goclint:allow lockorder -- golden: ef/fe never run concurrently by construction
	y.mu.Lock()
	defer y.mu.Unlock()
}

func lockFE(x *e, y *f) {
	y.mu.Lock()
	defer y.mu.Unlock()
	x.mu.Lock()
	defer x.mu.Unlock()
}
