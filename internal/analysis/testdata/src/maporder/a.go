// Package maporder is the golden suite for the maporder analyzer: map
// iteration leaking order into slices, writes, or float sums is flagged; the
// collect-then-sort idiom, map-to-map rebuilds, and integer counting are not.
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration leaks map order`
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectThenSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func leakPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside map iteration emits output in map order`
	}
}

func leakBuilder(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `call of WriteString inside map iteration emits output in map order`
	}
}

func leakMarshal(m map[string]int, sink func([]byte)) {
	for k := range m {
		raw, _ := json.Marshal(k) // want `encoding/json.Marshal inside map iteration emits output in map order`
		sink(raw)
	}
}

func leakFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside map iteration`
	}
	return sum
}

// intCounting is order-insensitive: integer addition commutes exactly.
func intCounting(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// mapToMap is order-insensitive: the destination has no order either.
func mapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// localScratch appends to a slice born inside the iteration — no order
// escapes the loop body.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// sliceRange is not a map range at all.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func allowedEmit(m map[string]int) {
	for k := range m {
		//goclint:allow maporder -- golden: debug dump, order immaterial
		fmt.Println(k)
	}
}
