// Package nodeterm is the golden suite for the nodeterm analyzer: ambient
// nondeterminism (wall clock, global randomness, environment) is flagged,
// pure time arithmetic is not, and //goclint:allow suppresses with rationale.
package nodeterm

import (
	"math/rand" // want `import of math/rand in a result-producing package`
	"os"
	"time"
)

func clockReads() time.Duration {
	t := time.Now()    // want `call of time.Now in a result-producing package`
	d := time.Since(t) // want `call of time.Since in a result-producing package`
	time.Sleep(d)      // want `call of time.Sleep in a result-producing package`
	return d
}

func environment() string {
	if _, ok := os.LookupEnv("GOC_DEBUG"); ok { // want `call of os.LookupEnv in a result-producing package`
		return os.Getenv("GOC_DEBUG") // want `call of os.Getenv in a result-producing package`
	}
	return ""
}

func globalRandomness() int {
	return rand.Intn(6) // the import is the finding; uses ride on it
}

// durationArithmetic shows the negative space: the time package itself is
// fine — only ambient reads are banned.
func durationArithmetic(d time.Duration) time.Duration {
	deadline := time.Unix(0, 0).Add(d)
	return deadline.Sub(time.Unix(0, 0)) * 2
}

// fileReads are deterministic inputs, not ambient state.
func fileReads(path string) ([]byte, error) {
	return os.ReadFile(path)
}

func allowedAbove() time.Time {
	//goclint:allow nodeterm -- golden: legitimate scheduler-style timing
	return time.Now()
}

func allowedSameLine() time.Time {
	return time.Now() //goclint:allow nodeterm -- golden: same-line form
}

// allowedWrongRule shows that a directive naming a different rule does NOT
// suppress; the finding must still surface.
func allowedWrongRule() time.Time {
	//goclint:allow maporder -- golden: names the wrong rule
	return time.Now() // want `call of time.Now in a result-producing package`
}
