// Package rngfork is the golden suite for the rngfork analyzer: constructing
// a fresh root generator where a forked *rng.Rand stream is already in hand
// is flagged; root construction at the job boundary is not.
package rngfork

import "gameofcoins/internal/rng"

// runTask models a spec's per-task body: it is handed the forked stream.
func runTask(i int, r *rng.Rand) float64 {
	fresh := rng.New(uint64(i)) // want `rng.New constructs a fresh root generator`
	_ = fresh
	child := r.Fork(uint64(i))
	return child.Float64()
}

func reStream(r *rng.Rand) *rng.Rand {
	return rng.NewStream(1, 2) // want `rng.NewStream constructs a fresh root generator`
}

// nested function literals inside task context are still task context.
func nested(r *rng.Rand) func() *rng.Rand {
	return func() *rng.Rand {
		return rng.New(3) // want `rng.New constructs a fresh root generator`
	}
}

// root is the job boundary: no forked stream in scope, so constructing the
// root generator is exactly right.
func root(seed uint64) *rng.Rand {
	return rng.New(seed)
}

// rootLoop seeds per-index roots without any parent stream — deterministic
// and legal (the engine itself does rng.New(seed) once per job).
func rootLoop(seeds []uint64) []*rng.Rand {
	out := make([]*rng.Rand, 0, len(seeds))
	for _, s := range seeds {
		out = append(out, rng.New(s))
	}
	return out
}

// forkFanout is the sanctioned shape: children derive from the parent.
func forkFanout(r *rng.Rand, n int) []*rng.Rand {
	out := make([]*rng.Rand, n)
	for i := range out {
		out[i] = r.Fork(uint64(i))
	}
	return out
}

func allowedReroot(r *rng.Rand) *rng.Rand {
	//goclint:allow rngfork -- golden: intentional reroot for a differential test
	return rng.NewStream(1, 2)
}
