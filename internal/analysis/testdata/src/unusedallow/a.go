// Package unusedallow is the golden suite for the -unused-allows report: a
// directive that suppresses a live finding is used; one covering code that
// no longer trips its rule — or naming a rule that does not exist — is
// stale and must be reported.
package unusedallow

import "encoding/json"

// drop carries a directive that suppresses a real errdrop finding: used.
func drop(v any) {
	//goclint:allow errdrop -- golden: deliberate best-effort drop
	json.Marshal(v)
}

// clean propagates its error; the directive suppresses nothing: unused.
func clean(v any) ([]byte, error) {
	//goclint:allow errdrop -- golden: stale, the hazard was fixed underneath it
	return json.Marshal(v)
}

// ghost names a rule that does not exist: unused by definition.
func ghost(v any) ([]byte, error) {
	//goclint:allow nosuchrule -- golden: rule name typo
	return json.Marshal(v)
}
