// Package chain simulates a single proof-of-work blockchain: Poisson block
// races driven by the aggregate hashrate pointed at the chain, a block
// subsidy, per-block fees, and periodic difficulty retargeting.
//
// This is the substrate the paper's market story runs on. Only the
// quantities the mining game observes matter — block production rate, reward
// per block, and how difficulty reacts when hashrate migrates — so the model
// is deliberately the textbook one: exponential inter-block times with rate
// hashrate/difficulty, and a BTC-style window retarget clamped to a maximum
// adjustment factor.
package chain

import (
	"errors"
	"fmt"

	"gameofcoins/internal/rng"
)

// Params configure a chain.
type Params struct {
	Name string
	// TargetBlockSeconds is the protocol's desired inter-block time.
	TargetBlockSeconds float64
	// RetargetWindow is the number of blocks between difficulty adjustments
	// (2016 for Bitcoin). 1 gives per-block retargeting.
	RetargetWindow int
	// MaxRetargetFactor clamps each adjustment (Bitcoin uses 4).
	MaxRetargetFactor float64
	// BlockSubsidy is the protocol reward per block, in the chain's own coin.
	BlockSubsidy float64
	// HalvingInterval, when positive, halves the subsidy every that many
	// blocks (Bitcoin uses 210000). Zero disables halving.
	HalvingInterval int
	// InitialDifficulty is the expected number of unit-hashes per block at
	// genesis. A chain with difficulty D and aggregate hashrate H produces
	// blocks at rate H/D per second.
	InitialDifficulty float64
}

func (p Params) validate() error {
	switch {
	case p.TargetBlockSeconds <= 0:
		return fmt.Errorf("chain %q: non-positive target block time", p.Name)
	case p.RetargetWindow <= 0:
		return fmt.Errorf("chain %q: non-positive retarget window", p.Name)
	case p.MaxRetargetFactor < 1:
		return fmt.Errorf("chain %q: retarget factor must be ≥ 1", p.Name)
	case p.BlockSubsidy < 0:
		return fmt.Errorf("chain %q: negative subsidy", p.Name)
	case p.HalvingInterval < 0:
		return fmt.Errorf("chain %q: negative halving interval", p.Name)
	case p.InitialDifficulty <= 0:
		return fmt.Errorf("chain %q: non-positive difficulty", p.Name)
	}
	return nil
}

// Block is one mined block.
type Block struct {
	Height  int
	Time    float64 // absolute simulation time, seconds
	Subsidy float64
	Fees    float64
}

// Chain is a single simulated PoW chain. Not safe for concurrent use.
type Chain struct {
	params      Params
	difficulty  float64
	height      int
	windowStart float64 // time of the block that opened the retarget window
	now         float64
	pendingFees float64 // fees accumulated for the next block (whale txs)
	totalFees   float64
	totalBlocks int
}

// New creates a chain at height 0, time 0.
func New(p Params) (*Chain, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Chain{params: p, difficulty: p.InitialDifficulty}, nil
}

// Name returns the chain's name.
func (c *Chain) Name() string { return c.params.Name }

// Difficulty returns the current difficulty.
func (c *Chain) Difficulty() float64 { return c.difficulty }

// Height returns the number of blocks mined so far.
func (c *Chain) Height() int { return c.height }

// Now returns the chain's current simulation time.
func (c *Chain) Now() float64 { return c.now }

// BlockRate returns the instantaneous expected blocks/second for the given
// aggregate hashrate.
func (c *Chain) BlockRate(hashrate float64) float64 {
	if hashrate <= 0 {
		return 0
	}
	return hashrate / c.difficulty
}

// Subsidy returns the protocol reward the *next* block will carry, after
// any halvings that have occurred.
func (c *Chain) Subsidy() float64 {
	if c.params.HalvingInterval <= 0 {
		return c.params.BlockSubsidy
	}
	s := c.params.BlockSubsidy
	for h := c.height / c.params.HalvingInterval; h > 0; h-- {
		s /= 2
	}
	return s
}

// ExpectedRewardPerSecond is the coin issuance rate (subsidy plus queued
// fees amortized over the next expected block) seen by the market when the
// given hashrate mines the chain.
func (c *Chain) ExpectedRewardPerSecond(hashrate float64) float64 {
	rate := c.BlockRate(hashrate)
	return rate*c.Subsidy() + rate*c.pendingFees
}

// InjectFees queues extra fees (a whale transaction) to be collected by the
// next mined block.
func (c *Chain) InjectFees(fees float64) error {
	if fees < 0 {
		return errors.New("chain: negative fee injection")
	}
	c.pendingFees += fees
	return nil
}

// PendingFees returns fees queued for the next block.
func (c *Chain) PendingFees() float64 { return c.pendingFees }

// Advance simulates the chain for dt seconds under the given aggregate
// hashrate, returning the blocks mined. Inter-block times are exponential;
// difficulty retargets every RetargetWindow blocks using the realized window
// duration, clamped by MaxRetargetFactor.
func (c *Chain) Advance(r *rng.Rand, dt, hashrate float64) []Block {
	if dt < 0 {
		panic("chain: negative time step")
	}
	end := c.now + dt
	var blocks []Block
	if hashrate <= 0 {
		c.now = end
		return nil
	}
	for {
		wait := r.Exp(hashrate / c.difficulty)
		if c.now+wait > end {
			c.now = end
			return blocks
		}
		c.now += wait
		b := Block{
			Height:  c.height,
			Time:    c.now,
			Subsidy: c.Subsidy(),
			Fees:    c.pendingFees,
		}
		c.totalFees += c.pendingFees
		c.pendingFees = 0
		c.height++
		c.totalBlocks++
		blocks = append(blocks, b)
		if c.height%c.params.RetargetWindow == 0 {
			c.retarget()
		}
	}
}

func (c *Chain) retarget() {
	actual := c.now - c.windowStart
	c.windowStart = c.now
	target := c.params.TargetBlockSeconds * float64(c.params.RetargetWindow)
	if actual <= 0 {
		actual = target / c.params.MaxRetargetFactor
	}
	factor := target / actual
	if factor > c.params.MaxRetargetFactor {
		factor = c.params.MaxRetargetFactor
	}
	if factor < 1/c.params.MaxRetargetFactor {
		factor = 1 / c.params.MaxRetargetFactor
	}
	c.difficulty *= factor
}

// Stats summarizes chain history.
type Stats struct {
	Blocks     int
	Height     int
	Difficulty float64
	TotalFees  float64
}

// Stats returns a snapshot of chain history.
func (c *Chain) Stats() Stats {
	return Stats{
		Blocks:     c.totalBlocks,
		Height:     c.height,
		Difficulty: c.difficulty,
		TotalFees:  c.totalFees,
	}
}
