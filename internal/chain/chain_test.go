package chain

import (
	"math"
	"testing"

	"gameofcoins/internal/rng"
)

func params() Params {
	return Params{
		Name:               "test",
		TargetBlockSeconds: 600,
		RetargetWindow:     100,
		MaxRetargetFactor:  4,
		BlockSubsidy:       6.25,
		InitialDifficulty:  600, // hashrate 1 → one block per 600s on average
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.TargetBlockSeconds = 0 },
		func(p *Params) { p.RetargetWindow = 0 },
		func(p *Params) { p.MaxRetargetFactor = 0.5 },
		func(p *Params) { p.BlockSubsidy = -1 },
		func(p *Params) { p.InitialDifficulty = 0 },
	}
	for i, mutate := range bad {
		p := params()
		mutate(&p)
		if _, err := New(p); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
	if _, err := New(params()); err != nil {
		t.Fatal(err)
	}
}

func TestBlockProductionRate(t *testing.T) {
	c, err := New(params())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	// Hashrate exactly at difficulty/target → expect ~1 block per 600s.
	const horizon = 600 * 10000
	blocks := c.Advance(r, horizon, 1)
	got := float64(len(blocks))
	want := 10000.0
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("mined %v blocks, want ≈%v", got, want)
	}
}

func TestAdvanceZeroHashrate(t *testing.T) {
	c, _ := New(params())
	blocks := c.Advance(rng.New(1), 1e6, 0)
	if blocks != nil || c.Height() != 0 {
		t.Fatal("blocks mined with zero hashrate")
	}
	if c.Now() != 1e6 {
		t.Fatal("time did not advance")
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	c, _ := New(params())
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	c.Advance(rng.New(1), -1, 1)
}

func TestDifficultyRetargetsUpwardUnderHighHashrate(t *testing.T) {
	c, _ := New(params())
	r := rng.New(2)
	d0 := c.Difficulty()
	// 10× the calibrated hashrate: blocks come 10× too fast; difficulty must
	// climb toward 10·d0 so that block time returns to target.
	for i := 0; i < 200; i++ {
		c.Advance(r, 24*3600, 10)
	}
	if c.Difficulty() < 5*d0 {
		t.Fatalf("difficulty %v did not rise (start %v)", c.Difficulty(), d0)
	}
	// After convergence the realized block rate should be near target again.
	h0 := c.Height()
	t0 := c.Now()
	c.Advance(r, 600*5000, 10)
	rate := float64(c.Height()-h0) / (c.Now() - t0)
	if math.Abs(rate-1.0/600)/(1.0/600) > 0.1 {
		t.Fatalf("post-retarget block rate %v, want ≈%v", rate, 1.0/600)
	}
}

func TestDifficultyRetargetsDownward(t *testing.T) {
	c, _ := New(params())
	r := rng.New(3)
	d0 := c.Difficulty()
	for i := 0; i < 400; i++ {
		c.Advance(r, 24*3600, 0.1) // 10× too slow
	}
	if c.Difficulty() > d0/5 {
		t.Fatalf("difficulty %v did not fall (start %v)", c.Difficulty(), d0)
	}
}

func TestRetargetClamped(t *testing.T) {
	p := params()
	p.RetargetWindow = 10
	c, _ := New(p)
	r := rng.New(4)
	d0 := c.Difficulty()
	// Mine one full window at 1000× hashrate; the single adjustment must be
	// clamped at 4×.
	for c.Height() < p.RetargetWindow {
		c.Advance(r, 1, 1000)
	}
	if got := c.Difficulty() / d0; got > p.MaxRetargetFactor+1e-9 {
		t.Fatalf("retarget factor %v exceeds clamp %v", got, p.MaxRetargetFactor)
	}
}

func TestFeesCollectedByNextBlock(t *testing.T) {
	c, _ := New(params())
	r := rng.New(5)
	if err := c.InjectFees(100); err != nil {
		t.Fatal(err)
	}
	if c.PendingFees() != 100 {
		t.Fatal("fees not pending")
	}
	var blocks []Block
	for len(blocks) == 0 {
		blocks = c.Advance(r, 3600, 1)
	}
	if blocks[0].Fees != 100 {
		t.Fatalf("first block fees = %v", blocks[0].Fees)
	}
	if c.PendingFees() != 0 {
		t.Fatal("fees not cleared")
	}
	for _, b := range blocks[1:] {
		if b.Fees != 0 {
			t.Fatalf("later block carries fees: %+v", b)
		}
	}
}

func TestInjectNegativeFees(t *testing.T) {
	c, _ := New(params())
	if err := c.InjectFees(-1); err == nil {
		t.Fatal("negative fees accepted")
	}
}

func TestBlockFieldsMonotone(t *testing.T) {
	c, _ := New(params())
	r := rng.New(6)
	blocks := c.Advance(r, 600*100, 1)
	for i, b := range blocks {
		if b.Height != i {
			t.Fatalf("block %d has height %d", i, b.Height)
		}
		if i > 0 && b.Time <= blocks[i-1].Time {
			t.Fatalf("non-increasing block times at %d", i)
		}
		if b.Subsidy != 6.25 {
			t.Fatalf("block subsidy = %v", b.Subsidy)
		}
	}
}

func TestExpectedRewardPerSecond(t *testing.T) {
	c, _ := New(params())
	// rate = H/D = 2/600; reward/s = rate · subsidy.
	want := 2.0 / 600 * 6.25
	if got := c.ExpectedRewardPerSecond(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("reward/s = %v, want %v", got, want)
	}
	if got := c.ExpectedRewardPerSecond(0); got != 0 {
		t.Fatalf("reward/s at zero hashrate = %v", got)
	}
	// Pending fees raise the expected reward.
	_ = c.InjectFees(600)
	if got := c.ExpectedRewardPerSecond(2); got <= want {
		t.Fatalf("fees ignored: %v", got)
	}
}

func TestStats(t *testing.T) {
	c, _ := New(params())
	r := rng.New(7)
	_ = c.InjectFees(10)
	c.Advance(r, 600*50, 1)
	st := c.Stats()
	if st.Blocks != c.Height() || st.Blocks == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalFees != 10 {
		t.Fatalf("total fees = %v", st.TotalFees)
	}
	if st.Difficulty <= 0 {
		t.Fatal("bad difficulty")
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, _ := New(params())
	b, _ := New(params())
	ba := a.Advance(rng.New(42), 600*200, 3)
	bb := b.Advance(rng.New(42), 600*200, 3)
	if len(ba) != len(bb) {
		t.Fatal("non-deterministic block count")
	}
	for i := range ba {
		if ba[i] != bb[i] {
			t.Fatalf("block %d differs", i)
		}
	}
}

func TestSubsidyHalving(t *testing.T) {
	p := params()
	p.HalvingInterval = 10
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.Subsidy() != 6.25 {
		t.Fatalf("genesis subsidy = %v", c.Subsidy())
	}
	r := rng.New(9)
	var blocks []Block
	for len(blocks) < 25 {
		blocks = append(blocks, c.Advance(r, 600*10, 1)...)
	}
	// Blocks 0-9 carry 6.25; 10-19 carry 3.125; 20+ carry 1.5625.
	for _, b := range blocks[:25] {
		want := 6.25
		switch {
		case b.Height >= 20:
			want = 1.5625
		case b.Height >= 10:
			want = 3.125
		}
		if b.Subsidy != want {
			t.Fatalf("block %d subsidy = %v, want %v", b.Height, b.Subsidy, want)
		}
	}
}

func TestHalvingDisabledByDefault(t *testing.T) {
	c, _ := New(params())
	r := rng.New(10)
	blocks := c.Advance(r, 600*50, 1)
	for _, b := range blocks {
		if b.Subsidy != 6.25 {
			t.Fatalf("subsidy changed without halving: %+v", b)
		}
	}
}

func TestNegativeHalvingRejected(t *testing.T) {
	p := params()
	p.HalvingInterval = -1
	if _, err := New(p); err == nil {
		t.Fatal("negative halving interval accepted")
	}
}

func TestHalvingLowersExpectedReward(t *testing.T) {
	p := params()
	p.HalvingInterval = 5
	c, _ := New(p)
	r := rng.New(11)
	for c.Height() < 5 {
		c.Advance(r, 60, 1)
	}
	// Whatever height we landed on, the subsidy must match the halving era.
	want := 6.25
	for h := c.Height() / 5; h > 0; h-- {
		want /= 2
	}
	if c.Subsidy() != want {
		t.Fatalf("subsidy at height %d = %v, want %v", c.Height(), c.Subsidy(), want)
	}
	if c.Subsidy() >= 6.25 {
		t.Fatal("halving did not lower the subsidy")
	}
}
