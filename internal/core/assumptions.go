package core

import (
	"fmt"
	"sort"

	"gameofcoins/internal/numeric"
)

// MaxExhaustiveConfigs bounds the state-space size |C|^|Π| that the
// exhaustive checkers in this file will enumerate before refusing.
const MaxExhaustiveConfigs = 1 << 22

// ErrTooLarge is returned by exhaustive checkers when the game's state space
// exceeds MaxExhaustiveConfigs.
var ErrTooLarge = fmt.Errorf("core: state space too large for exhaustive check (limit %d)", MaxExhaustiveConfigs)

// EnumerateConfigs calls visit for every configuration of g in lexicographic
// order (miner 0 varies slowest). Enumeration stops early if visit returns
// false. It returns ErrTooLarge if |C|^|Π| exceeds MaxExhaustiveConfigs.
// Eligibility-restricted assignments are skipped.
func (g *Game) EnumerateConfigs(visit func(Config) bool) error {
	total := 1
	for range g.miners {
		total *= len(g.coins)
		if total > MaxExhaustiveConfigs {
			return ErrTooLarge
		}
	}
	s := make(Config, len(g.miners))
	var rec func(p int) bool
	rec = func(p int) bool {
		if p == len(s) {
			return visit(s)
		}
		for c := range g.coins {
			if !g.Eligible(p, c) {
				continue
			}
			s[p] = c
			if !rec(p + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}

// NeverAloneViolation describes a configuration falsifying Assumption 1:
// coin Coin has at most one miner in Config, yet no miner has a better
// response step into it.
type NeverAloneViolation struct {
	Config Config
	Coin   CoinID
}

func (v *NeverAloneViolation) Error() string {
	return fmt.Sprintf("core: assumption 1 violated at %v: coin c%d has ≤1 miner and attracts nobody", v.Config, v.Coin)
}

// CheckNeverAlone exhaustively verifies the paper's Assumption 1 ("never
// alone"): in every configuration, if some coin has at most one miner, some
// miner has a better response step moving to that coin. It returns nil if
// the assumption holds, a *NeverAloneViolation if it fails, or ErrTooLarge
// for big games (use the |Π| ≥ 2|C| necessary condition plus sampling
// instead).
func (g *Game) CheckNeverAlone() error {
	var viol error
	if err := g.EnumerateConfigs(func(s Config) bool {
		if v := g.neverAloneViolationAt(s); v != nil {
			viol = v
			return false
		}
		return true
	}); err != nil {
		return err
	}
	return viol
}

func (g *Game) neverAloneViolationAt(s Config) *NeverAloneViolation {
	counts := make([]int, len(g.coins))
	for _, c := range s {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 1 {
			continue
		}
		attracted := false
		for p := range s {
			if s[p] != c && g.IsBetterResponse(s, p, c) {
				attracted = true
				break
			}
		}
		if !attracted {
			return &NeverAloneViolation{Config: s.Clone(), Coin: c}
		}
	}
	return nil
}

// GenericityViolation describes two (coin, miner-subset) pairs with equal
// reward-to-power ratios, falsifying Assumption 2.
type GenericityViolation struct {
	CoinA, CoinB     CoinID
	SubsetA, SubsetB []MinerID
	Ratio            float64
}

func (v *GenericityViolation) Error() string {
	return fmt.Sprintf("core: assumption 2 violated: F(c%d)/m(%v) == F(c%d)/m(%v) == %v",
		v.CoinA, v.SubsetA, v.CoinB, v.SubsetB, v.Ratio)
}

// CheckGeneric exhaustively verifies the paper's Assumption 2 ("generic
// game"): for any two distinct coins c ≠ c' and any two non-empty miner
// subsets P, P', F(c)/m(P) ≠ F(c')/m(P'). Equality is tested with the
// game's epsilon, so near-ties that the float engine cannot distinguish are
// reported as violations too. The check costs O(2ⁿ log 2ⁿ + pairs) and is
// limited to n ≤ 22 miners.
func (g *Game) CheckGeneric() error {
	n := len(g.miners)
	if n > 22 {
		return ErrTooLarge
	}
	type entry struct {
		ratio float64
		coin  CoinID
		mask  uint32
	}
	var entries []entry
	for mask := uint32(1); mask < 1<<n; mask++ {
		var sum float64
		for p := 0; p < n; p++ {
			if mask&(1<<p) != 0 {
				sum += g.miners[p].Power
			}
		}
		for c := range g.coins {
			entries = append(entries, entry{ratio: g.rewards[c] / sum, coin: c, mask: mask})
		}
	}
	// Sort by ratio and look for eps-close neighbours with distinct coins.
	sort.Slice(entries, func(i, j int) bool { return entries[i].ratio < entries[j].ratio })
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.coin == b.coin {
			continue
		}
		if numeric.Equal(a.ratio, b.ratio, g.eps) {
			return &GenericityViolation{
				CoinA:   a.coin,
				CoinB:   b.coin,
				SubsetA: maskToMiners(a.mask, n),
				SubsetB: maskToMiners(b.mask, n),
				Ratio:   a.ratio,
			}
		}
	}
	return nil
}

func maskToMiners(mask uint32, n int) []MinerID {
	var out []MinerID
	for p := 0; p < n; p++ {
		if mask&(1<<p) != 0 {
			out = append(out, p)
		}
	}
	return out
}
