package core

import (
	"errors"
	"testing"
)

// crowdedGame has many miners relative to coins so Assumption 1 plausibly
// holds: 5 miners, 2 coins, generic powers and rewards.
func crowdedGame(t *testing.T) *Game {
	t.Helper()
	return MustNewGame(
		[]Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{17, 19},
	)
}

func TestCheckNeverAloneHolds(t *testing.T) {
	if err := crowdedGame(t).CheckNeverAlone(); err != nil {
		t.Fatalf("assumption 1 should hold: %v", err)
	}
}

func TestCheckNeverAloneFailsWithFewMiners(t *testing.T) {
	// 2 miners, 2 coins: the paper notes Assumption 1 cannot hold when
	// |Π| < 2|C|.
	g := MustNewGame(
		[]Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	err := g.CheckNeverAlone()
	var viol *NeverAloneViolation
	if !errors.As(err, &viol) {
		t.Fatalf("err = %v, want NeverAloneViolation", err)
	}
	if viol.Error() == "" {
		t.Fatal("violation message empty")
	}
	// The witness must actually violate the assumption: coin has ≤1 miner
	// and attracts nobody.
	count := 0
	for _, c := range viol.Config {
		if c == viol.Coin {
			count++
		}
	}
	if count > 1 {
		t.Fatalf("witness coin has %d miners", count)
	}
	for p := range viol.Config {
		if viol.Config[p] != viol.Coin && g.IsBetterResponse(viol.Config, p, viol.Coin) {
			t.Fatal("witness coin attracts a miner; not a violation")
		}
	}
}

func TestCheckGenericHolds(t *testing.T) {
	if err := crowdedGame(t).CheckGeneric(); err != nil {
		t.Fatalf("assumption 2 should hold: %v", err)
	}
}

func TestCheckGenericDetectsSymmetry(t *testing.T) {
	// Equal rewards violate genericity: F(c0)/m(P) == F(c1)/m(P) for any P.
	g := MustNewGame(
		[]Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	err := g.CheckGeneric()
	var viol *GenericityViolation
	if !errors.As(err, &viol) {
		t.Fatalf("err = %v, want GenericityViolation", err)
	}
	if viol.CoinA == viol.CoinB {
		t.Fatal("violation cites a single coin")
	}
	if viol.Error() == "" {
		t.Fatal("violation message empty")
	}
}

func TestCheckGenericDetectsCrossCoinTie(t *testing.T) {
	// F(c0)/m(p1) = 4/2 = 2 and F(c1)/m(p2) = 2/1 = 2.
	g := MustNewGame(
		[]Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{4, 2},
	)
	var viol *GenericityViolation
	if err := g.CheckGeneric(); !errors.As(err, &viol) {
		t.Fatalf("err = %v, want GenericityViolation", err)
	}
}

func TestCheckGenericTooLarge(t *testing.T) {
	miners := make([]Miner, 23)
	for i := range miners {
		miners[i] = Miner{Name: "m", Power: float64(i + 1)}
	}
	g := MustNewGame(miners, []Coin{{Name: "a"}, {Name: "b"}}, []float64{1, 2})
	if err := g.CheckGeneric(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestObservation3OnStableConfigs(t *testing.T) {
	// Observation 3: in every stable configuration of a game satisfying
	// Assumption 1, Σ u_p(s) = Σ F(c). Enumerate all equilibria of the
	// crowded game and verify.
	g := crowdedGame(t)
	if err := g.CheckNeverAlone(); err != nil {
		t.Skipf("assumption 1 does not hold for this instance: %v", err)
	}
	total := g.TotalReward()
	found := 0
	err := g.EnumerateConfigs(func(s Config) bool {
		if g.IsEquilibrium(s) {
			found++
			if got := g.SumPayoffs(s); !approxEqual(got, total) {
				t.Fatalf("stable %v: Σu = %v, want %v", s, got, total)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if found == 0 {
		t.Fatal("no equilibria found; enumeration broken?")
	}
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
