package core

import (
	"fmt"
	"math"
	"strings"

	"gameofcoins/internal/numeric"
)

// Config is a system configuration s ∈ S = Cⁿ: Config[p] is the coin mined
// by miner p (the paper's s.p). Configs are plain slices; treat them as
// values — Apply returns a modified copy and never mutates its input.
type Config []CoinID

// Clone returns a deep copy of s.
func (s Config) Clone() Config { return append(Config(nil), s...) }

// Equal reports whether s and o assign every miner the same coin.
func (s Config) Equal(o Config) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the configuration compactly, e.g. "⟨c0 c2 c1⟩".
func (s Config) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = fmt.Sprintf("c%d", c)
	}
	return "⟨" + strings.Join(parts, " ") + "⟩"
}

// Key returns a compact string usable as a map key for visited-set tracking.
func (s Config) Key() string {
	var b strings.Builder
	b.Grow(len(s) * 3)
	for i, c := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// UniformConfig returns the configuration in which every miner mines coin c.
func UniformConfig(n int, c CoinID) Config {
	s := make(Config, n)
	for i := range s {
		s[i] = c
	}
	return s
}

// ValidateConfig checks that s is a legal configuration of g: correct arity,
// coin IDs in range, and eligibility respected.
func (g *Game) ValidateConfig(s Config) error {
	if len(s) != len(g.miners) {
		return fmt.Errorf("%w: config has %d entries for %d miners", ErrBadConfig, len(s), len(g.miners))
	}
	for p, c := range s {
		if c < 0 || c >= len(g.coins) {
			return fmt.Errorf("%w: miner %d assigned coin %d (have %d coins)", ErrBadConfig, p, c, len(g.coins))
		}
		if !g.Eligible(p, c) {
			return fmt.Errorf("%w: miner %d on coin %d", ErrNotEligible, p, c)
		}
	}
	return nil
}

// Miners returns P_c(s): the miners who mine c in s.
func (g *Game) Miners(s Config, c CoinID) []MinerID {
	var out []MinerID
	for p, cp := range s {
		if cp == c {
			out = append(out, p)
		}
	}
	return out
}

// CoinPower returns M_c(s) = Σ_{p ∈ P_c(s)} m_p.
func (g *Game) CoinPower(s Config, c CoinID) float64 {
	var t float64
	for p, cp := range s {
		if cp == c {
			t += g.miners[p].Power
		}
	}
	return t
}

// CoinPowers returns M_c(s) for every coin in one pass.
func (g *Game) CoinPowers(s Config) []float64 {
	powers := make([]float64, len(g.coins))
	for p, c := range s {
		powers[c] += g.miners[p].Power
	}
	return powers
}

// RPU returns the revenue per unit of coin c in s: F(c)/M_c(s).
// A coin with no miners has RPU +Inf (the limit as power → 0), which is the
// correct value for the lexicographic list of Theorem 1: an empty coin is
// always the most attractive destination per unit of power.
func (g *Game) RPU(s Config, c CoinID) float64 {
	m := g.CoinPower(s, c)
	if m == 0 {
		return math.Inf(1)
	}
	return g.rewards[c] / m
}

// RPUs returns the RPU of every coin in one pass.
func (g *Game) RPUs(s Config) []float64 {
	powers := g.CoinPowers(s)
	out := make([]float64, len(powers))
	for c, m := range powers {
		if m == 0 {
			out[c] = math.Inf(1)
		} else {
			out[c] = g.rewards[c] / m
		}
	}
	return out
}

// Payoff returns u_p(s) = m_p · F(s.p) / M_{s.p}(s).
func (g *Game) Payoff(s Config, p MinerID) float64 {
	return g.miners[p].Power * g.rewards[s[p]] / g.CoinPower(s, s[p])
}

// Payoffs returns every miner's payoff in one pass.
func (g *Game) Payoffs(s Config) []float64 {
	powers := g.CoinPowers(s)
	out := make([]float64, len(s))
	for p, c := range s {
		out[p] = g.miners[p].Power * g.rewards[c] / powers[c]
	}
	return out
}

// SumPayoffs returns Σ_p u_p(s). By Observation 3 this equals Σ_c F(c) in
// every stable configuration of a game satisfying Assumption 1.
func (g *Game) SumPayoffs(s Config) float64 {
	var t float64
	for _, u := range g.Payoffs(s) {
		t += u
	}
	return t
}

// PayoffAfterMove returns u_p((s₋p, c)): the payoff p would receive after
// unilaterally moving to coin c. For c == s[p] it equals Payoff(s, p).
func (g *Game) PayoffAfterMove(s Config, p MinerID, c CoinID) float64 {
	mp := g.miners[p].Power
	if c == s[p] {
		return mp * g.rewards[c] / g.CoinPower(s, c)
	}
	return mp * g.rewards[c] / (g.CoinPower(s, c) + mp)
}

// Apply returns the configuration (s₋p, c). It does not mutate s.
func (g *Game) Apply(s Config, p MinerID, c CoinID) Config {
	ns := s.Clone()
	ns[p] = c
	return ns
}

// IsBetterResponse reports whether moving p from s.p to c is a better
// response step: u_p(s) < u_p((s₋p, c)) beyond the game's epsilon, and c is
// eligible for p.
func (g *Game) IsBetterResponse(s Config, p MinerID, c CoinID) bool {
	if c == s[p] || !g.Eligible(p, c) {
		return false
	}
	return numeric.Greater(g.PayoffAfterMove(s, p, c), g.Payoff(s, p), g.eps)
}

// BetterResponses returns every coin to which moving is a better response
// step for p in s, in CoinID order.
func (g *Game) BetterResponses(s Config, p MinerID) []CoinID {
	cur := g.Payoff(s, p)
	var out []CoinID
	for c := range g.coins {
		if c == s[p] || !g.Eligible(p, c) {
			continue
		}
		if numeric.Greater(g.PayoffAfterMove(s, p, c), cur, g.eps) {
			out = append(out, c)
		}
	}
	return out
}

// BestResponse returns the eligible coin maximizing p's post-move payoff and
// whether that move strictly improves on p's current payoff. Ties are broken
// toward the lowest CoinID, making the choice deterministic.
func (g *Game) BestResponse(s Config, p MinerID) (CoinID, bool) {
	cur := g.Payoff(s, p)
	best := s[p]
	bestU := cur
	for c := range g.coins {
		if c == s[p] || !g.Eligible(p, c) {
			continue
		}
		if u := g.PayoffAfterMove(s, p, c); numeric.Greater(u, bestU, g.eps) {
			best, bestU = c, u
		}
	}
	return best, best != s[p]
}

// IsStable reports whether miner p has no better response step in s.
func (g *Game) IsStable(s Config, p MinerID) bool {
	cur := g.Payoff(s, p)
	for c := range g.coins {
		if c == s[p] || !g.Eligible(p, c) {
			continue
		}
		if numeric.Greater(g.PayoffAfterMove(s, p, c), cur, g.eps) {
			return false
		}
	}
	return true
}

// IsEquilibrium reports whether s is stable: no miner has a better response.
func (g *Game) IsEquilibrium(s Config) bool {
	powers := g.CoinPowers(s)
	for p := range s {
		mp := g.miners[p].Power
		cur := mp * g.rewards[s[p]] / powers[s[p]]
		for c := range g.coins {
			if c == s[p] || !g.Eligible(p, c) {
				continue
			}
			if numeric.Greater(mp*g.rewards[c]/(powers[c]+mp), cur, g.eps) {
				return false
			}
		}
	}
	return true
}

// UnstableMiners returns the miners that have at least one better response
// step in s, in MinerID order.
func (g *Game) UnstableMiners(s Config) []MinerID {
	var out []MinerID
	for p := range s {
		if !g.IsStable(s, p) {
			out = append(out, p)
		}
	}
	return out
}
