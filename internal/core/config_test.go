package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"gameofcoins/internal/rng"
)

func TestConfigCloneEqual(t *testing.T) {
	s := Config{0, 1, 0}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = 1
	if s.Equal(c) || s[0] != 0 {
		t.Fatal("clone shares storage")
	}
	if s.Equal(Config{0, 1}) {
		t.Fatal("different lengths reported equal")
	}
}

func TestConfigStringKey(t *testing.T) {
	s := Config{0, 2, 1}
	if got := s.String(); got != "⟨c0 c2 c1⟩" {
		t.Fatalf("String = %q", got)
	}
	if got := s.Key(); got != "0,2,1" {
		t.Fatalf("Key = %q", got)
	}
	if (Config{0, 2, 1}).Key() == (Config{0, 21}).Key() {
		t.Fatal("keys collide")
	}
}

func TestUniformConfig(t *testing.T) {
	s := UniformConfig(3, 2)
	if len(s) != 3 || s[0] != 2 || s[1] != 2 || s[2] != 2 {
		t.Fatalf("UniformConfig = %v", s)
	}
}

func TestValidateConfig(t *testing.T) {
	g := paperGame(t)
	if err := g.ValidateConfig(Config{0, 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for name, s := range map[string]Config{
		"short":        {0},
		"long":         {0, 1, 0},
		"out of range": {0, 2},
		"negative":     {-1, 0},
	} {
		if err := g.ValidateConfig(s); !errors.Is(err, ErrBadConfig) {
			t.Errorf("%s: err = %v", name, err)
		}
	}
}

func TestPaperPayoffs(t *testing.T) {
	// The four configurations from Proposition 1's proof with their exact
	// published payoffs.
	g := paperGame(t)
	tests := []struct {
		name   string
		s      Config
		u1, u2 float64
	}{
		{"s1 both on c1", Config{0, 0}, 2.0 / 3.0, 1.0 / 3.0},
		{"s2 split", Config{0, 1}, 1, 1},
		{"s3 both on c2", Config{1, 1}, 2.0 / 3.0, 1.0 / 3.0},
		{"s4 swapped split", Config{1, 0}, 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := g.Payoff(tt.s, 0); math.Abs(got-tt.u1) > 1e-12 {
				t.Errorf("u_p1 = %v, want %v", got, tt.u1)
			}
			if got := g.Payoff(tt.s, 1); math.Abs(got-tt.u2) > 1e-12 {
				t.Errorf("u_p2 = %v, want %v", got, tt.u2)
			}
		})
	}
}

func TestCoinPowerAndMiners(t *testing.T) {
	g := paperGame(t)
	s := Config{0, 0}
	if got := g.CoinPower(s, 0); got != 3 {
		t.Fatalf("M_c0 = %v", got)
	}
	if got := g.CoinPower(s, 1); got != 0 {
		t.Fatalf("M_c1 = %v", got)
	}
	miners := g.Miners(s, 0)
	if len(miners) != 2 || miners[0] != 0 || miners[1] != 1 {
		t.Fatalf("Miners = %v", miners)
	}
	if g.Miners(s, 1) != nil {
		t.Fatal("empty coin has miners")
	}
	powers := g.CoinPowers(s)
	if powers[0] != 3 || powers[1] != 0 {
		t.Fatalf("CoinPowers = %v", powers)
	}
}

func TestRPU(t *testing.T) {
	g := paperGame(t)
	s := Config{0, 0}
	if got := g.RPU(s, 0); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("RPU c0 = %v", got)
	}
	if got := g.RPU(s, 1); !math.IsInf(got, 1) {
		t.Fatalf("RPU of empty coin = %v, want +Inf", got)
	}
	rpus := g.RPUs(s)
	if math.Abs(rpus[0]-1.0/3.0) > 1e-12 || !math.IsInf(rpus[1], 1) {
		t.Fatalf("RPUs = %v", rpus)
	}
}

func TestPayoffsConsistency(t *testing.T) {
	g := paperGame(t)
	for _, s := range []Config{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		us := g.Payoffs(s)
		for p := range s {
			if math.Abs(us[p]-g.Payoff(s, p)) > 1e-12 {
				t.Fatalf("Payoffs[%d] = %v disagrees with Payoff %v at %v", p, us[p], g.Payoff(s, p), s)
			}
		}
	}
}

func TestSumPayoffsEqualsTotalRewardWhenAllCoinsMined(t *testing.T) {
	g := paperGame(t)
	if got := g.SumPayoffs(Config{0, 1}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("sum payoffs = %v, want 2", got)
	}
	// With a coin empty, its reward is not distributed.
	if got := g.SumPayoffs(Config{0, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("sum payoffs = %v, want 1", got)
	}
}

func TestPayoffAfterMove(t *testing.T) {
	g := paperGame(t)
	s := Config{0, 0}
	// p2 moving to empty c2 earns the full reward 1.
	if got := g.PayoffAfterMove(s, 1, 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("post-move payoff = %v", got)
	}
	// Staying equals current payoff.
	if got := g.PayoffAfterMove(s, 1, 0); math.Abs(got-g.Payoff(s, 1)) > 1e-12 {
		t.Fatalf("stay payoff = %v", got)
	}
}

func TestApplyCopies(t *testing.T) {
	g := paperGame(t)
	s := Config{0, 0}
	ns := g.Apply(s, 1, 1)
	if s[1] != 0 {
		t.Fatal("Apply mutated input")
	}
	if ns[1] != 1 || ns[0] != 0 {
		t.Fatalf("Apply result wrong: %v", ns)
	}
}

func TestBetterResponseBasics(t *testing.T) {
	g := paperGame(t)
	s := Config{0, 0}
	// Both miners improve by moving to the empty coin.
	if !g.IsBetterResponse(s, 0, 1) || !g.IsBetterResponse(s, 1, 1) {
		t.Fatal("moves to empty coin should be better responses")
	}
	// Moving to your own coin is never a better response.
	if g.IsBetterResponse(s, 0, 0) {
		t.Fatal("self-move reported as better response")
	}
	// In the split config nobody improves.
	split := Config{0, 1}
	for p := 0; p < 2; p++ {
		if brs := g.BetterResponses(split, p); len(brs) != 0 {
			t.Fatalf("miner %d has better responses %v in split config", p, brs)
		}
	}
}

func TestBestResponse(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "a", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{1, 5, 3},
	)
	s := Config{0}
	c, ok := g.BestResponse(s, 0)
	if !ok || c != 1 {
		t.Fatalf("BestResponse = %d, %v; want 1, true", c, ok)
	}
	// From the best coin there is no improving move.
	if _, ok := g.BestResponse(Config{1}, 0); ok {
		t.Fatal("best response from optimum should not exist")
	}
}

func TestStabilityAndEquilibrium(t *testing.T) {
	g := paperGame(t)
	split := Config{0, 1}
	if !g.IsEquilibrium(split) {
		t.Fatal("split config should be an equilibrium")
	}
	both := Config{0, 0}
	if g.IsEquilibrium(both) {
		t.Fatal("shared config should not be an equilibrium")
	}
	if got := g.UnstableMiners(both); len(got) != 2 {
		t.Fatalf("UnstableMiners = %v", got)
	}
	if got := g.UnstableMiners(split); got != nil {
		t.Fatalf("UnstableMiners of equilibrium = %v", got)
	}
	for p := 0; p < 2; p++ {
		if !g.IsStable(split, p) {
			t.Fatalf("miner %d unstable in equilibrium", p)
		}
		if g.IsStable(both, p) {
			t.Fatalf("miner %d stable in shared config", p)
		}
	}
}

// TestObservation1Property: in every better response step from coin v_i to
// v_j (coins ordered by RPU), j > i — i.e. miners only move toward
// higher-RPU coins.
func TestObservation1Property(t *testing.T) {
	r := rng.New(101)
	for trial := 0; trial < 200; trial++ {
		g, err := RandomGame(r, GenSpec{Miners: 5, Coins: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := RandomConfig(r, g)
		for p := 0; p < g.NumMiners(); p++ {
			from := s[p]
			for _, to := range g.BetterResponses(s, p) {
				if !(g.RPU(s, to) > g.RPU(s, from)) {
					t.Fatalf("better response to lower-RPU coin: RPU from %v to %v",
						g.RPU(s, from), g.RPU(s, to))
				}
			}
		}
	}
}

// TestObservation2Property: after a better response step moving p from c to
// c', RPU_c(s) < min(RPU_c(s'), RPU_c'(s')).
func TestObservation2Property(t *testing.T) {
	r := rng.New(202)
	for trial := 0; trial < 200; trial++ {
		g, err := RandomGame(r, GenSpec{Miners: 6, Coins: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := RandomConfig(r, g)
		for p := 0; p < g.NumMiners(); p++ {
			c := s[p]
			for _, cp := range g.BetterResponses(s, p) {
				ns := g.Apply(s, p, cp)
				lo := math.Min(g.RPU(ns, c), g.RPU(ns, cp))
				if !(g.RPU(s, c) < lo) {
					t.Fatalf("Observation 2 violated: RPU_c(s)=%v, min after=%v", g.RPU(s, c), lo)
				}
			}
		}
	}
}

// TestBetterResponseIncreasesPayoff is the definitional property, checked
// with testing/quick over random games and configurations.
func TestBetterResponseIncreasesPayoff(t *testing.T) {
	r := rng.New(303)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		g, err := RandomGame(rr, GenSpec{Miners: 4, Coins: 3})
		if err != nil {
			return false
		}
		s := RandomConfig(rr, g)
		p := rr.Intn(g.NumMiners())
		for _, c := range g.BetterResponses(s, p) {
			if !(g.PayoffAfterMove(s, p, c) > g.Payoff(s, p)) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: nil}
	_ = r
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	g := paperGame(t)
	var seen []string
	err := g.EnumerateConfigs(func(s Config) bool {
		seen = append(seen, s.Key())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"0,0", "0,1", "1,0", "1,1"}
	if len(seen) != len(want) {
		t.Fatalf("enumerated %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("enumerated %v, want %v", seen, want)
		}
	}
}

func TestEnumerateConfigsEarlyStop(t *testing.T) {
	g := paperGame(t)
	count := 0
	if err := g.EnumerateConfigs(func(Config) bool {
		count++
		return count < 2
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("visited %d configs, want 2", count)
	}
}

func TestEnumerateConfigsRespectsEligibility(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "a", Power: 2}, {Name: "b", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
		WithEligibility(func(p MinerID, c CoinID) bool { return p != 1 || c == 1 }),
	)
	count := 0
	if err := g.EnumerateConfigs(func(s Config) bool {
		if s[1] != 1 {
			t.Fatalf("enumerated ineligible config %v", s)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("enumerated %d configs, want 2", count)
	}
}

func TestEnumerateTooLarge(t *testing.T) {
	miners := make([]Miner, 30)
	for i := range miners {
		miners[i] = Miner{Name: "m", Power: float64(i + 1)}
	}
	g := MustNewGame(miners, []Coin{{Name: "a"}, {Name: "b"}, {Name: "c"}}, []float64{1, 2, 3})
	if err := g.EnumerateConfigs(func(Config) bool { return true }); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestRandomGameSpecDefaults(t *testing.T) {
	r := rng.New(7)
	g, err := RandomGame(r, GenSpec{Miners: 10, Coins: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumMiners() != 10 || g.NumCoins() != 4 {
		t.Fatal("sizes wrong")
	}
	for p := 0; p+1 < g.NumMiners(); p++ {
		if g.Power(p) < g.Power(p+1) {
			t.Fatal("not sorted descending")
		}
	}
	if _, err := RandomGame(r, GenSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestRandomGameZipf(t *testing.T) {
	r := rng.New(8)
	g, err := RandomGame(r, GenSpec{Miners: 20, Coins: 3, PowerZipf: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	// Zipf powers are strongly concentrated: top miner should hold well over
	// the mean share.
	if g.Power(0) < 2*g.TotalPower()/20 {
		t.Fatalf("Zipf concentration missing: top=%v total=%v", g.Power(0), g.TotalPower())
	}
}

func TestRandomConfigValid(t *testing.T) {
	r := rng.New(9)
	g, err := RandomGame(r, GenSpec{Miners: 8, Coins: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := g.ValidateConfig(RandomConfig(r, g)); err != nil {
			t.Fatal(err)
		}
	}
}
