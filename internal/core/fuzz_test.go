package core

import (
	"encoding/json"
	"testing"
)

// FuzzGameJSONDecode hardens the JSON codec: arbitrary input must either be
// rejected or decode into a game satisfying all construction invariants.
// (Seeds run under plain `go test`; `go test -fuzz=FuzzGameJSONDecode`
// explores further.)
func FuzzGameJSONDecode(f *testing.F) {
	valid := MustNewGame(
		[]Miner{{Name: "a", Power: 3}, {Name: "b", Power: 1}},
		[]Coin{{Name: "x"}, {Name: "y"}},
		[]float64{1, 2},
	)
	data, err := json.Marshal(valid)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(string(data))
	f.Add(`{}`)
	f.Add(`{"miners":[{"name":"a","power":1}],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0}`)
	f.Add(`{"miners":[{"name":"a","power":-1}],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0}`)
	f.Add(`{"miners":null,"coins":null,"rewards":null,"epsilon":-5}`)
	f.Fuzz(func(t *testing.T, raw string) {
		var g Game
		if err := json.Unmarshal([]byte(raw), &g); err != nil {
			return // rejection is fine
		}
		// Accepted games must be fully usable.
		if g.NumMiners() == 0 || g.NumCoins() == 0 {
			t.Fatalf("decoded degenerate game from %q", raw)
		}
		for p := 0; p < g.NumMiners(); p++ {
			if !(g.Power(p) > 0) {
				t.Fatalf("decoded non-positive power from %q", raw)
			}
			if p > 0 && g.Power(p-1) < g.Power(p) {
				t.Fatalf("decoded unsorted miners from %q", raw)
			}
		}
		for c := 0; c < g.NumCoins(); c++ {
			if !(g.Reward(c) > 0) {
				t.Fatalf("decoded non-positive reward from %q", raw)
			}
		}
		// The game must behave: uniform config is valid and payoffs are
		// finite and positive.
		s := UniformConfig(g.NumMiners(), 0)
		if g.Eligible(0, 0) {
			if err := g.ValidateConfig(s); err == nil {
				for p := range s {
					if !(g.Payoff(s, p) > 0) {
						t.Fatalf("non-positive payoff in decoded game from %q", raw)
					}
				}
			}
		}
		// Round trip must be stable.
		re, err := json.Marshal(&g)
		if err != nil {
			t.Fatalf("re-encode failed for %q: %v", raw, err)
		}
		var g2 Game
		if err := json.Unmarshal(re, &g2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
