// Package core implements the multi-cryptocurrency mining game of
// "Game of Coins" (Spiegelman, Keidar, Tennenholtz): a system ⟨Π, C⟩ of
// miners and coins together with a reward function F : C → R⁺.
//
// Each miner p has mining power m_p and mines exactly one coin; a coin c
// divides its reward F(c) among the miners mining it proportionally to their
// power. The revenue per unit of coin c in configuration s is
//
//	RPU_c(s) = F(c) / M_c(s)
//
// where M_c(s) is the total power on c, and the payoff of miner p is
// u_p(s) = m_p · RPU_{s.p}(s).
//
// The package provides the game state, payoff computations, better-response
// steps, stability/equilibrium predicates, and the paper's Assumption 1
// ("never alone") and Assumption 2 ("generic game") checkers. Learning
// dynamics live in internal/learning, equilibrium tooling in
// internal/equilibria, and the Section-5 reward design mechanism in
// internal/design.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gameofcoins/internal/numeric"
)

// MinerID indexes a miner within a Game. Miners are kept sorted by strictly
// or weakly descending power, so MinerID 0 is always the most powerful miner
// (the paper's p₁).
type MinerID = int

// CoinID indexes a coin within a Game.
type CoinID = int

// Miner is a player with a name and a positive mining power.
type Miner struct {
	Name  string
	Power float64
}

// Coin is a resource miners compete over. Name is purely descriptive.
type Coin struct {
	Name string
}

// Sentinel errors returned by game construction and validation.
var (
	ErrNoMiners       = errors.New("core: game needs at least one miner")
	ErrNoCoins        = errors.New("core: game needs at least one coin")
	ErrBadPower       = errors.New("core: miner power must be positive and finite")
	ErrBadReward      = errors.New("core: coin reward must be positive and finite")
	ErrRewardArity    = errors.New("core: rewards length must equal number of coins")
	ErrBadConfig      = errors.New("core: configuration is invalid for this game")
	ErrNotEligible    = errors.New("core: miner is not eligible to mine this coin")
	ErrNoEligibleCoin = errors.New("core: miner has no eligible coin")
)

// Game is an immutable game instance G_{Π,C,F}. Construct one with NewGame;
// derive variants (e.g. modified rewards for reward design) with
// WithRewards. A Game is safe for concurrent read use.
type Game struct {
	miners  []Miner
	coins   []Coin
	rewards []float64
	eps     float64
	// eligible[p][c] reports whether miner p may mine coin c. nil means
	// "everyone may mine everything" (the paper's base model); non-nil
	// implements the §6 asymmetric extension.
	eligible [][]bool
}

// Option configures game construction.
type Option func(*Game) error

// WithEpsilon sets the relative tolerance used in payoff comparisons.
// The default is numeric.Eps. Setting eps = 0 makes comparisons exact in
// float64, which is appropriate for games whose powers and rewards are
// small integers.
func WithEpsilon(eps float64) Option {
	return func(g *Game) error {
		if eps < 0 || math.IsNaN(eps) {
			return fmt.Errorf("core: invalid epsilon %v", eps)
		}
		g.eps = eps
		return nil
	}
}

// WithEligibility restricts which miners may mine which coins (the paper's
// §6 "asymmetric case" follow-up). The predicate is evaluated once per
// (miner, coin) pair at construction time against the *sorted* miner order.
// Every miner must end up with at least one eligible coin.
func WithEligibility(allowed func(p MinerID, c CoinID) bool) Option {
	return func(g *Game) error {
		g.eligible = make([][]bool, len(g.miners))
		for p := range g.miners {
			g.eligible[p] = make([]bool, len(g.coins))
			any := false
			for c := range g.coins {
				g.eligible[p][c] = allowed(p, c)
				any = any || g.eligible[p][c]
			}
			if !any {
				return fmt.Errorf("%w: miner %d (%s)", ErrNoEligibleCoin, p, g.miners[p].Name)
			}
		}
		return nil
	}
}

// NewGame constructs a game. Miners are sorted by descending power
// (ties broken by name, then original index) so that the paper's
// m_{p₁} ≥ m_{p₂} ≥ … convention holds for all downstream algorithms.
// The input slices are copied.
func NewGame(miners []Miner, coins []Coin, rewards []float64, opts ...Option) (*Game, error) {
	if len(miners) == 0 {
		return nil, ErrNoMiners
	}
	if len(coins) == 0 {
		return nil, ErrNoCoins
	}
	if len(rewards) != len(coins) {
		return nil, fmt.Errorf("%w: got %d rewards for %d coins", ErrRewardArity, len(rewards), len(coins))
	}
	g := &Game{
		miners:  append([]Miner(nil), miners...),
		coins:   append([]Coin(nil), coins...),
		rewards: append([]float64(nil), rewards...),
		eps:     numeric.Eps,
	}
	for i, m := range g.miners {
		if !(m.Power > 0) || math.IsInf(m.Power, 0) {
			return nil, fmt.Errorf("%w: miner %d (%s) has power %v", ErrBadPower, i, m.Name, m.Power)
		}
	}
	for c, r := range g.rewards {
		if !(r > 0) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: coin %d (%s) has reward %v", ErrBadReward, c, g.coins[c].Name, r)
		}
	}
	sort.SliceStable(g.miners, func(i, j int) bool {
		if g.miners[i].Power != g.miners[j].Power {
			return g.miners[i].Power > g.miners[j].Power
		}
		return g.miners[i].Name < g.miners[j].Name
	})
	for _, opt := range opts {
		if err := opt(g); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MustNewGame is NewGame that panics on error; for tests and examples whose
// inputs are literals.
func MustNewGame(miners []Miner, coins []Coin, rewards []float64, opts ...Option) *Game {
	g, err := NewGame(miners, coins, rewards, opts...)
	if err != nil {
		panic(err)
	}
	return g
}

// WithRewards returns a new Game identical to g but with the given reward
// function. Miners, coins, eligibility, and epsilon are shared structurally
// (they are immutable), so this is cheap; reward design calls it every
// iteration.
func (g *Game) WithRewards(rewards []float64) (*Game, error) {
	if len(rewards) != len(g.coins) {
		return nil, fmt.Errorf("%w: got %d rewards for %d coins", ErrRewardArity, len(rewards), len(g.coins))
	}
	for c, r := range rewards {
		if !(r > 0) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("%w: coin %d has reward %v", ErrBadReward, c, r)
		}
	}
	ng := *g
	ng.rewards = append([]float64(nil), rewards...)
	return &ng, nil
}

// NumMiners returns |Π|.
func (g *Game) NumMiners() int { return len(g.miners) }

// NumCoins returns |C|.
func (g *Game) NumCoins() int { return len(g.coins) }

// Miner returns the miner with the given ID (sorted-descending order).
func (g *Game) Miner(p MinerID) Miner { return g.miners[p] }

// Coin returns the coin with the given ID.
func (g *Game) Coin(c CoinID) Coin { return g.coins[c] }

// Power returns m_p.
func (g *Game) Power(p MinerID) float64 { return g.miners[p].Power }

// Reward returns F(c).
func (g *Game) Reward(c CoinID) float64 { return g.rewards[c] }

// Rewards returns a copy of the reward function as a slice indexed by CoinID.
func (g *Game) Rewards() []float64 { return append([]float64(nil), g.rewards...) }

// Epsilon returns the relative tolerance used in payoff comparisons.
func (g *Game) Epsilon() float64 { return g.eps }

// TotalPower returns Σ_p m_p.
func (g *Game) TotalPower() float64 {
	var t float64
	for _, m := range g.miners {
		t += m.Power
	}
	return t
}

// TotalReward returns Σ_c F(c).
func (g *Game) TotalReward() float64 {
	var t float64
	for _, r := range g.rewards {
		t += r
	}
	return t
}

// Eligible reports whether miner p may mine coin c.
func (g *Game) Eligible(p MinerID, c CoinID) bool {
	if g.eligible == nil {
		return true
	}
	return g.eligible[p][c]
}

// Restricted reports whether the game has any eligibility restriction
// (the §6 asymmetric extension).
func (g *Game) Restricted() bool { return g.eligible != nil }
