package core

import (
	"errors"
	"math"
	"testing"
)

// paperGame builds the Proposition 1 example: two miners with powers 2 and 1,
// two coins with reward 1 each.
func paperGame(t *testing.T) *Game {
	t.Helper()
	g, err := NewGame(
		[]Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]Coin{{Name: "c1"}, {Name: "c2"}},
		[]float64{1, 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGameValidation(t *testing.T) {
	m := []Miner{{Name: "a", Power: 1}}
	c := []Coin{{Name: "x"}}
	tests := []struct {
		name    string
		miners  []Miner
		coins   []Coin
		rewards []float64
		wantErr error
	}{
		{"no miners", nil, c, []float64{1}, ErrNoMiners},
		{"no coins", m, nil, nil, ErrNoCoins},
		{"reward arity", m, c, []float64{1, 2}, ErrRewardArity},
		{"zero power", []Miner{{Power: 0}}, c, []float64{1}, ErrBadPower},
		{"negative power", []Miner{{Power: -1}}, c, []float64{1}, ErrBadPower},
		{"NaN power", []Miner{{Power: math.NaN()}}, c, []float64{1}, ErrBadPower},
		{"Inf power", []Miner{{Power: math.Inf(1)}}, c, []float64{1}, ErrBadPower},
		{"zero reward", m, c, []float64{0}, ErrBadReward},
		{"negative reward", m, c, []float64{-3}, ErrBadReward},
		{"valid", m, c, []float64{1}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGame(tt.miners, tt.coins, tt.rewards)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestMinersSortedDescending(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "small", Power: 1}, {Name: "big", Power: 10}, {Name: "mid", Power: 5}},
		[]Coin{{Name: "c"}},
		[]float64{1},
	)
	if g.Miner(0).Name != "big" || g.Miner(1).Name != "mid" || g.Miner(2).Name != "small" {
		t.Fatalf("miners not sorted: %v %v %v", g.Miner(0), g.Miner(1), g.Miner(2))
	}
}

func TestSortTieBreakByName(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "z", Power: 2}, {Name: "a", Power: 2}},
		[]Coin{{Name: "c"}},
		[]float64{1},
	)
	if g.Miner(0).Name != "a" {
		t.Fatalf("tie break wrong: %v first", g.Miner(0))
	}
}

func TestAccessors(t *testing.T) {
	g := paperGame(t)
	if g.NumMiners() != 2 || g.NumCoins() != 2 {
		t.Fatal("sizes wrong")
	}
	if g.Power(0) != 2 || g.Power(1) != 1 {
		t.Fatal("powers wrong")
	}
	if g.Reward(0) != 1 || g.Reward(1) != 1 {
		t.Fatal("rewards wrong")
	}
	if g.TotalPower() != 3 || g.TotalReward() != 2 {
		t.Fatal("totals wrong")
	}
	if g.Coin(0).Name != "c1" {
		t.Fatal("coin name wrong")
	}
	if g.Epsilon() <= 0 {
		t.Fatal("default epsilon should be positive")
	}
}

func TestRewardsReturnsCopy(t *testing.T) {
	g := paperGame(t)
	r := g.Rewards()
	r[0] = 999
	if g.Reward(0) == 999 {
		t.Fatal("Rewards leaked internal state")
	}
}

func TestWithRewards(t *testing.T) {
	g := paperGame(t)
	g2, err := g.WithRewards([]float64{5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if g2.Reward(0) != 5 || g2.Reward(1) != 7 {
		t.Fatal("new rewards not applied")
	}
	if g.Reward(0) != 1 {
		t.Fatal("original game mutated")
	}
	if _, err := g.WithRewards([]float64{1}); !errors.Is(err, ErrRewardArity) {
		t.Fatalf("arity err = %v", err)
	}
	if _, err := g.WithRewards([]float64{0, 1}); !errors.Is(err, ErrBadReward) {
		t.Fatalf("bad reward err = %v", err)
	}
}

func TestWithEpsilon(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "a", Power: 1}},
		[]Coin{{Name: "c"}},
		[]float64{1},
		WithEpsilon(0),
	)
	if g.Epsilon() != 0 {
		t.Fatal("epsilon not applied")
	}
	if _, err := NewGame(
		[]Miner{{Name: "a", Power: 1}},
		[]Coin{{Name: "c"}},
		[]float64{1},
		WithEpsilon(-1),
	); err == nil {
		t.Fatal("negative epsilon accepted")
	}
}

func TestEligibility(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "big", Power: 2}, {Name: "small", Power: 1}},
		[]Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
		// Miner 1 (small) may only mine coin 1.
		WithEligibility(func(p MinerID, c CoinID) bool { return p == 0 || c == 1 }),
	)
	if !g.Restricted() {
		t.Fatal("Restricted() false")
	}
	if !g.Eligible(0, 0) || !g.Eligible(0, 1) || g.Eligible(1, 0) || !g.Eligible(1, 1) {
		t.Fatal("eligibility matrix wrong")
	}
	// Miner 1 on coin 0 is an invalid config.
	if err := g.ValidateConfig(Config{0, 0}); !errors.Is(err, ErrNotEligible) {
		t.Fatalf("ValidateConfig = %v", err)
	}
	// A better response into an ineligible coin must not exist.
	s := Config{1, 1}
	for _, c := range g.BetterResponses(s, 1) {
		if c == 0 {
			t.Fatal("ineligible coin offered as better response")
		}
	}
}

func TestEligibilityNoCoinRejected(t *testing.T) {
	_, err := NewGame(
		[]Miner{{Name: "a", Power: 1}},
		[]Coin{{Name: "c"}},
		[]float64{1},
		WithEligibility(func(MinerID, CoinID) bool { return false }),
	)
	if !errors.Is(err, ErrNoEligibleCoin) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnrestrictedGameEligibleEverywhere(t *testing.T) {
	g := paperGame(t)
	if g.Restricted() {
		t.Fatal("unrestricted game reports Restricted")
	}
	for p := 0; p < g.NumMiners(); p++ {
		for c := 0; c < g.NumCoins(); c++ {
			if !g.Eligible(p, c) {
				t.Fatalf("Eligible(%d,%d) = false", p, c)
			}
		}
	}
}

func TestMustNewGamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewGame did not panic")
		}
	}()
	MustNewGame(nil, nil, nil)
}
