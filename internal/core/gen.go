package core

import (
	"fmt"

	"gameofcoins/internal/rng"
)

// GenSpec parameterizes random game generation for experiments and tests.
type GenSpec struct {
	Miners int
	Coins  int
	// PowerZipf is the Zipf exponent for mining powers; 0 draws powers
	// uniformly from (PowerLo, PowerHi].
	PowerZipf float64
	PowerLo   float64 // default 1
	PowerHi   float64 // default 100
	RewardLo  float64 // default 1
	RewardHi  float64 // default 100
}

// RandomGame draws a random game. Powers and rewards are perturbed with a
// tiny random jitter so that Assumption 2 (genericity) holds with
// overwhelming probability.
func RandomGame(r *rng.Rand, spec GenSpec) (*Game, error) {
	if spec.Miners <= 0 || spec.Coins <= 0 {
		return nil, fmt.Errorf("core: invalid spec %+v", spec)
	}
	if spec.PowerLo == 0 {
		spec.PowerLo = 1
	}
	if spec.PowerHi == 0 {
		spec.PowerHi = 100
	}
	if spec.RewardLo == 0 {
		spec.RewardLo = 1
	}
	if spec.RewardHi == 0 {
		spec.RewardHi = 100
	}
	miners := make([]Miner, spec.Miners)
	if spec.PowerZipf > 0 {
		weights := rng.Zipf(spec.Miners, spec.PowerZipf, spec.PowerHi*float64(spec.Miners)/2)
		for i := range miners {
			jitter := 1 + 1e-7*r.Float64()
			miners[i] = Miner{Name: fmt.Sprintf("p%d", i), Power: weights[i] * jitter}
		}
	} else {
		for i := range miners {
			power := spec.PowerLo + (spec.PowerHi-spec.PowerLo)*r.Float64()
			miners[i] = Miner{Name: fmt.Sprintf("p%d", i), Power: power}
		}
	}
	coins := make([]Coin, spec.Coins)
	rewards := make([]float64, spec.Coins)
	for c := range coins {
		coins[c] = Coin{Name: fmt.Sprintf("c%d", c)}
		rewards[c] = spec.RewardLo + (spec.RewardHi-spec.RewardLo)*r.Float64()
	}
	return NewGame(miners, coins, rewards)
}

// RandomConfig draws a uniform random valid configuration of g.
func RandomConfig(r *rng.Rand, g *Game) Config {
	s := make(Config, g.NumMiners())
	for p := range s {
		for {
			c := r.Intn(g.NumCoins())
			if g.Eligible(p, c) {
				s[p] = c
				break
			}
		}
	}
	return s
}
