package core

import (
	"encoding/json"
	"fmt"
)

// gameJSON is the wire form of a Game. Eligibility is encoded as an
// explicit matrix (rows = miners in sorted order) when restricted.
type gameJSON struct {
	Miners   []minerJSON `json:"miners"`
	Coins    []coinJSON  `json:"coins"`
	Rewards  []float64   `json:"rewards"`
	Epsilon  float64     `json:"epsilon"`
	Eligible [][]bool    `json:"eligible,omitempty"`
}

type minerJSON struct {
	Name  string  `json:"name"`
	Power float64 `json:"power"`
}

type coinJSON struct {
	Name string `json:"name"`
}

// MarshalJSON implements json.Marshaler. The encoded miner order is the
// game's sorted order, so round-tripping preserves MinerIDs.
func (g *Game) MarshalJSON() ([]byte, error) {
	out := gameJSON{
		Rewards: g.Rewards(),
		Epsilon: g.eps,
	}
	for _, m := range g.miners {
		out.Miners = append(out.Miners, minerJSON{Name: m.Name, Power: m.Power})
	}
	for _, c := range g.coins {
		out.Coins = append(out.Coins, coinJSON{Name: c.Name})
	}
	if g.eligible != nil {
		out.Eligible = make([][]bool, len(g.eligible))
		for p := range g.eligible {
			out.Eligible[p] = append([]bool(nil), g.eligible[p]...)
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler; it validates through NewGame,
// so a decoded Game satisfies the same invariants as a constructed one.
func (g *Game) UnmarshalJSON(data []byte) error {
	var in gameJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("core: decode game: %w", err)
	}
	miners := make([]Miner, len(in.Miners))
	for i, m := range in.Miners {
		miners[i] = Miner{Name: m.Name, Power: m.Power}
	}
	coins := make([]Coin, len(in.Coins))
	for i, c := range in.Coins {
		coins[i] = Coin{Name: c.Name}
	}
	opts := []Option{WithEpsilon(in.Epsilon)}
	if in.Eligible != nil {
		if len(in.Eligible) != len(miners) {
			return fmt.Errorf("core: decode game: eligibility rows %d != miners %d", len(in.Eligible), len(miners))
		}
		matrix := in.Eligible
		for p := range matrix {
			if len(matrix[p]) != len(coins) {
				return fmt.Errorf("core: decode game: eligibility row %d has %d cols", p, len(matrix[p]))
			}
		}
		opts = append(opts, WithEligibility(func(p MinerID, c CoinID) bool { return matrix[p][c] }))
	}
	ng, err := NewGame(miners, coins, in.Rewards, opts...)
	if err != nil {
		return fmt.Errorf("core: decode game: %w", err)
	}
	// The wire order is the sorted order, but NewGame re-sorts defensively;
	// verify the order survived so MinerIDs stay stable across the wire.
	for p := range miners {
		if ng.miners[p] != miners[p] {
			return fmt.Errorf("core: decode game: miner order not canonical (miner %d)", p)
		}
	}
	*g = *ng
	return nil
}
