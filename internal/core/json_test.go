package core

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGameJSONRoundTrip(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "big", Power: 7}, {Name: "small", Power: 2}},
		[]Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 19},
		WithEpsilon(1e-6),
	)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Game
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.NumMiners() != 2 || back.NumCoins() != 2 {
		t.Fatal("sizes lost")
	}
	if back.Miner(0).Name != "big" || back.Power(1) != 2 {
		t.Fatal("miners lost")
	}
	if back.Reward(1) != 19 || back.Epsilon() != 1e-6 {
		t.Fatal("rewards or epsilon lost")
	}
	// Behaviour must survive: same equilibria predicate.
	for _, s := range []Config{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		if g.IsEquilibrium(s) != back.IsEquilibrium(s) {
			t.Fatalf("equilibrium predicate differs at %v", s)
		}
	}
}

func TestGameJSONRoundTripEligibility(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "a", Power: 3}, {Name: "b", Power: 1}},
		[]Coin{{Name: "x"}, {Name: "y"}},
		[]float64{1, 2},
		WithEligibility(func(p MinerID, c CoinID) bool { return p != 1 || c == 1 }),
	)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var back Game
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Restricted() {
		t.Fatal("restriction lost")
	}
	for p := 0; p < 2; p++ {
		for c := 0; c < 2; c++ {
			if g.Eligible(p, c) != back.Eligible(p, c) {
				t.Fatalf("eligibility differs at (%d,%d)", p, c)
			}
		}
	}
}

func TestGameJSONRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"no miners":       `{"miners":[],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0}`,
		"bad reward":      `{"miners":[{"name":"a","power":1}],"coins":[{"name":"c"}],"rewards":[0],"epsilon":0}`,
		"arity":           `{"miners":[{"name":"a","power":1}],"coins":[{"name":"c"}],"rewards":[1,2],"epsilon":0}`,
		"bad eligibility": `{"miners":[{"name":"a","power":1}],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0,"eligible":[[true],[false]]}`,
		"ragged matrix":   `{"miners":[{"name":"a","power":1}],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0,"eligible":[[]]}`,
		"non-canonical":   `{"miners":[{"name":"a","power":1},{"name":"b","power":5}],"coins":[{"name":"c"}],"rewards":[1],"epsilon":0}`,
		"malformed":       `{`,
	}
	for name, raw := range cases {
		var g Game
		if err := json.Unmarshal([]byte(raw), &g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGameJSONFieldNames(t *testing.T) {
	g := MustNewGame(
		[]Miner{{Name: "a", Power: 1}},
		[]Coin{{Name: "c"}},
		[]float64{1},
	)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"miners"`, `"coins"`, `"rewards"`, `"epsilon"`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("encoded game missing %s: %s", want, data)
		}
	}
}
