package design

import (
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/rng"
)

// NaiveResult reports a NaiveOneShot attempt.
type NaiveResult struct {
	Final   core.Config
	Reached bool
	Cost    float64
	Steps   int
}

// NaiveOneShot is the obvious manipulation strategy Algorithm 2 is measured
// against (ablation experiment E13): in a single shot, deploy the reward
// function that makes the *target* configuration sf look ideal — every coin
// priced so that sf's RPUs are all equal to a level above the current
// maximum — let better-response learning converge once, then revert to the
// base rewards and let learning converge again.
//
// Under the one-shot rewards sf is an equilibrium, but typically not the
// only one, and learning from s0 is free to settle anywhere; the staged
// mechanism exists precisely because single-shot subsidies cannot steer the
// *path*. NaiveOneShot therefore frequently ends at the wrong equilibrium,
// which is the quantitative content of E13.
func NaiveOneShot(g *core.Game, s0, sf core.Config, sched learning.Scheduler, r *rng.Rand) (NaiveResult, error) {
	if err := g.ValidateConfig(s0); err != nil {
		return NaiveResult{}, err
	}
	if err := g.ValidateConfig(sf); err != nil {
		return NaiveResult{}, err
	}
	// Price every coin occupied in sf at level·M_c(sf) so that sf's RPUs
	// all equal `level`, chosen above the current max RPU so the subsidy is
	// a genuine increase; empty-in-sf coins keep their base reward.
	level := 2 * MaxOccupiedRPU(g, s0)
	powersAtTarget := g.CoinPowers(sf)
	rewards := g.Rewards()
	for c := range rewards {
		if powersAtTarget[c] > 0 {
			if subsidized := level * powersAtTarget[c]; subsidized > rewards[c] {
				rewards[c] = subsidized
			}
		}
	}
	subsidized, err := g.WithRewards(rewards)
	if err != nil {
		return NaiveResult{}, err
	}
	var res NaiveResult
	res.Cost = PhaseCost(g.Rewards(), rewards)
	lr, err := learning.Run(subsidized, s0, sched, r, learning.Options{})
	if err != nil {
		return NaiveResult{}, fmt.Errorf("design: naive subsidized phase: %w", err)
	}
	res.Steps += lr.Steps
	// Revert to base rewards; the system relaxes from wherever it landed.
	lr2, err := learning.Run(g, lr.Final, sched, r, learning.Options{})
	if err != nil {
		return NaiveResult{}, fmt.Errorf("design: naive relaxation phase: %w", err)
	}
	res.Steps += lr2.Steps
	res.Final = lr2.Final
	res.Reached = res.Final.Equal(sf)
	return res, nil
}
