package design

import (
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/rng"
)

func TestNaiveOneShotRunsAndAccounts(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	res, err := NaiveOneShot(g, eqs[0], eqs[1], learning.NewRandom(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Fatalf("naive subsidy cost = %v", res.Cost)
	}
	if !g.IsEquilibrium(res.Final) {
		t.Fatalf("naive relaxation ended off-equilibrium at %v", res.Final)
	}
	if res.Reached != res.Final.Equal(eqs[1]) {
		t.Fatal("Reached flag inconsistent with Final")
	}
}

// TestStagedBeatsNaive is the E13 ablation at unit-test scale: across random
// games and pairs, the staged mechanism reaches the target every time while
// the naive one-shot subsidy misses at least sometimes.
func TestStagedBeatsNaive(t *testing.T) {
	r := rng.New(31)
	stagedHits, naiveHits, pairs := 0, 0, 0
	for trial := 0; trial < 200 && pairs < 40; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 2})
		if err != nil {
			continue
		}
		if !strictlyDescending(g) {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		d, err := NewDesigner(g, Options{})
		if err != nil {
			continue
		}
		for _, s0 := range eqs {
			for _, sf := range eqs {
				if s0.Equal(sf) || pairs >= 40 {
					continue
				}
				pairs++
				if res, err := d.Run(s0, sf, r.Split()); err == nil && res.Final.Equal(sf) {
					stagedHits++
				}
				if res, err := NaiveOneShot(g, s0, sf, learning.NewRandom(), r.Split()); err == nil && res.Reached {
					naiveHits++
				}
			}
		}
	}
	if pairs < 10 {
		t.Fatalf("only %d pairs exercised", pairs)
	}
	if stagedHits != pairs {
		t.Fatalf("staged mechanism missed: %d/%d", stagedHits, pairs)
	}
	if naiveHits >= pairs {
		t.Fatalf("naive one-shot also hit %d/%d; ablation shows nothing", naiveHits, pairs)
	}
	t.Logf("staged %d/%d, naive %d/%d", stagedHits, pairs, naiveHits, pairs)
}

func TestNaiveOneShotValidates(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	if _, err := NaiveOneShot(g, core.Config{0}, eqs[0], learning.NewRandom(), rng.New(1)); err == nil {
		t.Fatal("short s0 accepted")
	}
	if _, err := NaiveOneShot(g, eqs[0], core.Config{9, 9, 9, 9, 9}, learning.NewRandom(), rng.New(1)); err == nil {
		t.Fatal("invalid sf accepted")
	}
}
