// Package design implements Section 5 of "Game of Coins": the dynamic
// reward design mechanism that moves a system of better-response learners
// from any initial pure equilibrium s₀ to any desired pure equilibrium s_f
// by temporarily inflating coin rewards, at bounded total cost.
//
// # The algorithm (paper's Algorithm 2)
//
// The mechanism runs n = |Π| stages. Stage i establishes the intermediate
// target sⁱ (Equation 3): miners p₁,…,pᵢ sit at their final coins and
// pᵢ₊₁,…,p_n are parked at s_f.pᵢ. Stage 1 uses the reward function H₁
// (Equation 5), which makes the coin s_f.p₁ so valuable that every
// better-response learning collapses onto it. Stage i > 1 repeatedly picks
// the mover m_i(s) — the largest-index miner not yet at s_f.pᵢ — and the
// anchor a_i(s) = m_i(s)−1, and deploys the reward function H_i (Equation 4)
// that (a) equalizes the RPUs of all coins except the target, and (b) prices
// the target so that exactly the mover (and every smaller miner, but they
// move later) benefits from switching to it; Lemma 1 shows each learning
// phase then lands in a configuration where the mover has joined the target
// and no larger miner has left its slot, so the stage's progress rank Φᵢ
// strictly increases and the stage terminates (Theorem 2).
//
// # Fidelity notes (deviations from the paper's literal equations)
//
//  1. Equation 5 sets H₁(s_f.p₁) = max F · Σ m_p, which dominates every
//     alternative only when all powers are ≥ 1 (with fractional powers a
//     lone miner elsewhere can still earn more). We use the power-scale-free
//     constant 2 · max F · Σm / min m, which coincides in spirit and
//     guarantees dominance for arbitrary positive powers.
//  2. Equation 4 assigns an empty non-target coin the reward R(s)·0 = 0,
//     which is outside R⁺ and would leave its RPU undefined. We give such
//     coins the negligible positive reward R(s)·min m/2, which no miner can
//     prefer (a deviator would earn at most R(s)·min m/2 < m_p·R(s)), and
//     define R(s) = max RPU over *occupied* coins.
//  3. Algorithm 1's constraint H(s)(c) ≥ F(c) is violated by the paper's own
//     Equation 4 on empty coins (see 2); Designer accounts manipulation cost
//     as Σ_c max(0, H(c) − F(c)) per learning phase, i.e. only reward
//     *increases* cost the manipulator.
package design

import (
	"errors"
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/rng"
)

// Errors returned by the designer.
var (
	ErrNotEquilibrium = errors.New("design: configuration is not a pure equilibrium of the base game")
	ErrRestricted     = errors.New("design: reward design requires an unrestricted game")
	ErrStageStuck     = errors.New("design: stage iteration limit exceeded")
)

// StageTarget returns the paper's intermediate configuration sⁱ
// (Equation 3) for stage ∈ [1, n]: miners 0…stage−1 (0-based) at their final
// coins, all later miners at sf[stage−1].
func StageTarget(sf core.Config, stage int) core.Config {
	t := stage - 1 // 0-based index of p_i
	s := make(core.Config, len(sf))
	for k := range s {
		if k <= t {
			s[k] = sf[k]
		} else {
			s[k] = sf[t]
		}
	}
	return s
}

// Mover returns the paper's m_i(s) as a 0-based miner index: the
// largest-index miner not yet at the stage target coin, equivalently the
// minimal j such that every later miner is at the target. ok is false when
// every miner from the stage onward is already at the target.
func Mover(s core.Config, target core.CoinID) (core.MinerID, bool) {
	for p := len(s) - 1; p >= 0; p-- {
		if s[p] != target {
			return p, true
		}
	}
	return 0, false
}

// MaxOccupiedRPU returns the paper's R(s): the maximum RPU over coins, with
// the maximum restricted to occupied coins so that it is finite (see the
// package fidelity notes).
func MaxOccupiedRPU(g *core.Game, s core.Config) float64 {
	powers := g.CoinPowers(s)
	best := 0.0
	for c, m := range powers {
		if m == 0 {
			continue
		}
		if r := g.Reward(c) / m; r > best {
			best = r
		}
	}
	return best
}

// StageOneRewards returns H₁ (Equation 5, generalized per fidelity note 1):
// the stage-1 target coin gets a reward so large that mining it is dominant
// for every miner even when all miners share it; every other coin keeps its
// original reward.
func StageOneRewards(g *core.Game, target core.CoinID) []float64 {
	maxF := 0.0
	for c := 0; c < g.NumCoins(); c++ {
		if f := g.Reward(c); f > maxF {
			maxF = f
		}
	}
	minPower := g.Power(g.NumMiners() - 1) // miners sorted descending
	rewards := g.Rewards()
	rewards[target] = 2 * maxF * g.TotalPower() / minPower
	return rewards
}

// StageRewards returns H_i(s) (Equation 4) for stage i > 1: every occupied
// non-target coin c gets R(s)·M_c(s) (equalizing RPUs at R(s)), the target
// gets R(s)·(M_target(s) + m_anchor), and empty non-target coins get the
// negligible reward R(s)·min m/2 (fidelity note 2).
func StageRewards(g *core.Game, s core.Config, target core.CoinID, anchor core.MinerID) []float64 {
	r := MaxOccupiedRPU(g, s)
	powers := g.CoinPowers(s)
	minPower := g.Power(g.NumMiners() - 1)
	rewards := make([]float64, g.NumCoins())
	for c := range rewards {
		switch {
		case c == target:
			rewards[c] = r * (powers[c] + g.Power(anchor))
		case powers[c] > 0:
			rewards[c] = r * powers[c]
		default:
			rewards[c] = r * minPower / 2
		}
	}
	return rewards
}

// PhaseCost is the manipulator's cost of running one learning phase under
// designed rewards H relative to the base rewards F: Σ_c max(0, H(c)−F(c)).
func PhaseCost(base, designed []float64) float64 {
	var cost float64
	for c := range base {
		if d := designed[c] - base[c]; d > 0 {
			cost += d
		}
	}
	return cost
}

// PhaseStats describes one learning phase (one iteration of a stage's
// repeat loop).
type PhaseStats struct {
	Stage     int // 1-based stage number
	Iteration int // 1-based iteration within the stage
	Mover     core.MinerID
	Steps     int     // better-response steps taken in the phase
	Cost      float64 // PhaseCost of the deployed rewards
}

// StageStats aggregates a completed stage.
type StageStats struct {
	Stage      int
	Iterations int
	Steps      int
	Cost       float64
}

// Result reports a completed reward design run.
type Result struct {
	Final      core.Config
	Stages     []StageStats
	Phases     []PhaseStats
	TotalSteps int
	TotalCost  float64
}

// Options configure a Designer run.
type Options struct {
	// NewScheduler supplies a fresh scheduler per learning phase (schedulers
	// may be stateful). Defaults to the uniform-random scheduler, the
	// weakest adversary assumption.
	NewScheduler func() learning.Scheduler
	// MaxPhaseSteps caps better-response steps within one learning phase
	// (0 = learning package default).
	MaxPhaseSteps int
	// MaxStageIterations caps the repeat loop of a stage; 0 means
	// 4·2^min(n,16) + 16, comfortably above the Φ-rank bound.
	MaxStageIterations int
	// CheckInvariants enables runtime verification of Lemma 1's Ψ₁–Ψ₅
	// invariants during every within-stage learning phase, plus the
	// first-move uniqueness property. Violations abort the run with a
	// descriptive error. Intended for tests; costs O(n) per step.
	CheckInvariants bool
}

// Designer executes the dynamic reward design mechanism on a base game.
type Designer struct {
	game *core.Game
	opts Options
}

// NewDesigner returns a Designer for the base game g (with the original
// reward function F). Reward design is defined for unrestricted games only.
func NewDesigner(g *core.Game, opts Options) (*Designer, error) {
	if g.Restricted() {
		return nil, ErrRestricted
	}
	if opts.NewScheduler == nil {
		opts.NewScheduler = func() learning.Scheduler { return learning.NewRandom() }
	}
	if opts.MaxStageIterations == 0 {
		n := g.NumMiners()
		if n > 16 {
			n = 16
		}
		opts.MaxStageIterations = 4*(1<<n) + 16
	}
	return &Designer{game: g, opts: opts}, nil
}

// Run moves the system from the pure equilibrium s0 to the pure equilibrium
// sf through the staged mechanism, driving the supplied scheduler's
// better-response learning to convergence inside every phase. Both
// endpoints must be equilibria of the base game.
func (d *Designer) Run(s0, sf core.Config, r *rng.Rand) (Result, error) {
	g := d.game
	if err := g.ValidateConfig(s0); err != nil {
		return Result{}, err
	}
	if err := g.ValidateConfig(sf); err != nil {
		return Result{}, err
	}
	if !g.IsEquilibrium(s0) {
		return Result{}, fmt.Errorf("%w: initial %v", ErrNotEquilibrium, s0)
	}
	if !g.IsEquilibrium(sf) {
		return Result{}, fmt.Errorf("%w: desired %v", ErrNotEquilibrium, sf)
	}
	var res Result
	s := s0.Clone()
	n := g.NumMiners()
	for stage := 1; stage <= n; stage++ {
		st, ns, err := d.runStage(stage, s, sf, r)
		if err != nil {
			return Result{}, fmt.Errorf("design: stage %d: %w", stage, err)
		}
		s = ns
		res.Stages = append(res.Stages, st.stage)
		res.Phases = append(res.Phases, st.phases...)
		res.TotalSteps += st.stage.Steps
		res.TotalCost += st.stage.Cost
	}
	if !s.Equal(sf) {
		return Result{}, fmt.Errorf("design: terminated at %v, want %v", s, sf)
	}
	// sf is an equilibrium of the base game, so reverting to F keeps the
	// system there; re-verify as a safety net.
	if !g.IsEquilibrium(s) {
		return Result{}, fmt.Errorf("%w: final %v", ErrNotEquilibrium, s)
	}
	res.Final = s
	return res, nil
}

type stageOutcome struct {
	stage  StageStats
	phases []PhaseStats
}

func (d *Designer) runStage(stage int, s, sf core.Config, r *rng.Rand) (stageOutcome, core.Config, error) {
	g := d.game
	target := StageTarget(sf, stage)
	targetCoin := sf[stage-1]
	out := stageOutcome{stage: StageStats{Stage: stage}}
	for iter := 1; !s.Equal(target); iter++ {
		if iter > d.opts.MaxStageIterations {
			return out, s, fmt.Errorf("%w after %d iterations", ErrStageStuck, iter-1)
		}
		var rewards []float64
		var mover core.MinerID
		if stage == 1 {
			rewards = StageOneRewards(g, targetCoin)
			mover, _ = Mover(s, targetCoin)
		} else {
			m, ok := Mover(s, targetCoin)
			if !ok {
				// Every miner is at the target coin but s != sⁱ: impossible
				// inside T_i; indicates an invariant break upstream.
				return out, s, fmt.Errorf("design: no mover but stage %d incomplete at %v", stage, s)
			}
			if m < stage-1 {
				return out, s, fmt.Errorf("design: mover %d precedes stage miner %d at %v", m, stage-1, s)
			}
			mover = m
			rewards = StageRewards(g, s, targetCoin, m-1)
		}
		phased, err := g.WithRewards(rewards)
		if err != nil {
			return out, s, err
		}
		opts := learning.Options{MaxSteps: d.opts.MaxPhaseSteps}
		if d.opts.CheckInvariants && stage > 1 {
			inv := newInvariantChecker(g, s, sf, stage, mover)
			opts.Invariant = inv.check
		}
		lr, err := learning.Run(phased, s, d.opts.NewScheduler(), r, opts)
		if err != nil {
			return out, s, err
		}
		cost := PhaseCost(g.Rewards(), rewards)
		out.phases = append(out.phases, PhaseStats{
			Stage:     stage,
			Iteration: iter,
			Mover:     mover,
			Steps:     lr.Steps,
			Cost:      cost,
		})
		out.stage.Iterations = iter
		out.stage.Steps += lr.Steps
		out.stage.Cost += cost
		if d.opts.CheckInvariants && stage > 1 {
			if lr.Final[mover] != targetCoin {
				return out, s, fmt.Errorf("design: Lemma 1(2) violated: mover %d at coin %d, want %d",
					mover, lr.Final[mover], targetCoin)
			}
			for k := 0; k < mover; k++ {
				if lr.Final[k] != s[k] {
					return out, s, fmt.Errorf("design: Lemma 1(1) violated: miner %d moved %d→%d",
						k, s[k], lr.Final[k])
				}
			}
		}
		s = lr.Final
	}
	return out, s, nil
}
