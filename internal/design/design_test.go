package design

import (
	"errors"
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/rng"
)

// strictGame returns a game with strictly descending powers (§5 requires
// m_{p1} > m_{p2} > … > m_{pn}) that satisfies Assumptions 1–2.
func strictGame(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{17, 19},
	)
}

func TestStageTarget(t *testing.T) {
	sf := core.Config{1, 0, 1, 0}
	tests := []struct {
		stage int
		want  core.Config
	}{
		{1, core.Config{1, 1, 1, 1}},
		{2, core.Config{1, 0, 0, 0}},
		{3, core.Config{1, 0, 1, 1}},
		{4, core.Config{1, 0, 1, 0}}, // sⁿ = s_f
	}
	for _, tt := range tests {
		if got := StageTarget(sf, tt.stage); !got.Equal(tt.want) {
			t.Errorf("StageTarget(stage %d) = %v, want %v", tt.stage, got, tt.want)
		}
	}
}

func TestMover(t *testing.T) {
	s := core.Config{0, 1, 0, 1, 1}
	if m, ok := Mover(s, 1); !ok || m != 2 {
		t.Fatalf("Mover = %d, %v; want 2, true", m, ok)
	}
	if m, ok := Mover(s, 0); !ok || m != 4 {
		t.Fatalf("Mover = %d, %v; want 4, true", m, ok)
	}
	if _, ok := Mover(core.Config{1, 1}, 1); ok {
		t.Fatal("Mover on complete config should report ok=false")
	}
}

func TestMaxOccupiedRPU(t *testing.T) {
	g := strictGame(t)
	s := core.UniformConfig(5, 0) // coin 1 empty
	want := g.Reward(0) / g.TotalPower()
	if got := MaxOccupiedRPU(g, s); got != want {
		t.Fatalf("R(s) = %v, want %v", got, want)
	}
	// Split: R is the max of the two occupied RPUs.
	split := core.Config{0, 1, 0, 1, 0}
	r0 := g.Reward(0) / g.CoinPower(split, 0)
	r1 := g.Reward(1) / g.CoinPower(split, 1)
	want = r0
	if r1 > r0 {
		want = r1
	}
	if got := MaxOccupiedRPU(g, split); got != want {
		t.Fatalf("R(split) = %v, want %v", got, want)
	}
}

func TestStageOneRewardsDominance(t *testing.T) {
	g := strictGame(t)
	rewards := StageOneRewards(g, 1)
	phased, err := g.WithRewards(rewards)
	if err != nil {
		t.Fatal(err)
	}
	// In the H₁ game, moving to the target must be a better response for
	// every miner from every configuration where it is not already there.
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		for p := 0; p < g.NumMiners(); p++ {
			if s[p] != 1 && !phased.IsBetterResponse(s, p, 1) {
				t.Fatalf("H₁ not dominant: miner %d at %v", p, s)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// And the all-at-target configuration must be the unique equilibrium.
	eqs, err := equilibria.Enumerate(phased)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) != 1 || !eqs[0].Equal(core.UniformConfig(5, 1)) {
		t.Fatalf("H₁ equilibria = %v", eqs)
	}
}

func TestStageRewardsEqualizeRPUs(t *testing.T) {
	g := strictGame(t)
	s := core.Config{0, 0, 0, 1, 1} // mixed occupancy
	target := core.CoinID(1)
	mover, ok := Mover(s, target)
	if !ok {
		t.Fatal("no mover")
	}
	rewards := StageRewards(g, s, target, mover-1)
	r := MaxOccupiedRPU(g, s)
	phased, err := g.WithRewards(rewards)
	if err != nil {
		t.Fatal(err)
	}
	// Non-target occupied coins have RPU exactly R(s).
	if got := phased.RPU(s, 0); !approx(got, r) {
		t.Fatalf("RPU(c0) = %v, want %v", got, r)
	}
	// The target's RPU strictly exceeds R(s).
	if got := phased.RPU(s, target); got <= r {
		t.Fatalf("target RPU %v ≤ R %v", got, r)
	}
}

func TestStageRewardsOnlyMoverImproves(t *testing.T) {
	// The crux of Lemma 1: under H_i, the unique better response in s is the
	// mover switching to the target.
	g := strictGame(t)
	sf := mustEquilibria(t, g)[0]
	// Build a stage-2 starting configuration s¹ (everyone at sf.p1's coin).
	s := StageTarget(sf, 1)
	target := sf[1]
	if s[1] == target {
		t.Skip("stage 2 trivial for this equilibrium")
	}
	mover, ok := Mover(s, target)
	if !ok {
		t.Fatal("no mover")
	}
	rewards := StageRewards(g, s, target, mover-1)
	phased, err := g.WithRewards(rewards)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumMiners(); p++ {
		brs := phased.BetterResponses(s, p)
		if p == mover {
			if len(brs) != 1 || brs[0] != target {
				t.Fatalf("mover %d better responses = %v, want [%d]", p, brs, target)
			}
		} else if len(brs) != 0 {
			t.Fatalf("non-mover %d has better responses %v", p, brs)
		}
	}
}

func mustEquilibria(t *testing.T, g *core.Game) []core.Config {
	t.Helper()
	eqs, err := equilibria.Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) < 2 {
		t.Fatalf("need ≥2 equilibria, got %d", len(eqs))
	}
	return eqs
}

func TestPhaseCost(t *testing.T) {
	base := []float64{10, 20}
	designed := []float64{15, 5}
	if got := PhaseCost(base, designed); got != 5 {
		t.Fatalf("cost = %v, want 5 (decreases are free)", got)
	}
}

// TestDesignerAllPairs is the Theorem 2 test: for every ordered pair of
// distinct equilibria (s₀, s_f), the mechanism moves the system to s_f.
func TestDesignerAllPairs(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	d, err := NewDesigner(g, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2024)
	pairs := 0
	for _, s0 := range eqs {
		for _, sf := range eqs {
			if s0.Equal(sf) {
				continue
			}
			pairs++
			res, err := d.Run(s0, sf, r.Split())
			if err != nil {
				t.Fatalf("%v → %v: %v", s0, sf, err)
			}
			if !res.Final.Equal(sf) {
				t.Fatalf("%v → %v: ended at %v", s0, sf, res.Final)
			}
			if !g.IsEquilibrium(res.Final) {
				t.Fatal("final not stable under original rewards")
			}
			if res.TotalCost <= 0 {
				t.Fatalf("zero design cost for a non-trivial move")
			}
			if len(res.Stages) != g.NumMiners() {
				t.Fatalf("got %d stages, want %d", len(res.Stages), g.NumMiners())
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no equilibrium pairs exercised")
	}
}

// TestDesignerAllSchedulers: Theorem 2 holds for any better-response
// learning, so every scheduler must work.
func TestDesignerAllSchedulers(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	s0, sf := eqs[0], eqs[1]
	for _, name := range []string{"round-robin", "random", "max-gain", "min-gain", "smallest-first", "largest-first"} {
		mk := schedulerFactory(name)
		d, err := NewDesigner(g, Options{NewScheduler: mk, CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(s0, sf, rng.New(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Final.Equal(sf) {
			t.Fatalf("%s: ended at %v", name, res.Final)
		}
	}
}

func schedulerFactory(name string) func() learning.Scheduler {
	return func() learning.Scheduler {
		for _, s := range learning.AllSchedulers() {
			if s.Name() == name {
				return s
			}
		}
		panic("unknown scheduler " + name)
	}
}

// TestDesignerRandomGames sweeps random strictly-descending-power games and
// random equilibrium pairs.
func TestDesignerRandomGames(t *testing.T) {
	r := rng.New(99)
	done := 0
	for trial := 0; trial < 60 && done < 15; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 4 + r.Intn(3), Coins: 2 + r.Intn(2)})
		if err != nil {
			t.Fatal(err)
		}
		if !strictlyDescending(g) {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		done++
		d, err := NewDesigner(g, Options{CheckInvariants: true})
		if err != nil {
			t.Fatal(err)
		}
		s0 := eqs[r.Intn(len(eqs))]
		sf := eqs[r.Intn(len(eqs))]
		res, err := d.Run(s0, sf, r.Split())
		if err != nil {
			t.Fatalf("trial %d: %v → %v: %v", trial, s0, sf, err)
		}
		if !res.Final.Equal(sf) {
			t.Fatalf("trial %d: ended at %v, want %v", trial, res.Final, sf)
		}
	}
	if done < 5 {
		t.Fatalf("exercised only %d games", done)
	}
}

func strictlyDescending(g *core.Game) bool {
	for p := 0; p+1 < g.NumMiners(); p++ {
		if !(g.Power(p) > g.Power(p+1)) {
			return false
		}
	}
	return true
}

func TestDesignerIdentityPair(t *testing.T) {
	// Moving from sf to sf must succeed (possibly trivially but the stage
	// machinery still runs stage 1, which displaces everyone and brings
	// them back via later stages).
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	d, err := NewDesigner(g, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(eqs[0], eqs[0], rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Equal(eqs[0]) {
		t.Fatalf("ended at %v", res.Final)
	}
}

func TestDesignerRejectsNonEquilibrium(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	d, err := NewDesigner(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unstable := core.UniformConfig(g.NumMiners(), 0)
	if g.IsEquilibrium(unstable) {
		t.Skip("uniform config stable for this game")
	}
	if _, err := d.Run(unstable, eqs[0], rng.New(1)); !errors.Is(err, ErrNotEquilibrium) {
		t.Fatalf("err = %v", err)
	}
	if _, err := d.Run(eqs[0], unstable, rng.New(1)); !errors.Is(err, ErrNotEquilibrium) {
		t.Fatalf("err = %v", err)
	}
}

func TestDesignerRejectsRestrictedGame(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "a", Power: 2}, {Name: "b", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 2},
		core.WithEligibility(func(core.MinerID, core.CoinID) bool { return true }),
	)
	if _, err := NewDesigner(g, Options{}); !errors.Is(err, ErrRestricted) {
		t.Fatalf("err = %v", err)
	}
}

func TestDesignerPhaseAccounting(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	d, err := NewDesigner(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(eqs[0], eqs[1], rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var steps int
	var cost float64
	for _, ph := range res.Phases {
		steps += ph.Steps
		cost += ph.Cost
		if ph.Stage < 1 || ph.Stage > g.NumMiners() {
			t.Fatalf("phase stage out of range: %+v", ph)
		}
	}
	if steps != res.TotalSteps {
		t.Fatalf("phase steps %d != total %d", steps, res.TotalSteps)
	}
	if !approx(cost, res.TotalCost) {
		t.Fatalf("phase cost %v != total %v", cost, res.TotalCost)
	}
	var stageSteps int
	for _, st := range res.Stages {
		stageSteps += st.Steps
	}
	if stageSteps != res.TotalSteps {
		t.Fatalf("stage steps %d != total %d", stageSteps, res.TotalSteps)
	}
}

func TestDesignerDeterministicWithSeed(t *testing.T) {
	g := strictGame(t)
	eqs := mustEquilibria(t, g)
	d, err := NewDesigner(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := d.Run(eqs[0], eqs[1], rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Run(eqs[0], eqs[1], rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSteps != b.TotalSteps || !approx(a.TotalCost, b.TotalCost) {
		t.Fatal("design run not reproducible under fixed seed")
	}
}

// TestDesignerFractionalPowers exercises fidelity note 1: powers below 1
// must still work with the generalized H₁.
func TestDesignerFractionalPowers(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 0.9},
			{Name: "p2", Power: 0.61},
			{Name: "p3", Power: 0.37},
			{Name: "p4", Power: 0.23},
			{Name: "p5", Power: 0.11},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1.7, 2.3},
	)
	eqs, err := equilibria.Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) < 2 {
		t.Skip("instance has a unique equilibrium")
	}
	d, err := NewDesigner(g, Options{CheckInvariants: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(eqs[0], eqs[1], rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Final.Equal(eqs[1]) {
		t.Fatalf("ended at %v", res.Final)
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	if scale < 1 {
		scale = 1
	}
	return d <= 1e-9*scale
}
