package design

import (
	"fmt"

	"gameofcoins/internal/core"
)

// invariantChecker enforces Lemma 1's Ψ₁–Ψ₅ invariants on every
// configuration reached during one within-stage learning phase. The paper
// proves these hold by induction on better-response steps; the checker turns
// that proof into an executable assertion.
//
// With s the phase's starting configuration, c = s_f.p_{i-1}, c' = s_f.p_i,
// mover m = m_i(s), and s⁰ = (s₋m, c'):
//
//	Ψ₁ ∀k < m:          s'.p_k = s.p_k
//	Ψ₂                   s'.p_m = c'
//	Ψ₃ ∀k > m:          s'.p_k ∈ {c, c'}
//	Ψ₄                   M_c(s⁰) ≤ M_c(s') ≤ M_c(s)
//	Ψ₅                   M_c'(s)  ≤ M_c'(s') ≤ M_c'(s⁰)
//
// The very first step of the phase is the mover's unique better response
// (s → s⁰); the checker accepts s itself as the pre-step state and enforces
// the Ψ properties on every subsequent configuration.
type invariantChecker struct {
	g         *core.Game
	start     core.Config
	mover     core.MinerID
	coinFrom  core.CoinID // c  = s_f.p_{i-1}
	coinTo    core.CoinID // c' = s_f.p_i
	mcStart   float64     // M_c(s)
	mcAfter   float64     // M_c(s⁰)
	mcpStart  float64     // M_c'(s)
	mcpAfter  float64     // M_c'(s⁰)
	seenFirst bool
	tol       float64
}

func newInvariantChecker(g *core.Game, s, sf core.Config, stage int, mover core.MinerID) *invariantChecker {
	coinFrom := sf[stage-2]
	coinTo := sf[stage-1]
	s0 := g.Apply(s, mover, coinTo)
	return &invariantChecker{
		g:        g,
		start:    s.Clone(),
		mover:    mover,
		coinFrom: coinFrom,
		coinTo:   coinTo,
		mcStart:  g.CoinPower(s, coinFrom),
		mcAfter:  g.CoinPower(s0, coinFrom),
		mcpStart: g.CoinPower(s, coinTo),
		mcpAfter: g.CoinPower(s0, coinTo),
		tol:      1e-9 * (1 + g.TotalPower()),
	}
}

// check validates one reached configuration; it is wired into
// learning.Options.Invariant.
func (ic *invariantChecker) check(s core.Config) error {
	if !ic.seenFirst {
		// The first applied step must be the mover's unique better response
		// s → s⁰ = (s₋mover, c').
		ic.seenFirst = true
		for k := range s {
			want := ic.start[k]
			if k == ic.mover {
				want = ic.coinTo
			}
			if s[k] != want {
				return fmt.Errorf("first step is not the mover's move to c': miner %d at %d", k, s[k])
			}
		}
		return nil
	}
	for k := 0; k < ic.mover; k++ { // Ψ₁
		if s[k] != ic.start[k] {
			return fmt.Errorf("Ψ₁: miner %d moved %d→%d", k, ic.start[k], s[k])
		}
	}
	if s[ic.mover] != ic.coinTo { // Ψ₂
		return fmt.Errorf("Ψ₂: mover %d left target: at %d", ic.mover, s[ic.mover])
	}
	for k := ic.mover + 1; k < len(s); k++ { // Ψ₃
		if s[k] != ic.coinFrom && s[k] != ic.coinTo {
			return fmt.Errorf("Ψ₃: miner %d at coin %d ∉ {%d,%d}", k, s[k], ic.coinFrom, ic.coinTo)
		}
	}
	mc := ic.g.CoinPower(s, ic.coinFrom)
	if mc < ic.mcAfter-ic.tol || mc > ic.mcStart+ic.tol { // Ψ₄
		return fmt.Errorf("Ψ₄: M_c = %v ∉ [%v, %v]", mc, ic.mcAfter, ic.mcStart)
	}
	mcp := ic.g.CoinPower(s, ic.coinTo)
	if mcp < ic.mcpStart-ic.tol || mcp > ic.mcpAfter+ic.tol { // Ψ₅
		return fmt.Errorf("Ψ₅: M_c' = %v ∉ [%v, %v]", mcp, ic.mcpStart, ic.mcpAfter)
	}
	return nil
}
