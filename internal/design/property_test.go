package design

import (
	"testing"
	"testing/quick"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// TestStageTargetProperties checks Equation 3's invariants with
// testing/quick: sⁿ = s_f, s¹ is uniform on s_f.p₁, and consecutive stage
// targets differ only on miners after the stage index.
func TestStageTargetProperties(t *testing.T) {
	f := func(seed uint32, nRaw, mRaw uint8) bool {
		n := 1 + int(nRaw%10)
		m := 1 + int(mRaw%4)
		r := rng.New(uint64(seed))
		sf := make(core.Config, n)
		for i := range sf {
			sf[i] = r.Intn(m)
		}
		// sⁿ = s_f.
		if !StageTarget(sf, n).Equal(sf) {
			return false
		}
		// s¹ is uniform on sf[0].
		s1 := StageTarget(sf, 1)
		for _, c := range s1 {
			if c != sf[0] {
				return false
			}
		}
		// Stage i fixes miners 0..i-1 at their final coins.
		for stage := 1; stage <= n; stage++ {
			si := StageTarget(sf, stage)
			for k := 0; k < stage; k++ {
				if si[k] != sf[k] {
					return false
				}
			}
			for k := stage; k < n; k++ {
				if si[k] != sf[stage-1] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMoverProperties: the mover is always the largest-index mismatch, and
// applying the mover's move strictly decreases the mismatch count.
func TestMoverProperties(t *testing.T) {
	f := func(seed uint32, nRaw, mRaw uint8) bool {
		n := 1 + int(nRaw%10)
		m := 1 + int(mRaw%4)
		r := rng.New(uint64(seed))
		s := make(core.Config, n)
		for i := range s {
			s[i] = r.Intn(m)
		}
		target := core.CoinID(r.Intn(m))
		mv, ok := Mover(s, target)
		if !ok {
			// Everyone at target.
			for _, c := range s {
				if c != target {
					return false
				}
			}
			return true
		}
		if s[mv] == target {
			return false
		}
		for k := mv + 1; k < n; k++ {
			if s[k] != target {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestStageRewardsAreFeasible: designed rewards are always positive and the
// H(c) ≥ F(c) Algorithm-1 constraint holds for every *occupied* coin.
func TestStageRewardsAreFeasible(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 2 + r.Intn(6), Coins: 2 + r.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		target := core.CoinID(r.Intn(g.NumCoins()))
		mv, ok := Mover(s, target)
		if !ok || mv == 0 {
			continue
		}
		rewards := StageRewards(g, s, target, mv-1)
		powers := g.CoinPowers(s)
		for c, rw := range rewards {
			if !(rw > 0) {
				t.Fatalf("non-positive designed reward %v for coin %d", rw, c)
			}
			if c != target && powers[c] > 0 && rw < g.Reward(c)-1e-9*g.Reward(c) {
				t.Fatalf("H(c%d)=%v < F=%v with M=%v", c, rw, g.Reward(c), powers[c])
			}
		}
		// The target coin is strictly sweeter than the equalized level.
		phased, err := g.WithRewards(rewards)
		if err != nil {
			t.Fatal(err)
		}
		level := MaxOccupiedRPU(g, s)
		if powers[target] > 0 && !(phased.RPU(s, target) > level) {
			t.Fatalf("target RPU %v not above level %v", phased.RPU(s, target), level)
		}
	}
}

// TestStageOneRewardsProperty: under H₁, for every configuration the target
// coin is a better response for every miner not already there.
func TestStageOneRewardsProperty(t *testing.T) {
	r := rng.New(88)
	for trial := 0; trial < 100; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{
			Miners: 2 + r.Intn(4), Coins: 2 + r.Intn(3),
			PowerLo: 0.1, PowerHi: 5, // include fractional powers
		})
		if err != nil {
			t.Fatal(err)
		}
		target := core.CoinID(r.Intn(g.NumCoins()))
		phased, err := g.WithRewards(StageOneRewards(g, target))
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		for p := 0; p < g.NumMiners(); p++ {
			if s[p] != target && !phased.IsBetterResponse(s, p, target) {
				t.Fatalf("H₁ not dominant at %v for miner %d (target %d)", s, p, target)
			}
		}
	}
}
