package dist

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"gameofcoins/internal/engine"
)

// Coordinator is the server-side half of the fleet: it tracks joined
// workers, grants leases out of the engine's remote task source, forwards
// reported results into the engine, and requeues leases whose deadlines
// pass. One coordinator serves one engine; gocserve embeds one and exposes
// it at /dist/*.
type Coordinator struct {
	eng *engine.Engine
	cfg Config
	fp  string

	mu         sync.Mutex
	workers    map[string]*workerState // guarded by mu
	leases     map[string]*leaseState  // guarded by mu
	nextWorker uint64                  // guarded by mu
	nextLease  uint64                  // guarded by mu

	// Lifetime counters.
	granted       uint64 // guarded by mu
	completed     uint64 // guarded by mu
	requeued      uint64 // guarded by mu
	expired       uint64 // guarded by mu
	rejectedJoins uint64 // guarded by mu
	duplicates    uint64 // guarded by mu

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type workerState struct {
	id        string
	name      string
	cores     int
	lastSeen  time.Time
	leases    int    // active lease count
	completed uint64 // lifetime accepted results
}

type leaseState struct {
	id       string
	workerID string
	run      uint64
	// ranges holds the leased spans in lease order — the engine's shared
	// TaskRange representation; the flat index list the wire carries is
	// expanded at the protocol boundary.
	ranges   []engine.TaskRange
	reported map[int]bool // leased indices → already forwarded to the engine
	deadline time.Time
	closed   bool
}

// taskList expands the lease's ranges into the flat index list, lease order.
func (l *leaseState) taskList() []int { return engine.ExpandTaskRanges(l.ranges) }

// remaining returns the leased indices not yet reported, in lease order.
func (l *leaseState) remaining() []int {
	var out []int
	for _, t := range l.taskList() {
		if !l.reported[t] {
			out = append(out, t)
		}
	}
	return out
}

// New builds a coordinator over eng and starts its expiry sweep. Close it
// when done; a coordinator left running holds one goroutine.
func New(eng *engine.Engine, cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	fp := cfg.Fingerprint
	if fp == "" {
		fp = engine.CatalogFingerprint()
	}
	c := &Coordinator{
		eng:     eng,
		cfg:     cfg,
		fp:      fp,
		workers: make(map[string]*workerState),
		leases:  make(map[string]*leaseState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.sweep()
	return c
}

// Fingerprint returns the catalog fingerprint workers must present.
func (c *Coordinator) Fingerprint() string { return c.fp }

// Join registers a worker. A fingerprint mismatch is refused with
// ErrFingerprint: a worker whose registry drifted from the coordinator's
// would decode specs differently and silently compute wrong-version tasks —
// exactly the corruption the fingerprint exists to prevent.
func (c *Coordinator) Join(req JoinRequest) (JoinResponse, error) {
	if req.Fingerprint != c.fp {
		c.mu.Lock()
		c.rejectedJoins++
		c.mu.Unlock()
		return JoinResponse{}, fmt.Errorf("%w: worker %q, coordinator %q", ErrFingerprint, req.Fingerprint, c.fp)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("w-%d", c.nextWorker),
		name:     req.Name,
		cores:    req.Cores,
		lastSeen: time.Now(),
	}
	c.workers[w.id] = w
	return JoinResponse{
		WorkerID:       w.id,
		LeaseTTLMillis: c.cfg.LeaseTTL.Milliseconds(),
		PollMillis:     c.cfg.PollInterval.Milliseconds(),
	}, nil
}

// Lease grants the calling worker a task range, or nil when no
// distributable job has pending work (the worker polls again later).
func (c *Coordinator) Lease(req LeaseRequest) (*Lease, error) {
	c.mu.Lock()
	w := c.workers[req.WorkerID]
	if w == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownWorker, req.WorkerID)
	}
	w.lastSeen = time.Now()
	c.mu.Unlock()

	// The engine pop happens outside c.mu: LeaseRemote takes the engine
	// lock, and holding both invites ordering bugs for zero benefit.
	rl, ok := c.eng.LeaseRemote(c.cfg.MaxLeaseTasks, c.cfg.TargetLeaseMillis)
	if !ok {
		return nil, nil
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	tasks := rl.TaskList()
	c.nextLease++
	c.granted++
	ls := &leaseState{
		id:       fmt.Sprintf("l-%d", c.nextLease),
		workerID: req.WorkerID,
		run:      rl.Run,
		ranges:   rl.Ranges,
		reported: make(map[int]bool, len(tasks)),
		deadline: time.Now().Add(c.cfg.LeaseTTL),
	}
	c.leases[ls.id] = ls
	w.leases++
	return &Lease{
		ID:        ls.id,
		Kind:      rl.Wire.WireKind,
		Spec:      rl.Wire.Spec,
		Seed:      rl.Wire.Seed,
		Tasks:     tasks,
		TTLMillis: c.cfg.LeaseTTL.Milliseconds(),
	}, nil
}

// Report ingests a worker's progress on a lease. Every report — even an
// empty partial — extends the deadline, so streaming results doubles as the
// heartbeat. Reports against an unknown (expired, superseded, pre-restart)
// lease get ErrUnknownLease: the worker drops the lease and asks for fresh
// work; any results it was carrying are recomputed elsewhere, identically.
func (c *Coordinator) Report(rep ReportRequest) (ReportResponse, error) {
	c.mu.Lock()
	if w := c.workers[rep.WorkerID]; w != nil {
		w.lastSeen = time.Now()
	}
	ls := c.leases[rep.LeaseID]
	if ls == nil || ls.closed {
		c.mu.Unlock()
		return ReportResponse{}, fmt.Errorf("%w: %q", ErrUnknownLease, rep.LeaseID)
	}
	// Filter to this lease's not-yet-forwarded indices before touching the
	// engine, so a duplicated or malformed report cannot double-decrement
	// the engine's leased accounting.
	leased := ls.taskList()
	inLease := make(map[int]bool, len(leased))
	for _, t := range leased {
		inLease[t] = true
	}
	fresh := make(map[int]json.RawMessage, len(rep.Results))
	dups := 0
	for _, r := range rep.Results {
		if !inLease[r.Index] || ls.reported[r.Index] || fresh[r.Index] != nil {
			dups++
			continue
		}
		fresh[r.Index] = r.Result
	}
	// Claim the fresh indices *before* releasing the lock and calling into
	// the engine: a concurrent expiry of this very lease must not requeue
	// tasks whose results are mid-publication, or the engine's leased
	// accounting would double-decrement and a job could be declared idle
	// with result holes.
	for i := range fresh {
		ls.reported[i] = true
	}
	run := ls.run
	c.mu.Unlock()

	var resp ReportResponse
	if len(fresh) > 0 {
		accepted, err := c.eng.ReportRemote(run, fresh)
		if err != nil {
			// Undecodable results or a vanished run: ReportRemote published
			// nothing, so hand the claimed indices straight back for local
			// recompute (always available, always byte-identical) and retire
			// the lease — closeLease covers whatever was never claimed.
			idxs := make([]int, 0, len(fresh))
			for i := range fresh {
				idxs = append(idxs, i)
			}
			// Requeue in index order, not map order, so the engine re-pends
			// the handed-back tasks identically on every run.
			sort.Ints(idxs)
			c.mu.Lock()
			c.requeued += uint64(len(idxs))
			c.mu.Unlock()
			c.eng.RequeueRemote(run, idxs)
			c.closeLease(rep.LeaseID, true)
			return ReportResponse{Closed: true}, err
		}
		c.mu.Lock()
		c.completed += uint64(accepted)
		c.duplicates += uint64(len(fresh) - accepted)
		if w := c.workers[rep.WorkerID]; w != nil {
			w.completed += uint64(accepted)
		}
		c.mu.Unlock()
		resp.Accepted = accepted
		resp.Duplicates = dups + (len(fresh) - accepted)
	} else {
		resp.Duplicates = dups
	}

	switch {
	case rep.Error != "":
		c.eng.FailRemote(run, rep.Error)
		c.closeLease(rep.LeaseID, false) // job is failing; nothing to requeue into
		resp.Closed = true
	case rep.Abandon:
		c.closeLease(rep.LeaseID, true)
		resp.Closed = true
	case rep.Done:
		// A clean Done should have nothing left; requeue defensively if the
		// worker finished without reporting everything.
		c.closeLease(rep.LeaseID, true)
		resp.Closed = true
	default:
		c.mu.Lock()
		if !ls.closed {
			ls.deadline = time.Now().Add(c.cfg.LeaseTTL)
		}
		c.mu.Unlock()
	}
	return resp, nil
}

// closeLease retires a lease, optionally requeueing its unreported tasks
// into the engine. Idempotent.
func (c *Coordinator) closeLease(id string, requeue bool) {
	c.mu.Lock()
	ls := c.leases[id]
	if ls == nil || ls.closed {
		c.mu.Unlock()
		return
	}
	ls.closed = true
	delete(c.leases, id)
	if w := c.workers[ls.workerID]; w != nil && w.leases > 0 {
		w.leases--
	}
	rest := ls.remaining()
	run := ls.run
	if requeue {
		c.requeued += uint64(len(rest))
	}
	c.mu.Unlock()
	// Always hand the remainder back to the engine: for a live run it
	// repends the tasks for local or remote recompute; for a halted run
	// (the requeue=false error path) the engine only fixes its leased
	// accounting so the job can finish draining.
	if len(rest) > 0 {
		c.eng.RequeueRemote(run, rest)
	}
}

// sweep expires overdue leases and forgets long-silent workers.
func (c *Coordinator) sweep() {
	defer close(c.done)
	tick := c.cfg.LeaseTTL / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		var overdue []string
		for id, ls := range c.leases {
			if now.After(ls.deadline) {
				overdue = append(overdue, id)
			}
		}
		// Expire in lease-ID order, not map order: requeue order is then a
		// deterministic function of which leases lapsed, not of map hashing.
		sort.Strings(overdue)
		c.expired += uint64(len(overdue))
		// Workers silent for 10 lease TTLs with no leases out are dropped
		// from the fleet view; ones with leases are reaped by lease expiry
		// first, then collected on a later pass.
		for id, w := range c.workers {
			if w.leases == 0 && now.Sub(w.lastSeen) > 10*c.cfg.LeaseTTL {
				delete(c.workers, id)
			}
		}
		c.mu.Unlock()
		for _, id := range overdue {
			c.closeLease(id, true)
		}
	}
}

// Close stops the sweep and requeues every outstanding lease, so jobs
// waiting on leased work fall back to the local pool immediately instead of
// waiting out deadlines that will never be enforced.
func (c *Coordinator) Close() {
	c.stopOnce.Do(func() {
		close(c.stop)
		<-c.done
		c.mu.Lock()
		ids := make([]string, 0, len(c.leases))
		for id := range c.leases {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		c.mu.Unlock()
		for _, id := range ids {
			c.closeLease(id, true)
		}
	})
}

// WorkerStats is one worker's row in the fleet view.
type WorkerStats struct {
	ID           string `json:"id"`
	Name         string `json:"name,omitempty"`
	Cores        int    `json:"cores,omitempty"`
	ActiveLeases int    `json:"active_leases"`
	Completed    uint64 `json:"completed_tasks"`
	LastSeenMs   int64  `json:"last_seen_ms"`
}

// Stats is the coordinator's point-in-time fleet view, exposed through
// gocserve's /healthz.
type Stats struct {
	Fingerprint   string        `json:"fingerprint"`
	Workers       []WorkerStats `json:"workers,omitempty"`
	ActiveLeases  int           `json:"active_leases"`
	LeasedTasks   int           `json:"leased_tasks"`
	Granted       uint64        `json:"leases_granted"`
	Completed     uint64        `json:"remote_completed"`
	Requeued      uint64        `json:"tasks_requeued"`
	Expired       uint64        `json:"leases_expired"`
	RejectedJoins uint64        `json:"rejected_joins,omitempty"`
	Duplicates    uint64        `json:"duplicate_results,omitempty"`
}

// Stats snapshots the fleet.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Fingerprint:   c.fp,
		ActiveLeases:  len(c.leases),
		Granted:       c.granted,
		Completed:     c.completed,
		Requeued:      c.requeued,
		Expired:       c.expired,
		RejectedJoins: c.rejectedJoins,
		Duplicates:    c.duplicates,
	}
	now := time.Now()
	for _, ls := range c.leases {
		st.LeasedTasks += len(ls.remaining())
	}
	for _, w := range c.workers {
		st.Workers = append(st.Workers, WorkerStats{
			ID:           w.id,
			Name:         w.name,
			Cores:        w.cores,
			ActiveLeases: w.leases,
			Completed:    w.completed,
			LastSeenMs:   now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	return st
}
