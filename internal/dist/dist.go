// Package dist extends the engine's work-stealing dispatcher across the
// network: a lease-based coordinator (embedded in gocserve) hands contiguous
// task ranges of distributable jobs to remote gocworker processes, which
// execute them with the same engine and stream results back.
//
// The protocol is three POSTs over the server's existing JSON wire:
//
//	join   — worker presents its catalog fingerprint; a drifted worker
//	         (different kinds or versions registered) is refused with 409
//	         instead of silently computing wrong-version tasks.
//	lease  — worker asks for work; the coordinator pops a range off the
//	         cheap end of the most-backlogged distributable job's deque
//	         (engine.LeaseRemote) and stamps it with a deadline.
//	report — worker streams completed results back. Partial reports double
//	         as heartbeats (each one extends the lease deadline); the final
//	         report closes the lease. A worker shutting down gracefully
//	         reports abandon instead, returning its unfinished range.
//
// Leases carry deadlines. A worker that dies — SIGKILL, network partition,
// kernel panic — simply stops reporting; when the deadline passes, the
// coordinator's sweep requeues the unreported remainder of the range into
// the job's deque, where local workers or other remotes recompute it.
// Determinism makes every recovery path byte-exact: task i is always
// rng.New(seed).Fork(i) applied to the same canonical spec, so it does not
// matter who computes it, how many times, or in what order — first writer
// wins and all writers agree.
//
// The coordinator holds no durable state. On coordinator restart the PR 3
// store resubmits interrupted jobs with full pending queues — every
// previously leased task is simply pending again — and stale reports from
// surviving workers get 410 Gone, telling the worker to drop the lease.
package dist

import (
	"encoding/json"
	"errors"
	"time"
)

// Config tunes the coordinator. The zero value selects the defaults.
type Config struct {
	// LeaseTTL is how long a worker may go without reporting (results or an
	// empty heartbeat) before its lease expires and is requeued.
	LeaseTTL time.Duration
	// MaxLeaseTasks caps the task count of one lease regardless of cost.
	MaxLeaseTasks int
	// TargetLeaseMillis sizes leases by predicted wall-clock once the
	// engine has observed the kind's task latency: a lease aims to hold
	// about this much work, so a lost worker costs bounded time.
	TargetLeaseMillis float64
	// PollInterval is the idle-poll cadence advertised to workers when no
	// work is available.
	PollInterval time.Duration
	// Fingerprint is the catalog fingerprint workers must present at join.
	// Empty selects engine.CatalogFingerprint() of this process.
	Fingerprint string
}

// Defaults for Config's zero fields.
const (
	DefaultLeaseTTL          = 10 * time.Second
	DefaultMaxLeaseTasks     = 256
	DefaultTargetLeaseMillis = 2000
	DefaultPollInterval      = 250 * time.Millisecond
)

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.MaxLeaseTasks <= 0 {
		c.MaxLeaseTasks = DefaultMaxLeaseTasks
	}
	if c.TargetLeaseMillis <= 0 {
		c.TargetLeaseMillis = DefaultTargetLeaseMillis
	}
	if c.PollInterval <= 0 {
		c.PollInterval = DefaultPollInterval
	}
	return c
}

// Protocol errors. The HTTP layer maps them to status codes (409, 404, 410)
// and the HTTP transport maps those codes back to these values, so worker
// logic can switch on errors.Is regardless of transport.
var (
	// ErrFingerprint: the worker's spec catalog differs from the
	// coordinator's. Fatal for the worker — rebuild it, don't retry.
	ErrFingerprint = errors.New("dist: catalog fingerprint mismatch")
	// ErrUnknownWorker: the coordinator does not know this worker ID (it
	// restarted, or the worker was expired for silence). Re-join.
	ErrUnknownWorker = errors.New("dist: unknown worker")
	// ErrUnknownLease: the lease is gone (expired, job finished or
	// canceled, coordinator restarted). Drop it and ask for new work.
	ErrUnknownLease = errors.New("dist: unknown lease")
)

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// Name is a human label for the fleet view ("host-3"); optional.
	Name string `json:"name,omitempty"`
	// Cores is the worker's local engine parallelism; informational.
	Cores int `json:"cores,omitempty"`
	// Fingerprint is the worker's engine.CatalogFingerprint().
	Fingerprint string `json:"fingerprint"`
}

// JoinResponse assigns the worker its identity and cadence.
type JoinResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMillis tells the worker how often it must report to keep a
	// lease alive; workers heartbeat at a fraction of it.
	LeaseTTLMillis int64 `json:"lease_ttl_ms"`
	// PollMillis is the suggested idle-poll interval when no work exists.
	PollMillis int64 `json:"poll_ms"`
}

// LeaseRequest asks for a range of work.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease is a granted task range: everything a worker needs to compute the
// tasks (the job's wire identity) plus the lease bookkeeping.
type Lease struct {
	ID string `json:"id"`
	// Kind is the versioned wire kind; the worker resolves it through its
	// own registry (which the join fingerprint proved identical).
	Kind string `json:"kind"`
	// Spec is the canonical spec document.
	Spec json.RawMessage `json:"spec"`
	// Seed roots the job's rng tree; task i uses rng.New(Seed).Fork(i).
	Seed uint64 `json:"seed"`
	// Tasks are the leased task indices.
	Tasks []int `json:"tasks"`
	// TTLMillis is the report deadline for this lease.
	TTLMillis int64 `json:"ttl_ms"`
}

// TaskResult is one completed task on the wire.
type TaskResult struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result"`
}

// ReportRequest streams lease progress back to the coordinator. A report
// with only Results is a partial (and a heartbeat — it extends the
// deadline); an empty partial is a pure heartbeat. Done closes the lease
// normally, Abandon returns unfinished tasks for requeueing (graceful
// worker shutdown), Error fails the job (remote task errors are
// deterministic; retrying locally would fail identically).
type ReportRequest struct {
	WorkerID string       `json:"worker_id"`
	LeaseID  string       `json:"lease_id"`
	Results  []TaskResult `json:"results,omitempty"`
	Done     bool         `json:"done,omitempty"`
	Abandon  bool         `json:"abandon,omitempty"`
	Error    string       `json:"error,omitempty"`
}

// ReportResponse acknowledges a report.
type ReportResponse struct {
	// Accepted counts results published to the job; Duplicates counts
	// results for tasks that had already landed (requeue races — harmless
	// by determinism).
	Accepted   int `json:"accepted"`
	Duplicates int `json:"duplicates,omitempty"`
	// Closed reports that the lease is finished from the coordinator's side
	// (final report, abandon, or error).
	Closed bool `json:"closed,omitempty"`
}

// Transport is how a worker reaches its coordinator. HTTP in production
// (NewHTTP); Local for in-process fleets in tests and benchmarks.
type Transport interface {
	Join(req JoinRequest) (JoinResponse, error)
	Lease(req LeaseRequest) (*Lease, error)
	Report(rep ReportRequest) (ReportResponse, error)
}
