package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
)

// sleepSpec is the test workload: Tasks deterministic tasks, each drawing
// from its forked rng stream (so a mis-forked remote would produce different
// bytes) and optionally sleeping, so leases stay grantable while local
// workers drain. Registered like any real spec — the full wire path (decode
// through the registry on the "remote" side, TaskCoder round-trip) is
// exercised, not a shortcut.
type sleepSpec struct {
	NTasks  int `json:"tasks"`
	DelayUS int `json:"delay_us,omitempty"`
}

type sleepTask struct {
	Index int     `json:"index"`
	U     uint64  `json:"u"`
	F     float64 `json:"f"`
}

func (s sleepSpec) Kind() string { return "dist_test_sleep" }
func (s sleepSpec) Tasks() int   { return s.NTasks }

func (s sleepSpec) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	if s.DelayUS > 0 {
		t := time.NewTimer(time.Duration(s.DelayUS) * time.Microsecond)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
	return sleepTask{Index: i, U: r.Uint64(), F: r.Float64()}, nil
}

func (s sleepSpec) Aggregate(results []any) (any, error) {
	out := make([]sleepTask, len(results))
	for i, r := range results {
		t, ok := r.(sleepTask)
		if !ok {
			return nil, fmt.Errorf("task %d: unexpected result type %T", i, r)
		}
		out[i] = t
	}
	return out, nil
}

func (s sleepSpec) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

func (s sleepSpec) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v sleepTask
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func init() {
	engine.RegisterSpec("dist_test_sleep", 1, func(raw json.RawMessage) (engine.Spec, error) {
		var s sleepSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	}, nil)
}

const testKind = "dist_test_sleep@v1"

// submitDistributable submits spec as a distributable job, the way the
// server does: canonical spec document + pinned wire kind + seed.
func submitDistributable(t *testing.T, mgr *engine.Manager, spec sleepSpec, seed uint64) *engine.Job {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	job, err := mgr.SubmitJob("", spec, seed, &engine.RemoteInfo{WireKind: testKind, Spec: raw, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// reference computes the single-machine, one-worker result bytes for spec.
func reference(t *testing.T, spec sleepSpec, seed uint64) []byte {
	t.Helper()
	res, err := engine.New(1).Run(context.Background(), spec, seed, nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func waitResultJSON(t *testing.T, job *engine.Job) []byte {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}
	res, ok := job.Result()
	if !ok {
		t.Fatalf("job finished without a result: %+v", job.Status())
	}
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestJoinFingerprintMismatch(t *testing.T) {
	coord := New(engine.New(1), Config{})
	defer coord.Close()

	if _, err := coord.Join(JoinRequest{Name: "drifted", Fingerprint: "bogus"}); !errors.Is(err, ErrFingerprint) {
		t.Fatalf("drifted join: got %v, want ErrFingerprint", err)
	}
	resp, err := coord.Join(JoinRequest{Name: "ok", Fingerprint: engine.CatalogFingerprint()})
	if err != nil {
		t.Fatalf("matching join: %v", err)
	}
	if resp.WorkerID == "" {
		t.Fatal("matching join assigned no worker ID")
	}
	if st := coord.Stats(); st.RejectedJoins != 1 {
		t.Fatalf("RejectedJoins = %d, want 1", st.RejectedJoins)
	}
}

// TestLeaseExpiryRequeues kills a worker the hard way: a lease is granted
// and simply never reported (SIGKILL semantics). The sweep must expire it,
// requeue the range, and the job must still finish byte-identically.
func TestLeaseExpiryRequeues(t *testing.T) {
	spec := sleepSpec{NTasks: 48, DelayUS: 2000}
	const seed = 7
	want := reference(t, spec, seed)

	eng := engine.New(2)
	mgr := engine.NewManager(eng)
	defer mgr.Close()
	coord := New(eng, Config{LeaseTTL: 50 * time.Millisecond, MaxLeaseTasks: 8})
	defer coord.Close()

	join, err := coord.Join(JoinRequest{Name: "doomed", Fingerprint: coord.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	job := submitDistributable(t, mgr, spec, seed)

	// Grab a lease while the local pool is still draining, then go silent.
	var lease *Lease
	for range 200 {
		lease, err = coord.Lease(LeaseRequest{WorkerID: join.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if lease != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if lease == nil {
		t.Fatal("never granted a lease while the job had pending work")
	}
	if len(lease.Tasks) == 0 || len(lease.Tasks) > 8 {
		t.Fatalf("lease of %d tasks, want 1..8", len(lease.Tasks))
	}

	got := waitResultJSON(t, job)
	if string(got) != string(want) {
		t.Fatalf("result after lease expiry diverged from reference\n got: %s\nwant: %s", got, want)
	}
	st := coord.Stats()
	if st.Expired == 0 {
		t.Fatalf("stats show no expired lease: %+v", st)
	}
	if st.Requeued < uint64(len(lease.Tasks)) {
		t.Fatalf("Requeued = %d, want >= %d", st.Requeued, len(lease.Tasks))
	}
}

// TestDuplicateReport replays the same results twice: the first report
// publishes, the duplicate is absorbed (Accepted 0), and a report after the
// final Done gets ErrUnknownLease.
func TestDuplicateReport(t *testing.T) {
	spec := sleepSpec{NTasks: 32, DelayUS: 2000}
	const seed = 11
	want := reference(t, spec, seed)

	eng := engine.New(1)
	mgr := engine.NewManager(eng)
	defer mgr.Close()
	coord := New(eng, Config{LeaseTTL: 10 * time.Second, MaxLeaseTasks: 6})
	defer coord.Close()

	join, err := coord.Join(JoinRequest{Fingerprint: coord.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	job := submitDistributable(t, mgr, spec, seed)

	var lease *Lease
	for range 200 {
		if lease, err = coord.Lease(LeaseRequest{WorkerID: join.WorkerID}); err != nil {
			t.Fatal(err)
		}
		if lease != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if lease == nil {
		t.Fatal("never granted a lease")
	}

	// Compute the leased range exactly as a worker would.
	base := rng.New(lease.Seed)
	dspec, err := engine.DecodeSpec(lease.Kind, lease.Spec)
	if err != nil {
		t.Fatal(err)
	}
	coder := dspec.(engine.TaskCoder)
	var results []TaskResult
	for _, task := range lease.Tasks {
		out, err := dspec.RunTask(context.Background(), task, base.Fork(uint64(task)))
		if err != nil {
			t.Fatal(err)
		}
		enc, err := coder.EncodeTaskResult(out)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, TaskResult{Index: task, Result: enc})
	}

	resp, err := coord.Report(ReportRequest{WorkerID: join.WorkerID, LeaseID: lease.ID, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(lease.Tasks) {
		t.Fatalf("first report: Accepted = %d, want %d", resp.Accepted, len(lease.Tasks))
	}

	resp, err = coord.Report(ReportRequest{WorkerID: join.WorkerID, LeaseID: lease.ID, Results: results})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 0 || resp.Duplicates != len(lease.Tasks) {
		t.Fatalf("duplicate report: Accepted = %d, Duplicates = %d, want 0, %d",
			resp.Accepted, resp.Duplicates, len(lease.Tasks))
	}

	if _, err = coord.Report(ReportRequest{WorkerID: join.WorkerID, LeaseID: lease.ID, Done: true}); err != nil {
		t.Fatal(err)
	}
	if _, err = coord.Report(ReportRequest{WorkerID: join.WorkerID, LeaseID: lease.ID, Done: true}); !errors.Is(err, ErrUnknownLease) {
		t.Fatalf("report after Done: got %v, want ErrUnknownLease", err)
	}

	got := waitResultJSON(t, job)
	if string(got) != string(want) {
		t.Fatalf("result with duplicate reports diverged from reference\n got: %s\nwant: %s", got, want)
	}
}

// TestAbandonRequeues cancels a live Runner mid-lease (SIGINT semantics): it
// abandons gracefully and the coordinator requeues immediately — the job
// finishes without waiting out the TTL.
func TestAbandonRequeues(t *testing.T) {
	spec := sleepSpec{NTasks: 64, DelayUS: 2000}
	const seed = 3
	want := reference(t, spec, seed)

	eng := engine.New(2)
	mgr := engine.NewManager(eng)
	defer mgr.Close()
	// A TTL far beyond the test's runtime: if the job only finishes because
	// the sweep expired the lease, waitResultJSON times out instead.
	coord := New(eng, Config{LeaseTTL: 5 * time.Minute, MaxLeaseTasks: 16, PollInterval: time.Millisecond})
	defer coord.Close()

	rctx, rcancel := context.WithCancel(context.Background())
	runnerDone := make(chan error, 1)
	runner := &Runner{Transport: Local(coord), Name: "graceful", Workers: 1}
	go func() { runnerDone <- runner.Run(rctx) }()

	job := submitDistributable(t, mgr, spec, seed)

	// Wait until the runner holds a lease, then "SIGINT" it.
	deadline := time.Now().Add(10 * time.Second)
	for coord.Stats().Granted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runner never took a lease")
		}
		time.Sleep(time.Millisecond)
	}
	rcancel()
	if err := <-runnerDone; err != nil {
		t.Fatalf("runner exit: %v", err)
	}

	got := waitResultJSON(t, job)
	if string(got) != string(want) {
		t.Fatalf("result after abandon diverged from reference\n got: %s\nwant: %s", got, want)
	}
}

// killableTransport simulates a worker that is SIGKILL'd the moment it
// receives its first lease: every subsequent call — including the reports
// that would have returned its results — fails. Recovery must come from the
// lease deadline alone.
type killableTransport struct {
	inner Transport
	mu    sync.Mutex
	dead  bool
}

var errKilled = errors.New("dist_test: worker killed")

func (k *killableTransport) killed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.dead
}

func (k *killableTransport) Join(req JoinRequest) (JoinResponse, error) {
	if k.killed() {
		return JoinResponse{}, errKilled
	}
	return k.inner.Join(req)
}

func (k *killableTransport) Lease(req LeaseRequest) (*Lease, error) {
	if k.killed() {
		return nil, errKilled
	}
	l, err := k.inner.Lease(req)
	if l != nil {
		k.mu.Lock()
		k.dead = true
		k.mu.Unlock()
	}
	return l, err
}

func (k *killableTransport) Report(rep ReportRequest) (ReportResponse, error) {
	if k.killed() {
		return ReportResponse{}, errKilled
	}
	return k.inner.Report(rep)
}

// TestDistributedDeterminism is the property test: over {lease size × remote
// worker count × mid-job worker kill}, the distributed result must be
// byte-identical to the single-machine, one-worker reference.
func TestDistributedDeterminism(t *testing.T) {
	spec := sleepSpec{NTasks: 60, DelayUS: 1000}
	const seed = 42
	want := reference(t, spec, seed)

	for _, leaseSize := range []int{1, 8, 64} {
		for _, workers := range []int{1, 3} {
			for _, kill := range []bool{false, true} {
				name := fmt.Sprintf("lease=%d/workers=%d/kill=%v", leaseSize, workers, kill)
				t.Run(name, func(t *testing.T) {
					eng := engine.New(2)
					mgr := engine.NewManager(eng)
					defer mgr.Close()
					coord := New(eng, Config{
						LeaseTTL:      60 * time.Millisecond,
						MaxLeaseTasks: leaseSize,
						PollInterval:  time.Millisecond,
					})
					defer coord.Close()

					rctx, rcancel := context.WithCancel(context.Background())
					defer rcancel()
					for w := range workers {
						transport := Transport(Local(coord))
						if kill && w == 0 {
							transport = &killableTransport{inner: transport}
						}
						r := &Runner{Transport: transport, Name: fmt.Sprintf("w%d", w), Workers: 1}
						go r.Run(rctx)
					}

					job := submitDistributable(t, mgr, spec, seed)
					got := waitResultJSON(t, job)
					if string(got) != string(want) {
						t.Fatalf("distributed result diverged from reference\n got: %s\nwant: %s", got, want)
					}
				})
			}
		}
	}
}
