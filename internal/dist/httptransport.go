package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// HTTPTransport reaches a coordinator over gocserve's /dist endpoints. The
// zero value is not usable; construct with NewHTTP.
type HTTPTransport struct {
	base string
	hc   *http.Client
}

// NewHTTP returns a transport for the coordinator at base (e.g.
// "http://coordinator:8080"). The client timeout bounds every call —
// reports carry at most one lease's results, so nothing long-polls.
func NewHTTP(base string) *HTTPTransport {
	return &HTTPTransport{
		base: strings.TrimRight(base, "/"),
		hc:   &http.Client{Timeout: 30 * time.Second},
	}
}

// Join implements Transport.
func (t *HTTPTransport) Join(req JoinRequest) (JoinResponse, error) {
	var resp JoinResponse
	err := t.post("/dist/join", req, &resp)
	return resp, err
}

// Lease implements Transport. A 204 from the coordinator means no work.
func (t *HTTPTransport) Lease(req LeaseRequest) (*Lease, error) {
	var lease Lease
	ok, err := t.postMaybe("/dist/lease", req, &lease)
	if err != nil || !ok {
		return nil, err
	}
	return &lease, nil
}

// Report implements Transport.
func (t *HTTPTransport) Report(rep ReportRequest) (ReportResponse, error) {
	var resp ReportResponse
	err := t.post("/dist/report", rep, &resp)
	return resp, err
}

func (t *HTTPTransport) post(path string, in, out any) error {
	ok, err := t.postMaybe(path, in, out)
	if err == nil && !ok {
		return fmt.Errorf("dist: unexpected empty response from %s", path)
	}
	return err
}

// postMaybe POSTs in as JSON and decodes the response into out; ok is false
// on 204 No Content. Error statuses map back to the protocol sentinels (409
// fingerprint, 404 worker, 410 lease) so Runner logic is transport-agnostic.
func (t *HTTPTransport) postMaybe(path string, in, out any) (ok bool, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return false, err
	}
	resp, err := t.hc.Post(t.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		io.Copy(io.Discard, resp.Body)
		return false, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		detail := strings.TrimSpace(string(msg))
		switch resp.StatusCode {
		case http.StatusConflict:
			return false, fmt.Errorf("%w: %s", ErrFingerprint, detail)
		case http.StatusNotFound:
			return false, fmt.Errorf("%w: %s", ErrUnknownWorker, detail)
		case http.StatusGone:
			return false, fmt.Errorf("%w: %s", ErrUnknownLease, detail)
		}
		return false, fmt.Errorf("dist: %s: %s: %s", path, resp.Status, detail)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return false, fmt.Errorf("dist: decode %s response: %w", path, err)
	}
	return true, nil
}
