package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
)

// Local adapts an in-process Coordinator to the Transport interface, for
// tests and benchmarks that run a whole fleet inside one process. The
// semantics are identical to the HTTP transport minus the network.
func Local(c *Coordinator) Transport { return localTransport{c} }

type localTransport struct{ c *Coordinator }

func (t localTransport) Join(req JoinRequest) (JoinResponse, error)       { return t.c.Join(req) }
func (t localTransport) Lease(req LeaseRequest) (*Lease, error)           { return t.c.Lease(req) }
func (t localTransport) Report(rep ReportRequest) (ReportResponse, error) { return t.c.Report(rep) }

// Runner is the worker-side loop: join the coordinator, then lease → execute
// → report until the context ends. gocworker wraps one Runner per process;
// tests and benchmarks run several against a Local transport.
//
// Execution reuses the engine: each lease becomes a local engine job whose
// task i computes leased task Tasks[i] with rng.New(Seed).Fork(Tasks[i]) —
// the identical stream a coordinator-local worker would fork — so results
// are byte-identical no matter where a task lands. Completed results stream
// back in partial reports on a fraction of the lease TTL, which doubles as
// the heartbeat keeping the lease alive.
type Runner struct {
	// Transport reaches the coordinator; required.
	Transport Transport
	// Name labels this worker in the fleet view; optional.
	Name string
	// Workers is the local engine parallelism; <= 0 selects GOMAXPROCS.
	Workers int
	// Fingerprint overrides the catalog fingerprint presented at join;
	// empty selects engine.CatalogFingerprint() of this process.
	Fingerprint string
	// Logf, when set, receives progress lines (gocworker wires log.Printf).
	Logf func(format string, args ...any)
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Run joins and serves until ctx is canceled (returning nil) or the
// coordinator refuses the worker's fingerprint (returning ErrFingerprint —
// fatal, since retrying cannot fix a drifted catalog). Transient transport
// failures — coordinator restarting, network blips — are retried with
// exponential backoff; a coordinator restart invalidates the worker ID, and
// the loop transparently re-joins.
func (r *Runner) Run(ctx context.Context) error {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	eng := engine.New(workers)
	fp := r.Fingerprint
	if fp == "" {
		fp = engine.CatalogFingerprint()
	}

	var (
		id   string
		ttl  time.Duration
		poll time.Duration
	)
	join := func() error {
		resp, err := r.Transport.Join(JoinRequest{Name: r.Name, Cores: workers, Fingerprint: fp})
		if err != nil {
			return err
		}
		id = resp.WorkerID
		ttl = time.Duration(resp.LeaseTTLMillis) * time.Millisecond
		if ttl <= 0 {
			ttl = DefaultLeaseTTL
		}
		poll = time.Duration(resp.PollMillis) * time.Millisecond
		if poll <= 0 {
			poll = DefaultPollInterval
		}
		r.logf("joined as %s (ttl %v, poll %v)", id, ttl, poll)
		return nil
	}

	backoff := 100 * time.Millisecond
	const maxBackoff = 5 * time.Second
	retry := func(err error) error {
		if errors.Is(err, ErrFingerprint) {
			return err
		}
		r.logf("transport error (retrying in %v): %v", backoff, err)
		if !sleep(ctx, backoff) {
			return ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		if id == "" {
			if err := join(); err != nil {
				if ferr := retry(err); ferr != nil && !errors.Is(ferr, context.Canceled) {
					return ferr
				} else if ferr != nil {
					return nil
				}
				continue
			}
			backoff = 100 * time.Millisecond
		}
		lease, err := r.Transport.Lease(LeaseRequest{WorkerID: id})
		switch {
		case err != nil && errors.Is(err, ErrUnknownWorker):
			// Coordinator restarted or expired us: re-join.
			id = ""
			continue
		case err != nil:
			if ferr := retry(err); ferr != nil {
				if errors.Is(ferr, context.Canceled) {
					return nil
				}
				return ferr
			}
			continue
		case lease == nil:
			if !sleep(ctx, poll) {
				return nil
			}
			continue
		}
		backoff = 100 * time.Millisecond
		r.executeLease(ctx, eng, id, ttl, lease)
	}
}

// sleep waits d or until ctx ends; reports false on cancellation.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// executeLease runs one leased range on the local engine, streaming results
// back at a third of the lease TTL. All terminal outcomes report: Done on
// success, Abandon on local shutdown or local decode trouble (the
// coordinator requeues; someone else computes the range), Error on a task
// error (deterministic — the coordinator fails the job).
func (r *Runner) executeLease(ctx context.Context, eng *engine.Engine, workerID string, ttl time.Duration, lease *Lease) {
	spec, err := engine.DecodeSpec(lease.Kind, lease.Spec)
	coder, _ := spec.(engine.TaskCoder)
	if err != nil || coder == nil {
		// The fingerprint handshake makes this unreachable short of a bug;
		// abandoning (instead of erroring) keeps a worker-local problem from
		// failing the job — the coordinator recomputes the range itself.
		r.logf("lease %s: cannot decode %s spec locally (%v); abandoning", lease.ID, lease.Kind, err)
		r.report(ReportRequest{WorkerID: workerID, LeaseID: lease.ID, Abandon: true})
		return
	}

	lctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Completed results accumulate under mu; the flusher goroutine drains
	// them into partial reports, which also serve as heartbeats.
	var (
		mu      sync.Mutex
		pending []TaskResult
	)
	drain := func() []TaskResult {
		mu.Lock()
		out := pending
		pending = nil
		mu.Unlock()
		return out
	}
	giveBack := func(batch []TaskResult) {
		mu.Lock()
		pending = append(batch, pending...)
		mu.Unlock()
	}

	heartbeat := ttl / 3
	if heartbeat < 10*time.Millisecond {
		heartbeat = 10 * time.Millisecond
	}
	flusherDone := make(chan struct{})
	go func() {
		defer close(flusherDone)
		t := time.NewTicker(heartbeat)
		defer t.Stop()
		for {
			select {
			case <-lctx.Done():
				return
			case <-t.C:
			}
			batch := drain()
			resp, err := r.Transport.Report(ReportRequest{WorkerID: workerID, LeaseID: lease.ID, Results: batch})
			switch {
			case err != nil && errors.Is(err, ErrUnknownLease):
				// The coordinator expired us (or restarted): the range is
				// someone else's now. Stop computing it.
				r.logf("lease %s: gone at coordinator; dropping", lease.ID)
				cancel()
				return
			case err != nil:
				// Transient: keep the results for the next beat.
				giveBack(batch)
			case resp.Closed:
				cancel()
				return
			}
		}
	}()

	base := rng.New(lease.Seed)
	sizer, _ := spec.(engine.Sizer)
	job := engine.Func{
		Name: lease.Kind,
		N:    len(lease.Tasks),
		Task: func(tctx context.Context, i int, _ *rng.Rand) (any, error) {
			task := lease.Tasks[i]
			// Fork the job-global stream for the *leased* index — identical
			// to what a coordinator-local worker would fork — not the
			// lease-local index the wrapping Func would hand us.
			out, err := spec.RunTask(tctx, task, base.Fork(uint64(task)))
			if err != nil {
				return nil, fmt.Errorf("task %d: %w", task, err)
			}
			enc, err := coder.EncodeTaskResult(out)
			if err != nil {
				return nil, fmt.Errorf("task %d: encode: %w", task, err)
			}
			mu.Lock()
			pending = append(pending, TaskResult{Index: task, Result: enc})
			mu.Unlock()
			return nil, nil
		},
	}
	if sizer != nil {
		job.Cost = func(i int) float64 { return sizer.TaskCost(lease.Tasks[i]) }
	}
	_, runErr := eng.Run(lctx, job, 0, nil)

	cancel()
	<-flusherDone
	rest := drain()

	switch {
	case runErr == nil:
		r.report(ReportRequest{WorkerID: workerID, LeaseID: lease.ID, Results: rest, Done: true})
		r.logf("lease %s: completed %d tasks", lease.ID, len(lease.Tasks))
	case ctx.Err() != nil:
		// Local shutdown: return what we finished plus the range itself.
		r.report(ReportRequest{WorkerID: workerID, LeaseID: lease.ID, Results: rest, Abandon: true})
	case lctx.Err() != nil && errors.Is(runErr, context.Canceled):
		// The flusher learned the lease is gone; nothing more to say.
	default:
		r.report(ReportRequest{WorkerID: workerID, LeaseID: lease.ID, Results: rest, Error: runErr.Error()})
		r.logf("lease %s: task error: %v", lease.ID, runErr)
	}
}

// report fires a best-effort report; failures only log (the lease deadline
// is the backstop for anything a lost report leaves dangling).
func (r *Runner) report(rep ReportRequest) {
	if _, err := r.Transport.Report(rep); err != nil && !errors.Is(err, ErrUnknownLease) {
		r.logf("lease %s: report failed: %v", rep.LeaseID, err)
	}
}
