// Package distbench measures what the distributed fleet buys: the same
// sleep-cost sweep run twice — once on a starved local pool alone, once on
// that pool plus N in-process remote workers leased through the dist
// coordinator — reporting both makespans and their ratio.
//
// Task costs are wall-clock sleeps, not CPU burns (the schedbench idiom):
// the speedup is then a function of scheduling and lease flow, not of how
// many physical cores the CI machine happens to have, so the ratio is
// hardware-independent and CI-stable. The distributed pass also
// byte-compares its aggregated result against the local pass — the bench
// doubles as an end-to-end determinism check on every run.
//
// cmd/gocbench -dist emits the report as JSON (scripts/bench.sh writes it
// to BENCH_dist.json).
package distbench

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
)

// Options size the benchmark. The zero value selects the defaults noted per
// field.
type Options struct {
	// LocalWorkers is the coordinator-local pool size (default 2 — starved,
	// so remote capacity shows).
	LocalWorkers int
	// Remotes is the number of remote worker processes simulated (default 2).
	Remotes int
	// RemoteCores is each remote's local engine parallelism (default 2).
	RemoteCores int
	// Tasks is the sweep's fan-out (default 96).
	Tasks int
	// TaskDur is each task's sleep before scaling (default 5ms).
	TaskDur time.Duration
	// Scale multiplies TaskDur (default 1; tests shrink it).
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.LocalWorkers <= 0 {
		o.LocalWorkers = 2
	}
	if o.Remotes <= 0 {
		o.Remotes = 2
	}
	if o.RemoteCores <= 0 {
		o.RemoteCores = 2
	}
	if o.Tasks <= 0 {
		o.Tasks = 96
	}
	if o.TaskDur <= 0 {
		o.TaskDur = 5 * time.Millisecond
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// Report is the benchmark's JSON document.
type Report struct {
	LocalWorkers int `json:"local_workers"`
	Remotes      int `json:"remotes"`
	RemoteCores  int `json:"remote_cores"`
	Tasks        int `json:"tasks"`
	// LocalMS / DistMS are the makespans of the local-only and pool+fleet
	// passes; Speedup is their ratio.
	LocalMS float64 `json:"local_makespan_ms"`
	DistMS  float64 `json:"dist_makespan_ms"`
	Speedup float64 `json:"speedup"`
	// LeasesGranted / RemoteCompleted show the fleet actually carried load
	// (a speedup with zero leases would mean the bench measured nothing).
	LeasesGranted   uint64 `json:"leases_granted"`
	RemoteCompleted uint64 `json:"remote_completed"`
	// Identical reports that the distributed pass aggregated byte-identical
	// results to the local pass — the determinism acceptance, re-checked on
	// every benchmark run.
	Identical bool `json:"identical"`
}

func (r Report) String() string {
	return fmt.Sprintf(
		"dist: %d tasks on %d local workers: %.1fms alone, %.1fms with %d remotes × %d cores (%.2fx); %d leases, %d remote tasks, identical=%v",
		r.Tasks, r.LocalWorkers, r.LocalMS, r.DistMS, r.Remotes, r.RemoteCores,
		r.Speedup, r.LeasesGranted, r.RemoteCompleted, r.Identical)
}

// benchSpec is the sweep: Tasks uniform sleep tasks, each returning a value
// drawn from its forked stream so the distributed pass proves determinism,
// not just completion.
type benchSpec struct {
	NTasks  int   `json:"tasks"`
	DelayNS int64 `json:"delay_ns"`
}

type benchTask struct {
	Index int    `json:"index"`
	U     uint64 `json:"u"`
}

func (s benchSpec) Kind() string { return "distbench_sleep" }
func (s benchSpec) Tasks() int   { return s.NTasks }

func (s benchSpec) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	t := time.NewTimer(time.Duration(s.DelayNS))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return benchTask{Index: i, U: r.Uint64()}, nil
}

func (s benchSpec) Aggregate(results []any) (any, error) {
	out := make([]benchTask, len(results))
	for i, r := range results {
		t, ok := r.(benchTask)
		if !ok {
			return nil, fmt.Errorf("task %d: unexpected type %T", i, r)
		}
		out[i] = t
	}
	return out, nil
}

func (s benchSpec) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

func (s benchSpec) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v benchTask
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func init() {
	engine.RegisterSpec("distbench_sleep", 1, func(raw json.RawMessage) (engine.Spec, error) {
		var s benchSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	}, nil)
}

// Run executes both passes and returns the report.
func Run(opts Options) (Report, error) {
	o := opts.withDefaults()
	rep := Report{LocalWorkers: o.LocalWorkers, Remotes: o.Remotes, RemoteCores: o.RemoteCores, Tasks: o.Tasks}
	spec := benchSpec{NTasks: o.Tasks, DelayNS: int64(float64(o.TaskDur) * o.Scale)}
	const seed = 11

	// Pass 1: the starved local pool on its own.
	start := time.Now()
	localRes, err := engine.New(o.LocalWorkers).Run(context.Background(), spec, seed, nil)
	if err != nil {
		return rep, fmt.Errorf("local pass: %w", err)
	}
	rep.LocalMS = float64(time.Since(start)) / float64(time.Millisecond)
	localJSON, err := json.Marshal(localRes)
	if err != nil {
		return rep, err
	}

	// Pass 2: the same pool plus the fleet. Short poll so lease pickup
	// latency doesn't drown the signal at benchmark scale.
	eng := engine.New(o.LocalWorkers)
	mgr := engine.NewManager(eng)
	defer mgr.Close()
	// Lease chunks sized so every remote gets several bites at the deque;
	// one giant lease would serialize the fleet behind one worker.
	chunk := o.Tasks / (o.Remotes * 2)
	if chunk < 1 {
		chunk = 1
	}
	coord := dist.New(eng, dist.Config{
		LeaseTTL:      2 * time.Second,
		MaxLeaseTasks: chunk,
		PollInterval:  2 * time.Millisecond,
	})
	defer coord.Close()
	rctx, rcancel := context.WithCancel(context.Background())
	defer rcancel()
	for i := 0; i < o.Remotes; i++ {
		r := &dist.Runner{Transport: dist.Local(coord), Name: fmt.Sprintf("bench-%d", i), Workers: o.RemoteCores}
		go r.Run(rctx)
	}

	raw, err := json.Marshal(spec)
	if err != nil {
		return rep, err
	}
	start = time.Now()
	job, err := mgr.SubmitJob("", spec, seed, &engine.RemoteInfo{WireKind: "distbench_sleep@v1", Spec: raw, Seed: seed})
	if err != nil {
		return rep, fmt.Errorf("dist pass: %w", err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer wcancel()
	if err := job.Wait(wctx); err != nil {
		return rep, fmt.Errorf("dist pass: %w", err)
	}
	rep.DistMS = float64(time.Since(start)) / float64(time.Millisecond)

	distRes, ok := job.Result()
	if !ok {
		return rep, fmt.Errorf("dist pass: job finished without a result")
	}
	distJSON, err := json.Marshal(distRes)
	if err != nil {
		return rep, err
	}
	rep.Identical = string(localJSON) == string(distJSON)
	if rep.DistMS > 0 {
		rep.Speedup = rep.LocalMS / rep.DistMS
	}
	st := coord.Stats()
	rep.LeasesGranted = st.Granted
	rep.RemoteCompleted = st.Completed
	if !rep.Identical {
		return rep, fmt.Errorf("distributed result diverged from local result")
	}
	return rep, nil
}
