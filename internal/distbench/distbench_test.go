package distbench

import "testing"

// TestRunShrunk runs the benchmark at 1/5 scale: it must complete, the
// distributed pass must aggregate byte-identical results, and the fleet
// must actually have carried tasks (otherwise the "speedup" measured
// nothing). The ratio itself is asserted loosely — CI machines vary — the
// committed BENCH_dist.json carries the real number.
func TestRunShrunk(t *testing.T) {
	rep, err := Run(Options{Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Fatalf("distributed result diverged: %+v", rep)
	}
	if rep.LeasesGranted == 0 || rep.RemoteCompleted == 0 {
		t.Fatalf("fleet carried no work: %+v", rep)
	}
	if rep.LocalMS <= 0 || rep.DistMS <= 0 || rep.Speedup <= 0 {
		t.Fatalf("degenerate timings: %+v", rep)
	}
	t.Log(rep.String())
}
