package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"gameofcoins/internal/core"
)

// BenchmarkLearnSweepWorkers measures the wall-clock scaling of a multi-run
// learning sweep across worker counts. On an N-core machine the workers=N
// variant should run close to N× faster than workers=1 (the per-task work is
// CPU-bound and embarrassingly parallel); the determinism tests guarantee
// the speedup changes nothing about the results.
//
//	go test -bench=LearnSweepWorkers -benchtime=3x ./internal/engine/
func BenchmarkLearnSweepWorkers(b *testing.B) {
	spec := LearnSweep{
		Gen:        core.GenSpec{Miners: 32, Coins: 4},
		Schedulers: []string{"random"},
		Runs:       64,
	}
	counts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	seen := map[int]bool{}
	for _, workers := range counts {
		if seen[workers] {
			continue
		}
		seen[workers] = true
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := New(workers)
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), spec, 11, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplaySweepWorkers scales the heavier market-simulator workload,
// the job type gocserve is expected to spend most of its CPU on.
func BenchmarkReplaySweepWorkers(b *testing.B) {
	spec := ReplaySweep{Runs: runtime.GOMAXPROCS(0) * 2}
	spec.Params.Miners = 60
	spec.Params.Epochs = 24 * 20
	spec.Params.SpikeHour = 24 * 8
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			eng := New(workers)
			for i := 0; i < b.N; i++ {
				if _, err := eng.Run(context.Background(), spec, 7, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
