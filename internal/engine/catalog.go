package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// CatalogEntry is one (kind, version) of the spec catalog — the
// self-describing form GET /v2/specs serves so clients can discover kinds,
// pin versions, and validate spec documents before submitting.
type CatalogEntry struct {
	// Kind is the bare spec kind ("learn_sweep").
	Kind string `json:"kind"`
	// Version is the registered version (1 is the original wire format).
	Version int `json:"version"`
	// Wire is the name envelopes use to pin this exact version: the bare
	// kind for v1, "kind@vN" otherwise. A bare kind always resolves to the
	// latest version.
	Wire string `json:"wire"`
	// Latest marks the version a bare wire kind resolves to.
	Latest bool `json:"latest"`
	// Deprecated flags versions clients should migrate off; they still run.
	Deprecated bool `json:"deprecated,omitempty"`
	// Schema is the version's wire-document schema (draft 2020-12 subset),
	// nil when the registration carried none.
	Schema *Schema `json:"schema,omitempty"`
	// ResultSchema describes the aggregate result document GET /result
	// serves for this version; its $defs "task" entry is the per-task
	// document the result data plane streams. nil when the version's
	// RegisterResultCodec carried none (or there is no codec at all).
	ResultSchema *Schema `json:"result_schema,omitempty"`
}

// Catalog returns every registered (kind, version), sorted by kind then
// version. The slice and its schemas are shared snapshots: schemas are
// registered once at init and never mutated, so callers may render them
// freely but must not modify them.
func Catalog() []CatalogEntry {
	registry.RLock()
	defer registry.RUnlock()
	var out []CatalogEntry
	for kind, versions := range registry.kinds {
		for v, e := range versions {
			out = append(out, CatalogEntry{
				Kind:         kind,
				Version:      v,
				Wire:         VersionedKind(kind, v),
				Latest:       v == registry.latest[kind],
				Deprecated:   e.deprecated,
				Schema:       e.schema,
				ResultSchema: e.resultSchema,
			})
		}
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Kind != out[k].Kind {
			return out[i].Kind < out[k].Kind
		}
		return out[i].Version < out[k].Version
	})
	return out
}

// CatalogFingerprint hashes the registered kinds@versions (and their
// deprecation flags) into a short stable identifier. Two processes with the
// same fingerprint accept the same wire surface — gocserve reports it from
// /healthz and -version so operators can tell replica drift (one binary
// registering a kind the other lacks) apart from transport trouble.
// Schema *content* is deliberately not hashed: the fingerprint tracks what
// the registry accepts, and a doc-comment edit should not read as drift.
// Whether a version serves a result schema IS hashed (the "+r" marker):
// a replica without one cannot stream validated partial results, which is
// exactly the capability drift the fingerprint exists to expose. The NAMES
// of a version's $defs are hashed too ("[game,gen,...]"): defs are
// addressable wire surface — clients resolve "#/$defs/gen" against the
// served catalog — so renaming or dropping one is drift, while the def
// bodies stay unhashed like all other schema content.
func CatalogFingerprint() string {
	var lines []string
	for _, e := range Catalog() {
		line := fmt.Sprintf("%s@v%d", e.Kind, e.Version)
		if e.Deprecated {
			line += "!"
		}
		if e.ResultSchema != nil {
			line += "+r"
		}
		if names := defNames(e.Schema, e.ResultSchema); len(names) > 0 {
			line += "[" + strings.Join(names, ",") + "]"
		}
		lines = append(lines, line)
	}
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:8])
}

// defNames collects the $def names the given schemas expose, sorted and
// deduplicated across them (a spec schema and its result schema may both
// carry "summary"-style defs).
func defNames(schemas ...*Schema) []string {
	seen := map[string]bool{}
	for _, s := range schemas {
		if s == nil {
			continue
		}
		for name := range s.Defs {
			seen[name] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
