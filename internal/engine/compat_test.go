package engine

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// The golden wire-compat corpus: envelopes and job records written by the
// PR 2/3-era (pre-versioning) code, recorded under testdata/. Every entry
// must keep decoding identically through the versioned registry — bare kinds
// resolve to v1 semantics, canonical encodings and cache keys are unchanged
// byte for byte, and stored results revive losslessly. This is the
// regression gate for the acceptance criterion that versioning costs
// existing payloads nothing; scripts/compat_smoke.sh replays the same corpus
// against a live gocserve in CI.

type compatEnvelope struct {
	Envelope  JobEnvelope     `json:"envelope"`
	Canonical json.RawMessage `json:"canonical"`
	CacheKey  string          `json:"cache_key"`
}

// compatRecord is the PR 3 store.JobRecord wire shape, mirrored locally (the
// store package imports engine, so the test cannot import it back) and
// deliberately WITHOUT a version field: that is what every record written
// before versioning looks like.
type compatRecord struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Seed   uint64          `json:"seed"`
	Tasks  int             `json:"tasks"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

type compatCorpus struct {
	Comment    string           `json:"comment"`
	Envelopes  []compatEnvelope `json:"envelopes"`
	JobRecords []compatRecord   `json:"job_records"`
}

func loadCorpus(t *testing.T) compatCorpus {
	t.Helper()
	b, err := os.ReadFile("testdata/wire_corpus.json")
	if err != nil {
		t.Fatal(err)
	}
	var c compatCorpus
	if err := json.Unmarshal(b, &c); err != nil {
		t.Fatalf("corpus unreadable: %v", err)
	}
	if len(c.Envelopes) == 0 || len(c.JobRecords) == 0 {
		t.Fatal("corpus is empty")
	}
	return c
}

// compactJSON normalizes testdata formatting (MarshalIndent re-indents
// embedded RawMessages) without touching value or field order.
func compactJSON(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenCorpusEnvelopes(t *testing.T) {
	for _, c := range loadCorpus(t).Envelopes {
		t.Run(c.Envelope.Kind, func(t *testing.T) {
			rs, err := ResolveEnvelope(c.Envelope)
			if err != nil {
				t.Fatalf("recorded envelope no longer resolves: %v", err)
			}
			// A bare pre-versioning kind must resolve to version 1 for the
			// built-ins: registering a v2 of a built-in kind would re-route
			// every deployed client's payloads, so it must be a deliberate,
			// corpus-updating decision.
			if rs.Version != 1 {
				t.Fatalf("bare kind resolved to v%d (a built-in grew a later version; the corpus must be revisited)", rs.Version)
			}
			if rs.WireKind() != c.Envelope.Kind {
				t.Fatalf("wire kind drifted: %s", rs.WireKind())
			}
			canonical, err := CanonicalSpecJSON(rs.Spec)
			if err != nil {
				t.Fatal(err)
			}
			if want := compactJSON(t, c.Canonical); !bytes.Equal(canonical, want) {
				t.Fatalf("canonical encoding drifted:\n got %s\nwant %s", canonical, want)
			}
			if key := CacheKeyJSON(rs.WireKind(), canonical, c.Envelope.Seed); key != c.CacheKey {
				t.Fatalf("cache key drifted: got %s, want %s (deployed caches and data dirs would be orphaned)", key, c.CacheKey)
			}
			// The same document submitted with an explicit @v1 pin lands on
			// the same cache line — pinning v1 is a no-op, not a cache split.
			pinned, err := DecodeSpecAt(rs.Kind, 1, c.Envelope.Spec)
			if err != nil {
				t.Fatal(err)
			}
			pinnedKey, err := CacheKeyAt(pinned, 1, c.Envelope.Seed)
			if err != nil {
				t.Fatal(err)
			}
			if pinnedKey != c.CacheKey {
				t.Fatalf("@v1-pinned key %s != bare key %s", pinnedKey, c.CacheKey)
			}
		})
	}
}

func TestGoldenCorpusJobRecords(t *testing.T) {
	for _, rec := range loadCorpus(t).JobRecords {
		t.Run(rec.ID+"/"+rec.Kind, func(t *testing.T) {
			// Pre-versioning records carry no version; the rehydration path
			// maps that to v1.
			spec, err := DecodeSpecAt(rec.Kind, 0, rec.Spec)
			if err != nil {
				t.Fatalf("recorded spec no longer decodes: %v", err)
			}
			canonical, err := CanonicalSpecJSON(spec)
			if err != nil {
				t.Fatal(err)
			}
			if want := compactJSON(t, rec.Spec); !bytes.Equal(canonical, want) {
				t.Fatalf("stored canonical spec drifted:\n got %s\nwant %s", canonical, want)
			}
			if key := CacheKeyJSON(VersionedKind(rec.Kind, 1), canonical, rec.Seed); key != rec.Key {
				t.Fatalf("record cache key drifted: got %s, want %s", key, rec.Key)
			}
			if spec.Tasks() != rec.Tasks {
				t.Fatalf("task fan-out drifted: %d, recorded %d", spec.Tasks(), rec.Tasks)
			}
			// The stored result revives through the (version-aware) codec and
			// re-encodes byte-identically — what "same bytes after restart"
			// rests on.
			res, err := DecodeResult(rec.Kind, 0, rec.Result)
			if err != nil {
				t.Fatalf("recorded result no longer decodes: %v", err)
			}
			if _, isRaw := res.(json.RawMessage); isRaw {
				t.Fatalf("built-in kind %s lost its result codec", rec.Kind)
			}
			again, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			if want := compactJSON(t, rec.Result); !bytes.Equal(again, want) {
				t.Fatalf("result round-trip drifted:\n got %s\nwant %s", again, want)
			}
		})
	}
}
