// Package engine is the concurrent experiment engine: a deterministic
// worker-pool job runner for the library's heavy workloads — learning sweeps
// across schedulers and seeds, reward-design runs, market-simulator replays,
// and equilibrium enumeration over random games.
//
// Determinism is the design center. A job is a Spec that enumerates a fixed
// list of independent tasks; the engine forks one rng stream per task index
// from the job seed (rng.Rand.Fork, a pure function of parent state and
// index), runs tasks on however many workers are available, stores results
// by task index, and aggregates them in index order. Worker count and
// scheduling order therefore cannot influence the result: a sweep run on one
// worker is bit-identical to the same sweep on eight.
//
// The engine layers:
//
//	Spec     — a typed, deterministic job (LearnSweep, DesignSweep, …)
//	Engine   — runs one Spec synchronously over a worker pool
//	Manager  — asynchronous job submission, status, cancellation (gocserve)
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gameofcoins/internal/rng"
)

// Spec is a deterministic, parallelizable job. Implementations must make
// RunTask a pure function of (task index, the forked generator, the spec's
// own immutable fields): no shared mutable state across tasks. Aggregate is
// always called with results in task-index order.
type Spec interface {
	// Kind names the job type in statuses, caches, and error messages.
	Kind() string
	// Tasks returns the number of independent tasks the job fans out to.
	Tasks() int
	// RunTask executes task i with its private deterministic generator.
	// Implementations should poll ctx in long loops so cancellation can
	// interrupt a job mid-task, not just between tasks.
	RunTask(ctx context.Context, i int, r *rng.Rand) (any, error)
	// Aggregate combines the per-task results (index order) into the job
	// result.
	Aggregate(results []any) (any, error)
}

// Validator is implemented by specs that can reject bad parameters before
// any task runs. Engine.Run and Manager.Submit call it when present.
type Validator interface{ Validate() error }

// MaxTasksPerJob caps the task fan-out of a single job. It bounds the
// engine's up-front per-task bookkeeping so a hostile or fat-fingered spec
// cannot allocate unbounded memory before the first task runs.
const MaxTasksPerJob = 1 << 20

// Progress reports how far a running job has advanced. Done counts finished
// tasks; it is monotone but may be observed out of submission order.
type Progress struct {
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Engine runs Specs over a fixed-size worker pool. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use, and the
// worker cap is global: concurrent Runs on one Engine share the same token
// pool, so a server running many jobs at once never executes more than
// `workers` tasks simultaneously.
type Engine struct {
	workers int
	sem     chan struct{}
}

// New returns an engine with the given worker count; workers <= 0 selects
// GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Run executes spec synchronously and returns its aggregated result.
// seed roots the deterministic stream tree: task i draws from
// rng.New(seed).Fork(i), so the result is independent of worker count.
// onProgress, if non-nil, is invoked after each completed task; it must be
// safe for concurrent use (workers call it directly).
func (e *Engine) Run(ctx context.Context, spec Spec, seed uint64, onProgress func(Progress)) (any, error) {
	if v, ok := spec.(Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("engine: invalid %s spec: %w", spec.Kind(), err)
		}
	}
	n := spec.Tasks()
	if n < 0 {
		return nil, fmt.Errorf("engine: %s spec reports %d tasks", spec.Kind(), n)
	}
	if n > MaxTasksPerJob {
		// The per-task results slice is allocated up front; an absurd task
		// count (e.g. from an unauthenticated gocserve request) must fail
		// the job, not OOM the process.
		return nil, fmt.Errorf("engine: %s spec reports %d tasks, cap is %d", spec.Kind(), n, MaxTasksPerJob)
	}
	if n == 0 {
		return aggregate(spec, nil)
	}

	// Fork is a pure function of (parent state, index) and never mutates the
	// parent, so workers fork lazily from the shared base: concurrent reads
	// of immutable state, no per-task pre-allocation.
	base := rng.New(seed)

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]any, n)
	var (
		done     atomic.Int64
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	tasks := make(chan int)
	workers := e.workers
	if workers > n {
		workers = n
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				// The token pool is Engine-wide: it bounds in-flight tasks
				// across every concurrent Run sharing this Engine.
				select {
				case e.sem <- struct{}{}:
				case <-cctx.Done():
					return
				}
				out, err := runTask(cctx, spec, i, base.Fork(uint64(i)))
				<-e.sem
				if err != nil {
					errOnce.Do(func() {
						firstErr = fmt.Errorf("engine: %s task %d: %w", spec.Kind(), i, err)
						cancel()
					})
					return
				}
				results[i] = out
				if onProgress != nil {
					onProgress(Progress{Done: int(done.Add(1)), Total: n})
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case tasks <- i:
		case <-cctx.Done():
			break feed
		}
	}
	close(tasks)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return aggregate(spec, results)
}

// runTask and aggregate convert spec panics into job errors: a bad spec
// must fail its own job, never crash the process hosting the engine (a
// panic in a Manager job goroutine is otherwise unrecoverable).
func runTask(ctx context.Context, spec Spec, i int, r *rng.Rand) (out any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("task panicked: %v", p)
		}
	}()
	return spec.RunTask(ctx, i, r)
}

func aggregate(spec Spec, results []any) (out any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: %s aggregate panicked: %v", spec.Kind(), p)
		}
	}()
	return spec.Aggregate(results)
}

// Func adapts closures to Spec, for one-off jobs (the experiment suite uses
// it to fan E1–E13 across workers). If Agg is nil the per-task results are
// returned as a []any in task order.
type Func struct {
	Name string
	N    int
	Task func(ctx context.Context, i int, r *rng.Rand) (any, error)
	Agg  func(results []any) (any, error)
}

// Kind implements Spec.
func (f Func) Kind() string {
	if f.Name == "" {
		return "func"
	}
	return f.Name
}

// Tasks implements Spec.
func (f Func) Tasks() int { return f.N }

// RunTask implements Spec.
func (f Func) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	return f.Task(ctx, i, r)
}

// Aggregate implements Spec.
func (f Func) Aggregate(results []any) (any, error) {
	if f.Agg == nil {
		return results, nil
	}
	return f.Agg(results)
}
