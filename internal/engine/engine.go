// Package engine is the concurrent experiment engine: a deterministic
// worker-pool job runner for the library's heavy workloads — learning sweeps
// across schedulers and seeds, reward-design runs, market-simulator replays,
// and equilibrium enumeration over random games.
//
// Determinism is the design center. A job is a Spec that enumerates a fixed
// list of independent tasks; the engine forks one rng stream per task index
// from the job seed (rng.Rand.Fork, a pure function of parent state and
// index), runs tasks on however many workers are available, stores results
// by task index, and aggregates them in index order. Worker count and
// scheduling order therefore cannot influence the result: a sweep run on one
// worker is bit-identical to the same sweep on eight.
//
// The engine layers:
//
//	Spec     — a typed, deterministic job (LearnSweep, DesignSweep, …)
//	Engine   — runs Specs over a shared size-aware work-stealing dispatcher
//	Manager  — asynchronous job submission, status, cancellation (gocserve)
//
// Scheduling is size-aware and fair: specs that implement Sizer have their
// tasks ordered longest-processing-time-first (so a fat straggler starts
// early instead of last), and concurrent Runs share the worker pool evenly —
// each take goes to the active job with the fewest tasks in flight, so a
// huge job submitted first cannot starve a small one submitted later. None
// of this can perturb results: scheduling chooses *when* a task runs, never
// what it computes.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"gameofcoins/internal/rng"
)

// Spec is a deterministic, parallelizable job. Implementations must make
// RunTask a pure function of (task index, the forked generator, the spec's
// own immutable fields): no shared mutable state across tasks. Aggregate is
// always called with results in task-index order.
type Spec interface {
	// Kind names the job type in statuses, caches, and error messages.
	Kind() string
	// Tasks returns the number of independent tasks the job fans out to.
	Tasks() int
	// RunTask executes task i with its private deterministic generator.
	// Implementations should poll ctx in long loops so cancellation can
	// interrupt a job mid-task, not just between tasks.
	RunTask(ctx context.Context, i int, r *rng.Rand) (any, error)
	// Aggregate combines the per-task results (index order) into the job
	// result.
	Aggregate(results []any) (any, error)
}

// Validator is implemented by specs that can reject bad parameters before
// any task runs. Engine.Run and Manager.Submit call it when present.
type Validator interface{ Validate() error }

// MaxTasksPerJob caps the task fan-out of a single job. It bounds the
// engine's up-front per-task bookkeeping so a hostile or fat-fingered spec
// cannot allocate unbounded memory before the first task runs.
const MaxTasksPerJob = 1 << 20

// Progress reports how far a running job has advanced. Done counts finished
// tasks and is monotone per job (the dispatcher serializes publication).
// Running and Queued expose the scheduler's view as of the last completed
// task: tasks executing on workers and tasks still waiting in the job's
// deque. They are omitted when zero, so terminal statuses stay compact.
type Progress struct {
	Done    int `json:"done"`
	Total   int `json:"total"`
	Running int `json:"running,omitempty"`
	Queued  int `json:"queued,omitempty"`
	// Watermark is the contiguous completed prefix of the job's result
	// ledger: every task below it has its encoded result recorded. Zero for
	// jobs without a ledger (specs that are not TaskCoders, restored jobs).
	Watermark int `json:"watermark,omitempty"`
}

// Engine runs Specs over a shared work-stealing dispatcher (sched.go): up to
// `workers` worker goroutines — spawned on demand, retired when the engine
// drains — pull tasks from per-job deques, fair-sharing the pool across
// every concurrent Run. The zero value is not usable; construct with New.
// An Engine is safe for concurrent use, and the worker cap is global: a
// server running many jobs at once never executes more than `workers` tasks
// simultaneously.
type Engine struct {
	workers int

	mu        sync.Mutex
	active    []*runJob // guarded by mu; jobs with pending or in-flight tasks, submit order
	rr        int       // guarded by mu; rotating fair-share cursor over active
	live      int       // guarded by mu; worker goroutines currently running
	steals    uint64    // guarded by mu; cumulative cross-job takes
	completed uint64    // guarded by mu; cumulative finished tasks

	// Remote task source (remote.go): distributable jobs keyed by run token,
	// plus lifetime lease counters. The observed-cost model (sched.go) feeds
	// both weighted fair share and lease sizing.
	runs           map[uint64]*runJob  // guarded by mu
	nextRun        uint64              // guarded by mu
	obs            map[string]*obsCost // guarded by mu
	leasesGranted  uint64              // guarded by mu
	remoteDone     uint64              // guarded by mu
	remoteRequeued uint64              // guarded by mu

	// Admission-control quota (SetClientShares): the default cap on any one
	// client's share of total in-flight cost, plus per-client overrides.
	shareDefault  float64            // guarded by mu
	shareOverride map[string]float64 // guarded by mu
}

// New returns an engine with the given worker count; workers <= 0 selects
// GOMAXPROCS. The engine spawns no goroutines until a job arrives and holds
// none while idle.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: workers}
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return e.workers }

// Run executes spec synchronously and returns its aggregated result.
// seed roots the deterministic stream tree: task i draws from
// rng.New(seed).Fork(i), so the result is independent of worker count and
// scheduling order. onProgress, if non-nil, is invoked after each completed
// task; invocations are serialized per job and stop the moment the job
// starts failing or is canceled, and every invocation happens before Run
// returns. A canceled Run returns the first real task error if one caused
// the failure, otherwise the cancellation wrapped as "engine: <kind>: …"
// (errors.Is(err, context.Canceled) still holds).
func (e *Engine) Run(ctx context.Context, spec Spec, seed uint64, onProgress func(Progress)) (any, error) {
	return e.run(ctx, spec, seed, runOpts{onProgress: onProgress})
}

// runOpts carries Run's optional hooks — the full-control surface the
// Manager wires for serving-layer jobs.
type runOpts struct {
	// onProgress is invoked after each completed task (see Run).
	onProgress func(Progress)
	// remote, when non-nil and the spec implements TaskCoder, publishes the
	// job to the remote task source (remote.go) so a coordinator can lease
	// chunks of it to workers.
	remote *RemoteInfo
	// prefill seeds already-computed task results by index (TaskCoder wire
	// form) — the restart path, where the store replayed the completed
	// prefix of an interrupted job. Valid entries are published before the
	// first task runs and their indices never enter the pending deque, so
	// only the missing suffix recomputes; entries that fail to decode are
	// recomputed instead. Ignored unless the spec implements TaskCoder.
	prefill map[int]json.RawMessage
	// onTask, when non-nil and the spec implements TaskCoder, receives every
	// published task result in its encoded wire form — the feed the result
	// ledger is built from. Invocations are serialized (the publication
	// locks) but arrive in completion order, not index order. A result whose
	// encoding fails is published to the job but not delivered here.
	onTask func(task int, raw json.RawMessage)
	// client names the submitting tenant for per-client quota accounting
	// ("" = anonymous); weight scales the job's urgency in fair-share
	// comparisons (<= 0 means the default 1.0). Both bias scheduling order
	// only and can never reach results.
	client string
	weight float64
}

// run is Run plus the optional remote wire identity, result prefill, and
// per-task ledger hook (see runOpts).
func (e *Engine) run(ctx context.Context, spec Spec, seed uint64, ro runOpts) (any, error) {
	if v, ok := spec.(Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("engine: invalid %s spec: %w", spec.Kind(), err)
		}
	}
	n := spec.Tasks()
	if n < 0 {
		return nil, fmt.Errorf("engine: %s spec reports %d tasks", spec.Kind(), n)
	}
	if n > MaxTasksPerJob {
		// The per-task results slice is allocated up front; an absurd task
		// count (e.g. from an unauthenticated gocserve request) must fail
		// the job, not OOM the process.
		return nil, fmt.Errorf("engine: %s spec reports %d tasks, cap is %d", spec.Kind(), n, MaxTasksPerJob)
	}
	// The ctx gate must precede the n == 0 early return: a zero-task spec
	// under an already-canceled context is a canceled job, not a success.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %s: %w", spec.Kind(), err)
	}
	if n == 0 {
		return aggregate(spec, nil)
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	j := &runJob{
		spec:   spec,
		n:      n,
		ctx:    cctx,
		cancel: cancel,
		// Fork is a pure function of (parent state, index) and never mutates
		// the parent, so workers fork lazily from the shared base: concurrent
		// reads of immutable state, no per-task pre-allocation.
		base:       rng.New(seed),
		results:    make([]any, n),
		onProgress: ro.onProgress,
		pending:    orderTasks(spec, n),
		finished:   make(chan struct{}),
	}
	j.sizer, _ = spec.(Sizer)
	j.costKey = spec.Kind()
	j.client = ro.client
	j.weight = ro.weight
	if coder, ok := spec.(TaskCoder); ok {
		j.coder = coder
		j.onTask = ro.onTask
	}
	if ro.remote != nil {
		j.costKey = ro.remote.WireKind
		if j.coder != nil {
			j.wire = ro.remote
		}
	}
	e.prefill(j, ro.prefill)
	e.enqueue(j)
	// An entirely prefilled job has an empty deque and nothing in flight:
	// no worker will ever pull from it, so retire it here. (finishIfIdle
	// reports true exactly once, so racing a worker that drained a partial
	// prefill in the meantime is safe.)
	if len(ro.prefill) > 0 {
		e.mu.Lock()
		finished := e.finishIfIdleLocked(j)
		e.mu.Unlock()
		if finished {
			close(j.finished)
		}
	}
	go func() {
		select {
		case <-cctx.Done():
			e.haltJob(j)
		case <-j.finished:
		}
	}()
	<-j.finished

	j.pmu.Lock()
	firstErr := j.firstErr
	j.pmu.Unlock()
	// Prefer the task error that doomed the job over the cancellation it
	// triggered — unless the "error" is itself the cancellation, in which
	// case report the canceled ctx with the same engine/kind wrapping.
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) && !errors.Is(firstErr, context.DeadlineExceeded) {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: %s: %w", spec.Kind(), err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return aggregate(spec, j.results)
}

// prefill publishes already-computed task results before the job is
// enqueued: valid entries land in the results slice and the done bitmap, and
// their indices are filtered out of the pending deque, so the dispatcher
// only ever runs the missing tasks. Entries that fail to decode — or any
// prefill on a spec without a TaskCoder — are dropped and recomputed, which
// is always correct (determinism makes the recomputed value identical).
// The job is not yet published, so no locks are needed.
func (e *Engine) prefill(j *runJob, fill map[int]json.RawMessage) {
	if len(fill) == 0 || j.coder == nil {
		return
	}
	filled := 0
	for i := 0; i < j.n; i++ {
		raw, ok := fill[i]
		if !ok {
			continue
		}
		out, err := j.coder.DecodeTaskResult(raw)
		if err != nil {
			continue
		}
		if j.doneTask == nil {
			j.doneTask = make([]bool, j.n)
		}
		j.doneTask[i] = true
		j.results[i] = out
		j.done++
		filled++
		if j.onTask != nil {
			j.onTask(i, raw)
		}
	}
	if filled == 0 {
		return
	}
	kept := j.pending[:0]
	for _, i := range j.pending {
		if !j.doneTask[i] {
			kept = append(kept, i)
		}
	}
	j.pending = kept
}

// runTask and aggregate convert spec panics into job errors: a bad spec
// must fail its own job, never crash the process hosting the engine (a
// panic in a Manager job goroutine is otherwise unrecoverable).
func runTask(ctx context.Context, spec Spec, i int, r *rng.Rand) (out any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("task panicked: %v", p)
		}
	}()
	return spec.RunTask(ctx, i, r)
}

func aggregate(spec Spec, results []any) (out any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("engine: %s aggregate panicked: %v", spec.Kind(), p)
		}
	}()
	return spec.Aggregate(results)
}

// Func adapts closures to Spec, for one-off jobs (the experiment suite uses
// it to fan E1–E13 across workers). If Agg is nil the per-task results are
// returned as a []any in task order. If Cost is nil every task costs the
// same, which keeps submission order (FIFO); set it to let the scheduler
// order tasks longest-first.
type Func struct {
	Name string
	N    int
	Task func(ctx context.Context, i int, r *rng.Rand) (any, error)
	Agg  func(results []any) (any, error)
	Cost func(i int) float64
}

// Kind implements Spec.
func (f Func) Kind() string {
	if f.Name == "" {
		return "func"
	}
	return f.Name
}

// Tasks implements Spec.
func (f Func) Tasks() int { return f.N }

// RunTask implements Spec.
func (f Func) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	return f.Task(ctx, i, r)
}

// Aggregate implements Spec.
func (f Func) Aggregate(results []any) (any, error) {
	if f.Agg == nil {
		return results, nil
	}
	return f.Agg(results)
}

// TaskCost implements Sizer. With no Cost hook every task weighs the same
// and the stable LPT sort degrades to index order.
func (f Func) TaskCost(i int) float64 {
	if f.Cost == nil {
		return 1
	}
	return f.Cost(i)
}
