package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gameofcoins/internal/core"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/rng"
)

// TestWorkerCountIndependence is the engine's core guarantee: the same spec
// and seed produce identical aggregated results on 1, 2, and 8 workers.
func TestWorkerCountIndependence(t *testing.T) {
	specs := map[string]Spec{
		"learn_random_games": LearnSweep{
			Gen:        core.GenSpec{Miners: 6, Coins: 3},
			Schedulers: []string{"random", "max-gain"},
			Runs:       10,
		},
		"learn_fixed_game": LearnSweep{
			Game: core.MustNewGame(
				[]core.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}, {Name: "p4", Power: 2}},
				[]core.Coin{{Name: "a"}, {Name: "b"}},
				[]float64{17, 9},
			),
			Runs: 12,
		},
		"design": DesignSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Pairs: 6},
		"eq":     EquilibriumSweep{Gen: core.GenSpec{Miners: 5, Coins: 2}, Games: 20},
		"replay": ReplaySweep{
			Runs:   2,
			Params: replay.ScenarioParams{Miners: 40, Epochs: 24 * 10, SpikeHour: 24 * 4},
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			var results []any
			for _, workers := range []int{1, 2, 8} {
				res, err := New(workers).Run(context.Background(), spec, 11, nil)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				results = append(results, res)
			}
			if !reflect.DeepEqual(results[0], results[1]) || !reflect.DeepEqual(results[0], results[2]) {
				t.Fatalf("results differ across worker counts:\n1: %+v\n2: %+v\n8: %+v",
					results[0], results[1], results[2])
			}
		})
	}
}

// TestLearnSweepConverges sanity-checks the aggregate shape: Theorem 1 says
// every run converges.
func TestLearnSweepConverges(t *testing.T) {
	res, err := New(4).Run(context.Background(), LearnSweep{
		Gen:  core.GenSpec{Miners: 8, Coins: 3},
		Runs: 8,
	}, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep := res.(LearnSweepResult)
	if len(sweep.Schedulers) == 0 {
		t.Fatal("no scheduler summaries")
	}
	for _, s := range sweep.Schedulers {
		if s.Converged != s.Runs {
			t.Fatalf("scheduler %s: %d/%d converged", s.Scheduler, s.Converged, s.Runs)
		}
		if s.Steps.N != s.Runs {
			t.Fatalf("scheduler %s: steps summary over %d runs", s.Scheduler, s.Steps.N)
		}
	}
}

// TestDesignSweepReachesTargets mirrors Theorem 2: every non-skipped design
// run ends at the requested equilibrium.
func TestDesignSweepReachesTargets(t *testing.T) {
	res, err := New(4).Run(context.Background(), DesignSweep{
		Gen:   core.GenSpec{Miners: 4, Coins: 2},
		Pairs: 8,
	}, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	sweep := res.(DesignSweepResult)
	if sweep.Reached+sweep.Skipped != sweep.Pairs {
		t.Fatalf("reached %d + skipped %d != pairs %d", sweep.Reached, sweep.Skipped, sweep.Pairs)
	}
	if sweep.Reached == 0 {
		t.Fatal("no design run found a usable game")
	}
}

// TestProgressReachesTotal checks the streaming progress counter.
func TestProgressReachesTotal(t *testing.T) {
	var maxDone atomic.Int64
	var calls atomic.Int64
	spec := EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 15}
	_, err := New(4).Run(context.Background(), spec, 5, func(p Progress) {
		calls.Add(1)
		for {
			old := maxDone.Load()
			if int64(p.Done) <= old || maxDone.CompareAndSwap(old, int64(p.Done)) {
				break
			}
		}
		if p.Total != 15 {
			t.Errorf("total = %d", p.Total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if maxDone.Load() != 15 || calls.Load() != 15 {
		t.Fatalf("progress done=%d calls=%d, want 15/15", maxDone.Load(), calls.Load())
	}
}

// TestTaskErrorCancelsRun checks that a failing task aborts the job and
// surfaces the task error.
func TestTaskErrorCancelsRun(t *testing.T) {
	boom := errors.New("boom")
	spec := Func{
		Name: "failing",
		N:    50,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			if i == 3 {
				return nil, boom
			}
			return i, nil
		},
	}
	_, err := New(4).Run(context.Background(), spec, 1, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
}

// TestRunHonorsContextCancellation checks mid-job cancellation.
func TestRunHonorsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1)
	spec := Func{
		Name: "slow",
		N:    1000,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(5 * time.Millisecond):
				return i, nil
			}
		},
	}
	done := make(chan error, 1)
	go func() {
		_, err := New(2).Run(ctx, spec, 1, nil)
		done <- err
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
}

// TestFuncDefaultAggregate returns per-task results in task order.
func TestFuncDefaultAggregate(t *testing.T) {
	spec := Func{
		Name: "ident",
		N:    20,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i * i, nil },
	}
	res, err := New(8).Run(context.Background(), spec, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.([]any)
	for i, v := range out {
		if v.(int) != i*i {
			t.Fatalf("out[%d] = %v", i, v)
		}
	}
}

// TestValidation rejects bad specs before running anything.
func TestValidation(t *testing.T) {
	bad := []Spec{
		LearnSweep{Runs: 0, Gen: core.GenSpec{Miners: 3, Coins: 2}},
		LearnSweep{Runs: 5},
		LearnSweep{Runs: 5, Gen: core.GenSpec{Miners: 3, Coins: 2}, Schedulers: []string{"nope"}},
		DesignSweep{Pairs: 0, Gen: core.GenSpec{Miners: 3, Coins: 2}},
		ReplaySweep{Runs: 0},
		EquilibriumSweep{Games: 5},
	}
	for i, spec := range bad {
		if _, err := New(1).Run(context.Background(), spec, 1, nil); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

// TestManagerLifecycle submits, waits, and reads back a job.
func TestManagerLifecycle(t *testing.T) {
	m := NewManager(New(4))
	defer m.Close()
	job, err := m.Submit(EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 10}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.State != StateDone || st.Progress.Done != 10 {
		t.Fatalf("status = %+v", st)
	}
	res, ok := job.Result()
	if !ok {
		t.Fatal("no result")
	}
	if res.(EquilibriumSweepResult).Games != 10 {
		t.Fatalf("result = %+v", res)
	}
	got, err := m.Get(job.ID())
	if err != nil || got != job {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := m.Get("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job err = %v", err)
	}
}

// TestManagerCancel cancels a long job mid-flight.
func TestManagerCancel(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	job, err := m.Submit(LearnSweep{
		Gen:        core.GenSpec{Miners: 16, Coins: 4},
		Schedulers: []string{"random"},
		Runs:       100000,
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	_ = job.Wait(context.Background())
	if st := job.Status(); st.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if _, ok := job.Result(); ok {
		t.Fatal("canceled job has a result")
	}
}

// TestTaskPanicBecomesJobError: a panicking spec must fail its own job, not
// crash the process hosting the engine (gocserve runs arbitrary requests).
func TestTaskPanicBecomesJobError(t *testing.T) {
	spec := Func{
		Name: "panics",
		N:    8,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		},
	}
	_, err := New(4).Run(context.Background(), spec, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "task panicked: kaboom") {
		t.Fatalf("err = %v, want task-panic error", err)
	}
}

// TestConcurrentRunsShareWorkerCap: two Runs on a 1-worker engine interleave
// on the shared dispatcher and both finish (no deadlock, no oversubscription
// beyond the worker cap).
func TestConcurrentRunsShareWorkerCap(t *testing.T) {
	eng := New(1)
	var inFlight, maxInFlight atomic.Int64
	spec := Func{
		Name: "counted",
		N:    10,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			cur := inFlight.Add(1)
			defer inFlight.Add(-1)
			for {
				old := maxInFlight.Load()
				if cur <= old || maxInFlight.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			return i, nil
		},
	}
	errs := make(chan error, 2)
	for k := 0; k < 2; k++ {
		go func() {
			_, err := eng.Run(context.Background(), spec, 1, nil)
			errs <- err
		}()
	}
	for k := 0; k < 2; k++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if maxInFlight.Load() != 1 {
		t.Fatalf("max in-flight tasks = %d, want 1 (engine-wide cap)", maxInFlight.Load())
	}
}

// TestTaskCountCap: a spec fanning out beyond MaxTasksPerJob must fail
// before allocating per-task bookkeeping, not OOM the process.
func TestTaskCountCap(t *testing.T) {
	spec := Func{
		Name: "huge",
		N:    MaxTasksPerJob + 1,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
	}
	_, err := New(1).Run(context.Background(), spec, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want task-cap error", err)
	}
	// The same guard protects the async path gocserve uses — and rejects up
	// front, so an absurd task total is never published in job statuses.
	m := NewManager(New(1))
	defer m.Close()
	_, err = m.Submit(EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 2000000000}, 1)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("Submit err = %v, want synchronous task-cap error", err)
	}
	// A negative fan-out is rejected the same way.
	_, err = m.Submit(Func{Name: "neg", N: -1,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil }}, 1)
	if err == nil || !strings.Contains(err.Error(), "tasks") {
		t.Fatalf("Submit err = %v, want negative-task error", err)
	}
}

// TestLearnSweepTasksOverflowSaturates: a Runs value whose product with the
// scheduler count would overflow int must saturate past the cap (and be
// rejected), never wrap to a small or zero task count.
func TestLearnSweepTasksOverflowSaturates(t *testing.T) {
	spec := LearnSweep{
		Gen:        core.GenSpec{Miners: 4, Coins: 2},
		Schedulers: []string{"round-robin", "random", "max-gain", "min-gain"},
		Runs:       1 << 62,
	}
	if n := spec.Tasks(); n <= MaxTasksPerJob {
		t.Fatalf("Tasks() = %d, want > cap %d", n, MaxTasksPerJob)
	}
	if _, err := New(1).Run(context.Background(), spec, 1, nil); err == nil {
		t.Fatal("overflowing sweep accepted")
	}
}

// TestAggregatePanicBecomesJobError: the panic-to-error guarantee covers
// Aggregate as well as RunTask.
func TestAggregatePanicBecomesJobError(t *testing.T) {
	spec := Func{
		Name: "agg-panics",
		N:    2,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
		Agg:  func([]any) (any, error) { panic("agg kaboom") },
	}
	m := NewManager(New(2))
	defer m.Close()
	job, err := m.Submit(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err == nil || !strings.Contains(err.Error(), "aggregate panicked") {
		t.Fatalf("err = %v, want aggregate-panic error", err)
	}
	if st := job.Status(); st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
}

// TestManagerRetention: terminal jobs beyond the cap are evicted oldest
// first; running jobs survive.
func TestManagerRetention(t *testing.T) {
	m := NewManager(New(2))
	m.Retention = 4
	defer m.Close()
	var jobs []*Job
	for k := 0; k < 8; k++ {
		j, err := m.Submit(EquilibriumSweep{Gen: core.GenSpec{Miners: 3, Coins: 2}, Games: 2}, uint64(k))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if n := len(m.Statuses()); n > m.Retention {
		t.Fatalf("retained %d jobs, cap %d", n, m.Retention)
	}
	if _, err := m.Get(jobs[0].ID()); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("oldest job not evicted: %v", err)
	}
	if _, err := m.Get(jobs[len(jobs)-1].ID()); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

// TestReplaySweepRejectsNegativeParams: negative scenario params would panic
// deep in replay.New; Validate must stop them at the boundary.
func TestReplaySweepRejectsNegativeParams(t *testing.T) {
	spec := ReplaySweep{Runs: 1}
	spec.Params.Miners = -1
	if _, err := New(1).Run(context.Background(), spec, 1, nil); err == nil {
		t.Fatal("negative Miners accepted")
	}
}

// TestManagerDeterminismAcrossWorkerCounts reruns the 1-vs-8 check through
// the async path, exactly as gocserve would.
func TestManagerDeterminismAcrossWorkerCounts(t *testing.T) {
	spec := LearnSweep{Gen: core.GenSpec{Miners: 6, Coins: 2}, Schedulers: []string{"round-robin", "random"}, Runs: 10}
	var results []any
	for _, workers := range []int{1, 8} {
		m := NewManager(New(workers))
		job, err := m.Submit(spec, 21)
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		res, _ := job.Result()
		results = append(results, res)
		m.Close()
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("async results differ:\n1: %+v\n8: %+v", results[0], results[1])
	}
}
