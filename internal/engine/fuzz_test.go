package engine

import (
	"strings"
	"testing"
)

// The two hand-rolled parsers on the submission path — the JSON-Schema
// subset validator and the kind@vN wire parser feeding envelope resolution —
// see arbitrary client bytes before anything else does. These fuzz targets
// hold them to "reject, never panic": a malformed document must come back as
// an error (for the schema, always a *SchemaError), and verdicts must be
// deterministic, because validation runs on every replica and a
// replica-dependent verdict would split the cache. CI runs each briefly
// (-fuzztime 30s, non-gating); the corpora grow under testdata/fuzz.

// FuzzSchemaValidate feeds arbitrary documents to every built-in spec
// schema.
func FuzzSchemaValidate(f *testing.F) {
	f.Add([]byte(`{"runs": 3, "gen": {"miners": 2, "coins": 2}}`))
	f.Add([]byte(`{"pairs": 1}`))
	f.Add([]byte(`{"runs": "three"}`))
	f.Add([]byte(`{"unknown_field": true}`))
	f.Add([]byte(`{"gen": {"miners": 1e2}}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`nul`))
	f.Add([]byte(`{"runs": 18446744073709551616}`))
	f.Add([]byte(`{"game": {"miners": [{"power": 1.5}]}}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		schemas := []*Schema{
			learnSweepSchema(),
			designSweepSchema(),
			replaySweepSchema(),
			equilibriumSweepSchema(),
		}
		for _, s := range schemas {
			err := s.Validate(raw)
			if err != nil {
				var se *SchemaError
				if !asSchemaError(err, &se) {
					t.Fatalf("Validate returned a non-*SchemaError: %T %v", err, err)
				}
			}
			// Validation is pure: the same document must get the same verdict
			// on every replica, or identical submissions would 422 on one
			// server and run on another.
			again := s.Validate(raw)
			if (err == nil) != (again == nil) {
				t.Fatalf("Validate verdict not deterministic: %v then %v", err, again)
			}
		}
	})
}

func asSchemaError(err error, target **SchemaError) bool {
	se, ok := err.(*SchemaError)
	if ok {
		*target = se
	}
	return ok
}

// FuzzParseKindVersion holds the wire-kind parser to its canonical-spelling
// contract: accepted kinds round-trip through VersionedKind, and no input
// panics.
func FuzzParseKindVersion(f *testing.F) {
	f.Add("learn_sweep")
	f.Add("learn_sweep@v2")
	f.Add("@v1")
	f.Add("k@v01")
	f.Add("k@v+2")
	f.Add("k@")
	f.Add("k@v")
	f.Add("k@v0")
	f.Add("k@v1@v2")
	f.Add("k@v18446744073709551616")
	f.Fuzz(func(t *testing.T, wire string) {
		kind, version, err := ParseKindVersion(wire)
		if err != nil {
			if kind != "" || version != 0 {
				t.Fatalf("ParseKindVersion(%q) errored but returned (%q, %d)", wire, kind, version)
			}
			return
		}
		if strings.Contains(kind, "@") {
			t.Fatalf("ParseKindVersion(%q) accepted a kind containing '@': %q", wire, kind)
		}
		if version < 0 {
			t.Fatalf("ParseKindVersion(%q) returned negative version %d", wire, version)
		}
		// A pinned spelling must round-trip exactly: parse(render(kind, vN))
		// == (kind, vN) for N >= 2 (v1 and "latest" both render bare).
		if version >= 2 {
			k2, v2, err2 := ParseKindVersion(VersionedKind(kind, version))
			if err2 != nil || k2 != kind || v2 != version {
				t.Fatalf("round-trip of (%q, %d) gave (%q, %d, %v)", kind, version, k2, v2, err2)
			}
		}
	})
}

// FuzzResolveEnvelope drives the full envelope-resolution path — kind
// parsing, registry lookup, schema validation, decode — with arbitrary kind
// strings and spec documents. Every outcome must be an error or a valid
// resolved spec; nothing may panic.
func FuzzResolveEnvelope(f *testing.F) {
	f.Add("learn_sweep", []byte(`{"runs": 2, "gen": {"miners": 2, "coins": 2}}`))
	f.Add("learn_sweep@v1", []byte(`{"runs": 1}`))
	f.Add("equilibrium_sweep", []byte(`{"games": 1, "gen": {"miners": 2, "coins": 2}}`))
	f.Add("design_sweep", []byte(`{"pairs": -1}`))
	f.Add("nope", []byte(`{}`))
	f.Add("learn_sweep@v99", []byte(`{}`))
	f.Add("replay_sweep", []byte(`{"params": {"miners": -5}}`))
	f.Add("", []byte(``))
	f.Fuzz(func(t *testing.T, wire string, raw []byte) {
		rs, err := ResolveEnvelope(JobEnvelope{Kind: wire, Seed: 1, Spec: raw})
		if err != nil {
			return
		}
		if rs.Spec == nil {
			t.Fatalf("ResolveEnvelope(%q) returned nil spec without error", wire)
		}
		// A resolved spec must re-encode canonically — that encoding is what
		// cache keys hash, so a marshal failure here would be a job that runs
		// but can never be cached or persisted.
		if _, cerr := CanonicalSpecJSON(rs.Spec); cerr != nil {
			t.Fatalf("resolved %q spec does not re-encode: %v", wire, cerr)
		}
	})
}
