//go:build ignore

// gen_corpus regenerates testdata/wire_corpus.json — the golden wire-compat
// corpus of PR 2/3-era envelopes and job records the versioned registry must
// keep decoding byte-identically. Run it only when the wire format changes
// ON PURPOSE (which invalidates every deployed cache and data directory):
//
//	go run gen_corpus.go
//
// The envelopes mirror the golden cases of registry_test.go (same documents,
// same cache keys); the job records are written in the pre-versioning store
// shape — no "version" field — with results actually computed by the engine,
// so the corpus is what a real PR 3 data directory holds.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"gameofcoins/internal/engine"
)

type corpusEnvelope struct {
	Envelope  engine.JobEnvelope `json:"envelope"`
	Canonical json.RawMessage    `json:"canonical"`
	CacheKey  string             `json:"cache_key"`
}

// corpusRecord is the PR 3 store.JobRecord wire shape, spelled out locally
// so the corpus generator (and the compat test) cannot silently absorb
// future record-field changes.
type corpusRecord struct {
	ID     string          `json:"id"`
	Key    string          `json:"key"`
	Kind   string          `json:"kind"`
	Seed   uint64          `json:"seed"`
	Tasks  int             `json:"tasks"`
	Spec   json.RawMessage `json:"spec,omitempty"`
	State  string          `json:"state"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

type corpus struct {
	Comment    string           `json:"comment"`
	Envelopes  []corpusEnvelope `json:"envelopes"`
	JobRecords []corpusRecord   `json:"job_records"`
}

func main() {
	out := corpus{
		Comment: "Golden wire-compat corpus: PR 2/3-era envelopes and job records. " +
			"Regenerate with `go run gen_corpus.go` ONLY for deliberate wire breaks.",
	}

	envelopes := []engine.JobEnvelope{
		{Kind: "learn_sweep", Seed: 11, Spec: json.RawMessage(`{"gen":{"Miners":8,"Coins":3},"schedulers":["random","round-robin"],"runs":50,"max_steps":200}`)},
		{Kind: "design_sweep", Seed: 3, Spec: json.RawMessage(`{"gen":{"Miners":4,"Coins":2},"pairs":25,"max_tries":100}`)},
		{Kind: "replay_sweep", Seed: 5, Spec: json.RawMessage(`{"params":{"Miners":30,"Epochs":144,"SpikeHour":48},"runs":10}`)},
		{Kind: "equilibrium_sweep", Seed: 7, Spec: json.RawMessage(`{"gen":{"Miners":5,"Coins":2},"games":500}`)},
	}
	for _, env := range envelopes {
		rs, err := engine.ResolveEnvelope(env)
		check(err)
		canonical, err := engine.CanonicalSpecJSON(rs.Spec)
		check(err)
		out.Envelopes = append(out.Envelopes, corpusEnvelope{
			Envelope:  env,
			Canonical: canonical,
			CacheKey:  engine.CacheKeyJSON(rs.WireKind(), canonical, env.Seed),
		})
	}

	// Two job records with engine-computed results: a kind with a typed
	// result codec and small enough workloads that regeneration stays quick.
	records := []engine.JobEnvelope{
		{Kind: "equilibrium_sweep", Seed: 7, Spec: json.RawMessage(`{"gen":{"Miners":4,"Coins":2},"games":20}`)},
		{Kind: "learn_sweep", Seed: 11, Spec: json.RawMessage(`{"gen":{"Miners":5,"Coins":2},"schedulers":["random"],"runs":6}`)},
	}
	eng := engine.New(1)
	for i, env := range records {
		rs, err := engine.ResolveEnvelope(env)
		check(err)
		canonical, err := engine.CanonicalSpecJSON(rs.Spec)
		check(err)
		res, err := eng.Run(context.Background(), rs.Spec, env.Seed, nil)
		check(err)
		resJSON, err := json.Marshal(res)
		check(err)
		out.JobRecords = append(out.JobRecords, corpusRecord{
			ID:     fmt.Sprintf("job-%d", i+1),
			Key:    engine.CacheKeyJSON(rs.WireKind(), canonical, env.Seed),
			Kind:   rs.Kind,
			Seed:   env.Seed,
			Tasks:  rs.Spec.Tasks(),
			Spec:   canonical,
			State:  "done",
			Result: resJSON,
		})
	}

	b, err := json.MarshalIndent(out, "", "  ")
	check(err)
	check(os.WriteFile("testdata/wire_corpus.json", append(b, '\n'), 0o644))
	fmt.Printf("wrote testdata/wire_corpus.json (%d envelopes, %d records)\n", len(out.Envelopes), len(out.JobRecords))
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gen_corpus:", err)
		os.Exit(1)
	}
}
