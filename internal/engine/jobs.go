package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// State is a job lifecycle state.
type State string

// Job lifecycle states. A job moves Pending → Running → one of the terminal
// states {Done, Failed, Canceled}.
const (
	StatePending  State = "pending"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a terminal state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Status is a point-in-time snapshot of a job. Cached is set by the serving
// layer when a submission was answered from the result cache by an earlier
// job; the Manager itself never sets it.
type Status struct {
	ID       string   `json:"id"`
	Kind     string   `json:"kind"`
	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
	Cached   bool     `json:"cached,omitempty"`
}

// Job is an asynchronous engine run managed by a Manager.
type Job struct {
	id    string
	kind  string
	total int
	// client is the submitting tenant from SubmitOptions (immutable after
	// submit; "" = anonymous). The serving layer reads it to ownership-gate
	// v1 cancellation — dedup attaches later clients to a shared job
	// without reassigning it, so it always names the original submitter.
	client string

	done atomic.Int64
	// running and queued mirror the dispatcher's view as of the last
	// completed task (see Progress); statusLocked zeroes them once the job
	// is terminal.
	running atomic.Int64
	queued  atomic.Int64
	cancel  context.CancelFunc

	mu     sync.Mutex
	state  State // guarded by mu
	result any   // guarded by mu
	err    error // guarded by mu
	// watchers holds the live Watch channels; finish delivers the terminal
	// status to each and closes it, then nils the map.
	watchers map[chan Status]struct{} // guarded by mu

	// ledger records every published task result in wire form (ledger.go).
	// Set once at submission for TaskCoder specs, nil otherwise; retained
	// after completion so range GETs keep working on terminal jobs.
	ledger *resultLedger

	finished chan struct{}
}

// ID returns the job's manager-unique identifier.
func (j *Job) ID() string { return j.id }

// Client returns the tenant the job was submitted as ("" = anonymous).
func (j *Job) Client() string { return j.client }

// Status returns a snapshot of the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID:       j.id,
		Kind:     j.kind,
		State:    j.state,
		Progress: Progress{Done: int(j.done.Load()), Total: j.total},
	}
	if !j.state.Terminal() {
		st.Progress.Running = int(j.running.Load())
		st.Progress.Queued = int(j.queued.Load())
	}
	if j.ledger != nil {
		st.Progress.Watermark = int(j.ledger.watermark.Load())
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Watch returns a channel of status snapshots: the current status
// immediately, then updates as tasks complete, then the terminal status,
// after which the channel is closed. Delivery is coalescing — a slow
// receiver sees the latest snapshot, not every intermediate one — but the
// terminal status is always delivered. If ctx is canceled first, the
// subscription is dropped and the channel closed without a terminal status.
func (j *Job) Watch(ctx context.Context) <-chan Status {
	ch := make(chan Status, 1)
	j.mu.Lock()
	st := j.statusLocked()
	if st.State.Terminal() {
		j.mu.Unlock()
		ch <- st
		close(ch)
		return ch
	}
	if j.watchers == nil {
		j.watchers = map[chan Status]struct{}{}
	}
	j.watchers[ch] = struct{}{}
	offer(ch, st)
	j.mu.Unlock()
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				j.unwatch(ch)
			case <-j.finished:
			}
		}()
	}
	return ch
}

// offer delivers st on a buffer-1 watcher channel, displacing a pending
// older snapshot rather than blocking. It never blocks, so callers may hold
// j.mu (which also serializes offers, making the drain-and-resend loop
// converge immediately).
func offer(ch chan Status, st Status) {
	for {
		select {
		case ch <- st:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// notifyWatchers publishes the current status to every watcher.
func (j *Job) notifyWatchers() {
	j.mu.Lock()
	st := j.statusLocked()
	for ch := range j.watchers {
		offer(ch, st)
	}
	j.mu.Unlock()
}

// unwatch drops one watcher. Whoever removes a channel from the map closes
// it, so a channel is closed exactly once (finish removes them all).
func (j *Job) unwatch(ch chan Status) {
	j.mu.Lock()
	if _, ok := j.watchers[ch]; ok {
		delete(j.watchers, ch)
		close(ch)
	}
	j.mu.Unlock()
}

// Cancel requests cancellation. It is a no-op on terminal jobs.
func (j *Job) Cancel() { j.cancel() }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.finished }

// Wait blocks until the job finishes or ctx is canceled, then returns the
// job's terminal error (nil for StateDone).
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.finished:
	case <-ctx.Done():
		return ctx.Err()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the aggregated result once the job is done. ok is false
// while the job is still running or if it failed.
func (j *Job) Result() (res any, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state == StateDone
}

func (j *Job) finish(res any, err error, canceled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case canceled:
		j.state = StateCanceled
		j.err = context.Canceled
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.result = res
		// A job finished from a prefilled deque never ran its prefilled
		// tasks through progress callbacks; pin the terminal count so Done
		// always reads total for done jobs.
		j.done.Store(int64(j.total))
	}
	// Deliver the terminal status to every watcher and retire them. The
	// coalescing offer may displace a pending progress snapshot — terminal
	// delivery is the guarantee, not completeness of the progress stream.
	st := j.statusLocked()
	for ch := range j.watchers {
		offer(ch, st)
		close(ch)
	}
	j.watchers = nil
	close(j.finished)
}

// ErrUnknownJob is returned by Manager.Get for an unknown job ID.
var ErrUnknownJob = errors.New("engine: unknown job")

// DefaultRetention is the default cap on tracked jobs. When exceeded, the
// oldest *terminal* jobs (and their retained results) are evicted; running
// jobs are never evicted.
const DefaultRetention = 4096

// Manager runs jobs asynchronously on a shared Engine and tracks them by ID.
// It is safe for concurrent use; gocserve keeps one per process.
type Manager struct {
	eng *Engine

	// Retention caps how many jobs the manager keeps before evicting the
	// oldest terminal ones (0 means DefaultRetention). Set it before
	// submitting jobs; a long-running server would otherwise retain every
	// result forever.
	Retention int

	mu     sync.Mutex
	jobs   map[string]*Job // guarded by mu
	order  []string        // guarded by mu; job IDs in creation order, for eviction
	nextID uint64          // guarded by mu
	ctx    context.Context
	stop   context.CancelFunc
}

// NewManager returns a manager running jobs on eng. Close cancels all jobs.
func NewManager(eng *Engine) *Manager {
	ctx, stop := context.WithCancel(context.Background())
	return &Manager{eng: eng, jobs: map[string]*Job{}, ctx: ctx, stop: stop}
}

// Submit starts spec asynchronously under the manager's lifetime (not the
// caller's request context) and returns the tracking job.
func (m *Manager) Submit(spec Spec, seed uint64) (*Job, error) {
	return m.submit("", spec, seed, SubmitOptions{})
}

// SubmitOptions is the optional surface of a full-control submission.
type SubmitOptions struct {
	// Remote, when non-nil and the spec implements TaskCoder, makes the job
	// distributable — the coordinator may lease ranges of its tasks to
	// remote workers. Distribution changes where tasks run, never results.
	Remote *RemoteInfo
	// Prefill seeds already-computed task results by index in TaskCoder
	// wire form — the restart path. Valid entries are published before any
	// task runs, so only the missing suffix recomputes; invalid entries are
	// recomputed. Ignored unless the spec implements TaskCoder.
	Prefill map[int]json.RawMessage
	// Client names the submitting tenant for per-client quota accounting
	// and scheduler stats; empty means anonymous. Weight scales the job's
	// urgency in fair-share comparisons — the priority-class weight on
	// served jobs (<= 0 means the default 1.0). Both bias scheduling order
	// only: results are a pure function of (spec, seed) regardless.
	Client string
	Weight float64
}

// SubmitJob is the full-control submission with a caller-chosen ID (empty
// mints one, non-empty reruns under that identity like Resubmit) plus an
// optional wire identity. The serving layer uses this for every envelope
// submission.
func (m *Manager) SubmitJob(id string, spec Spec, seed uint64, remote *RemoteInfo) (*Job, error) {
	return m.submit(id, spec, seed, SubmitOptions{Remote: remote})
}

// SubmitJobOpts is SubmitJob plus result prefill (SubmitOptions) — the
// persistence layer's restart path, which replays the stored completed
// prefix of an interrupted job so only its missing suffix recomputes.
func (m *Manager) SubmitJobOpts(id string, spec Spec, seed uint64, opts SubmitOptions) (*Job, error) {
	return m.submit(id, spec, seed, opts)
}

// Resubmit is Submit with a caller-chosen job ID: the persistence layer uses
// it to rerun a job that was interrupted mid-run by a restart under its
// original identity, so pre-restart handles and cache entries keep pointing
// at the right job. It fails if the ID is already tracked.
func (m *Manager) Resubmit(id string, spec Spec, seed uint64) (*Job, error) {
	if id == "" {
		return nil, errors.New("engine: Resubmit needs a job ID")
	}
	return m.submit(id, spec, seed, SubmitOptions{})
}

func (m *Manager) submit(id string, spec Spec, seed uint64, opts SubmitOptions) (*Job, error) {
	if v, ok := spec.(Validator); ok {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("engine: invalid %s spec: %w", spec.Kind(), err)
		}
	}
	// Bound the fan-out before publishing the job, exactly like Engine.Run:
	// without this check a negative or absurd Tasks() would be visible in
	// job statuses until the run fails.
	n := spec.Tasks()
	if n < 0 {
		return nil, fmt.Errorf("engine: %s spec reports %d tasks", spec.Kind(), n)
	}
	if n > MaxTasksPerJob {
		return nil, fmt.Errorf("engine: %s spec reports %d tasks, cap is %d", spec.Kind(), n, MaxTasksPerJob)
	}
	jctx, cancel := context.WithCancel(m.ctx)
	j, err := m.newJob(id, spec.Kind(), n, cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	j.client = opts.Client
	if _, ok := spec.(TaskCoder); ok && n > 0 {
		j.ledger = newResultLedger(n)
	}
	// Until the first task completes, the whole job is queue: the scheduler
	// snapshot starts at (running 0, queued n).
	j.queued.Store(int64(n))
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
	go func() {
		defer cancel()
		ro := runOpts{
			remote:  opts.Remote,
			prefill: opts.Prefill,
			client:  opts.Client,
			weight:  opts.Weight,
			onProgress: func(p Progress) {
				// CAS-max: the dispatcher serializes callbacks with strictly
				// increasing Done, but the guard keeps a hypothetical stale
				// publisher from making progress go backwards.
				for {
					old := j.done.Load()
					if int64(p.Done) <= old {
						return // stale update: nothing new to publish
					}
					if j.done.CompareAndSwap(old, int64(p.Done)) {
						break
					}
				}
				j.running.Store(int64(p.Running))
				j.queued.Store(int64(p.Queued))
				j.notifyWatchers()
			},
		}
		if j.ledger != nil {
			ro.onTask = j.recordTask
		}
		res, err := m.eng.run(jctx, spec, seed, ro)
		j.finish(res, err, jctx.Err() != nil && errors.Is(err, context.Canceled))
	}()
	return j, nil
}

// Engine returns the engine the manager runs jobs on — the serving layer
// reads its scheduler stats (Engine.Stats) into /healthz.
func (m *Manager) Engine() *Engine { return m.eng }

func (m *Manager) newJob(id, kind string, total int, cancel context.CancelFunc) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("job-%d", m.nextID)
	} else if _, dup := m.jobs[id]; dup {
		return nil, fmt.Errorf("engine: job %s already exists", id)
	} else {
		m.bumpNextIDLocked(id)
	}
	j := &Job{
		id:       id,
		kind:     kind,
		total:    total,
		state:    StatePending,
		cancel:   cancel,
		finished: make(chan struct{}),
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.evictLocked()
	return j, nil
}

// ParseSeq parses the numeric sequence out of a prefixed ID — the manager's
// "job-N", the server's "h-N". It is the single source of truth for aging
// such IDs: callers treat a non-parsing (foreign) ID as sequence 0, older
// than every minted ID, so store eviction and server rehydration order
// records identically.
func ParseSeq(id, prefix string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, prefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// bumpNextIDLocked advances the ID counter past a caller-supplied job ID in
// the manager's own "job-N" namespace, so minted IDs never collide with
// rehydrated ones. Callers must hold m.mu.
func (m *Manager) bumpNextIDLocked(id string) {
	if n, ok := ParseSeq(id, "job-"); ok && n > m.nextID {
		m.nextID = n
	}
}

// Restore inserts a job already in a terminal state — the persistence
// layer's rehydration path for jobs that finished in a previous process
// life. A done job carries its decoded result (and full progress); failed
// and canceled jobs carry only the recorded error. The job ID must be
// unique; IDs in the manager's own "job-N" form advance the mint counter so
// later submissions cannot collide.
func (m *Manager) Restore(id, kind string, total int, result any, state State, errMsg string) (*Job, error) {
	if id == "" {
		return nil, errors.New("engine: Restore needs a job ID")
	}
	if !state.Terminal() {
		return nil, fmt.Errorf("engine: Restore with non-terminal state %q", state)
	}
	j := &Job{
		id:       id,
		kind:     kind,
		total:    total,
		state:    state,
		cancel:   func() {},
		finished: make(chan struct{}),
	}
	close(j.finished)
	switch {
	case state == StateDone:
		j.result = result
		j.done.Store(int64(total))
	case errMsg != "":
		j.err = errors.New(errMsg)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.jobs[id]; dup {
		return nil, fmt.Errorf("engine: job %s already exists", id)
	}
	m.bumpNextIDLocked(id)
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.evictLocked()
	return j, nil
}

// evictLocked drops the oldest terminal jobs until the retention cap holds.
// Callers must hold m.mu.
func (m *Manager) evictLocked() {
	limit := m.Retention
	if limit <= 0 {
		limit = DefaultRetention
	}
	if len(m.jobs) <= limit {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j, ok := m.jobs[id]
		if !ok {
			continue
		}
		if len(m.jobs) > limit && j.Status().State.Terminal() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

// Get returns the job with the given ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return j, nil
}

// Watch subscribes to the job with the given ID: the returned channel
// carries status snapshots (coalesced to the latest) and closes after the
// terminal status is delivered, or when ctx is canceled. A terminal job
// yields its final status immediately. gocserve's SSE endpoint is a thin
// adapter over this.
func (m *Manager) Watch(ctx context.Context, id string) (<-chan Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return nil, err
	}
	return j.Watch(ctx), nil
}

// Statuses returns snapshots of every tracked job, ordered by ID.
func (m *Manager) Statuses() []Status {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	// Sort the jobs themselves (not just the derived statuses) so the status
	// snapshots are also TAKEN in ID order — map iteration order never
	// reaches anything observable.
	sort.Slice(jobs, func(i, k int) bool {
		a, b := jobs[i].ID(), jobs[k].ID()
		return len(a) < len(b) || (len(a) == len(b) && a < b)
	})
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// Close cancels every running job and stops accepting progress.
func (m *Manager) Close() { m.stop() }
