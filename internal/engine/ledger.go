package engine

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// The result ledger extends the engine's per-job done-bitmap into an ordered
// record of every published task result in its TaskCoder wire form. A job
// whose spec implements TaskCoder gets one at submission; the ledger is the
// source for everything downstream of "a task finished": the contiguous-
// prefix watermark in Progress, partial-result range GETs served mid-run,
// SSE result-range events, the store's incremental range records, and the
// client's streaming iterator. Restored (already-terminal) jobs start with
// no ledger; PrefillResults rebuilds one from the store's persisted range
// records so range GETs and resumed result streams survive a restart.

// ErrNoLedger reports a range query against a job without a result ledger:
// the spec is not a TaskCoder, or the job was restored already-terminal.
var ErrNoLedger = errors.New("engine: job has no result ledger")

// ErrRangeIncomplete reports a range query for a span not yet fully
// computed. Callers retry after the watermark passes hi (or use
// CompletedRanges to see what is available now).
var ErrRangeIncomplete = errors.New("engine: range not fully computed yet")

// ErrBadRange reports a range query outside the job's task bounds.
var ErrBadRange = errors.New("engine: range out of bounds")

// resultLedger is the per-job store of encoded task results. docs is
// index-addressed; watermark is the contiguous completed prefix, kept in an
// atomic so statuses read it without the mutex.
type resultLedger struct {
	mu        sync.Mutex
	docs      []json.RawMessage
	watermark atomic.Int64
}

func newResultLedger(n int) *resultLedger {
	return &resultLedger{docs: make([]json.RawMessage, n)}
}

// record lands one encoded task result, first-writer-wins (the engine's
// publication paths already guarantee one delivery per index; the guard
// makes the ledger safe against a hypothetical duplicate), and advances the
// watermark over the new contiguous prefix.
func (l *resultLedger) record(task int, raw json.RawMessage) {
	if task < 0 || task >= len(l.docs) || raw == nil {
		return
	}
	l.mu.Lock()
	if l.docs[task] == nil {
		// Clone: the engine hands over buffers owned by report bodies and
		// store snapshots; the ledger outlives both.
		l.docs[task] = bytes.Clone(raw)
		wm := int(l.watermark.Load())
		for wm < len(l.docs) && l.docs[wm] != nil {
			wm++
		}
		l.watermark.Store(int64(wm))
	}
	l.mu.Unlock()
}

// ranges returns the completed spans in normalized (sorted, maximal) form.
func (l *resultLedger) ranges() []TaskRange {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []TaskRange
	for i := 0; i < len(l.docs); i++ {
		if l.docs[i] == nil {
			continue
		}
		lo := i
		for i < len(l.docs) && l.docs[i] != nil {
			i++
		}
		out = append(out, TaskRange{Lo: lo, Hi: i})
	}
	return out
}

// slice copies out the documents of [lo, hi). The documents themselves are
// shared read-only — callers must not mutate them.
func (l *resultLedger) slice(lo, hi int) ([]json.RawMessage, error) {
	if lo < 0 || hi > len(l.docs) || hi <= lo {
		return nil, fmt.Errorf("%w: [%d,%d) of %d tasks", ErrBadRange, lo, hi, len(l.docs))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]json.RawMessage, 0, hi-lo)
	for i := lo; i < hi; i++ {
		if l.docs[i] == nil {
			return nil, fmt.Errorf("%w: task %d of [%d,%d)", ErrRangeIncomplete, i, lo, hi)
		}
		out = append(out, l.docs[i])
	}
	return out, nil
}

// recordTask feeds the job's ledger; it is the runOpts.onTask hook the
// Manager wires at submission. No-op for jobs without a ledger.
func (j *Job) recordTask(task int, raw json.RawMessage) {
	if j.ledger != nil {
		j.ledger.record(task, raw)
	}
}

// PrefillResults installs a result ledger over persisted per-task documents
// for a job restored already-terminal, so ?range fetches and resumed result
// streams keep working across a restart. No-op when the job already has a
// ledger or there is nothing to prefill. Callers must invoke it during
// rehydration, before the job is exposed to request traffic — the ledger
// field itself is written unsynchronized.
func (j *Job) PrefillResults(docs map[int]json.RawMessage) {
	if j.ledger != nil || len(docs) == 0 || j.total <= 0 {
		return
	}
	l := newResultLedger(j.total)
	for i := 0; i < j.total; i++ {
		if doc, ok := docs[i]; ok {
			l.record(i, doc)
		}
	}
	j.ledger = l
}

// Watermark returns the job's contiguous completed prefix: every task below
// it has its encoded result in the ledger. Zero for jobs without a ledger.
func (j *Job) Watermark() int {
	if j.ledger == nil {
		return 0
	}
	return int(j.ledger.watermark.Load())
}

// CompletedRanges returns the spans of tasks whose encoded results the
// ledger holds, normalized (sorted by Lo, maximal). Nil for jobs without a
// ledger. Out-of-order completions make this richer than the watermark: the
// first range starts at 0 and ends at the watermark, later ranges are
// islands the prefix has not reached yet.
func (j *Job) CompletedRanges() []TaskRange {
	if j.ledger == nil {
		return nil
	}
	return j.ledger.ranges()
}

// ResultRange returns the encoded task results of [lo, hi). It works
// mid-run — any fully-computed span is servable before the job finishes.
// Errors are sentinel-wrapped: ErrNoLedger when the job has no ledger,
// ErrBadRange for out-of-bounds spans, ErrRangeIncomplete when some task in
// the span has no result yet.
func (j *Job) ResultRange(lo, hi int) ([]json.RawMessage, error) {
	if j.ledger == nil {
		return nil, ErrNoLedger
	}
	return j.ledger.slice(lo, hi)
}
