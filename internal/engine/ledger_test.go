package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"gameofcoins/internal/rng"
)

func TestTaskRangeCompressExpandRoundTrip(t *testing.T) {
	cases := [][]int{
		nil,
		{0},
		{0, 1, 2, 3},
		{5, 6, 9},
		{3, 1, 2}, // out of encounter order: compression stays lossless
		{7, 7},    // duplicates survive the round-trip too
		{0, 2, 4, 6},
	}
	for _, tasks := range cases {
		ranges := CompressTaskRanges(tasks)
		back := ExpandTaskRanges(ranges)
		if len(tasks) == 0 && len(back) == 0 {
			continue
		}
		if !reflect.DeepEqual(back, tasks) {
			t.Fatalf("round-trip %v → %v → %v", tasks, ranges, back)
		}
	}
}

func TestNormalizeTaskRanges(t *testing.T) {
	in := []TaskRange{{Lo: 5, Hi: 7}, {Lo: 0, Hi: 2}, {Lo: 2, Hi: 3}, {Lo: 6, Hi: 9}, {Lo: 4, Hi: 4}}
	want := []TaskRange{{Lo: 0, Hi: 3}, {Lo: 5, Hi: 9}}
	if got := NormalizeTaskRanges(in); !reflect.DeepEqual(got, want) {
		t.Fatalf("normalize = %v, want %v", got, want)
	}
}

func TestParseTaskRange(t *testing.T) {
	tr, err := ParseTaskRange("3-17")
	if err != nil || tr.Lo != 3 || tr.Hi != 17 {
		t.Fatalf("parse 3-17 = %v, %v", tr, err)
	}
	for _, bad := range []string{"", "5", "a-b", "-1-3", "5-5", "7-3"} {
		if _, err := ParseTaskRange(bad); err == nil {
			t.Fatalf("ParseTaskRange(%q) accepted", bad)
		}
	}
}

// TestResultLedgerWatermark: out-of-order records advance the watermark only
// over the contiguous prefix; slices of complete spans are served mid-run
// and incomplete or out-of-bounds ones report the sentinel errors.
func TestResultLedgerWatermark(t *testing.T) {
	l := newResultLedger(5)
	l.record(2, json.RawMessage(`2`))
	l.record(0, json.RawMessage(`0`))
	if wm := l.watermark.Load(); wm != 1 {
		t.Fatalf("watermark = %d, want 1", wm)
	}
	want := []TaskRange{{Lo: 0, Hi: 1}, {Lo: 2, Hi: 3}}
	if got := l.ranges(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ranges = %v, want %v", got, want)
	}
	if _, err := l.slice(0, 2); !errors.Is(err, ErrRangeIncomplete) {
		t.Fatalf("incomplete slice err = %v", err)
	}
	if _, err := l.slice(0, 9); !errors.Is(err, ErrBadRange) {
		t.Fatalf("out-of-bounds slice err = %v", err)
	}
	l.record(1, json.RawMessage(`1`))
	if wm := l.watermark.Load(); wm != 3 {
		t.Fatalf("watermark = %d, want 3", wm)
	}
	docs, err := l.slice(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 || string(docs[1]) != "1" {
		t.Fatalf("slice = %v", docs)
	}
	// First writer wins: a duplicate record must not replace the bytes.
	l.record(1, json.RawMessage(`99`))
	docs, _ = l.slice(1, 2)
	if string(docs[0]) != "1" {
		t.Fatalf("duplicate record replaced ledger bytes: %s", docs[0])
	}
}

// sumSpec is a fast TaskCoder spec: task i returns base+i, the aggregate is
// the sum. ran records which task indices actually executed.
type sumSpec struct {
	coderFunc
	mu  *sync.Mutex
	ran map[int]bool
}

func newSumSpec(n int) *sumSpec {
	s := &sumSpec{mu: &sync.Mutex{}, ran: map[int]bool{}}
	s.Func = Func{
		Name: "sum",
		N:    n,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			s.mu.Lock()
			s.ran[i] = true
			s.mu.Unlock()
			return 100 + i, nil
		},
		Agg: func(results []any) (any, error) {
			total := 0
			for _, r := range results {
				total += r.(int)
			}
			return total, nil
		},
	}
	return s
}

func (s *sumSpec) executed() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int
	for i := range s.ran {
		out = append(out, i)
	}
	return out
}

func wantSum(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += 100 + i
	}
	return total
}

// TestJobLedgerLocalRun: a TaskCoder job run entirely locally fills its
// ledger — final watermark covers every task and ResultRange serves the
// TaskCoder encodings byte-for-byte.
func TestJobLedgerLocalRun(t *testing.T) {
	mgr := NewManager(New(4))
	defer mgr.Close()
	job, err := mgr.Submit(newSumSpec(16), 7)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if wm := job.Watermark(); wm != 16 {
		t.Fatalf("watermark = %d, want 16", wm)
	}
	if got := job.CompletedRanges(); !reflect.DeepEqual(got, []TaskRange{{Lo: 0, Hi: 16}}) {
		t.Fatalf("completed ranges = %v", got)
	}
	docs, err := job.ResultRange(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	for k, d := range docs {
		if want := fmt.Sprint(103 + k); string(d) != want {
			t.Fatalf("task %d doc = %s, want %s", 3+k, d, want)
		}
	}
	st := job.Status()
	if st.Progress.Watermark != 16 {
		t.Fatalf("status watermark = %d", st.Progress.Watermark)
	}
}

// TestJobNoLedger: a spec without a TaskCoder has no ledger; range queries
// report ErrNoLedger and the status watermark stays zero.
func TestJobNoLedger(t *testing.T) {
	mgr := NewManager(New(2))
	defer mgr.Close()
	job, err := mgr.Submit(Func{
		Name: "plain",
		N:    4,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
		Agg:  func(results []any) (any, error) { return len(results), nil },
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if _, err := job.ResultRange(0, 1); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("ResultRange err = %v", err)
	}
	if job.Watermark() != 0 || job.CompletedRanges() != nil {
		t.Fatal("ledger state on a non-TaskCoder job")
	}
}

// TestSubmitJobOptsPrefill: prefilled tasks are decoded into the job (and
// its ledger) without executing; only the uncovered suffix runs, and the
// aggregate is byte-identical to an uninterrupted run.
func TestSubmitJobOptsPrefill(t *testing.T) {
	const n = 12
	mgr := NewManager(New(4))
	defer mgr.Close()
	spec := newSumSpec(n)
	prefill := map[int]json.RawMessage{}
	for i := 0; i < 5; i++ {
		prefill[i] = json.RawMessage(fmt.Sprint(100 + i))
	}
	prefill[8] = json.RawMessage(fmt.Sprint(108)) // island beyond the prefix
	job, err := mgr.SubmitJobOpts("", spec, 7, SubmitOptions{Prefill: prefill})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	res, ok := job.Result()
	if !ok || res.(int) != wantSum(n) {
		t.Fatalf("result = %v (ok=%v), want %d", res, ok, wantSum(n))
	}
	for _, i := range spec.executed() {
		if prefill[i] != nil {
			t.Fatalf("prefilled task %d executed anyway", i)
		}
	}
	if len(spec.executed()) != n-len(prefill) {
		t.Fatalf("executed %d tasks, want %d", len(spec.executed()), n-len(prefill))
	}
	if wm := job.Watermark(); wm != n {
		t.Fatalf("final watermark = %d, want %d", wm, n)
	}
	st := job.Status()
	if st.Progress.Done != n {
		t.Fatalf("done = %d, want %d", st.Progress.Done, n)
	}
}

// TestSubmitJobOptsPrefillAll: a fully prefilled job never executes a task
// and still aggregates, finishes, and serves its ledger.
func TestSubmitJobOptsPrefillAll(t *testing.T) {
	const n = 6
	mgr := NewManager(New(2))
	defer mgr.Close()
	spec := newSumSpec(n)
	prefill := map[int]json.RawMessage{}
	for i := 0; i < n; i++ {
		prefill[i] = json.RawMessage(fmt.Sprint(100 + i))
	}
	job, err := mgr.SubmitJobOpts("", spec, 7, SubmitOptions{Prefill: prefill})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	res, ok := job.Result()
	if !ok || res.(int) != wantSum(n) {
		t.Fatalf("result = %v (ok=%v)", res, ok)
	}
	if got := spec.executed(); len(got) != 0 {
		t.Fatalf("fully prefilled job executed tasks %v", got)
	}
	if wm := job.Watermark(); wm != n {
		t.Fatalf("watermark = %d", wm)
	}
}

// TestSubmitJobOptsPrefillInvalid: a prefill document that fails the
// TaskCoder decode is discarded and its task recomputes — corrupt persisted
// ranges degrade to recomputation, never to a wrong aggregate.
func TestSubmitJobOptsPrefillInvalid(t *testing.T) {
	const n = 4
	mgr := NewManager(New(2))
	defer mgr.Close()
	spec := newSumSpec(n)
	prefill := map[int]json.RawMessage{
		0: json.RawMessage(`100`),
		1: json.RawMessage(`"not an int"`),
	}
	job, err := mgr.SubmitJobOpts("", spec, 7, SubmitOptions{Prefill: prefill})
	if err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	res, ok := job.Result()
	if !ok || res.(int) != wantSum(n) {
		t.Fatalf("result = %v (ok=%v), want %d", res, ok, wantSum(n))
	}
	ran := map[int]bool{}
	for _, i := range spec.executed() {
		ran[i] = true
	}
	if ran[0] {
		t.Fatal("valid prefilled task 0 executed")
	}
	if !ran[1] {
		t.Fatal("invalid prefill for task 1 was not recomputed")
	}
}

// TestRemoteReportFeedsLedger: results arriving through ReportRemote land in
// the ledger with the worker's reported bytes.
func TestRemoteReportFeedsLedger(t *testing.T) {
	e := New(1)
	mgr := NewManager(e)
	defer mgr.Close()
	job := startWireJob(t, mgr, slowSquares(32), 1)
	lease := leaseSoon(t, e, 8)
	tasks := lease.TaskList()
	results := make(map[int]json.RawMessage, len(tasks))
	for _, task := range tasks {
		results[task] = json.RawMessage(fmt.Sprint(task * task))
	}
	if _, err := e.ReportRemote(lease.Run, results); err != nil {
		t.Fatal(err)
	}
	<-job.Done()
	if wm := job.Watermark(); wm != 32 {
		t.Fatalf("watermark = %d, want 32", wm)
	}
	docs, err := job.ResultRange(tasks[0], tasks[0]+1)
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprint(tasks[0] * tasks[0]); string(docs[0]) != want {
		t.Fatalf("remote-reported doc = %s, want %s", docs[0], want)
	}
}
