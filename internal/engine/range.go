package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// TaskRange is a half-open span [Lo, Hi) of task indices. It is the one
// range representation shared across the stack: the scheduler leases remote
// work as ranges, the dist coordinator tracks outstanding lease spans with
// it, the store persists completed result prefixes as range records, the
// HTTP layer parses ?range=lo-hi into it, and the SDK re-exports it. The
// wire form is "lo-hi" with Hi exclusive, matching the JSON field names
// below.
type TaskRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of tasks in the range (0 when empty or inverted).
func (r TaskRange) Len() int {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// String renders the wire form "lo-hi" (Hi exclusive).
func (r TaskRange) String() string { return fmt.Sprintf("%d-%d", r.Lo, r.Hi) }

// Contains reports whether task index i falls inside the range.
func (r TaskRange) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// ParseTaskRange parses the wire form "lo-hi" (both non-negative decimal
// integers, Hi exclusive and strictly greater than Lo).
func ParseTaskRange(s string) (TaskRange, error) {
	lo, hi, ok := strings.Cut(s, "-")
	if !ok {
		return TaskRange{}, fmt.Errorf("task range %q: want \"lo-hi\"", s)
	}
	l, err := strconv.Atoi(lo)
	if err != nil || l < 0 {
		return TaskRange{}, fmt.Errorf("task range %q: bad lo", s)
	}
	h, err := strconv.Atoi(hi)
	if err != nil || h <= l {
		return TaskRange{}, fmt.Errorf("task range %q: bad hi (want hi > lo, hi exclusive)", s)
	}
	return TaskRange{Lo: l, Hi: h}, nil
}

// CompressTaskRanges folds a task-index list into ranges, merging runs of
// consecutive ascending indices in encounter order. The encoding is lossless
// for any list — ExpandTaskRanges(CompressTaskRanges(idxs)) reproduces idxs
// exactly — so lease order survives the round trip even when the scheduler
// hands out a non-monotonic mix.
func CompressTaskRanges(idxs []int) []TaskRange {
	if len(idxs) == 0 {
		return nil
	}
	out := make([]TaskRange, 0, 4)
	cur := TaskRange{Lo: idxs[0], Hi: idxs[0] + 1}
	for _, i := range idxs[1:] {
		if i == cur.Hi {
			cur.Hi++
			continue
		}
		out = append(out, cur)
		cur = TaskRange{Lo: i, Hi: i + 1}
	}
	return append(out, cur)
}

// ExpandTaskRanges flattens ranges back into the task-index list, preserving
// range order. Empty and inverted ranges contribute nothing.
func ExpandTaskRanges(ranges []TaskRange) []int {
	n := 0
	for _, r := range ranges {
		n += r.Len()
	}
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for _, r := range ranges {
		for i := r.Lo; i < r.Hi; i++ {
			out = append(out, i)
		}
	}
	return out
}

// NormalizeTaskRanges sorts ranges by Lo and merges overlapping or adjacent
// spans into maximal runs — the canonical form the store's compaction folds
// per-range records into and the form CompletedRanges reports.
func NormalizeTaskRanges(ranges []TaskRange) []TaskRange {
	var live []TaskRange
	for _, r := range ranges {
		if r.Len() > 0 {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Slice(live, func(i, k int) bool { return live[i].Lo < live[k].Lo })
	out := live[:1]
	for _, r := range live[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}
