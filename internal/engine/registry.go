package engine

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"gameofcoins/internal/core"
)

// The spec registry makes the job API self-describing: a job arrives on the
// wire as a JobEnvelope — a kind, a seed, and an opaque spec document — and
// the registry alone turns the document into a typed Spec. Serving layers
// (gocserve's /v2, the v1 translation shim, CLIs) never switch on kinds;
// adding a job type is one RegisterSpec call next to the spec's definition.

// JobEnvelope is the self-describing wire form of a job: the registered spec
// kind, the seed rooting the job's deterministic randomness, and the spec
// document itself, decoded by the registry entry for Kind.
type JobEnvelope struct {
	Kind string          `json:"kind"`
	Seed uint64          `json:"seed"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// Decode resolves the envelope's spec through the registry.
func (e JobEnvelope) Decode() (Spec, error) { return DecodeSpec(e.Kind, e.Spec) }

// DecodeFunc turns a raw spec document into a typed Spec. It should reject
// malformed documents but leave semantic validation to the spec's Validate.
type DecodeFunc func(json.RawMessage) (Spec, error)

// ResultDecodeFunc revives a stored result document into the typed value
// the kind's Aggregate produced. The persistence layer uses it to rehydrate
// cached results after a restart.
type ResultDecodeFunc func(json.RawMessage) (any, error)

var registry = struct {
	sync.RWMutex
	decoders map[string]DecodeFunc
	results  map[string]ResultDecodeFunc
}{decoders: map[string]DecodeFunc{}, results: map[string]ResultDecodeFunc{}}

// RegisterSpec registers a decoder for the given spec kind. It panics on an
// empty kind, a nil decoder, or a duplicate registration — all programmer
// errors at package init time, not runtime conditions.
func RegisterSpec(kind string, decode DecodeFunc) {
	if kind == "" {
		panic("engine: RegisterSpec with empty kind")
	}
	if decode == nil {
		panic("engine: RegisterSpec with nil decoder for " + kind)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.decoders[kind]; dup {
		panic("engine: RegisterSpec duplicate kind " + kind)
	}
	registry.decoders[kind] = decode
}

// DecodeSpec decodes a raw spec document of the given registered kind. An
// empty document decodes the spec's zero value (validation then rejects it
// if the kind has required fields).
func DecodeSpec(kind string, raw json.RawMessage) (Spec, error) {
	registry.RLock()
	decode, ok := registry.decoders[kind]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("engine: unknown spec kind %q (registered: %v)", kind, SpecKinds())
	}
	spec, err := decode(raw)
	if err != nil {
		return nil, fmt.Errorf("engine: decode %s spec: %w", kind, err)
	}
	if spec.Kind() != kind {
		return nil, fmt.Errorf("engine: registry entry %q decoded a %q spec", kind, spec.Kind())
	}
	return spec, nil
}

// RegisterResultCodec registers a decoder reviving a stored result document
// of the given kind into the typed value its Aggregate produced. The codec
// is optional: kinds without one round-trip results as raw JSON — served
// byte-identically over HTTP, but typed json.RawMessage in-process. Like
// RegisterSpec it panics on empty kinds, nil decoders, and duplicates.
func RegisterResultCodec(kind string, decode ResultDecodeFunc) {
	if kind == "" {
		panic("engine: RegisterResultCodec with empty kind")
	}
	if decode == nil {
		panic("engine: RegisterResultCodec with nil decoder for " + kind)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.results[kind]; dup {
		panic("engine: RegisterResultCodec duplicate kind " + kind)
	}
	registry.results[kind] = decode
}

// DecodeResult revives a stored result document of the given kind: through
// the kind's registered result codec when there is one, otherwise as a copy
// of the raw document itself. Raw documents re-encode byte-identically (the
// original bytes came from marshalling the typed result), so persistence
// never depends on a codec being registered.
func DecodeResult(kind string, raw json.RawMessage) (any, error) {
	registry.RLock()
	decode := registry.results[kind]
	registry.RUnlock()
	if decode == nil {
		return json.RawMessage(bytes.Clone(raw)), nil
	}
	res, err := decode(raw)
	if err != nil {
		return nil, fmt.Errorf("engine: decode %s result: %w", kind, err)
	}
	return res, nil
}

// ResultJSON adapts a result struct type R to a ResultDecodeFunc.
func ResultJSON[R any]() ResultDecodeFunc {
	return func(raw json.RawMessage) (any, error) {
		var r R
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		return r, nil
	}
}

// SpecKinds returns the registered spec kinds, sorted.
func SpecKinds() []string {
	registry.RLock()
	kinds := make([]string, 0, len(registry.decoders))
	for k := range registry.decoders {
		kinds = append(kinds, k)
	}
	registry.RUnlock()
	sort.Strings(kinds)
	return kinds
}

// DecodeJSON adapts a JSON-encodable spec struct to a DecodeFunc. Unknown
// fields are rejected: a self-describing envelope that silently dropped a
// misspelled parameter would compute the wrong experiment without a word.
func DecodeJSON[S Spec]() DecodeFunc {
	return func(raw json.RawMessage) (Spec, error) {
		var s S
		if len(raw) > 0 {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&s); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// The four built-in sweeps register themselves like any third-party spec
// would: the serving layers learn about them only through the registry.
func init() {
	RegisterSpec(LearnSweep{}.Kind(), DecodeJSON[LearnSweep]())
	RegisterSpec(DesignSweep{}.Kind(), DecodeJSON[DesignSweep]())
	RegisterSpec(ReplaySweep{}.Kind(), DecodeJSON[ReplaySweep]())
	RegisterSpec(EquilibriumSweep{}.Kind(), DecodeJSON[EquilibriumSweep]())
	RegisterResultCodec(LearnSweep{}.Kind(), ResultJSON[LearnSweepResult]())
	RegisterResultCodec(DesignSweep{}.Kind(), ResultJSON[DesignSweepResult]())
	RegisterResultCodec(ReplaySweep{}.Kind(), ResultJSON[ReplaySweepResult]())
	RegisterResultCodec(EquilibriumSweep{}.Kind(), ResultJSON[EquilibriumSweepResult]())
}

// GameResolver resolves a registered-game reference (e.g. gocserve's
// content-addressed game IDs) to the game itself.
type GameResolver func(id string) (*core.Game, error)

// GameRefSpec is implemented by specs that may reference games indirectly
// (by registry ID) and need a resolver to produce a runnable spec. The
// serving layer calls ResolveGames once at submission; the returned spec
// must be self-contained — its canonical encoding is what cache keys hash,
// so two references to the same game must resolve to identical specs.
type GameRefSpec interface {
	Spec
	ResolveGames(resolve GameResolver) (Spec, error)
}

// ResolveSpec resolves spec's game references through resolve if it has any.
// Specs without references pass through untouched.
func ResolveSpec(spec Spec, resolve GameResolver) (Spec, error) {
	if gr, ok := spec.(GameRefSpec); ok {
		return gr.ResolveGames(resolve)
	}
	return spec, nil
}

// CanonicalSpecJSON is the canonical wire encoding of a spec: the struct's
// own JSON marshalling, which has a fixed field order (and, for embedded
// games, core.Game's sorted-miner canonical form). Cache keys hash it, so a
// spec whose encoding is not deterministic would split its own cache line.
func CanonicalSpecJSON(spec Spec) (json.RawMessage, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: encode %s spec: %w", spec.Kind(), err)
	}
	return b, nil
}

// CacheKey derives the result-cache key for (spec, seed) — the exact inputs
// the engine runs on. Every deterministic job is a pure function of the two,
// so serving layers may answer an identical (spec, seed) pair from cache.
// The key hashes the canonical spec encoding; wire fields a job type ignores
// can therefore never split or alias cache entries.
func CacheKey(spec Spec, seed uint64) (string, error) {
	b, err := CanonicalSpecJSON(spec)
	if err != nil {
		return "", err
	}
	return CacheKeyJSON(spec.Kind(), b, seed), nil
}

// CacheKeyJSON derives the cache key directly from a spec's canonical JSON
// encoding. Callers that already hold the canonical document (the server
// persists it alongside the key) can key without re-marshalling — and
// without a marshal error path.
func CacheKeyJSON(kind string, canonical json.RawMessage, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", kind, seed)
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
