package engine

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gameofcoins/internal/core"
)

// The spec registry makes the job API self-describing: a job arrives on the
// wire as a JobEnvelope — a kind, a seed, and an opaque spec document — and
// the registry alone turns the document into a typed Spec. Serving layers
// (gocserve's /v2, the v1 translation shim, CLIs) never switch on kinds;
// adding a job type is one RegisterSpec call next to the spec's definition.
//
// Since the catalog redesign, kinds are versioned: a registration is a
// (kind, version, decoder, schema) quadruple, the wire accepts "kind" (the
// latest registered version) or "kind@vN" (pinned), and breaking changes to
// a spec's JSON shape ship as a new version coexisting with the old one
// instead of silently corrupting cache keys and persisted records. Version 1
// is the pre-versioning wire format: its cache keys hash the bare kind, so
// every envelope and job record written before versioning existed resolves
// and caches byte-identically (the golden corpus under testdata/ enforces
// this).

// JobEnvelope is the self-describing wire form of a job: the registered spec
// kind — bare ("learn_sweep", the latest version) or version-pinned
// ("learn_sweep@v2") — the seed rooting the job's deterministic randomness,
// and the spec document itself, decoded by the registry entry it resolves to.
type JobEnvelope struct {
	Kind string          `json:"kind"`
	Seed uint64          `json:"seed"`
	Spec json.RawMessage `json:"spec,omitempty"`
	// Priority is the optional admission-control class ("low", "normal",
	// "high"; empty means "normal"). It biases when the job's tasks are
	// scheduled, never what they compute, so it is deliberately excluded
	// from cache keys: a high-priority rerun of a cached spec is a cache
	// hit, not a recomputation.
	Priority string `json:"priority,omitempty"`
}

// Decode resolves the envelope's spec through the registry.
func (e JobEnvelope) Decode() (Spec, error) {
	rs, err := ResolveEnvelope(e)
	if err != nil {
		return nil, err
	}
	return rs.Spec, nil
}

// DecodeFunc turns a raw spec document into a typed Spec. It should reject
// malformed documents but leave semantic validation to the spec's Validate.
type DecodeFunc func(json.RawMessage) (Spec, error)

// ResultDecodeFunc revives a stored result document into the typed value
// the kind's Aggregate produced. The persistence layer uses it to rehydrate
// cached results after a restart.
type ResultDecodeFunc func(json.RawMessage) (any, error)

// specEntry is one registered (kind, version).
type specEntry struct {
	decode       DecodeFunc
	schema       *Schema
	result       ResultDecodeFunc
	resultSchema *Schema
	deprecated   bool
}

var registry = struct {
	sync.RWMutex
	// kinds maps kind → version → entry; latest tracks the highest
	// registered version per kind (what a bare wire kind resolves to).
	kinds  map[string]map[int]*specEntry
	latest map[string]int
}{kinds: map[string]map[int]*specEntry{}, latest: map[string]int{}}

// RegisterSpec registers a decoder (and its optional wire schema) for the
// given spec kind and version. Version 1 is the kind's original wire format;
// later versions coexist with it — clients pin one with "kind@vN", and a
// bare kind resolves to the latest. It panics on an empty or '@'-bearing
// kind, a version below 1, a nil decoder, or a duplicate (kind, version) —
// all programmer errors at package init time, not runtime conditions.
func RegisterSpec(kind string, version int, decode DecodeFunc, schema *Schema) {
	if kind == "" {
		panic("engine: RegisterSpec with empty kind")
	}
	if strings.Contains(kind, "@") {
		panic("engine: RegisterSpec kind " + kind + " contains '@' (reserved for version suffixes)")
	}
	if version < 1 {
		panic(fmt.Sprintf("engine: RegisterSpec %s with version %d (must be >= 1)", kind, version))
	}
	if decode == nil {
		panic("engine: RegisterSpec with nil decoder for " + kind)
	}
	registry.Lock()
	defer registry.Unlock()
	versions := registry.kinds[kind]
	if versions == nil {
		versions = map[int]*specEntry{}
		registry.kinds[kind] = versions
	}
	if _, dup := versions[version]; dup {
		panic(fmt.Sprintf("engine: RegisterSpec duplicate kind %s version %d", kind, version))
	}
	versions[version] = &specEntry{decode: decode, schema: schema}
	if version > registry.latest[kind] {
		registry.latest[kind] = version
	}
}

// DeprecateSpec marks a registered (kind, version) deprecated. Deprecated
// versions still decode and run — deprecation is a catalog signal to
// clients, not a removal — but GET /v2/specs flags them and the catalog
// fingerprint changes. It panics if the (kind, version) is not registered.
func DeprecateSpec(kind string, version int) {
	registry.Lock()
	defer registry.Unlock()
	e := registry.kinds[kind][version]
	if e == nil {
		panic(fmt.Sprintf("engine: DeprecateSpec unknown kind %s version %d", kind, version))
	}
	e.deprecated = true
}

// ParseKindVersion splits a wire kind into its bare kind and pinned version:
// "learn_sweep" → ("learn_sweep", 0) where 0 means "latest registered", and
// "learn_sweep@v2" → ("learn_sweep", 2). It does not consult the registry.
func ParseKindVersion(wire string) (kind string, version int, err error) {
	kind, suffix, pinned := strings.Cut(wire, "@")
	if !pinned {
		return wire, 0, nil
	}
	digits, ok := strings.CutPrefix(suffix, "v")
	// Only canonical plain-digit suffixes: Atoi alone would also admit
	// "@v+2" and "@v01", giving one version several wire spellings.
	for _, r := range digits {
		if r < '0' || r > '9' {
			ok = false
		}
	}
	n, perr := strconv.Atoi(digits)
	if kind == "" || !ok || perr != nil || n < 1 || digits[0] == '0' {
		return "", 0, fmt.Errorf("engine: malformed versioned kind %q (want kind or kind@vN)", wire)
	}
	return kind, n, nil
}

// VersionedKind renders the wire name of (kind, version): the bare kind for
// version 1 — the pre-versioning format, so v1 wire names, cache keys, and
// persisted records are byte-identical to everything written before versions
// existed — and "kind@vN" for later versions.
func VersionedKind(kind string, version int) string {
	if version <= 1 {
		return kind
	}
	return fmt.Sprintf("%s@v%d", kind, version)
}

// resolvedEntry is a value snapshot of one registry entry, copied out while
// the registry lock is held — callers read its fields lock-free, so handing
// out the *specEntry itself would race DeprecateSpec's locked write.
type resolvedEntry struct {
	kind         string
	version      int
	decode       DecodeFunc
	schema       *Schema
	resultSchema *Schema
	deprecated   bool
}

// lookupSpec resolves a wire kind to a snapshot of its registry entry.
// Callers must not hold the registry lock.
func lookupSpec(wire string) (resolvedEntry, error) {
	kind, version, err := ParseKindVersion(wire)
	if err != nil {
		return resolvedEntry{}, err
	}
	registry.RLock()
	defer registry.RUnlock()
	versions := registry.kinds[kind]
	if versions == nil {
		return resolvedEntry{}, fmt.Errorf("engine: unknown spec kind %q (registered: %v)", kind, specKindsLocked())
	}
	if version == 0 {
		version = registry.latest[kind]
	}
	e := versions[version]
	if e == nil {
		return resolvedEntry{}, fmt.Errorf("engine: unknown version %d of spec kind %q (registered: %v)", version, kind, specVersionsLocked(kind))
	}
	return resolvedEntry{kind: kind, version: version, decode: e.decode, schema: e.schema, resultSchema: e.resultSchema, deprecated: e.deprecated}, nil
}

// ResolvedSpec is a decoded spec bound to the registry entry that produced
// it: the bare kind, the resolved version (a bare wire kind resolves to the
// latest registered one), and whether that version is deprecated.
type ResolvedSpec struct {
	Spec       Spec
	Kind       string
	Version    int
	Deprecated bool
}

// WireKind returns the canonical wire name of the resolved version (the bare
// kind for v1, "kind@vN" otherwise) — what cache keys and job records carry.
func (r ResolvedSpec) WireKind() string { return VersionedKind(r.Kind, r.Version) }

// ResolveEnvelope resolves env through the registry: the wire kind is parsed
// and version-resolved, the spec document is validated against the version's
// schema (a mismatch returns a *SchemaError, which serving layers surface as
// a 422 with the error's JSON-pointer path), and the document is decoded.
func ResolveEnvelope(env JobEnvelope) (ResolvedSpec, error) {
	e, err := lookupSpec(env.Kind)
	if err != nil {
		return ResolvedSpec{}, err
	}
	wire := VersionedKind(e.kind, e.version)
	if err := e.schema.Validate(env.Spec); err != nil {
		return ResolvedSpec{}, fmt.Errorf("engine: %s spec: %w", wire, err)
	}
	spec, err := e.decode(env.Spec)
	if err != nil {
		return ResolvedSpec{}, fmt.Errorf("engine: decode %s spec: %w", wire, err)
	}
	if spec.Kind() != e.kind {
		return ResolvedSpec{}, fmt.Errorf("engine: registry entry %q decoded a %q spec", e.kind, spec.Kind())
	}
	return ResolvedSpec{Spec: spec, Kind: e.kind, Version: e.version, Deprecated: e.deprecated}, nil
}

// RunWire executes spec on e exactly as a serving layer would run the
// equivalent envelope: canonical-encode, resolve through the registry
// (version resolution, schema validation, the registered decoder), then
// run. The CLIs use it for their local sweeps, so what they execute can
// never drift from what gocserve accepts for the same spec.
func RunWire(ctx context.Context, e *Engine, spec Spec, seed uint64) (any, error) {
	raw, err := CanonicalSpecJSON(spec)
	if err != nil {
		return nil, err
	}
	rs, err := ResolveEnvelope(JobEnvelope{Kind: spec.Kind(), Seed: seed, Spec: raw})
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, rs.Spec, seed, nil)
}

// DecodeSpec decodes a raw spec document of the given wire kind — bare
// (latest version) or "kind@vN" (pinned). An empty document decodes the
// spec's zero value (validation then rejects it if the kind has required
// fields).
func DecodeSpec(wire string, raw json.RawMessage) (Spec, error) {
	return JobEnvelope{Kind: wire, Spec: raw}.Decode()
}

// DecodeSpecAt decodes a raw spec document at an exact registered version —
// the persistence layer's path, where the version comes from the job record
// rather than the wire (records written before versioning carry version 0,
// which callers map to 1).
func DecodeSpecAt(kind string, version int, raw json.RawMessage) (Spec, error) {
	// Pin explicitly — VersionedKind would render v1 as the bare kind, which
	// the wire resolves to the *latest* version, not to v1.
	return DecodeSpec(fmt.Sprintf("%s@v%d", kind, max(version, 1)), raw)
}

// SpecSchema returns the registered schema of a wire kind (nil if the
// version has none), resolving a bare kind to its latest version.
func SpecSchema(wire string) (*Schema, error) {
	e, err := lookupSpec(wire)
	if err != nil {
		return nil, err
	}
	return e.schema, nil
}

// RegisterResultCodec registers a decoder reviving a stored result document
// of the given kind and version into the typed value its Aggregate produced,
// and the optional result schema describing the aggregate document GET
// /result serves. By convention the schema's $defs carry "task" (the
// per-task document the result data plane streams) and "summary" (the
// stats block) — the client SDK validates streamed task documents against
// Defs["task"] when present. The codec is optional: versions without one
// round-trip results as raw JSON — served byte-identically over HTTP, but
// typed json.RawMessage in-process. The (kind, version) must already be
// registered via RegisterSpec; like it, duplicates panic.
func RegisterResultCodec(kind string, version int, decode ResultDecodeFunc, schema *Schema) {
	if decode == nil {
		panic("engine: RegisterResultCodec with nil decoder for " + kind)
	}
	registry.Lock()
	defer registry.Unlock()
	e := registry.kinds[kind][version]
	if e == nil {
		panic(fmt.Sprintf("engine: RegisterResultCodec for unregistered kind %s version %d", kind, version))
	}
	if e.result != nil {
		panic(fmt.Sprintf("engine: RegisterResultCodec duplicate kind %s version %d", kind, version))
	}
	e.result = decode
	e.resultSchema = schema
}

// ResultSchema returns the registered result schema of a wire kind (nil if
// the version has none), resolving a bare kind to its latest version.
func ResultSchema(wire string) (*Schema, error) {
	e, err := lookupSpec(wire)
	if err != nil {
		return nil, err
	}
	return e.resultSchema, nil
}

// DecodeResult revives a stored result document of the given kind and
// version (0 counts as 1, the pre-versioning format): through the version's
// registered result codec when there is one, otherwise as a copy of the raw
// document itself. Raw documents re-encode byte-identically (the original
// bytes came from marshalling the typed result), so persistence never
// depends on a codec being registered.
func DecodeResult(kind string, version int, raw json.RawMessage) (any, error) {
	registry.RLock()
	var decode ResultDecodeFunc
	if e := registry.kinds[kind][max(version, 1)]; e != nil {
		decode = e.result
	}
	registry.RUnlock()
	if decode == nil {
		return json.RawMessage(bytes.Clone(raw)), nil
	}
	res, err := decode(raw)
	if err != nil {
		return nil, fmt.Errorf("engine: decode %s result: %w", VersionedKind(kind, max(version, 1)), err)
	}
	return res, nil
}

// ResultJSON adapts a result struct type R to a ResultDecodeFunc.
func ResultJSON[R any]() ResultDecodeFunc {
	return func(raw json.RawMessage) (any, error) {
		var r R
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		return r, nil
	}
}

// SpecKinds returns the registered bare spec kinds, sorted.
func SpecKinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	return specKindsLocked()
}

func specKindsLocked() []string {
	kinds := make([]string, 0, len(registry.kinds))
	for k := range registry.kinds {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// specVersionsLocked lists a kind's registered versions ascending, for
// error messages. Callers hold the registry lock.
func specVersionsLocked(kind string) []int {
	versions := make([]int, 0, len(registry.kinds[kind]))
	for v := range registry.kinds[kind] {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	return versions
}

// DecodeJSON adapts a JSON-encodable spec struct to a DecodeFunc. Unknown
// fields are rejected: a self-describing envelope that silently dropped a
// misspelled parameter would compute the wrong experiment without a word.
func DecodeJSON[S Spec]() DecodeFunc {
	return func(raw json.RawMessage) (Spec, error) {
		var s S
		if len(raw) > 0 {
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&s); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
}

// The four built-in sweeps register themselves like any third-party spec
// would — version 1 is their original (pre-versioning) wire format, and the
// serving layers learn about them only through the registry. Their schemas
// live in specs_schema.go, next to nothing else: hand-written shape
// descriptions the decoder-agreement tests keep honest.
func init() {
	RegisterSpec(LearnSweep{}.Kind(), 1, DecodeJSON[LearnSweep](), learnSweepSchema())
	RegisterSpec(DesignSweep{}.Kind(), 1, DecodeJSON[DesignSweep](), designSweepSchema())
	RegisterSpec(ReplaySweep{}.Kind(), 1, DecodeJSON[ReplaySweep](), replaySweepSchema())
	RegisterSpec(EquilibriumSweep{}.Kind(), 1, DecodeJSON[EquilibriumSweep](), equilibriumSweepSchema())
	RegisterResultCodec(LearnSweep{}.Kind(), 1, ResultJSON[LearnSweepResult](), learnSweepResultSchema())
	RegisterResultCodec(DesignSweep{}.Kind(), 1, ResultJSON[DesignSweepResult](), designSweepResultSchema())
	RegisterResultCodec(ReplaySweep{}.Kind(), 1, ResultJSON[ReplaySweepResult](), replaySweepResultSchema())
	RegisterResultCodec(EquilibriumSweep{}.Kind(), 1, ResultJSON[EquilibriumSweepResult](), equilibriumSweepResultSchema())
}

// GameResolver resolves a registered-game reference (e.g. gocserve's
// content-addressed game IDs) to the game itself.
type GameResolver func(id string) (*core.Game, error)

// GameRefSpec is implemented by specs that may reference games indirectly
// (by registry ID) and need a resolver to produce a runnable spec. The
// serving layer calls ResolveGames once at submission; the returned spec
// must be self-contained — its canonical encoding is what cache keys hash,
// so two references to the same game must resolve to identical specs.
type GameRefSpec interface {
	Spec
	ResolveGames(resolve GameResolver) (Spec, error)
}

// ResolveSpec resolves spec's game references through resolve if it has any.
// Specs without references pass through untouched.
func ResolveSpec(spec Spec, resolve GameResolver) (Spec, error) {
	if gr, ok := spec.(GameRefSpec); ok {
		return gr.ResolveGames(resolve)
	}
	return spec, nil
}

// CanonicalSpecJSON is the canonical wire encoding of a spec: the struct's
// own JSON marshalling, which has a fixed field order (and, for embedded
// games, core.Game's sorted-miner canonical form). Cache keys hash it, so a
// spec whose encoding is not deterministic would split its own cache line.
func CanonicalSpecJSON(spec Spec) (json.RawMessage, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("engine: encode %s spec: %w", spec.Kind(), err)
	}
	return b, nil
}

// CacheKey derives the result-cache key for (spec, seed) at spec version 1 —
// the exact inputs the engine runs on. Every deterministic job is a pure
// function of the two, so serving layers may answer an identical (spec,
// seed) pair from cache. The key hashes the canonical spec encoding; wire
// fields a job type ignores can therefore never split or alias cache
// entries. For a spec resolved from a versioned envelope, use CacheKeyAt
// with the resolved version — v1 keys are identical either way.
func CacheKey(spec Spec, seed uint64) (string, error) {
	return CacheKeyAt(spec, 1, seed)
}

// CacheKeyAt derives the result-cache key for (spec, seed) at a specific
// spec version. The key hashes the versioned wire kind — the bare kind for
// v1, so every pre-versioning cache key is unchanged — which keeps distinct
// versions of one kind on distinct cache lines even when a document happens
// to decode under both.
func CacheKeyAt(spec Spec, version int, seed uint64) (string, error) {
	b, err := CanonicalSpecJSON(spec)
	if err != nil {
		return "", err
	}
	return CacheKeyJSON(VersionedKind(spec.Kind(), version), b, seed), nil
}

// CacheKeyJSON derives the cache key directly from a spec's canonical JSON
// encoding and versioned wire kind (VersionedKind — the bare kind for v1).
// Callers that already hold the canonical document (the server persists it
// alongside the key) can key without re-marshalling — and without a marshal
// error path.
func CacheKeyJSON(wireKind string, canonical json.RawMessage, seed uint64) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|", wireKind, seed)
	h.Write(canonical)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
