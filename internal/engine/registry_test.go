package engine

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gameofcoins/internal/core"
)

// TestWireRoundTripAndCacheKeys is the wire-compatibility gate for the spec
// registry: every registered built-in kind must decode from its JSON
// envelope, re-encode canonically (decode∘encode is a fixed point), and
// produce the golden cache key. A registry or spec change that would split
// or alias existing result-cache entries fails here instead of silently
// recomputing (or worse, cross-serving) cached results in production.
func TestWireRoundTripAndCacheKeys(t *testing.T) {
	cases := []struct {
		kind    string
		spec    string
		seed    uint64
		wantKey string
	}{
		{
			kind:    "learn_sweep",
			spec:    `{"gen":{"Miners":8,"Coins":3},"schedulers":["random","round-robin"],"runs":50,"max_steps":200}`,
			seed:    11,
			wantKey: "968853b029f8b8ddaec9086de5ede9fc",
		},
		{
			kind:    "design_sweep",
			spec:    `{"gen":{"Miners":4,"Coins":2},"pairs":25,"max_tries":100}`,
			seed:    3,
			wantKey: "15f79124380c67ca7c13f4d1130ca90b",
		},
		{
			kind:    "replay_sweep",
			spec:    `{"params":{"Miners":30,"Epochs":144,"SpikeHour":48},"runs":10}`,
			seed:    5,
			wantKey: "12237e448a82eddd3206342f2198de29",
		},
		{
			kind:    "equilibrium_sweep",
			spec:    `{"gen":{"Miners":5,"Coins":2},"games":500}`,
			seed:    7,
			wantKey: "2e83522aca7c95c9ff77e309704d236f",
		},
	}

	covered := map[string]bool{}
	for _, c := range cases {
		t.Run(c.kind, func(t *testing.T) {
			covered[c.kind] = true
			spec, err := DecodeSpec(c.kind, json.RawMessage(c.spec))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			enc1, err := CanonicalSpecJSON(spec)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			// decode∘encode must be a fixed point, or cache keys would
			// depend on how many hops a spec took through the wire.
			spec2, err := DecodeSpec(c.kind, enc1)
			if err != nil {
				t.Fatalf("re-decode canonical form: %v", err)
			}
			enc2, err := CanonicalSpecJSON(spec2)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("canonical encoding unstable:\n%s\n%s", enc1, enc2)
			}
			key, err := CacheKey(spec, c.seed)
			if err != nil {
				t.Fatalf("cache key: %v", err)
			}
			if key != c.wantKey {
				t.Errorf("cache key drifted: got %s, want %s\n"+
					"(an intentional wire change must update the golden — and invalidates deployed result caches)", key, c.wantKey)
			}
			// The wire form and the canonical form must agree on the key:
			// a client-marshaled spec and its decoded twin share cache lines.
			key2, err := CacheKey(spec2, c.seed)
			if err != nil {
				t.Fatal(err)
			}
			if key2 != key {
				t.Errorf("round-tripped spec changed key: %s vs %s", key2, key)
			}
		})
	}

	// Every registered kind needs a row above (test-local kinds, prefixed
	// test_/toy, are exempt) so a newly registered spec cannot ship without
	// wire-stability coverage.
	for _, kind := range SpecKinds() {
		if strings.HasPrefix(kind, "test_") || strings.HasPrefix(kind, "toy") {
			continue
		}
		if !covered[kind] {
			t.Errorf("registered kind %q has no wire round-trip case", kind)
		}
	}
}

func TestDecodeSpecUnknownKind(t *testing.T) {
	if _, err := DecodeSpec("bogus_sweep", nil); err == nil || !strings.Contains(err.Error(), "unknown spec kind") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec("equilibrium_sweep", json.RawMessage(`{"gen":{"Miners":5,"Coins":2},"gmaes":500}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("misspelled field must be rejected, got err = %v", err)
	}
}

func TestRegisterSpecDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterSpec("learn_sweep", 1, DecodeJSON[LearnSweep](), nil)
}

func TestJobEnvelopeDecode(t *testing.T) {
	var env JobEnvelope
	if err := json.Unmarshal([]byte(`{"kind":"equilibrium_sweep","seed":7,"spec":{"gen":{"Miners":5,"Coins":2},"games":9}}`), &env); err != nil {
		t.Fatal(err)
	}
	spec, err := env.Decode()
	if err != nil {
		t.Fatal(err)
	}
	es, ok := spec.(EquilibriumSweep)
	if !ok || es.Games != 9 || es.Gen.Miners != 5 {
		t.Fatalf("decoded %#v", spec)
	}
}

// TestResolveSpecGameRef: a LearnSweep naming a game by ID resolves to the
// exact spec a caller would build with the game inline — same canonical
// encoding, same cache key — so by-reference and by-value submissions share
// one cache line.
func TestResolveSpecGameRef(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "a", Power: 3}, {Name: "b", Power: 2}},
		[]core.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{5, 4},
	)
	resolver := func(id string) (*core.Game, error) {
		if id != "g-1" {
			t.Fatalf("resolver asked for %q", id)
		}
		return g, nil
	}

	byRef, err := ResolveSpec(LearnSweep{GameID: "g-1", Runs: 4, Gen: core.GenSpec{Miners: 9, Coins: 9}}, resolver)
	if err != nil {
		t.Fatal(err)
	}
	byValue := LearnSweep{Game: g, Runs: 4}
	k1, err := CacheKey(byRef, 2)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CacheKey(byValue, 2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("by-reference and by-value cache keys differ: %s vs %s", k1, k2)
	}

	// Specs without references pass through untouched.
	spec, err := ResolveSpec(EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 3}, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.(EquilibriumSweep); !ok {
		t.Fatalf("pass-through changed the spec: %#v", spec)
	}

	// An unresolved reference must never reach the engine silently.
	if err := (LearnSweep{GameID: "g-1", Runs: 4}).Validate(); err == nil {
		t.Fatal("unresolved game reference validated")
	}
}
