package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Remote execution: the engine-side half of the distributed worker fleet
// (internal/dist). A job submitted with a RemoteInfo — its versioned wire
// kind, canonical spec document, and seed — is *distributable*: besides the
// local worker pool, a coordinator may lease contiguous chunks of its
// pending deque to remote gocworker processes, which decode the same spec
// through the same registry, fork the same per-task rng streams, and report
// per-task results back over the wire.
//
// Distribution cannot change results. Every task result is a pure function
// of (canonical spec JSON, seed, task index): a remote worker forks
// rng.New(seed).Fork(i) exactly like a local worker does, and per-task
// results round-trip through the spec's TaskCoder byte-exactly (Go's JSON
// float encoding is shortest-round-trip). The lease machinery only decides
// *where* a task runs — publication is first-writer-wins by task index, so
// even a task computed twice (an expired lease requeued locally racing a
// late remote report) lands exactly once, with the identical value either
// way.
//
// Failure semantics:
//
//   - Expired or abandoned leases are requeued (RequeueRemote): the tasks
//     rejoin the job's pending deque and local workers (or another remote)
//     recompute them. A SIGKILL'd worker costs its in-flight range, nothing
//     more.
//   - A remote task *error* fails the job (FailRemote), exactly like a local
//     task error would — task errors are deterministic, so a local retry
//     would fail identically.
//   - A canceled or failing job drops its leases: leased counts are zeroed
//     on halt, late reports find the run gone and are discarded.

// RemoteInfo is a job's wire identity — what a remote worker needs to
// recompute any of its tasks. The serving layer (which resolved the envelope
// and holds the canonical encoding) attaches it at submission via
// Manager.SubmitJob; jobs without it never leave the local pool.
type RemoteInfo struct {
	// WireKind is the versioned wire name ("learn_sweep", "learn_sweep@v2")
	// the worker resolves through its own spec registry.
	WireKind string `json:"kind"`
	// Spec is the canonical spec document (CanonicalSpecJSON).
	Spec json.RawMessage `json:"spec"`
	// Seed roots the job's deterministic randomness; task i draws from
	// rng.New(Seed).Fork(i) on every machine.
	Seed uint64 `json:"seed"`
}

// TaskCoder is implemented by specs whose per-task results can cross the
// wire: Encode marshals the value RunTask returned, Decode revives it into
// the exact value Aggregate expects (the decoded value must be
// indistinguishable from a locally computed one — same types, same bits).
// Specs without a TaskCoder still run fine; they just never distribute.
type TaskCoder interface {
	EncodeTaskResult(res any) (json.RawMessage, error)
	DecodeTaskResult(raw json.RawMessage) (any, error)
}

// decodeTaskAs revives one wire task result as the concrete type T — the
// helper behind the built-in specs' TaskCoder implementations. The decoded
// value is returned as T (not *T) so type assertions in Aggregate see the
// same concrete type a local RunTask returned.
func decodeTaskAs[T any](raw json.RawMessage) (any, error) {
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// RemoteLease is a chunk of one job's pending tasks granted to a remote
// worker: the run token identifying the job inside the engine, the task
// spans (in lease order — the shared TaskRange representation), and the
// job's wire identity.
type RemoteLease struct {
	Run    uint64
	Ranges []TaskRange
	Wire   RemoteInfo
}

// TaskList expands the lease's ranges into the flat task-index list —
// the form the dist wire protocol carries.
func (l RemoteLease) TaskList() []int { return ExpandTaskRanges(l.Ranges) }

// ErrRunGone reports a lease operation against a run the engine no longer
// tracks — the job finished, failed, or was canceled while the lease was
// out. Callers drop the lease; there is nothing left to requeue into.
var ErrRunGone = errors.New("engine: run is gone")

// LeaseRemote pops a contiguous chunk off the back of the most-backlogged
// distributable job's deque and marks it leased. The back of the deque holds
// the cheapest remaining tasks under LPT ordering — classic work-stealing
// steals from the opposite end of the victim — so an expired lease requeues
// the least costly work. Chunks shrink as jobs drain (never more than half
// the remaining deque, so local workers always keep feed), are capped at
// maxTasks, and — once the kind's cost is observed (see SchedStats.Observed)
// — are additionally sized to about targetMs of predicted work, so a slow
// worker's loss is bounded in wall-clock, not just task count.
//
// ok is false when no distributable job has pending work.
func (e *Engine) LeaseRemote(maxTasks int, targetMs float64) (lease RemoteLease, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var best *runJob
	for _, j := range e.active {
		if j.wire == nil || len(j.pending) == 0 {
			continue
		}
		if best == nil || len(j.pending) > len(best.pending) {
			best = j
		}
	}
	if best == nil {
		return RemoteLease{}, false
	}
	n := (len(best.pending) + 1) / 2
	if maxTasks > 0 && n > maxTasks {
		n = maxTasks
	}
	if o := e.obs[best.costKey]; o != nil && o.n > 0 && targetMs > 0 {
		if best.sizer != nil && o.msPerCost > 0 {
			// Walk the chunk back-to-front accumulating predicted wall-clock
			// until the target is met; always grant at least one task.
			total, k := 0.0, 0
			for k < n && total < targetMs {
				idx := best.pending[len(best.pending)-1-k]
				total += o.msPerCost * best.sizer.TaskCost(idx)
				k++
			}
			n = k
		} else if o.msPerTask > 0 {
			if cap := int(targetMs/o.msPerTask) + 1; n > cap {
				n = cap
			}
		}
	}
	if n < 1 {
		n = 1
	}
	cut := len(best.pending) - n
	ranges := CompressTaskRanges(best.pending[cut:])
	best.pending = best.pending[:cut]
	best.leased += n
	e.leasesGranted++
	return RemoteLease{Run: best.runID, Ranges: ranges, Wire: *best.wire}, true
}

// ReportRemote publishes remotely computed results for a leased run. results
// maps task index → the TaskCoder-encoded result. Decoding is all-or-
// nothing: if any result fails to decode (registry drift the fingerprint
// check should have caught), nothing is published, the leased counts are
// untouched, and the caller should requeue the lease — a local recompute is
// always available and always right.
//
// Publication is first-writer-wins per task index: results for tasks already
// published (by a local worker that raced a requeued copy, or by a duplicate
// report) are skipped. The returned count is the number of results actually
// published; the difference from len(results) is duplicates, which are
// harmless by determinism.
func (e *Engine) ReportRemote(run uint64, results map[int]json.RawMessage) (accepted int, err error) {
	e.mu.Lock()
	j := e.runs[run]
	e.mu.Unlock()
	if j == nil {
		return 0, ErrRunGone
	}
	// Decode outside the engine lock — decoding is per-result work — and
	// before publishing anything, so a half-decodable report cannot publish
	// a partial range and then force the remainder through the requeue path
	// twice.
	idxs := make([]int, 0, len(results))
	for i := range results {
		if i < 0 || i >= j.n {
			return 0, fmt.Errorf("engine: report for task %d of a %d-task job", i, j.n)
		}
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	decoded := make([]any, len(idxs))
	for k, i := range idxs {
		out, derr := j.coder.DecodeTaskResult(results[i])
		if derr != nil {
			return 0, fmt.Errorf("engine: decode remote result for %s task %d: %w", j.spec.Kind(), i, derr)
		}
		decoded[k] = out
	}
	for k, i := range idxs {
		if e.publishRemote(j, i, decoded[k], results[i]) {
			accepted++
		}
	}
	e.mu.Lock()
	j.leased -= len(idxs)
	if j.leased < 0 {
		j.leased = 0 // a halt zeroed it while this report was in flight
	}
	finished := e.finishIfIdleLocked(j)
	e.mu.Unlock()
	if finished {
		close(j.finished)
	}
	return accepted, nil
}

// publishRemote lands one remotely computed task result, mirroring execute's
// publication path: under pmu so progress callbacks stay serialized and
// monotone, guarded by the per-task done bitmap so a duplicate (or a local
// racer) publishes nothing. raw is the wire form the worker reported — it
// feeds the ledger directly, so a remotely computed ledger entry is the
// exact bytes the TaskCoder round-trip already proved byte-identical to a
// local encode.
func (e *Engine) publishRemote(j *runJob, task int, out any, raw json.RawMessage) bool {
	published := false
	j.pmu.Lock()
	if !j.halted && !(j.doneTask != nil && j.doneTask[task]) {
		if j.doneTask == nil {
			j.doneTask = make([]bool, j.n)
		}
		j.doneTask[task] = true
		j.results[task] = out
		j.done++
		published = true
		if j.onTask != nil && raw != nil {
			j.onTask(task, raw)
		}
		if j.onProgress != nil {
			e.mu.Lock()
			queued := len(j.pending)
			running := j.inFlight
			e.mu.Unlock()
			j.onProgress(Progress{Done: j.done, Total: j.n, Queued: queued, Running: running})
		}
	}
	j.pmu.Unlock()
	if published {
		e.mu.Lock()
		e.completed++
		e.remoteDone++
		e.mu.Unlock()
	}
	return published
}

// RequeueRemote returns leased tasks to their job's pending deque — the
// recovery path for expired leases, abandoned (gracefully shut down)
// workers, and undecodable reports. The tasks rejoin the back of the deque
// (they came from the back: the cheapest remaining work) and the worker pool
// is topped back up, so a requeue after the local pool drained still
// finishes the job. Requeueing into a finished or halted run is a no-op.
func (e *Engine) RequeueRemote(run uint64, tasks []int) {
	e.mu.Lock()
	j := e.runs[run]
	e.mu.Unlock()
	if j == nil || len(tasks) == 0 {
		return
	}
	// pmu before e.mu (the execute ordering): the halted flag lives under
	// pmu, and a halted job must not have its pending deque refilled —
	// workers would pull doomed tasks while the cancellation propagates.
	j.pmu.Lock()
	halted := j.halted
	j.pmu.Unlock()
	e.mu.Lock()
	if j.leased -= len(tasks); j.leased < 0 {
		j.leased = 0
	}
	if !halted && !j.removed {
		j.pending = append(j.pending, tasks...)
		e.remoteRequeued += uint64(len(tasks))
		e.topUpLocked(len(j.pending))
	}
	finished := e.finishIfIdleLocked(j)
	e.mu.Unlock()
	if finished {
		close(j.finished)
	}
}

// FailRemote fails a leased run with a remote task error, exactly like a
// local task error would: the job halts, pending work is dropped, and Run
// returns the error. Task errors are deterministic functions of the same
// (spec, seed, index) triple the local pool would run, so requeueing instead
// would only recompute the identical failure.
func (e *Engine) FailRemote(run uint64, msg string) {
	e.mu.Lock()
	j := e.runs[run]
	e.mu.Unlock()
	if j == nil {
		return
	}
	j.pmu.Lock()
	j.halted = true
	if j.firstErr == nil {
		j.firstErr = fmt.Errorf("engine: %s remote task: %s", j.spec.Kind(), msg)
	}
	j.pmu.Unlock()
	// Cancel the run's context: Run's watcher goroutine drives haltJob,
	// which drops pending work, zeroes the leased count, and finishes the
	// job once local in-flight tasks drain.
	j.cancel()
}
