package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gameofcoins/internal/rng"
)

// coderFunc wraps Func with a TaskCoder for int task results, making it
// distributable in tests.
type coderFunc struct{ Func }

func (coderFunc) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }
func (coderFunc) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v int
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// slowSquares is an n-task distributable job whose task i sleeps briefly and
// returns i*i; the sleep keeps the pending deque populated long enough for
// lease calls to find work.
func slowSquares(n int) coderFunc {
	return coderFunc{Func{
		Name: "squares",
		N:    n,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(2 * time.Millisecond):
			}
			return i * i, nil
		},
		Agg: func(results []any) (any, error) {
			sum := 0
			for _, r := range results {
				sum += r.(int)
			}
			return sum, nil
		},
	}}
}

// startWireJob submits spec as a distributable job and returns the Job.
func startWireJob(t *testing.T, mgr *Manager, spec Spec, seed uint64) *Job {
	t.Helper()
	job, err := mgr.SubmitJob("", spec, seed, &RemoteInfo{WireKind: spec.Kind(), Spec: json.RawMessage(`{}`), Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return job
}

// leaseSoon polls LeaseRemote until it grants (the manager enqueues
// asynchronously) or the deque drains for good.
func leaseSoon(t *testing.T, e *Engine, maxTasks int) RemoteLease {
	t.Helper()
	for range 500 {
		if lease, ok := e.LeaseRemote(maxTasks, 0); ok {
			return lease
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("LeaseRemote never granted")
	return RemoteLease{}
}

func TestLeaseRemoteEmptyEngine(t *testing.T) {
	if _, ok := New(1).LeaseRemote(16, 0); ok {
		t.Fatal("LeaseRemote granted a lease on an idle engine")
	}
}

func TestLeaseRemoteNeverTakesMoreThanHalf(t *testing.T) {
	e := New(1)
	mgr := NewManager(e)
	defer mgr.Close()
	job := startWireJob(t, mgr, slowSquares(64), 1)

	lease := leaseSoon(t, e, 1000)
	// The deque had at most 64 pending when the lease was cut; the grant is
	// capped at half the remainder (rounded up), so local workers keep feed.
	if len(lease.TaskList()) > 33 {
		t.Fatalf("lease took %d of <= 64 pending tasks, want <= half (33)", len(lease.TaskList()))
	}
	if lease.Wire.WireKind != "squares" {
		t.Fatalf("lease wire kind = %q, want %q", lease.Wire.WireKind, "squares")
	}

	// Hand the range back so the job can finish.
	e.RequeueRemote(lease.Run, lease.TaskList())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job after requeue: %v", err)
	}
	res, _ := job.Result()
	if want := 64 * 63 * 127 / 6; res != want { // sum of squares 0..63
		t.Fatalf("result = %v, want %d", res, want)
	}
	if st := e.Stats(); st.RemoteRequeued < uint64(len(lease.TaskList())) {
		t.Fatalf("RemoteRequeued = %d, want >= %d", st.RemoteRequeued, len(lease.TaskList()))
	}
}

func TestReportRemoteFirstWriterWinsAndValidates(t *testing.T) {
	e := New(1)
	mgr := NewManager(e)
	defer mgr.Close()
	job := startWireJob(t, mgr, slowSquares(64), 1)

	lease := leaseSoon(t, e, 8)
	results := make(map[int]json.RawMessage, len(lease.TaskList()))
	for _, task := range lease.TaskList() {
		results[task] = json.RawMessage(fmt.Sprintf("%d", task*task))
	}

	// An out-of-range index must reject the whole report before anything
	// publishes (all-or-nothing).
	bad := map[int]json.RawMessage{lease.TaskList()[0]: results[lease.TaskList()[0]], 64: json.RawMessage("0")}
	if _, err := e.ReportRemote(lease.Run, bad); err == nil {
		t.Fatal("out-of-range report accepted")
	}
	// So must an undecodable result.
	garbled := map[int]json.RawMessage{lease.TaskList()[0]: json.RawMessage(`"not an int"`)}
	if _, err := e.ReportRemote(lease.Run, garbled); err == nil {
		t.Fatal("undecodable report accepted")
	}

	accepted, err := e.ReportRemote(lease.Run, results)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != len(results) {
		t.Fatalf("first report: accepted %d, want %d", accepted, len(results))
	}
	// The same results again: first writer already won every index.
	accepted, err = e.ReportRemote(lease.Run, results)
	if err != nil {
		t.Fatal(err)
	}
	if accepted != 0 {
		t.Fatalf("duplicate report: accepted %d, want 0", accepted)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := job.Wait(ctx); err != nil {
		t.Fatalf("job: %v", err)
	}
	res, _ := job.Result()
	if want := 64 * 63 * 127 / 6; res != want {
		t.Fatalf("result = %v, want %d", res, want)
	}
}

func TestRemoteUnknownRun(t *testing.T) {
	e := New(1)
	if _, err := e.ReportRemote(999, map[int]json.RawMessage{0: json.RawMessage("1")}); !errors.Is(err, ErrRunGone) {
		t.Fatalf("ReportRemote on unknown run: got %v, want ErrRunGone", err)
	}
	e.RequeueRemote(999, []int{1, 2, 3}) // must be a silent no-op
	e.FailRemote(999, "boom")            // likewise
}

func TestFailRemoteFailsJob(t *testing.T) {
	e := New(1)
	mgr := NewManager(e)
	defer mgr.Close()
	job := startWireJob(t, mgr, slowSquares(64), 1)

	lease := leaseSoon(t, e, 8)
	e.FailRemote(lease.Run, "deterministic task failure")

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := job.Wait(ctx)
	if err == nil || job.Status().State != StateFailed {
		t.Fatalf("job after FailRemote: err=%v state=%v, want failed", err, job.Status().State)
	}
	if want := "deterministic task failure"; err != nil && !strings.Contains(err.Error(), want) {
		t.Fatalf("job error %q does not carry the remote message %q", err, want)
	}
}

// TestObservedCostStats locks in the EWMA feedback loop: completed local
// tasks must populate Stats().Observed for the job's cost key, which lease
// sizing and weighted fair share read.
func TestObservedCostStats(t *testing.T) {
	e := New(2)
	spec := slowSquares(16)
	if _, err := e.Run(context.Background(), spec, 1, nil); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	o, ok := st.Observed["squares"]
	if !ok {
		t.Fatalf("no observed cost for %q: %+v", "squares", st.Observed)
	}
	if o.Samples == 0 || o.MsPerTask <= 0 || o.MsPerCost <= 0 {
		t.Fatalf("observed cost not populated: %+v", o)
	}
	// Tasks sleep ~2ms; the EWMA should be in that order of magnitude, not
	// wildly off (which would poison lease sizing).
	if o.MsPerTask < 0.5 || o.MsPerTask > 500 {
		t.Fatalf("MsPerTask = %v, implausible for a ~2ms task", o.MsPerTask)
	}
}
