package engine

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"gameofcoins/internal/rng"
	"gameofcoins/internal/stats"
)

// TestManagerRestore: a terminal job injected by the persistence layer is
// indistinguishable from one that finished in-process — status, result,
// Done/Wait — and its ID advances the mint counter so later submissions
// never collide.
func TestManagerRestore(t *testing.T) {
	m := NewManager(New(1))
	defer m.Close()

	job, err := m.Restore("job-7", "toy", 3, 42, StateDone, "")
	if err != nil {
		t.Fatal(err)
	}
	st := job.Status()
	if st.State != StateDone || st.Progress.Done != 3 || st.Progress.Total != 3 {
		t.Fatalf("restored status = %+v", st)
	}
	if res, ok := job.Result(); !ok || res != 42 {
		t.Fatalf("restored result = %v, %v", res, ok)
	}
	select {
	case <-job.Done():
	default:
		t.Fatal("restored job's Done channel is open")
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatalf("Wait on restored done job = %v", err)
	}
	got, err := m.Get("job-7")
	if err != nil || got != job {
		t.Fatalf("Get = %v, %v", got, err)
	}

	// Failed restores carry their recorded error; Cancel is a no-op.
	failed, err := m.Restore("job-9", "toy", 2, nil, StateFailed, "stored boom")
	if err != nil {
		t.Fatal(err)
	}
	failed.Cancel()
	if st := failed.Status(); st.State != StateFailed || st.Error != "stored boom" {
		t.Fatalf("failed status = %+v", st)
	}

	// The counter moved past the highest restored ID.
	fresh, err := m.Submit(Func{Name: "f", N: 1,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil }}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID() != "job-10" {
		t.Fatalf("fresh job ID = %s, want job-10", fresh.ID())
	}

	// Guard rails: duplicates and non-terminal states are rejected.
	if _, err := m.Restore("job-7", "toy", 1, nil, StateDone, ""); err == nil {
		t.Fatal("duplicate restore accepted")
	}
	if _, err := m.Restore("job-99", "toy", 1, nil, StateRunning, ""); err == nil {
		t.Fatal("non-terminal restore accepted")
	}
	if _, err := m.Restore("", "toy", 1, nil, StateDone, ""); err == nil {
		t.Fatal("empty-ID restore accepted")
	}
}

// TestManagerResubmit: a resubmitted job runs under its caller-chosen ID
// and produces the same result a fresh submission would (determinism).
func TestManagerResubmit(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	spec := Func{Name: "sum", N: 4,
		Task: func(_ context.Context, i int, r *rng.Rand) (any, error) { return int(r.Uint64() % 100), nil },
		Agg: func(results []any) (any, error) {
			s := 0
			for _, v := range results {
				s += v.(int)
			}
			return s, nil
		}}

	ref, err := m.Submit(spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Result()

	job, err := m.Resubmit("job-33", spec, 11)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID() != "job-33" {
		t.Fatalf("ID = %s", job.ID())
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := job.Result(); got != want {
		t.Fatalf("resubmitted result %v != original %v", got, want)
	}

	if _, err := m.Resubmit("job-33", spec, 11); err == nil {
		t.Fatal("duplicate resubmit accepted")
	}
	if _, err := m.Resubmit("", spec, 11); err == nil {
		t.Fatal("empty-ID resubmit accepted")
	}
}

// TestResultCodecRoundTrip: built-in results revive through the registry
// into their typed form; unregistered kinds fall back to a raw-JSON copy.
func TestResultCodecRoundTrip(t *testing.T) {
	orig := LearnSweepResult{
		TotalRuns: 8,
		Schedulers: []SchedulerSummary{{
			Scheduler: "random", Runs: 8, Converged: 8,
			Steps: stats.Summarize([]float64{3, 5, 7, 9}),
		}},
	}
	raw, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	revived, err := DecodeResult("learn_sweep", 1, raw)
	if err != nil {
		t.Fatal(err)
	}
	typed, ok := revived.(LearnSweepResult)
	if !ok {
		t.Fatalf("revived type = %T", revived)
	}
	if !reflect.DeepEqual(typed, orig) {
		t.Fatalf("round-trip changed the result:\n%+v\n%+v", typed, orig)
	}
	// Re-encoding is byte-identical — the property the restart cache needs.
	again, err := json.Marshal(typed)
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(raw) {
		t.Fatalf("re-encoded bytes differ:\n%s\n%s", again, raw)
	}

	// Unregistered kind: the raw document itself comes back (a copy).
	doc := json.RawMessage(`{"answer":41}`)
	out, err := DecodeResult("never_registered_kind", 1, doc)
	if err != nil {
		t.Fatal(err)
	}
	rawOut, ok := out.(json.RawMessage)
	if !ok || string(rawOut) != string(doc) {
		t.Fatalf("fallback = %T %s", out, rawOut)
	}
	doc[10] = '2'
	if string(rawOut) != `{"answer":41}` {
		t.Fatal("fallback aliases the caller's buffer")
	}

	// A registered codec surfaces corrupt documents as errors.
	if _, err := DecodeResult("learn_sweep", 1, json.RawMessage(`{"total_runs":"nope"}`)); err == nil ||
		!strings.Contains(err.Error(), "learn_sweep") {
		t.Fatalf("corrupt document err = %v", err)
	}
}
