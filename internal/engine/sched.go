package engine

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"gameofcoins/internal/rng"
)

// Sizer is implemented by specs that can estimate per-task cost up front.
// When a spec implements it, the engine orders the job's tasks
// longest-processing-time-first (LPT), so one fat straggler is started early
// instead of being discovered last with every other worker already idle.
// Costs are relative — only their ordering matters — and they must be pure
// functions of the task index and the spec's immutable fields. Task ordering
// cannot influence results (results land by task index, rng streams fork per
// index), so a wrong estimate costs tail latency, never correctness.
type Sizer interface {
	// TaskCost estimates the relative cost of task i. Ties keep submission
	// (index) order, so a uniform estimate degrades to FIFO.
	TaskCost(i int) float64
}

// runJob is one Run's scheduling state on the engine's shared dispatcher:
// a deque of LPT-ordered pending task indices workers pull from, plus the
// completion bookkeeping that decides when the job is finished.
type runJob struct {
	spec       Spec
	n          int
	ctx        context.Context
	cancel     context.CancelFunc
	base       *rng.Rand
	results    []any
	onProgress func(Progress)
	sizer      Sizer  // spec's Sizer, if any; nil means uniform cost
	costKey    string // observed-cost bucket: wire kind when known, else Kind()

	// Admission-control attributes, set once at submission and immutable
	// after: client names the submitting tenant ("" = anonymous) for quota
	// accounting, weight scales the job's urgency in fair-share comparisons
	// (<= 0 means the default 1.0). Both bias which pending task a worker
	// takes next — they can never reach results.
	client string
	weight float64

	// Wire identity and codec — set once before enqueue, immutable after.
	// coder is non-nil whenever the spec implements TaskCoder; wire is
	// additionally non-nil for distributable jobs (RemoteInfo supplied), and
	// only those are published to the remote task source.
	wire  *RemoteInfo
	coder TaskCoder
	runID uint64 // key into e.runs while the job is live
	// onTask feeds the result ledger (runOpts.onTask): every published task
	// result in wire form, invoked under pmu so deliveries are serialized
	// with progress. nil unless the spec implements TaskCoder.
	onTask func(task int, raw json.RawMessage)

	// Guarded by the engine mutex.
	pending  []int // task indices, most expensive first; popped from the front
	inFlight int   // tasks taken by workers and not yet returned
	leased   int   // tasks out on remote leases, not yet reported or requeued
	removed  bool  // off the active list; finished is closed exactly once

	// Guarded by pmu, which serializes completion publication: firstErr is
	// recorded once, and onProgress is only ever invoked under pmu with
	// halted false — so the instant a job starts failing (or is canceled),
	// progress publication stops, and SSE watchers can never observe a
	// doomed job advancing.
	pmu      sync.Mutex
	halted   bool // failing or canceled: suppress results and progress
	firstErr error
	done     int
	// doneTask marks indices already published, allocated lazily on the
	// first remote publication. Local-only jobs never allocate it: without
	// leases every index is taken exactly once, so the guard is free.
	doneTask []bool

	finished chan struct{}
}

// SchedStats is a point-in-time snapshot of the engine's shared dispatcher,
// exposed through gocserve's /healthz so queue pressure and cross-job
// migration are observable without submitting anything.
type SchedStats struct {
	// Workers is the configured worker cap (the fair-share denominator).
	Workers int `json:"workers"`
	// ActiveJobs counts jobs with pending or in-flight tasks.
	ActiveJobs int `json:"active_jobs"`
	// QueuedTasks counts tasks waiting in per-job deques.
	QueuedTasks int `json:"queued_tasks"`
	// RunningTasks counts tasks currently executing on workers.
	RunningTasks int `json:"running_tasks"`
	// Steals counts cross-job takes: a worker whose previous job had no
	// pending work (or more than its fair share) pulling from another live
	// job's deque. High steal rates mean heterogeneous jobs are being
	// rebalanced, which is the scheduler doing its work, not a problem.
	Steals uint64 `json:"steals"`
	// CompletedTasks counts tasks finished and published to their job since
	// the engine was built; errored tasks and completions discarded after a
	// job halts are excluded, so the counter always equals the sum of
	// progress every job ever reported.
	CompletedTasks uint64 `json:"completed_tasks"`
	// LeasedTasks counts tasks currently out on remote leases — popped from
	// their deques but neither running locally nor completed.
	LeasedTasks int `json:"leased_tasks,omitempty"`
	// LeasesGranted / RemoteCompleted / RemoteRequeued count the remote task
	// source's lifetime activity: ranges handed to workers, task results
	// published from remote reports, and leased tasks returned to their
	// deques after expiry or abandonment.
	LeasesGranted   uint64 `json:"leases_granted,omitempty"`
	RemoteCompleted uint64 `json:"remote_completed,omitempty"`
	RemoteRequeued  uint64 `json:"remote_requeued,omitempty"`
	// Observed maps cost keys (wire kind when known) to the EWMA task
	// latency model feeding fair-share weighting and lease sizing.
	Observed map[string]ObservedCost `json:"observed,omitempty"`
	// Clients maps named submitting clients to their live dispatcher load.
	// Anonymous jobs (no client identity) are not listed, so the map is
	// omitted entirely on a server running without admission control.
	Clients map[string]ClientLoad `json:"clients,omitempty"`
}

// ClientLoad is one named client's live dispatcher footprint plus the
// in-flight cost share cap the quota policy holds it to (0 = uncapped).
type ClientLoad struct {
	// Jobs counts the client's active jobs.
	Jobs int `json:"jobs"`
	// InFlight counts the client's tasks running locally or out on leases.
	InFlight int `json:"in_flight"`
	// InFlightCost is the EWMA-weighted wall-clock estimate of that
	// in-flight work — the quantity the quota compares against ShareCap.
	InFlightCost float64 `json:"in_flight_cost"`
	// ShareCap is the client's configured share of total in-flight cost.
	ShareCap float64 `json:"share_cap,omitempty"`
}

// ObservedCost is the per-kind EWMA latency model built from completed local
// tasks. It serves two schedulers: cross-job fair share weighs in-flight
// counts by MsPerTask (so a job of 100ms tasks and a job of 1ms tasks split
// wall-clock, not slots), and remote lease sizing converts a wall-clock
// target into a task count via MsPerCost × TaskCost. Kinds publishing a flat
// TaskCost — which LPT ordering can do nothing with — get their dispatch
// weight entirely from here.
type ObservedCost struct {
	// MsPerTask is the EWMA of wall-clock milliseconds per completed task.
	MsPerTask float64 `json:"ms_per_task"`
	// MsPerCost is the EWMA of milliseconds per TaskCost unit (equal to
	// MsPerTask for kinds without a Sizer, whose cost is uniformly 1).
	MsPerCost float64 `json:"ms_per_cost"`
	// Samples counts completions folded into the averages.
	Samples uint64 `json:"samples"`
}

// obsCost is the mutable form of ObservedCost, guarded by the engine mutex.
type obsCost struct {
	msPerTask float64
	msPerCost float64
	n         uint64
}

// obsAlpha is the EWMA smoothing factor: each new sample moves the average a
// quarter of the way, so the model tracks drift (a spec version whose tasks
// got slower) within a few completions without thrashing on one outlier.
const obsAlpha = 0.25

// maxObsKinds bounds the observed-cost map; a pathological client minting
// unique kinds cannot grow engine memory without bound.
const maxObsKinds = 512

// observeLocked folds one completed task into the cost model. Callers must
// hold e.mu. Only cleanly published local completions are observed: errored
// and post-halt tasks ran with canceled contexts and would poison the
// averages with truncated durations.
func (e *Engine) observeLocked(j *runJob, task int, d time.Duration) {
	o := e.obs[j.costKey]
	if o == nil {
		if len(e.obs) >= maxObsKinds {
			return
		}
		if e.obs == nil {
			e.obs = make(map[string]*obsCost)
		}
		o = &obsCost{}
		e.obs[j.costKey] = o
	}
	ms := float64(d) / float64(time.Millisecond)
	cost := 1.0
	if j.sizer != nil {
		if c := j.sizer.TaskCost(task); c > 0 {
			cost = c
		}
	}
	if o.n == 0 {
		o.msPerTask = ms
		o.msPerCost = ms / cost
	} else {
		o.msPerTask += obsAlpha * (ms - o.msPerTask)
		o.msPerCost += obsAlpha * (ms/cost - o.msPerCost)
	}
	o.n++
}

// Stats snapshots the dispatcher.
func (e *Engine) Stats() SchedStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := SchedStats{
		Workers:         e.workers,
		ActiveJobs:      len(e.active),
		Steals:          e.steals,
		CompletedTasks:  e.completed,
		LeasesGranted:   e.leasesGranted,
		RemoteCompleted: e.remoteDone,
		RemoteRequeued:  e.remoteRequeued,
	}
	for _, j := range e.active {
		st.QueuedTasks += len(j.pending)
		st.RunningTasks += j.inFlight
		st.LeasedTasks += j.leased
	}
	if len(e.obs) > 0 {
		st.Observed = make(map[string]ObservedCost, len(e.obs))
		for k, o := range e.obs {
			st.Observed[k] = ObservedCost{MsPerTask: o.msPerTask, MsPerCost: o.msPerCost, Samples: o.n}
		}
	}
	for _, j := range e.active {
		if j.client == "" {
			continue
		}
		if st.Clients == nil {
			st.Clients = make(map[string]ClientLoad)
		}
		cl := st.Clients[j.client]
		cl.Jobs++
		cl.InFlight += j.inFlight + j.leased
		cl.InFlightCost += e.inFlightCostLocked(j)
		cl.ShareCap = e.shareLocked(j.client)
		st.Clients[j.client] = cl
	}
	return st
}

// SetClientShares configures the per-client in-flight cost quota enforced in
// take: def caps every client's share of the engine's total in-flight cost,
// and per overrides the cap for specific clients. Shares are fractions in
// (0, 1); zero or anything outside that range means uncapped. Enforcement is
// work-conserving — a client is only passed over while at least one other
// client has runnable work — so quotas shape contention and can never idle
// workers or strand a job.
func (e *Engine) SetClientShares(def float64, per map[string]float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.shareDefault = def
	e.shareOverride = nil
	if len(per) > 0 {
		e.shareOverride = make(map[string]float64, len(per))
		for client, share := range per {
			e.shareOverride[client] = share
		}
	}
}

// shareLocked resolves a client's configured in-flight cost share cap
// (0 = uncapped). Callers must hold e.mu.
func (e *Engine) shareLocked(client string) float64 {
	share := e.shareDefault
	if s, ok := e.shareOverride[client]; ok {
		share = s
	}
	if share <= 0 || share >= 1 {
		return 0
	}
	return share
}

// inFlightCostLocked estimates the wall-clock cost of a job's running and
// leased tasks: count × observed EWMA ms/task, or the bare count while the
// kind is unobserved (the same cold-start fallback lessLoadedLocked uses).
// Callers must hold e.mu.
func (e *Engine) inFlightCostLocked(j *runJob) float64 {
	n := float64(j.inFlight + j.leased)
	if o := e.obs[j.costKey]; o != nil && o.n > 0 && o.msPerTask > 0 {
		return n * o.msPerTask
	}
	return n
}

// overQuotaLocked computes the set of clients currently holding more than
// their configured share of total in-flight cost — the clients take's first
// pass skips. It returns nil whenever enforcement cannot matter: no quota
// configured, nothing in flight, or fewer than two distinct clients active
// (a lone client over its share with nobody contending would only idle
// workers). If every client with runnable state is over — possible with
// small shares — the quota is likewise waived, keeping take work-conserving.
// Callers must hold e.mu.
func (e *Engine) overQuotaLocked() map[string]bool {
	if e.shareDefault <= 0 && len(e.shareOverride) == 0 {
		return nil
	}
	cost := make(map[string]float64)
	total := 0.0
	for _, j := range e.active {
		c := e.inFlightCostLocked(j)
		cost[j.client] += c
		total += c
	}
	if len(cost) < 2 || total <= 0 {
		return nil
	}
	var over map[string]bool
	for client, c := range cost {
		if share := e.shareLocked(client); share > 0 && c > share*total {
			if over == nil {
				over = make(map[string]bool)
			}
			over[client] = true
		}
	}
	if len(over) == len(cost) {
		return nil
	}
	return over
}

// orderTasks builds a job's initial deque: LPT order when the spec can size
// its tasks, submission (index) order otherwise. The sort is stable, so
// cost ties — including the all-equal costs of a uniform sweep — preserve
// index order exactly.
func orderTasks(spec Spec, n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sz, ok := spec.(Sizer)
	if !ok {
		return idx
	}
	costs := make([]float64, n)
	uniform := true
	for i := range costs {
		costs[i] = sz.TaskCost(i)
		if costs[i] != costs[0] {
			uniform = false
		}
	}
	if uniform {
		// All-equal costs — the common case (Func without a Cost hook, the
		// flat-within-a-sweep built-ins) — can only sort back to index
		// order; skip the O(n log n) shuffle a million-task job would pay.
		return idx
	}
	sort.SliceStable(idx, func(a, b int) bool { return costs[idx[a]] > costs[idx[b]] })
	return idx
}

// enqueue publishes a job to the dispatcher and tops up the worker pool.
// Workers are spawned on demand and exit when the engine drains, so an idle
// Engine holds no goroutines — construction stays free and nothing leaks.
func (e *Engine) enqueue(j *runJob) {
	e.mu.Lock()
	e.nextRun++
	j.runID = e.nextRun
	if j.wire != nil {
		if e.runs == nil {
			e.runs = make(map[uint64]*runJob)
		}
		e.runs[j.runID] = j
	}
	e.active = append(e.active, j)
	e.topUpLocked(len(j.pending))
	e.mu.Unlock()
}

// topUpLocked spawns workers until the pool is full or the given pending
// count is covered. Callers must hold e.mu. Both enqueue and the remote
// requeue path use it: a requeue can arrive after the pool fully retired,
// and the returned tasks must not strand.
func (e *Engine) topUpLocked(pending int) {
	for ; e.live < e.workers && pending > 0; pending-- {
		e.live++
		go e.worker()
	}
}

// worker is one persistent scheduling loop: take a task under the fair-share
// policy, execute it, repeat; exit when no job anywhere has pending work.
func (e *Engine) worker() {
	var last *runJob
	for {
		j, task, ok := e.take(&last)
		if !ok {
			return
		}
		e.execute(j, task)
	}
}

// take picks the next (job, task) under the engine's fair-share policy:
// among jobs with pending work, the least-loaded one wins, so concurrent
// jobs split the worker pool evenly instead of the first-submitted job
// monopolizing it. Load is the in-flight count — weighted by the observed
// per-task latency once *both* jobs being compared have cost samples, so a
// job of 100ms tasks and a job of 1ms tasks split wall-clock rather than
// worker slots; with either side unobserved the comparison stays the plain
// count, preserving cold-start behavior. Either way the load is divided by
// the job's priority weight, so a high-priority job tolerates
// proportionally more in-flight work before losing a comparison.
// Ties prefer the worker's previous
// job (cheap affinity), then round-robin from a rotating cursor so equal
// jobs alternate. A take from a different still-live job counts as a steal.
// Within the chosen job, tasks pop from the front of the LPT deque.
//
// Client quotas gate the scan: the first pass skips jobs whose client is
// over its in-flight cost share (overQuotaLocked), and only if that pass
// finds nothing runnable does a second pass consider everyone — so a quota
// reshapes contention but never idles a worker that has work available
// (work conservation), and an over-quota client's own jobs still drain.
//
// take also owns worker retirement: when nothing is pending anywhere it
// decrements the live count and reports false in the same critical section
// enqueue spawns under, so a job submitted while workers wind down always
// sees an accurate pool and tops it back up.
func (e *Engine) take(lastp **runJob) (*runJob, int, bool) {
	last := *lastp
	e.mu.Lock()
	defer e.mu.Unlock()
	over := e.overQuotaLocked()
	var best *runJob
	bestIdx := -1
	if n := len(e.active); n > 0 {
		start := e.rr % n
		for pass := 0; pass < 2 && best == nil; pass++ {
			if pass == 1 && len(over) == 0 {
				break // first pass already considered every job
			}
			for k := 0; k < n; k++ {
				idx := (start + k) % n
				j := e.active[idx]
				if len(j.pending) == 0 {
					continue
				}
				if pass == 0 && over[j.client] {
					continue
				}
				switch {
				case best == nil,
					e.lessLoadedLocked(j, best),
					!e.lessLoadedLocked(best, j) && j == last && best != last:
					best, bestIdx = j, idx
				}
			}
		}
	}
	if best == nil {
		e.live--
		return nil, 0, false
	}
	if last != nil && best != last && !last.removed {
		e.steals++
	}
	e.rr = bestIdx + 1
	task := best.pending[0]
	best.pending = best.pending[1:]
	best.inFlight++
	*lastp = best
	return best, task, true
}

// lessLoadedLocked reports whether a carries strictly less load than b.
// When both jobs' kinds have observed latency, load is predicted in-flight
// wall-clock (inFlight × EWMA ms/task); otherwise the plain in-flight count.
// Load is divided by the job's priority weight — a weight-2 job looks half
// as loaded as a weight-1 job at the same in-flight count, so it wins takes
// until it holds roughly twice the share; with every weight at the default
// 1.0 the comparison is exactly the historical unweighted one. Callers must
// hold e.mu.
func (e *Engine) lessLoadedLocked(a, b *runJob) bool {
	wa, wb := a.weight, b.weight
	if wa <= 0 {
		wa = 1
	}
	if wb <= 0 {
		wb = 1
	}
	oa, ob := e.obs[a.costKey], e.obs[b.costKey]
	if oa != nil && ob != nil && oa.n > 0 && ob.n > 0 && oa.msPerTask > 0 && ob.msPerTask > 0 {
		return float64(a.inFlight)*oa.msPerTask/wa < float64(b.inFlight)*ob.msPerTask/wb
	}
	return float64(a.inFlight)/wa < float64(b.inFlight)/wb
}

// execute runs one task and publishes its completion. Publication order is
// load-bearing: the progress callback fires before this worker's in-flight
// decrement, so a job can only be declared finished — and Run return — after
// every completed task's progress has been delivered.
func (e *Engine) execute(j *runJob, task int) {
	//goclint:allow nodeterm -- observed-cost EWMA: timing feeds dispatch, never results
	start := time.Now()
	out, err := runTask(j.ctx, j.spec, task, j.base.Fork(uint64(task)))
	elapsed := time.Since(start) //goclint:allow nodeterm -- same EWMA measurement

	// Encode for the ledger outside the locks — encoding is per-task work.
	// An encode failure only skips the ledger entry (the watermark stalls
	// and the range stays unpersisted/unstreamed); the job itself still
	// publishes and aggregates the in-memory value.
	var raw json.RawMessage
	if err == nil && j.onTask != nil {
		if b, encErr := j.coder.EncodeTaskResult(out); encErr == nil {
			raw = b
		}
	}

	published := false
	j.pmu.Lock()
	if err != nil {
		j.halted = true
		if j.firstErr == nil {
			j.firstErr = fmt.Errorf("engine: %s task %d: %w", j.spec.Kind(), task, err)
		}
	} else if !j.halted && !(j.doneTask != nil && j.doneTask[task]) {
		// The doneTask guard only bites on distributable jobs: a requeued
		// copy of a task whose original remote report already landed loses
		// the race here — first writer wins, and determinism makes both
		// writers byte-identical anyway.
		if j.doneTask != nil {
			j.doneTask[task] = true
		}
		published = true
		j.results[task] = out
		j.done++
		if j.onTask != nil && raw != nil {
			j.onTask(task, raw)
		}
		if j.onProgress != nil {
			// Snapshot queue depth inside the publication critical section,
			// so serialized callbacks carry consistent triples: Done only
			// rises and Queued only falls across them (pending never
			// refills). Acquiring e.mu under pmu is safe — no path locks
			// pmu while holding e.mu. inFlight still counts this task, so
			// exclude it: its work is done.
			e.mu.Lock()
			queued := len(j.pending)
			running := j.inFlight - 1
			e.mu.Unlock()
			j.onProgress(Progress{Done: j.done, Total: j.n, Queued: queued, Running: running})
		}
	}
	j.pmu.Unlock()

	e.mu.Lock()
	if err != nil {
		// The job is failing: drop its queue here, synchronously, so no
		// worker starts another of its doomed tasks while the cancellation
		// below propagates.
		j.pending = nil
	}
	j.inFlight--
	if published {
		e.completed++
		e.observeLocked(j, task, elapsed)
	}
	finished := e.finishIfIdleLocked(j)
	e.mu.Unlock()
	if err != nil {
		j.cancel()
	}
	if finished {
		close(j.finished)
	}
}

// haltJob is the cancellation path: suppress further publication, drop the
// pending queue and any outstanding leases, and finish the job if no task is
// in flight (in-flight tasks observe the canceled ctx and drain through
// execute as usual). Zeroing the leased count means cancellation never waits
// on a remote lease's deadline — late reports for a halted run find it gone
// and are discarded.
func (e *Engine) haltJob(j *runJob) {
	j.pmu.Lock()
	j.halted = true
	j.pmu.Unlock()
	e.mu.Lock()
	j.pending = nil
	j.leased = 0
	finished := e.finishIfIdleLocked(j)
	e.mu.Unlock()
	if finished {
		close(j.finished)
	}
}

// finishIfIdleLocked retires a drained job from the active list and the run
// table. It reports true exactly once per job — the caller that got true
// closes j.finished. Callers must hold e.mu.
func (e *Engine) finishIfIdleLocked(j *runJob) bool {
	if j.removed || len(j.pending) > 0 || j.inFlight > 0 || j.leased > 0 {
		return false
	}
	j.removed = true
	delete(e.runs, j.runID)
	for i, a := range e.active {
		if a == j {
			e.active = append(e.active[:i], e.active[i+1:]...)
			break
		}
	}
	return true
}
