package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// costWrap overlays arbitrary per-task costs onto any Spec, so property
// tests can skew the scheduling order of real sweeps without touching what
// their tasks compute.
type costWrap struct {
	Spec
	costs []float64
}

func (c costWrap) TaskCost(i int) float64 { return c.costs[i] }

// TestOrderTasksLPT pins the deque-building contract: Sizer costs sort the
// indices longest-first, ties (and the no-Sizer case) keep index order.
func TestOrderTasksLPT(t *testing.T) {
	spec := Func{
		Name: "sized",
		N:    5,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
		Cost: func(i int) float64 { return []float64{1, 9, 3, 9, 2}[i] },
	}
	if got, want := orderTasks(spec, 5), []int{1, 3, 2, 4, 0}; !reflect.DeepEqual(got, want) {
		t.Fatalf("LPT order = %v, want %v", got, want)
	}
	uniform := Func{Name: "uniform", N: 4, Task: spec.Task}
	if got, want := orderTasks(uniform, 4), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("uniform order = %v, want %v (FIFO)", got, want)
	}
	type bare struct{ Spec } // hides Func's TaskCost: no Sizer at all
	if got, want := orderTasks(bare{uniform}, 4), []int{0, 1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("unsized order = %v, want %v (FIFO)", got, want)
	}
}

// TestSchedulerDeterminismProperty is the tentpole's proof obligation: the
// same specs produce bit-identical results under randomized worker counts,
// randomized cost skews (which randomize the LPT dispatch order), and
// concurrent-job mixes sharing one engine. Determinism holds by
// construction — results land by task index and rng streams fork per index —
// and this test pins that no scheduler change can silently break it.
func TestSchedulerDeterminismProperty(t *testing.T) {
	specs := []Spec{
		LearnSweep{Gen: core.GenSpec{Miners: 5, Coins: 2}, Schedulers: []string{"random", "max-gain"}, Runs: 6},
		DesignSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Pairs: 5},
		EquilibriumSweep{Gen: core.GenSpec{Miners: 5, Coins: 2}, Games: 12},
		Func{
			Name: "mix",
			N:    20,
			Task: func(_ context.Context, i int, r *rng.Rand) (any, error) { return r.Uint64() ^ uint64(i), nil },
		},
	}
	// Reference: every spec alone on a single worker, FIFO order.
	refs := make([]any, len(specs))
	for i, spec := range specs {
		res, err := New(1).Run(context.Background(), spec, 23, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = res
	}
	r := rng.New(99)
	for trial := 0; trial < 4; trial++ {
		workers := 1 + r.Intn(8)
		eng := New(workers)
		// Randomize each spec's dispatch order with random task costs, and
		// run all specs concurrently so takes interleave across jobs.
		var wg sync.WaitGroup
		got := make([]any, len(specs))
		errs := make([]error, len(specs))
		for i, spec := range specs {
			costs := make([]float64, spec.Tasks())
			for c := range costs {
				costs[c] = r.Float64()
			}
			wg.Add(1)
			go func(i int, spec Spec) {
				defer wg.Done()
				got[i], errs[i] = eng.Run(context.Background(), costWrap{spec, costs}, 23, nil)
			}(i, spec)
		}
		wg.Wait()
		for i := range specs {
			if errs[i] != nil {
				t.Fatalf("trial %d (workers=%d) spec %d: %v", trial, workers, i, errs[i])
			}
			if !reflect.DeepEqual(got[i], refs[i]) {
				t.Fatalf("trial %d (workers=%d) spec %d: results differ from sequential reference\nref: %+v\ngot: %+v",
					trial, workers, i, refs[i], got[i])
			}
		}
	}
}

// TestFairShareNoStarvation: a long job submitted first must not block a
// short job submitted later — the dispatcher splits the worker pool, so the
// short job finishes while the long one is still mostly pending.
func TestFairShareNoStarvation(t *testing.T) {
	eng := New(2)
	const longN = 40
	var longDone atomic.Int64
	longStarted := make(chan struct{}, 1)
	long := Func{
		Name: "long",
		N:    longN,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			select {
			case longStarted <- struct{}{}:
			default:
			}
			time.Sleep(10 * time.Millisecond)
			return i, nil
		},
	}
	short := Func{
		Name: "short",
		N:    4,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			time.Sleep(time.Millisecond)
			return i, nil
		},
	}
	longErr := make(chan error, 1)
	go func() {
		_, err := eng.Run(context.Background(), long, 1, func(p Progress) { longDone.Store(int64(p.Done)) })
		longErr <- err
	}()
	<-longStarted
	if _, err := eng.Run(context.Background(), short, 1, nil); err != nil {
		t.Fatal(err)
	}
	// The short job is done; the long one must still be far from it. The
	// bound is deliberately loose (short needs ~2 slots of the pool, so well
	// under half the long job can have completed) — the failure mode it
	// guards against is FIFO feeding, where the short job would have waited
	// for all 40 long tasks and this reads longN.
	if got := longDone.Load(); got > longN/2 {
		t.Fatalf("long job completed %d/%d tasks before the short job finished — short job starved", got, longN)
	}
	if err := <-longErr; err != nil {
		t.Fatal(err)
	}
}

// TestStealAccounting: workers migrating to a second job while their first
// is still live are counted as steals, and completed-task accounting covers
// both jobs.
func TestStealAccounting(t *testing.T) {
	eng := New(2)
	a := Func{
		Name: "a",
		N:    4,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			time.Sleep(20 * time.Millisecond)
			return i, nil
		},
	}
	b := Func{
		Name: "b",
		N:    2,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
	}
	done := make(chan error, 2)
	go func() { _, err := eng.Run(context.Background(), a, 1, nil); done <- err }()
	// Give both workers time to sink into job a's first tasks, then submit
	// b: finishing workers must steal over to it while a is still live.
	time.Sleep(5 * time.Millisecond)
	go func() { _, err := eng.Run(context.Background(), b, 1, nil); done <- err }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Steals == 0 {
		t.Fatal("no steals counted across two interleaved jobs")
	}
	if st.CompletedTasks != 6 {
		t.Fatalf("completed tasks = %d, want 6", st.CompletedTasks)
	}
	if st.ActiveJobs != 0 || st.QueuedTasks != 0 || st.RunningTasks != 0 {
		t.Fatalf("idle engine reports live state: %+v", st)
	}
}

// TestProgressCounts: on one worker the scheduler snapshot is exact — every
// callback reports queued == total-done and running == 0, and the counters
// land at (done=n, queued=0, running=0).
func TestProgressCounts(t *testing.T) {
	const n = 9
	var calls int
	spec := Func{
		Name: "counted",
		N:    n,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
	}
	_, err := New(1).Run(context.Background(), spec, 1, func(p Progress) {
		calls++
		if p.Done != calls || p.Total != n || p.Running != 0 || p.Queued != n-p.Done {
			t.Errorf("callback %d: %+v", calls, p)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != n {
		t.Fatalf("progress callbacks = %d, want %d", calls, n)
	}
}

// TestRunZeroTasksPreCanceledContext is the regression test for the n==0
// early return preceding any ctx check: a zero-task spec under an
// already-canceled context must report the cancellation, not aggregate an
// empty result.
func TestRunZeroTasksPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := Func{
		Name: "empty",
		N:    0,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
	}
	res, err := New(2).Run(ctx, spec, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("canceled zero-task run produced a result: %v", res)
	}
	if !strings.Contains(err.Error(), "engine: empty:") {
		t.Fatalf("err = %q, want the engine: <kind>: wrapping", err)
	}
}

// TestTaskErrorPreferredOverConcurrentCancel is the regression test for the
// dropped-firstErr bug: when a task fails and the parent ctx is canceled
// concurrently, Run must surface the task error — the cause — not the bare
// ctx.Err() racing in behind it.
func TestTaskErrorPreferredOverConcurrentCancel(t *testing.T) {
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := Func{
		Name: "failing",
		N:    8,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			if i == 0 {
				cancel() // parent cancellation lands while the failure is in flight
				return nil, boom
			}
			return i, nil
		},
	}
	_, err := New(2).Run(ctx, spec, 1, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the task error, not the concurrent cancellation", err)
	}
	if !strings.Contains(err.Error(), "engine: failing task 0:") {
		t.Fatalf("err = %q, want task wrapping", err)
	}
}

// TestCancellationErrorWrapping: a cancellation with no real task error is
// reported with the same "engine: <kind>:" prefix task errors get, and a
// task surfacing the cancellation as its error does not masquerade as a
// task failure.
func TestCancellationErrorWrapping(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := Func{
		Name: "polite",
		N:    8,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			if i == 0 {
				cancel()
			}
			<-ctx.Done()
			return nil, ctx.Err() // the conventional polling-task exit
		},
	}
	_, err := New(2).Run(ctx, spec, 1, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "engine: polite:") {
		t.Fatalf("err = %q, want engine: <kind>: wrapping on the cancellation path", err)
	}
}

// TestProgressSuppressedAfterFailure is the regression test for SSE watchers
// observing a doomed job advance: once a task has failed, still-in-flight
// tasks completing must not publish progress. Tasks 1..3 deliberately return
// success after the cancellation hits them; under the old engine each such
// completion advanced the published counter.
func TestProgressSuppressedAfterFailure(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	boom := errors.New("boom")
	spec := Func{
		Name: "doomed",
		N:    4,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			if i == 0 {
				return nil, boom
			}
			<-ctx.Done()  // wait for the failure's cancellation…
			return i, nil // …then "complete" anyway
		},
	}
	job, err := m.Submit(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Watch(context.Background(), job.ID())
	if err != nil {
		t.Fatal(err)
	}
	var last Status
	for st := range ch {
		last = st
		if st.Progress.Done != 0 {
			t.Fatalf("watcher observed progress %d on a failing job", st.Progress.Done)
		}
	}
	if last.State != StateFailed || !strings.Contains(last.Error, "boom") {
		t.Fatalf("terminal status = %+v, want failed with the task error", last)
	}
}

// TestSweepTaskCosts sanity-checks the built-in Sizer implementations:
// costs are positive and ordered the way the priors claim.
func TestSweepTaskCosts(t *testing.T) {
	learn := LearnSweep{Gen: core.GenSpec{Miners: 6, Coins: 3}, Schedulers: []string{"random", "max-gain"}, Runs: 2}
	if rnd, greedy := learn.TaskCost(0), learn.TaskCost(2); rnd <= greedy {
		t.Fatalf("random-scheduler cost %v not above max-gain cost %v", rnd, greedy)
	}
	// The default-list prior indexes AllSchedulers positionally; guard the
	// assumption that position 1 is "random" so a reorder there cannot
	// silently misweight sweeps.
	defLearn := LearnSweep{Gen: core.GenSpec{Miners: 6, Coins: 3}, Runs: 3}
	if names := defLearn.schedulerNames(); names[1] != "random" {
		t.Fatalf("AllSchedulers()[1] = %q; update LearnSweep.TaskCost's default-list prior", names[1])
	}
	if rnd, rr := defLearn.TaskCost(3), defLearn.TaskCost(0); rnd <= rr {
		t.Fatalf("default-list random cost %v not above round-robin cost %v", rnd, rr)
	}
	small := EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 1}
	big := EquilibriumSweep{Gen: core.GenSpec{Miners: 8, Coins: 3}, Games: 1}
	if small.TaskCost(0) >= big.TaskCost(0) {
		t.Fatal("equilibrium enumeration cost not increasing in game size")
	}
	design := DesignSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Pairs: 1}
	if design.TaskCost(0) <= big.TaskCost(0) {
		t.Fatal("design cost (repeated enumeration) not above one enumeration of a moderate game")
	}
	replaySweep := ReplaySweep{Runs: 1}
	if replaySweep.TaskCost(0) <= 0 {
		t.Fatal("replay cost must be positive even for all-default params")
	}
	for _, s := range []Sizer{learn, small, design, replaySweep} {
		if c := s.TaskCost(0); c <= 0 {
			t.Fatalf("%T cost %v not positive", s, c)
		}
	}
}

// TestWorkersRetireWhenIdle: the dispatcher spawns workers on demand and
// holds none while idle, so engines are free to construct and abandon.
func TestWorkersRetireWhenIdle(t *testing.T) {
	eng := New(4)
	if live := func() int { eng.mu.Lock(); defer eng.mu.Unlock(); return eng.live }(); live != 0 {
		t.Fatalf("fresh engine has %d live workers", live)
	}
	spec := Func{
		Name: "quick",
		N:    8,
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) { return i, nil },
	}
	if _, err := eng.Run(context.Background(), spec, 1, nil); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		eng.mu.Lock()
		live := eng.live
		eng.mu.Unlock()
		if live == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still live on a drained engine", live)
		}
		time.Sleep(time.Millisecond)
	}
}
