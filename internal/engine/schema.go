package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Schema is a hand-written JSON Schema (a draft 2020-12 subset) describing
// the wire document one registered spec version accepts. Schemas serve two
// masters: GET /v2/specs renders them so clients can introspect and validate
// before submitting, and the server validates every submission against them
// before the decoder runs, turning shape mismatches into 422s with a precise
// JSON-pointer path instead of whatever error text encoding/json produces.
//
// The subset is deliberately the shape level only — types, known fields,
// required fields, array items — because that is exactly what the registered
// decoder enforces (DecodeJSON + DisallowUnknownFields). Semantic rules
// ("runs must be positive") stay in the spec's Validate, so a schema accepts
// precisely the documents its decoder accepts; the agreement is enforced by
// tests in schema_test.go.
type Schema struct {
	Title       string `json:"title,omitempty"`
	Description string `json:"description,omitempty"`
	// Type is one of "object", "array", "string", "integer", "number",
	// "boolean", "null"; empty accepts any value.
	Type       string             `json:"type,omitempty"`
	Properties map[string]*Schema `json:"properties,omitempty"`
	Required   []string           `json:"required,omitempty"`
	// AdditionalProperties false rejects unknown object keys — the schema
	// form of DecodeJSON's DisallowUnknownFields. nil (omitted) allows them.
	AdditionalProperties *bool   `json:"additionalProperties,omitempty"`
	Items                *Schema `json:"items,omitempty"`
	// Enum and Minimum are rendered for clients and enforced by Validate,
	// but the built-in sweep schemas leave them unset: encoding/json has no
	// value constraints, and a schema stricter than its decoder would 422
	// documents the decoder (and the spec's own Validate) are the authority
	// on.
	Enum    []any    `json:"enum,omitempty"`
	Minimum *float64 `json:"minimum,omitempty"`
	// Defs holds shared sub-schemas referenced by Ref ("#/$defs/name").
	// Only the root schema's Defs are consulted during validation; nested
	// Defs render but do not resolve, matching how the built-in result
	// schemas share their gen/game/task sub-documents from the root.
	Defs map[string]*Schema `json:"$defs,omitempty"`
	// Ref, when set, delegates validation to the named root $def; all
	// sibling keywords on the referencing schema are ignored (the pre-2019
	// $ref semantics, which is all the hand-written schemas need).
	Ref string `json:"$ref,omitempty"`
}

// SchemaError reports where a document diverges from its schema. Path is a
// JSON pointer (RFC 6901) into the spec document — "" is the root,
// "/gen/Miners" a nested field — which the server forwards verbatim in 422
// responses so clients can point at the offending field.
type SchemaError struct {
	Path string
	Msg  string
}

// Error implements error.
func (e *SchemaError) Error() string {
	if e.Path == "" {
		return "spec document: " + e.Msg
	}
	return fmt.Sprintf("spec document at %s: %s", e.Path, e.Msg)
}

// Validate checks raw against the schema. An empty document is always valid
// (it decodes to the spec's zero value; semantic validation rejects it later
// if the kind has required parameters). The returned error is always a
// *SchemaError.
func (s *Schema) Validate(raw json.RawMessage) error {
	if s == nil || len(raw) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return &SchemaError{Msg: "malformed JSON: " + err.Error()}
	}
	return s.validate(s, v, "", 0)
}

// ValidateDef checks raw against the named root $def — how the client SDK
// validates each streamed per-task result document against the result
// schema's "task" def without re-deriving the aggregate shape. A nil schema
// or a missing def accepts everything: a registration that carries no
// per-task shape simply opts out of streaming validation.
func (s *Schema) ValidateDef(name string, raw json.RawMessage) error {
	if s == nil || len(raw) == 0 {
		return nil
	}
	def, ok := s.Defs[name]
	if !ok {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return &SchemaError{Msg: "malformed JSON: " + err.Error()}
	}
	return def.validate(s, v, "", 0)
}

// maxRefDepth bounds $ref chains so a cyclic hand-written schema fails a
// validation loudly instead of hanging it.
const maxRefDepth = 32

func (s *Schema) validate(root *Schema, v any, path string, depth int) error {
	if s == nil {
		return nil
	}
	if s.Ref != "" {
		if depth >= maxRefDepth {
			return &SchemaError{Path: path, Msg: fmt.Sprintf("$ref chain deeper than %d (cycle?)", maxRefDepth)}
		}
		name, ok := strings.CutPrefix(s.Ref, "#/$defs/")
		if !ok {
			return &SchemaError{Path: path, Msg: fmt.Sprintf("unsupported $ref %q (want \"#/$defs/name\")", s.Ref)}
		}
		def, found := root.Defs[name]
		if !found {
			return &SchemaError{Path: path, Msg: fmt.Sprintf("$ref to undefined $def %q", name)}
		}
		return def.validate(root, v, path, depth+1)
	}
	// JSON null is valid against every schema: encoding/json treats null as
	// "leave the field at its zero value" for any Go type, and the schema
	// must not be stricter than the decoder it describes.
	if v == nil {
		return nil
	}
	if err := s.checkType(v, path); err != nil {
		return err
	}
	if len(s.Enum) > 0 {
		if err := s.checkEnum(v, path); err != nil {
			return err
		}
	}
	switch val := v.(type) {
	case map[string]any:
		for _, req := range s.Required {
			if _, ok := val[req]; !ok {
				return &SchemaError{Path: path, Msg: fmt.Sprintf("missing required field %q", req)}
			}
		}
		for key, elem := range val {
			sub, known := s.Properties[key]
			if !known {
				if s.AdditionalProperties != nil && !*s.AdditionalProperties {
					return &SchemaError{Path: path + "/" + escapePointer(key), Msg: "unknown field"}
				}
				continue
			}
			if err := sub.validate(root, elem, path+"/"+escapePointer(key), depth); err != nil {
				return err
			}
		}
	case []any:
		for i, elem := range val {
			if err := s.Items.validate(root, elem, path+"/"+strconv.Itoa(i), depth); err != nil {
				return err
			}
		}
	case json.Number:
		if s.Minimum != nil {
			if f, err := val.Float64(); err == nil && f < *s.Minimum {
				return &SchemaError{Path: path, Msg: fmt.Sprintf("%v is below minimum %v", val, *s.Minimum)}
			}
		}
	}
	return nil
}

func (s *Schema) checkType(v any, path string) error {
	if s.Type == "" {
		return nil
	}
	ok := false
	switch s.Type {
	case "object":
		_, ok = v.(map[string]any)
	case "array":
		_, ok = v.([]any)
	case "string":
		_, ok = v.(string)
	case "boolean":
		_, ok = v.(bool)
	case "number":
		_, ok = v.(json.Number)
	case "integer":
		// Mirror encoding/json exactly: an int field accepts any literal
		// strconv can parse as a (signed or unsigned) integer — "100" yes,
		// "1.5" and "1e2" no.
		if n, isNum := v.(json.Number); isNum {
			if _, err := strconv.ParseInt(n.String(), 10, 64); err == nil {
				ok = true
			} else if _, err := strconv.ParseUint(n.String(), 10, 64); err == nil {
				ok = true
			}
		}
	case "null":
		ok = v == nil
	default:
		return &SchemaError{Path: path, Msg: fmt.Sprintf("schema has unsupported type %q", s.Type)}
	}
	if !ok {
		return &SchemaError{Path: path, Msg: fmt.Sprintf("want %s, got %s", s.Type, jsonTypeName(v))}
	}
	return nil
}

func (s *Schema) checkEnum(v any, path string) error {
	want, err := json.Marshal(v)
	if err != nil {
		return &SchemaError{Path: path, Msg: "unencodable value"}
	}
	for _, allowed := range s.Enum {
		b, err := json.Marshal(allowed)
		if err == nil && bytes.Equal(b, want) {
			return nil
		}
	}
	return &SchemaError{Path: path, Msg: fmt.Sprintf("%s not in enum", want)}
}

func jsonTypeName(v any) string {
	switch v.(type) {
	case map[string]any:
		return "object"
	case []any:
		return "array"
	case string:
		return "string"
	case bool:
		return "boolean"
	case json.Number:
		return "number"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// escapePointer escapes one JSON-pointer reference token (RFC 6901: "~"
// becomes "~0", "/" becomes "~1").
func escapePointer(token string) string {
	token = strings.ReplaceAll(token, "~", "~0")
	return strings.ReplaceAll(token, "/", "~1")
}

// Schema literal helpers, so hand-written schemas read as declarations.

// SchemaObject returns an object schema over the given properties that
// rejects unknown fields — the shape DecodeJSON enforces.
func SchemaObject(props map[string]*Schema, required ...string) *Schema {
	f := false
	return &Schema{Type: "object", Properties: props, Required: required, AdditionalProperties: &f}
}

// SchemaOpenObject is SchemaObject without the unknown-field rejection, for
// sub-documents decoded by custom unmarshalers that tolerate extra keys.
func SchemaOpenObject(props map[string]*Schema, required ...string) *Schema {
	return &Schema{Type: "object", Properties: props, Required: required}
}

// SchemaArray returns an array schema with the given item schema.
func SchemaArray(items *Schema) *Schema { return &Schema{Type: "array", Items: items} }

// SchemaInt returns an integer schema with the given description.
func SchemaInt(desc string) *Schema { return &Schema{Type: "integer", Description: desc} }

// SchemaNumber returns a number schema with the given description.
func SchemaNumber(desc string) *Schema { return &Schema{Type: "number", Description: desc} }

// SchemaString returns a string schema with the given description.
func SchemaString(desc string) *Schema { return &Schema{Type: "string", Description: desc} }

// SchemaBool returns a boolean schema with the given description.
func SchemaBool(desc string) *Schema { return &Schema{Type: "boolean", Description: desc} }

// SchemaRef returns a schema that delegates to the named root $def.
func SchemaRef(name string) *Schema { return &Schema{Ref: "#/$defs/" + name} }
