package engine

import (
	"encoding/json"
	"errors"
	"testing"
)

// TestSchemaDecoderAgreement is the contract behind serving schemas from
// GET /v2/specs: for every built-in kind, the hand-written schema accepts a
// document if and only if the registered decoder does. A schema looser than
// its decoder would advertise documents that 400 on submit; one stricter
// would 422 documents the engine runs fine — either way clients validating
// against the catalog would be lied to.
func TestSchemaDecoderAgreement(t *testing.T) {
	cases := []struct {
		kind string
		doc  string
	}{
		// Valid shapes (semantic validity not required: Validate runs later).
		{"learn_sweep", `{}`},
		{"learn_sweep", `{"gen":{"Miners":8,"Coins":3},"runs":50}`},
		{"learn_sweep", `{"gen":{"Miners":8,"Coins":3},"schedulers":["random"],"runs":50,"max_steps":200}`},
		{"learn_sweep", `{"game_id":"g-abc","runs":1}`},
		{"learn_sweep", `{"runs":-5}`},
		{"learn_sweep", `{"runs":null,"gen":null}`},
		{"learn_sweep", `{"game":{"miners":[{"name":"a","power":3},{"name":"b","power":2}],"coins":[{"name":"btc"},{"name":"bch"}],"rewards":[5,4],"epsilon":0.000001},"runs":2}`},
		{"design_sweep", `{"gen":{"Miners":4,"Coins":2},"pairs":25,"max_tries":100}`},
		{"replay_sweep", `{"params":{"Miners":30,"Epochs":144,"SpikeHour":48},"runs":10}`},
		{"replay_sweep", `{"params":{"ZipfExponent":1.5,"SpikeFactor":2.5,"Activity":0.1,"Hysteresis":0.01,"Seed":3},"runs":1}`},
		{"equilibrium_sweep", `{"gen":{"Miners":5,"Coins":2},"games":500}`},
		// Invalid shapes: wrong types, unknown fields, fractional ints.
		{"learn_sweep", `{"runs":"fifty"}`},
		{"learn_sweep", `{"runs":1.5}`},
		{"learn_sweep", `{"runs":1e2}`},
		{"learn_sweep", `{"rnus":50}`},
		{"learn_sweep", `{"gen":{"Minres":8},"runs":5}`},
		{"learn_sweep", `{"gen":{"Miners":"eight"},"runs":5}`},
		{"learn_sweep", `{"schedulers":"random","runs":5}`},
		{"learn_sweep", `{"schedulers":[1,2],"runs":5}`},
		{"learn_sweep", `{"game":"not-an-object","runs":5}`},
		{"design_sweep", `{"pairs":{}}`},
		{"replay_sweep", `{"params":{"Epochs":1.5},"runs":1}`},
		{"replay_sweep", `{"params":[],"runs":1}`},
		{"equilibrium_sweep", `{"games":true}`},
	}
	for _, c := range cases {
		t.Run(c.kind+"/"+c.doc, func(t *testing.T) {
			schema, err := SpecSchema(c.kind)
			if err != nil {
				t.Fatal(err)
			}
			if schema == nil {
				t.Fatalf("built-in kind %s has no schema", c.kind)
			}
			_, err = decodeWithoutSchema(c.kind, json.RawMessage(c.doc))
			entryDecoded := err == nil
			schemaAccepted := schema.Validate(json.RawMessage(c.doc)) == nil
			if entryDecoded != schemaAccepted {
				t.Fatalf("decoder accepted=%v but schema accepted=%v for %s", entryDecoded, schemaAccepted, c.doc)
			}
		})
	}
}

// decodeWithoutSchema runs just the registered decoder, bypassing the schema
// gate ResolveEnvelope applies — the agreement test needs the two verdicts
// independently.
func decodeWithoutSchema(kind string, raw json.RawMessage) (Spec, error) {
	e, err := lookupSpec(kind)
	if err != nil {
		return nil, err
	}
	return e.decode(raw)
}

// TestSchemaErrorPaths: mismatches report precise JSON-pointer paths, which
// the server forwards in 422 bodies.
func TestSchemaErrorPaths(t *testing.T) {
	cases := []struct {
		kind, doc, path string
	}{
		{"learn_sweep", `{"runs":"fifty"}`, "/runs"},
		{"learn_sweep", `{"gen":{"Miners":"eight"}}`, "/gen/Miners"},
		{"learn_sweep", `{"schedulers":[true]}`, "/schedulers/0"},
		{"learn_sweep", `{"bogus":1}`, "/bogus"},
		{"replay_sweep", `{"params":{"Epochs":1.5}}`, "/params/Epochs"},
		{"learn_sweep", `[1,2]`, ""},
	}
	for _, c := range cases {
		schema, err := SpecSchema(c.kind)
		if err != nil {
			t.Fatal(err)
		}
		err = schema.Validate(json.RawMessage(c.doc))
		var se *SchemaError
		if !errors.As(err, &se) {
			t.Fatalf("%s %s: err = %v, want SchemaError", c.kind, c.doc, err)
		}
		if se.Path != c.path {
			t.Errorf("%s %s: path = %q, want %q", c.kind, c.doc, se.Path, c.path)
		}
	}
}

// TestSchemaValidateEdges: nil schema and empty/null documents are valid;
// pointer tokens escape RFC-6901 special characters; enum and minimum are
// enforced when present.
func TestSchemaValidateEdges(t *testing.T) {
	var nilSchema *Schema
	if err := nilSchema.Validate(json.RawMessage(`{"anything":1}`)); err != nil {
		t.Fatalf("nil schema rejected a document: %v", err)
	}
	s := SchemaObject(map[string]*Schema{"x": SchemaInt("")})
	if err := s.Validate(nil); err != nil {
		t.Fatalf("empty document rejected: %v", err)
	}
	if err := s.Validate(json.RawMessage(`null`)); err != nil {
		t.Fatalf("null document rejected: %v", err)
	}
	if err := s.Validate(json.RawMessage(`{"x":null}`)); err != nil {
		// encoding/json treats null as "keep the zero value" for every type.
		t.Fatalf("null field rejected: %v", err)
	}
	if err := s.Validate(json.RawMessage(`{"a/b~c":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	} else if se := err.(*SchemaError); se.Path != "/a~1b~0c" {
		t.Fatalf("pointer escaping: %q", se.Path)
	}
	if err := s.Validate(json.RawMessage(`not json`)); err == nil {
		t.Fatal("malformed JSON accepted")
	}

	min := 2.0
	bounded := &Schema{Type: "integer", Minimum: &min}
	if err := bounded.Validate(json.RawMessage(`1`)); err == nil {
		t.Fatal("below-minimum accepted")
	}
	if err := bounded.Validate(json.RawMessage(`2`)); err != nil {
		t.Fatalf("at-minimum rejected: %v", err)
	}
	enum := &Schema{Type: "string", Enum: []any{"a", "b"}}
	if err := enum.Validate(json.RawMessage(`"c"`)); err == nil {
		t.Fatal("non-enum value accepted")
	}
	if err := enum.Validate(json.RawMessage(`"b"`)); err != nil {
		t.Fatalf("enum value rejected: %v", err)
	}

	// Large uint64 seeds are integers (ParseInt fails, ParseUint succeeds) —
	// the decoder accepts them into uint64 fields.
	if err := SchemaInt("").Validate(json.RawMessage(`18446744073709551615`)); err != nil {
		t.Fatalf("max uint64 rejected: %v", err)
	}
}
