package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/stats"
)

// The built-in job specs. Each is a plain JSON-encodable struct so gocserve
// can accept it on the wire, and each implements Spec with pure per-task
// functions so results are worker-count independent.

// LearnSweep runs better-response learning Runs times per scheduler, on a
// fixed Game or on fresh random games drawn from Gen, and aggregates
// steps-to-equilibrium statistics per scheduler.
type LearnSweep struct {
	// Game, if non-nil, is the fixed game every run plays. It must not be
	// mutated while the job runs (Game is immutable by construction).
	Game *core.Game `json:"game,omitempty"`
	// GameID references a game registered with the serving layer (gocserve's
	// POST /v1/games). It is an unresolved reference: the serving layer must
	// call ResolveGames before the spec can run, which replaces GameID with
	// the resolved Game so cache keys see only the game's canonical form.
	GameID string `json:"game_id,omitempty"`
	// Gen draws a fresh random game per run when Game is nil.
	Gen core.GenSpec `json:"gen,omitempty"`
	// Schedulers names the schedulers to sweep; empty means all built-ins.
	Schedulers []string `json:"schedulers,omitempty"`
	// Runs is the number of learning runs per scheduler.
	Runs int `json:"runs"`
	// MaxSteps caps each run (0 = learning's default).
	MaxSteps int `json:"max_steps,omitempty"`
}

// SchedulerSummary is the aggregate over one scheduler's runs.
type SchedulerSummary struct {
	Scheduler string        `json:"scheduler"`
	Runs      int           `json:"runs"`
	Converged int           `json:"converged"`
	Steps     stats.Summary `json:"steps"`
}

// LearnSweepResult is the aggregated result of a LearnSweep.
type LearnSweepResult struct {
	Schedulers []SchedulerSummary `json:"schedulers"`
	TotalRuns  int                `json:"total_runs"`
}

func (s LearnSweep) schedulerNames() []string {
	if len(s.Schedulers) > 0 {
		return s.Schedulers
	}
	var names []string
	for _, sched := range learning.AllSchedulers() {
		names = append(names, sched.Name())
	}
	return names
}

// Kind implements Spec.
func (s LearnSweep) Kind() string { return "learn_sweep" }

// Tasks implements Spec: one task per (scheduler, run) pair. The product
// saturates past MaxTasksPerJob instead of overflowing, so an absurd Runs
// is rejected by the engine's cap rather than wrapping to a small (or zero)
// task count.
func (s LearnSweep) Tasks() int {
	n := len(s.schedulerNames())
	if n <= 0 || s.Runs <= 0 {
		return 0
	}
	if s.Runs > MaxTasksPerJob/n {
		return MaxTasksPerJob + 1
	}
	return n * s.Runs
}

// ResolveGames implements GameRefSpec: a GameID reference is swapped for
// the game itself, and the generator spec is cleared (a fixed game overrides
// it), so the resolved spec is self-contained and canonical — two envelopes
// naming the same game by ID or by value produce identical cache keys.
func (s LearnSweep) ResolveGames(resolve GameResolver) (Spec, error) {
	if s.GameID == "" {
		return s, nil
	}
	if resolve == nil {
		return nil, fmt.Errorf("spec references game %q but no game resolver is available", s.GameID)
	}
	g, err := resolve(s.GameID)
	if err != nil {
		return nil, err
	}
	s.Game = g
	s.GameID = ""
	s.Gen = core.GenSpec{}
	return s, nil
}

// Validate implements Validator.
func (s LearnSweep) Validate() error {
	if s.GameID != "" {
		// An unresolved reference reaching the engine is a serving-layer bug;
		// running it would silently sweep random games instead of the named one.
		return fmt.Errorf("unresolved game reference %q (ResolveGames was not called)", s.GameID)
	}
	if s.Runs <= 0 {
		return errors.New("runs must be positive")
	}
	if s.Game == nil && (s.Gen.Miners <= 0 || s.Gen.Coins <= 0) {
		return errors.New("need a game or a generator spec")
	}
	for _, name := range s.schedulerNames() {
		if _, err := learning.SchedulerByName(name); err != nil {
			return err
		}
	}
	return nil
}

// learnTaskResult is LearnSweep's per-task wire value. Fields are exported
// (with stable JSON names) because distributable task results cross the
// gocworker wire through the TaskCoder round-trip; both int and bool
// round-trip exactly, so a remote task is byte-identical to a local one.
type learnTaskResult struct {
	Steps     int  `json:"steps"`
	Converged bool `json:"converged"`
}

// schedulerForTask resolves the (fresh, per-run) scheduler instance for
// task i with a single AllSchedulers construction; schedulers are stateful,
// so a new instance per task is required, but rebuilding the full name list
// twice per task is not.
func (s LearnSweep) schedulerForTask(i int) (learning.Scheduler, error) {
	idx := i / s.Runs
	if len(s.Schedulers) > 0 {
		return learning.SchedulerByName(s.Schedulers[idx])
	}
	return learning.AllSchedulers()[idx], nil
}

// TaskCost implements Sizer: a coarse relative prior — proportional to the
// game's miner×coin dimensions, doubled for the blind "random" scheduler,
// whose walks take more steps to converge than the gain-guided ones (the E8
// series measures exactly this spread). Only the ordering matters: a wrong
// estimate costs tail latency, never correctness.
func (s LearnSweep) TaskCost(i int) float64 {
	m, c := s.Gen.Miners, s.Gen.Coins
	if s.Game != nil {
		m, c = s.Game.NumMiners(), s.Game.NumCoins()
	}
	cost := float64(m * c)
	if cost <= 0 {
		cost = 1
	}
	// Resolve task i's scheduler without rebuilding the full default list
	// per call: TaskCost runs once per task at enqueue, and a sweep can fan
	// out to a million tasks.
	if s.Runs > 0 {
		idx := i / s.Runs
		switch {
		case len(s.Schedulers) > 0:
			if idx < len(s.Schedulers) && s.Schedulers[idx] == "random" {
				cost *= 2
			}
		case idx == 1: // AllSchedulers order: round-robin, random, …
			cost *= 2
		}
	}
	return cost
}

// RunTask implements Spec.
func (s LearnSweep) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sched, err := s.schedulerForTask(i)
	if err != nil {
		return nil, err
	}
	g := s.Game
	if g == nil {
		if g, err = core.RandomGame(r, s.Gen); err != nil {
			return nil, err
		}
	}
	res, err := learning.Run(g, core.RandomConfig(r, g), sched, r.Split(), learning.Options{MaxSteps: s.MaxSteps})
	if err != nil {
		return nil, err
	}
	return learnTaskResult{Steps: res.Steps, Converged: res.Converged && g.IsEquilibrium(res.Final)}, nil
}

// Aggregate implements Spec.
func (s LearnSweep) Aggregate(results []any) (any, error) {
	names := s.schedulerNames()
	out := LearnSweepResult{TotalRuns: len(results)}
	for si, name := range names {
		sum := SchedulerSummary{Scheduler: name, Runs: s.Runs}
		var steps []float64
		for run := 0; run < s.Runs; run++ {
			tr := results[si*s.Runs+run].(learnTaskResult)
			steps = append(steps, float64(tr.Steps))
			if tr.Converged {
				sum.Converged++
			}
		}
		sum.Steps = stats.Summarize(steps)
		out.Schedulers = append(out.Schedulers, sum)
	}
	return out, nil
}

// DesignSweep runs the Section-5 reward-design mechanism on random games:
// each task draws strictly-descending games from Gen until one has at least
// two equilibria, picks a random ordered equilibrium pair (s0, sf), and runs
// Algorithm 2.
type DesignSweep struct {
	Gen core.GenSpec `json:"gen"`
	// Pairs is the number of design runs.
	Pairs int `json:"pairs"`
	// MaxTries bounds the game search per task (default 500).
	MaxTries int `json:"max_tries,omitempty"`
}

// DesignSweepResult aggregates a DesignSweep.
type DesignSweepResult struct {
	Pairs   int           `json:"pairs"`
	Reached int           `json:"reached"`
	Skipped int           `json:"skipped"` // tasks that found no usable game
	Cost    stats.Summary `json:"cost"`
	Steps   stats.Summary `json:"steps"`
	// Errors counts game draws discarded because generation, enumeration,
	// or designer construction errored (as opposed to games that were
	// merely unusable); LastError samples one such error so a sweep whose
	// tasks all skipped for the same systematic reason is diagnosable.
	Errors    int    `json:"errors,omitempty"`
	LastError string `json:"last_error,omitempty"`
}

// Kind implements Spec.
func (s DesignSweep) Kind() string { return "design_sweep" }

// Tasks implements Spec.
func (s DesignSweep) Tasks() int { return s.Pairs }

// TaskCost implements Sizer. Each task repeatedly enumerates equilibria of
// drawn games (up to MaxTries draws), and enumeration is exponential in game
// size, so the estimate is draws × enumeration cost. Every task of one sweep
// shares it — the true per-pair spread comes from random draws no prior can
// see — so dispatch within a sweep stays in index order (the stable sort)
// and the value is today a published size signal, not an ordering one: it
// feeds the ROADMAP follow-ups (cost-weighted fair share, observed-latency
// feedback) rather than changing current scheduling.
func (s DesignSweep) TaskCost(int) float64 {
	tries := s.MaxTries
	if tries <= 0 {
		tries = 500
	}
	return float64(tries) * enumCost(s.Gen)
}

// enumCost estimates the cost of enumerating one random game's equilibria:
// the configuration space is coins^miners.
func enumCost(gen core.GenSpec) float64 {
	if gen.Miners <= 0 || gen.Coins <= 0 {
		return 1
	}
	return math.Pow(float64(gen.Coins), float64(gen.Miners))
}

// Validate implements Validator.
func (s DesignSweep) Validate() error {
	if s.Pairs <= 0 {
		return errors.New("pairs must be positive")
	}
	if s.Gen.Miners <= 0 || s.Gen.Coins <= 0 {
		return errors.New("need a generator spec")
	}
	return nil
}

// designTaskResult is DesignSweep's per-task wire value; exported fields for
// the TaskCoder round-trip (see learnTaskResult). The float64 fields are
// safe to distribute: Go's JSON encoder emits shortest-round-trip decimals,
// so Unmarshal restores the identical bits.
type designTaskResult struct {
	Skipped bool    `json:"skipped,omitempty"`
	Reached bool    `json:"reached,omitempty"`
	Cost    float64 `json:"cost"`
	Steps   float64 `json:"steps"`
	Errs    int     `json:"errs,omitempty"`
	LastErr string  `json:"last_err,omitempty"`
}

// RunTask implements Spec. Draw errors (generation, enumeration, designer
// construction) are counted rather than aborting the task — many are
// expected transients of random generation — but they are surfaced in the
// aggregate so a systematically misconfigured sweep is not silently
// indistinguishable from "no usable games were drawn".
func (s DesignSweep) RunTask(ctx context.Context, _ int, r *rng.Rand) (any, error) {
	tries := s.MaxTries
	if tries <= 0 {
		tries = 500
	}
	var tr designTaskResult
	record := func(err error) {
		tr.Errs++
		tr.LastErr = err.Error()
	}
	for try := 0; try < tries; try++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, err := core.RandomGame(r, s.Gen)
		if err != nil {
			record(err)
			continue
		}
		if !strictlyDescending(g) {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil {
			record(err)
			continue
		}
		if len(eqs) < 2 {
			continue
		}
		i := r.Intn(len(eqs))
		j := r.Intn(len(eqs) - 1)
		if j >= i {
			j++
		}
		s0, sf := eqs[i], eqs[j]
		d, err := design.NewDesigner(g, design.Options{})
		if err != nil {
			record(err)
			continue
		}
		res, err := d.Run(s0, sf, r.Split())
		if err != nil {
			return nil, err
		}
		tr.Reached = res.Final.Equal(sf)
		tr.Cost = res.TotalCost
		tr.Steps = float64(res.TotalSteps)
		return tr, nil
	}
	tr.Skipped = true
	return tr, nil
}

// Aggregate implements Spec.
func (s DesignSweep) Aggregate(results []any) (any, error) {
	out := DesignSweepResult{Pairs: len(results)}
	var costs, steps []float64
	for _, raw := range results {
		tr := raw.(designTaskResult)
		out.Errors += tr.Errs
		if tr.LastErr != "" {
			out.LastError = tr.LastErr
		}
		if tr.Skipped {
			out.Skipped++
			continue
		}
		if tr.Reached {
			out.Reached++
		}
		costs = append(costs, tr.Cost)
		steps = append(steps, tr.Steps)
	}
	out.Cost = stats.Summarize(costs)
	out.Steps = stats.Summarize(steps)
	return out, nil
}

func strictlyDescending(g *core.Game) bool {
	for p := 0; p+1 < g.NumMiners(); p++ {
		if !(g.Power(p) > g.Power(p+1)) {
			return false
		}
	}
	return true
}

// ReplaySweep replays the market-simulator scenario Runs times with derived
// seeds and aggregates the migration outcomes.
type ReplaySweep struct {
	Params replay.ScenarioParams `json:"params"`
	Runs   int                   `json:"runs"`
}

// ReplaySweepResult aggregates a ReplaySweep.
type ReplaySweepResult struct {
	Runs     int           `json:"runs"`
	PreSpike stats.Summary `json:"pre_spike_share"`
	Peak     stats.Summary `json:"peak_share"`
	Final    stats.Summary `json:"final_share"`
	// Migrated counts runs whose peak share exceeded twice the pre-spike
	// share — the Figure-1 shape.
	Migrated int `json:"migrated"`
}

// Kind implements Spec.
func (s ReplaySweep) Kind() string { return "replay_sweep" }

// Tasks implements Spec.
func (s ReplaySweep) Tasks() int { return s.Runs }

// TaskCost implements Sizer: every run replays the same scenario, so cost is
// flat within a sweep — fleet size × simulated epochs, the knobs the replay
// loop scales with. Like DesignSweep's, a size signal, not a reordering.
func (s ReplaySweep) TaskCost(int) float64 {
	cost := float64(s.Params.Miners) * float64(s.Params.Epochs)
	if cost <= 0 {
		return 1
	}
	return cost
}

// Validate implements Validator.
func (s ReplaySweep) Validate() error {
	if s.Runs <= 0 {
		return errors.New("runs must be positive")
	}
	if s.Params.Seed != 0 {
		// Per-run seeds derive from the job seed; a caller setting the inner
		// seed expects it to matter, so rejecting beats silently dropping it.
		return errors.New("replay params.seed is ignored by sweeps: set the job-level seed field instead")
	}
	// ScenarioParams treats zero as "use default" but never guards against
	// negatives (e.g. Miners=-1 would panic allocating the agent fleet).
	p := s.Params
	if p.Miners < 0 || p.Epochs < 0 || p.SpikeHour < 0 ||
		p.ZipfExponent < 0 || p.SpikeFactor < 0 || p.Activity < 0 || p.Hysteresis < 0 {
		return errors.New("replay params must be non-negative")
	}
	return nil
}

// RunTask implements Spec.
func (s ReplaySweep) RunTask(ctx context.Context, _ int, r *rng.Rand) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := s.Params
	p.Seed = r.Uint64()
	sc, err := replay.New(p)
	if err != nil {
		return nil, err
	}
	// Step epoch by epoch so cancellation can interrupt a long replay.
	for e := 0; e < sc.Params.Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sc.Sim.Run(1)
	}
	return sc.Outcome(), nil
}

// Aggregate implements Spec.
func (s ReplaySweep) Aggregate(results []any) (any, error) {
	out := ReplaySweepResult{Runs: len(results)}
	var pre, peak, final []float64
	for _, raw := range results {
		o := raw.(replay.Outcome)
		pre = append(pre, o.PreSpikeBCHShare)
		peak = append(peak, o.PeakBCHShare)
		final = append(final, o.FinalBCHShare)
		if o.PeakBCHShare > 2*o.PreSpikeBCHShare {
			out.Migrated++
		}
	}
	out.PreSpike = stats.Summarize(pre)
	out.Peak = stats.Summarize(peak)
	out.Final = stats.Summarize(final)
	return out, nil
}

// EquilibriumSweep enumerates the pure equilibria of Games random games
// drawn from Gen and aggregates the equilibrium-count distribution.
type EquilibriumSweep struct {
	Gen   core.GenSpec `json:"gen"`
	Games int          `json:"games"`
}

// EquilibriumSweepResult aggregates an EquilibriumSweep.
type EquilibriumSweepResult struct {
	Games int `json:"games"`
	// Multiple counts games with at least two pure equilibria (the games a
	// Section-5 manipulator can act on).
	Multiple int           `json:"multiple"`
	Count    stats.Summary `json:"equilibria_per_game"`
}

// Kind implements Spec.
func (s EquilibriumSweep) Kind() string { return "equilibrium_sweep" }

// Tasks implements Spec.
func (s EquilibriumSweep) Tasks() int { return s.Games }

// TaskCost implements Sizer: one enumeration per task, exponential in game
// size (see enumCost). Flat within a sweep — a size signal for cross-job
// policies, not a reordering (see DesignSweep.TaskCost).
func (s EquilibriumSweep) TaskCost(int) float64 { return enumCost(s.Gen) }

// Validate implements Validator.
func (s EquilibriumSweep) Validate() error {
	if s.Games <= 0 {
		return errors.New("games must be positive")
	}
	if s.Gen.Miners <= 0 || s.Gen.Coins <= 0 {
		return errors.New("need a generator spec")
	}
	return nil
}

// RunTask implements Spec.
func (s EquilibriumSweep) RunTask(ctx context.Context, _ int, r *rng.Rand) (any, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g, err := core.RandomGame(r, s.Gen)
	if err != nil {
		return nil, err
	}
	eqs, err := equilibria.Enumerate(g)
	if err != nil {
		return nil, err
	}
	return len(eqs), nil
}

// Aggregate implements Spec.
func (s EquilibriumSweep) Aggregate(results []any) (any, error) {
	out := EquilibriumSweepResult{Games: len(results)}
	var counts []float64
	for _, raw := range results {
		n := raw.(int)
		counts = append(counts, float64(n))
		if n >= 2 {
			out.Multiple++
		}
	}
	out.Count = stats.Summarize(counts)
	return out, nil
}

// Task-result codecs: every built-in sweep is distributable. Decode must
// revive the exact concrete type Aggregate asserts — learnTaskResult,
// designTaskResult, replay.Outcome, int — because remotely computed results
// flow into the same Aggregate call as local ones.

// EncodeTaskResult implements TaskCoder.
func (s LearnSweep) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

// DecodeTaskResult implements TaskCoder.
func (s LearnSweep) DecodeTaskResult(raw json.RawMessage) (any, error) {
	return decodeTaskAs[learnTaskResult](raw)
}

// EncodeTaskResult implements TaskCoder.
func (s DesignSweep) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

// DecodeTaskResult implements TaskCoder.
func (s DesignSweep) DecodeTaskResult(raw json.RawMessage) (any, error) {
	return decodeTaskAs[designTaskResult](raw)
}

// EncodeTaskResult implements TaskCoder.
func (s ReplaySweep) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

// DecodeTaskResult implements TaskCoder.
func (s ReplaySweep) DecodeTaskResult(raw json.RawMessage) (any, error) {
	return decodeTaskAs[replay.Outcome](raw)
}

// EncodeTaskResult implements TaskCoder.
func (s EquilibriumSweep) EncodeTaskResult(res any) (json.RawMessage, error) {
	return json.Marshal(res)
}

// DecodeTaskResult implements TaskCoder.
func (s EquilibriumSweep) DecodeTaskResult(raw json.RawMessage) (any, error) {
	return decodeTaskAs[int](raw)
}
