package engine

// Hand-written wire schemas for the built-in sweep specs, registered
// alongside their decoders in registry.go's init. Each schema describes
// exactly the JSON shape its DecodeJSON decoder accepts — object fields and
// types, unknown-field rejection — and nothing more: semantic constraints
// ("runs must be positive") belong to the spec's Validate, so the schema
// never 422s a document the decoder would take. schema_test.go enforces the
// agreement case by case.

// genSpecSchema describes core.GenSpec (no json tags: Go field names).
func genSpecSchema() *Schema {
	return SchemaObject(map[string]*Schema{
		"Miners":    SchemaInt("number of miners to generate"),
		"Coins":     SchemaInt("number of coins to generate"),
		"PowerZipf": SchemaNumber("Zipf exponent for mining powers; 0 draws uniformly"),
		"PowerLo":   SchemaNumber("power range low end (default 1)"),
		"PowerHi":   SchemaNumber("power range high end (default 100)"),
		"RewardLo":  SchemaNumber("reward range low end (default 1)"),
		"RewardHi":  SchemaNumber("reward range high end (default 100)"),
	})
}

// gameSchema describes core.Game's wire form. The game document is decoded
// by core.Game's own UnmarshalJSON (plain json.Unmarshal inside, which
// tolerates unknown keys — DisallowUnknownFields does not reach through a
// custom unmarshaler), so the object is open; the inner miner/coin entries
// are open for the same reason.
func gameSchema() *Schema {
	return SchemaOpenObject(map[string]*Schema{
		"miners": SchemaArray(SchemaOpenObject(map[string]*Schema{
			"name":  SchemaString("miner name"),
			"power": SchemaNumber("mining power"),
		})),
		"coins": SchemaArray(SchemaOpenObject(map[string]*Schema{
			"name": SchemaString("coin name"),
		})),
		"rewards":  SchemaArray(SchemaNumber("per-coin reward")),
		"epsilon":  SchemaNumber("better-response improvement threshold"),
		"eligible": SchemaArray(SchemaArray(SchemaBool("miner may mine coin"))),
	})
}

// scenarioParamsSchema describes replay.ScenarioParams (no json tags).
func scenarioParamsSchema() *Schema {
	return SchemaObject(map[string]*Schema{
		"Miners":       SchemaInt("fleet size (default 200)"),
		"ZipfExponent": SchemaNumber("hashrate concentration (default 1.1)"),
		"Epochs":       SchemaInt("simulation length in hours (default 2880)"),
		"SpikeHour":    SchemaInt("hour the BCH rate spike begins (default 1200)"),
		"SpikeFactor":  SchemaNumber("peak BCH rate relative to baseline (default 3.2)"),
		"Activity":     SchemaNumber("per-epoch re-evaluation probability (default 0.15)"),
		"Hysteresis":   SchemaNumber("relative gain required to switch (default 0.02)"),
		"Seed":         SchemaInt("must be 0 in sweeps: per-run seeds derive from the job seed"),
	})
}

func learnSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"game":       gameSchema(),
		"game_id":    SchemaString("reference to a game registered via POST /v1/games"),
		"gen":        genSpecSchema(),
		"schedulers": SchemaArray(SchemaString("scheduler name")),
		"runs":       SchemaInt("learning runs per scheduler"),
		"max_steps":  SchemaInt("per-run step cap (0 = learning default)"),
	})
	s.Title = "learn_sweep"
	s.Description = "Better-response learning sweep: Runs runs per scheduler on a fixed or generated game, aggregating steps-to-equilibrium statistics."
	return s
}

func designSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"gen":       genSpecSchema(),
		"pairs":     SchemaInt("number of design runs"),
		"max_tries": SchemaInt("game-search bound per task (default 500)"),
	})
	s.Title = "design_sweep"
	s.Description = "Section-5 reward-design sweep: Algorithm 2 between random equilibrium pairs on random games."
	return s
}

func replaySweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"params": scenarioParamsSchema(),
		"runs":   SchemaInt("number of scenario replays"),
	})
	s.Title = "replay_sweep"
	s.Description = "Market-simulator replay sweep: the Figure-1 BTC/BCH scenario across derived seeds, aggregating migration outcomes."
	return s
}

func equilibriumSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"gen":   genSpecSchema(),
		"games": SchemaInt("number of random games to enumerate"),
	})
	s.Title = "equilibrium_sweep"
	s.Description = "Equilibrium census: enumerate pure equilibria of random games, aggregating the count distribution."
	return s
}
