package engine

// Hand-written wire schemas for the built-in sweep specs, registered
// alongside their decoders in registry.go's init. Each schema describes
// exactly the JSON shape its DecodeJSON decoder accepts — object fields and
// types, unknown-field rejection — and nothing more: semantic constraints
// ("runs must be positive") belong to the spec's Validate, so the schema
// never 422s a document the decoder would take. schema_test.go enforces the
// agreement case by case.

// Shared $defs are package-level singletons: every kind that references
// "#/$defs/gen" (and friends) points its Defs map at the SAME *Schema
// instance, so the catalog serves one canonical definition of each shared
// sub-document instead of per-kind copies that could silently drift apart.
// The per-kind "task" documents stay kind-local — they genuinely differ.
var (
	genDef     = genSpecSchema()
	gameDef    = gameSchema()
	summaryDef = summarySchema()
)

// sharedDefs builds a Defs map wiring the named shared singletons in.
// Callers may add kind-local entries (like "task") to the returned map.
func sharedDefs(names ...string) map[string]*Schema {
	out := make(map[string]*Schema, len(names)+1)
	for _, n := range names {
		switch n {
		case "gen":
			out[n] = genDef
		case "game":
			out[n] = gameDef
		case "summary":
			out[n] = summaryDef
		default:
			panic("specs_schema: unknown shared $def " + n)
		}
	}
	return out
}

// genSpecSchema describes core.GenSpec (no json tags: Go field names).
func genSpecSchema() *Schema {
	return SchemaObject(map[string]*Schema{
		"Miners":    SchemaInt("number of miners to generate"),
		"Coins":     SchemaInt("number of coins to generate"),
		"PowerZipf": SchemaNumber("Zipf exponent for mining powers; 0 draws uniformly"),
		"PowerLo":   SchemaNumber("power range low end (default 1)"),
		"PowerHi":   SchemaNumber("power range high end (default 100)"),
		"RewardLo":  SchemaNumber("reward range low end (default 1)"),
		"RewardHi":  SchemaNumber("reward range high end (default 100)"),
	})
}

// gameSchema describes core.Game's wire form. The game document is decoded
// by core.Game's own UnmarshalJSON (plain json.Unmarshal inside, which
// tolerates unknown keys — DisallowUnknownFields does not reach through a
// custom unmarshaler), so the object is open; the inner miner/coin entries
// are open for the same reason.
func gameSchema() *Schema {
	return SchemaOpenObject(map[string]*Schema{
		"miners": SchemaArray(SchemaOpenObject(map[string]*Schema{
			"name":  SchemaString("miner name"),
			"power": SchemaNumber("mining power"),
		})),
		"coins": SchemaArray(SchemaOpenObject(map[string]*Schema{
			"name": SchemaString("coin name"),
		})),
		"rewards":  SchemaArray(SchemaNumber("per-coin reward")),
		"epsilon":  SchemaNumber("better-response improvement threshold"),
		"eligible": SchemaArray(SchemaArray(SchemaBool("miner may mine coin"))),
	})
}

// scenarioParamsSchema describes replay.ScenarioParams (no json tags).
func scenarioParamsSchema() *Schema {
	return SchemaObject(map[string]*Schema{
		"Miners":       SchemaInt("fleet size (default 200)"),
		"ZipfExponent": SchemaNumber("hashrate concentration (default 1.1)"),
		"Epochs":       SchemaInt("simulation length in hours (default 2880)"),
		"SpikeHour":    SchemaInt("hour the BCH rate spike begins (default 1200)"),
		"SpikeFactor":  SchemaNumber("peak BCH rate relative to baseline (default 3.2)"),
		"Activity":     SchemaNumber("per-epoch re-evaluation probability (default 0.15)"),
		"Hysteresis":   SchemaNumber("relative gain required to switch (default 0.02)"),
		"Seed":         SchemaInt("must be 0 in sweeps: per-run seeds derive from the job seed"),
	})
}

func learnSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"game":       SchemaRef("game"),
		"game_id":    SchemaString("reference to a game registered via POST /v1/games"),
		"gen":        SchemaRef("gen"),
		"schedulers": SchemaArray(SchemaString("scheduler name")),
		"runs":       SchemaInt("learning runs per scheduler"),
		"max_steps":  SchemaInt("per-run step cap (0 = learning default)"),
	})
	s.Title = "learn_sweep"
	s.Description = "Better-response learning sweep: Runs runs per scheduler on a fixed or generated game, aggregating steps-to-equilibrium statistics."
	s.Defs = sharedDefs("gen", "game")
	return s
}

func designSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"gen":       SchemaRef("gen"),
		"pairs":     SchemaInt("number of design runs"),
		"max_tries": SchemaInt("game-search bound per task (default 500)"),
	})
	s.Title = "design_sweep"
	s.Description = "Section-5 reward-design sweep: Algorithm 2 between random equilibrium pairs on random games."
	s.Defs = sharedDefs("gen")
	return s
}

func replaySweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"params": scenarioParamsSchema(),
		"runs":   SchemaInt("number of scenario replays"),
	})
	s.Title = "replay_sweep"
	s.Description = "Market-simulator replay sweep: the Figure-1 BTC/BCH scenario across derived seeds, aggregating migration outcomes."
	return s
}

func equilibriumSweepSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"gen":   SchemaRef("gen"),
		"games": SchemaInt("number of random games to enumerate"),
	})
	s.Title = "equilibrium_sweep"
	s.Description = "Equilibrium census: enumerate pure equilibria of random games, aggregating the count distribution."
	s.Defs = sharedDefs("gen")
	return s
}

// Result schemas, carried by RegisterResultCodec and served from the catalog
// as CatalogEntry.ResultSchema. Each describes the AGGREGATE result document
// GET /result serves; its $defs carry two shared sub-documents by
// convention: "task" is the per-task document the result data plane streams
// (range GET bodies, StreamResult items, store range records), and "summary"
// is the stats.Summary block the sweeps aggregate into. Aggregate objects
// are closed — json.Marshal of a known struct emits exactly these fields —
// while task documents are open, because decodeTaskAs uses plain Unmarshal
// (tolerant of unknown keys) and a schema must never be stricter than its
// decoder.

// summarySchema describes stats.Summary (no json tags: Go field names).
func summarySchema() *Schema {
	return SchemaObject(map[string]*Schema{
		"N":      SchemaInt("sample count"),
		"Mean":   SchemaNumber("mean"),
		"Std":    SchemaNumber("sample standard deviation (n-1 denominator)"),
		"Min":    SchemaNumber("minimum"),
		"Max":    SchemaNumber("maximum"),
		"Median": SchemaNumber("median"),
		"P25":    SchemaNumber("25th percentile"),
		"P75":    SchemaNumber("75th percentile"),
		"P95":    SchemaNumber("95th percentile"),
		"P99":    SchemaNumber("99th percentile"),
	})
}

func learnSweepResultSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"schedulers": SchemaArray(SchemaObject(map[string]*Schema{
			"scheduler": SchemaString("scheduler name"),
			"runs":      SchemaInt("learning runs for this scheduler"),
			"converged": SchemaInt("runs that reached a verified equilibrium"),
			"steps":     SchemaRef("summary"),
		})),
		"total_runs": SchemaInt("total learning runs across schedulers"),
	})
	s.Title = "learn_sweep result"
	s.Defs = sharedDefs("summary")
	s.Defs["task"] = SchemaOpenObject(map[string]*Schema{
		"steps":     SchemaInt("better-response steps taken"),
		"converged": SchemaBool("run reached a verified equilibrium"),
	})
	return s
}

func designSweepResultSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"pairs":      SchemaInt("design runs attempted"),
		"reached":    SchemaInt("runs whose final config equals the target equilibrium"),
		"skipped":    SchemaInt("tasks that found no usable game"),
		"cost":       SchemaRef("summary"),
		"steps":      SchemaRef("summary"),
		"errors":     SchemaInt("game draws discarded due to errors"),
		"last_error": SchemaString("sample of one discarded draw's error"),
	})
	s.Title = "design_sweep result"
	s.Defs = sharedDefs("summary")
	s.Defs["task"] = SchemaOpenObject(map[string]*Schema{
		"skipped":  SchemaBool("no usable game within max_tries"),
		"reached":  SchemaBool("target equilibrium reached"),
		"cost":     SchemaNumber("total subsidy spent"),
		"steps":    SchemaNumber("total better-response steps"),
		"errs":     SchemaInt("discarded draws"),
		"last_err": SchemaString("sample error from a discarded draw"),
	})
	return s
}

func replaySweepResultSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"runs":            SchemaInt("scenario replays"),
		"pre_spike_share": SchemaRef("summary"),
		"peak_share":      SchemaRef("summary"),
		"final_share":     SchemaRef("summary"),
		"migrated":        SchemaInt("runs whose peak share exceeded twice the pre-spike share"),
	})
	s.Title = "replay_sweep result"
	s.Defs = sharedDefs("summary")
	// replay.Outcome has no json tags: Go field names on the wire.
	s.Defs["task"] = SchemaOpenObject(map[string]*Schema{
		"PreSpikeBCHShare": SchemaNumber("mean BCH hashrate share before the spike"),
		"PeakBCHShare":     SchemaNumber("max share during/after the spike"),
		"FinalBCHShare":    SchemaNumber("share at the end of the run"),
	})
	return s
}

func equilibriumSweepResultSchema() *Schema {
	s := SchemaObject(map[string]*Schema{
		"games":               SchemaInt("random games enumerated"),
		"multiple":            SchemaInt("games with at least two pure equilibria"),
		"equilibria_per_game": SchemaRef("summary"),
	})
	s.Title = "equilibrium_sweep result"
	s.Defs = sharedDefs("summary")
	s.Defs["task"] = SchemaInt("pure equilibria found in this task's game")
	return s
}
