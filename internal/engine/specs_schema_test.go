package engine

import (
	"strings"
	"testing"
)

// TestSharedDefSingletons: the catalog serves ONE canonical schema instance
// for each shared $def — every kind referencing "#/$defs/gen" (or "game",
// or "summary") points at the same *Schema, so the definitions cannot
// drift apart per kind.
func TestSharedDefSingletons(t *testing.T) {
	bySlot := map[string][]*Schema{}
	for _, e := range Catalog() {
		for _, s := range []*Schema{e.Schema, e.ResultSchema} {
			if s == nil {
				continue
			}
			for name, def := range s.Defs {
				if name == "task" {
					continue // deliberately kind-local
				}
				bySlot[name] = append(bySlot[name], def)
			}
		}
	}
	singletons := map[string]*Schema{"gen": genDef, "game": gameDef, "summary": summaryDef}
	for _, name := range []string{"gen", "game", "summary"} {
		defs := bySlot[name]
		if len(defs) == 0 {
			t.Fatalf("shared $def %q referenced by no catalog schema", name)
		}
		for i, def := range defs {
			if def != singletons[name] {
				t.Errorf("$def %q instance %d is a copy, not the shared singleton", name, i)
			}
		}
	}
	if len(bySlot["gen"]) < 2 || len(bySlot["summary"]) < 2 {
		t.Fatalf("gen/summary referenced by %d/%d schemas, want several each",
			len(bySlot["gen"]), len(bySlot["summary"]))
	}
}

// TestFingerprintDefMarkers: the catalog fingerprint hashes each version's
// $def names, so renaming or dropping an addressable def reads as drift.
func TestFingerprintDefMarkers(t *testing.T) {
	names := defNames(learnSweepSchema(), learnSweepResultSchema())
	if got := strings.Join(names, ","); got != "game,gen,summary,task" {
		t.Fatalf("defNames = %q", got)
	}
	if names := defNames(nil, nil); names != nil {
		t.Fatalf("defNames(nil) = %v", names)
	}
	if names := defNames(replaySweepSchema()); names != nil {
		t.Fatalf("replay_sweep spec schema has no defs, got %v", names)
	}
}
