package engine

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"gameofcoins/internal/rng"
)

// Admission-control scheduler tests: randomized tenants × priorities ×
// quota shares must never starve an admitted job, and priority weights must
// visibly tilt the fair-share split without preempting anyone.

// TestMultiTenantNoStarvationProperty: random fleets of client-attributed
// jobs at random priority weights, under a random per-client share cap,
// on random worker counts. Every admitted job must reach StateDone — the
// quota pass in take() must stay work-conserving (waived when everyone is
// over, when one client is alone, or when nothing is observed yet), never
// wedging the pool.
func TestMultiTenantNoStarvationProperty(t *testing.T) {
	r := rng.New(4242)
	for trial := 0; trial < 6; trial++ {
		workers := 1 + r.Intn(4)
		tenants := 2 + r.Intn(3)
		eng := New(workers)
		m := NewManager(eng)
		// Half the trials run with a (sometimes aggressive) share cap, the
		// rest uncapped; both must complete everything.
		var share float64
		if r.Intn(2) == 0 {
			share = 0.2 + 0.6*r.Float64()
		}
		eng.SetClientShares(share, nil)
		weights := []float64{0.5, 1.0, 2.0}

		var jobs []*Job
		for c := 0; c < tenants; c++ {
			client := fmt.Sprintf("tenant-%d", c)
			njobs := 1 + r.Intn(2)
			for k := 0; k < njobs; k++ {
				n := 4 + r.Intn(12)
				spec := Func{
					Name: fmt.Sprintf("t%d-c%d-j%d", trial, c, k),
					N:    n,
					Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
						time.Sleep(time.Duration(1+i%3) * time.Millisecond)
						return i, nil
					},
				}
				j, err := m.SubmitJobOpts("", spec, uint64(trial), SubmitOptions{
					Client: client,
					Weight: weights[r.Intn(len(weights))],
				})
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, j)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		for _, j := range jobs {
			if err := j.Wait(ctx); err != nil {
				t.Fatalf("trial %d (workers=%d tenants=%d share=%.2f): job %s never finished: %v",
					trial, workers, tenants, share, j.ID(), err)
			}
			if st := j.Status(); st.State != StateDone {
				t.Fatalf("trial %d: job %s ended %s: %s", trial, j.ID(), st.State, st.Error)
			}
		}
		cancel()
		m.Close()
	}
}

// TestPriorityWeightsTiltThroughput: a high-priority job submitted while a
// low-priority one is mid-run drains markedly faster — the weighted
// fair-share comparison hands it most of the pool — yet the low job keeps
// making progress (no preemption, no starvation) and finishes too.
func TestPriorityWeightsTiltThroughput(t *testing.T) {
	eng := New(4)
	m := NewManager(eng)
	defer m.Close()
	const n = 30
	task := func(_ context.Context, i int, _ *rng.Rand) (any, error) {
		time.Sleep(5 * time.Millisecond)
		return i, nil
	}
	var lowStarted atomic.Bool
	low, err := m.SubmitJobOpts("", Func{
		Name: "low",
		N:    n,
		Task: func(ctx context.Context, i int, r *rng.Rand) (any, error) {
			lowStarted.Store(true)
			return task(ctx, i, r)
		},
	}, 1, SubmitOptions{Client: "tenant-low", Weight: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for !lowStarted.Load() {
		time.Sleep(time.Millisecond)
	}
	high, err := m.SubmitJobOpts("", Func{Name: "high", N: n, Task: task}, 1,
		SubmitOptions{Client: "tenant-high", Weight: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := high.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	lowDone := low.Status().Progress.Done
	// The 0.5-vs-2.0 weights balance worker allocation at roughly 4:1, so
	// by high's finish the low job should be far behind. The bound is
	// deliberately loose: the failure mode is unweighted 1:1 sharing, which
	// would put lowDone within a task or two of n.
	if lowDone > 4*n/5 {
		t.Fatalf("low job completed %d/%d tasks by the time high finished — priority weight had no effect", lowDone, n)
	}
	// No preemption and no starvation: the low job was never paused and
	// still completes.
	if lowDone == 0 {
		t.Fatal("low-priority job made no progress while high ran — starved outright")
	}
	if err := low.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}
