package engine

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"gameofcoins/internal/rng"
)

// verSpecV1 and verSpecV2 are two wire formats of one logical kind: v2
// renames the field — a breaking change that, pre-versioning, would have
// silently corrupted cache keys. They register under test_versioned@v1/@v2.
type verSpecV1 struct {
	N int `json:"n"`
}

func (s verSpecV1) Kind() string { return "test_versioned" }
func (s verSpecV1) Tasks() int   { return 1 }
func (s verSpecV1) RunTask(_ context.Context, _ int, _ *rng.Rand) (any, error) {
	return s.N, nil
}
func (s verSpecV1) Aggregate(results []any) (any, error) { return results[0], nil }

type verSpecV2 struct {
	Count int `json:"count"`
}

func (s verSpecV2) Kind() string { return "test_versioned" }
func (s verSpecV2) Tasks() int   { return 1 }
func (s verSpecV2) RunTask(_ context.Context, _ int, _ *rng.Rand) (any, error) {
	return s.Count * 10, nil
}
func (s verSpecV2) Aggregate(results []any) (any, error) { return results[0], nil }

func init() {
	RegisterSpec("test_versioned", 1, DecodeJSON[verSpecV1](),
		SchemaObject(map[string]*Schema{"n": SchemaInt("value")}))
	RegisterSpec("test_versioned", 2, DecodeJSON[verSpecV2](),
		SchemaObject(map[string]*Schema{"count": SchemaInt("value")}))
	DeprecateSpec("test_versioned", 1)
}

func TestParseKindVersion(t *testing.T) {
	cases := []struct {
		wire    string
		kind    string
		version int
		wantErr bool
	}{
		{wire: "learn_sweep", kind: "learn_sweep", version: 0},
		{wire: "learn_sweep@v1", kind: "learn_sweep", version: 1},
		{wire: "learn_sweep@v12", kind: "learn_sweep", version: 12},
		{wire: "learn_sweep@v0", wantErr: true},
		{wire: "learn_sweep@2", wantErr: true},
		{wire: "learn_sweep@vx", wantErr: true},
		// Only canonical plain-digit suffixes: one version, one spelling.
		{wire: "learn_sweep@v01", wantErr: true},
		{wire: "learn_sweep@v+2", wantErr: true},
		{wire: "learn_sweep@v2x", wantErr: true},
		{wire: "@v1", wantErr: true},
		{wire: "learn_sweep@", wantErr: true},
	}
	for _, c := range cases {
		kind, version, err := ParseKindVersion(c.wire)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseKindVersion(%q) accepted", c.wire)
			}
			continue
		}
		if err != nil || kind != c.kind || version != c.version {
			t.Errorf("ParseKindVersion(%q) = (%q, %d, %v), want (%q, %d)", c.wire, kind, version, err, c.kind, c.version)
		}
	}
}

func TestVersionedKind(t *testing.T) {
	if got := VersionedKind("learn_sweep", 1); got != "learn_sweep" {
		t.Errorf("v1 wire name = %q, want the bare kind", got)
	}
	if got := VersionedKind("learn_sweep", 2); got != "learn_sweep@v2" {
		t.Errorf("v2 wire name = %q", got)
	}
}

// TestVersionResolution: a bare kind resolves to the latest version, pins
// resolve exactly, and the two versions decode through their own decoders.
func TestVersionResolution(t *testing.T) {
	// Bare kind → latest (v2), which decodes "count".
	rs, err := ResolveEnvelope(JobEnvelope{Kind: "test_versioned", Spec: json.RawMessage(`{"count":3}`)})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Version != 2 || rs.Kind != "test_versioned" || rs.WireKind() != "test_versioned@v2" {
		t.Fatalf("bare kind resolved to %+v", rs)
	}
	if v2, ok := rs.Spec.(verSpecV2); !ok || v2.Count != 3 {
		t.Fatalf("decoded %#v", rs.Spec)
	}
	if rs.Deprecated {
		t.Fatal("latest version reported deprecated")
	}

	// Pinned v1 decodes "n" and reports its deprecation.
	rs1, err := ResolveEnvelope(JobEnvelope{Kind: "test_versioned@v1", Spec: json.RawMessage(`{"n":3}`)})
	if err != nil {
		t.Fatal(err)
	}
	if rs1.Version != 1 || !rs1.Deprecated || rs1.WireKind() != "test_versioned" {
		t.Fatalf("pinned v1 resolved to %+v", rs1)
	}
	if v1, ok := rs1.Spec.(verSpecV1); !ok || v1.N != 3 {
		t.Fatalf("decoded %#v", rs1.Spec)
	}

	// The v1 document does not decode under v2 (and vice versa): the schema
	// rejects it with the field's JSON-pointer path before the decoder runs.
	_, err = ResolveEnvelope(JobEnvelope{Kind: "test_versioned", Spec: json.RawMessage(`{"n":3}`)})
	var se *SchemaError
	if !errors.As(err, &se) || se.Path != "/n" {
		t.Fatalf("v1 doc under v2 err = %v (want SchemaError at /n)", err)
	}

	// Unknown version of a known kind names the registered ones.
	if _, err := DecodeSpec("test_versioned@v9", nil); err == nil || !strings.Contains(err.Error(), "unknown version 9") {
		t.Fatalf("unknown version err = %v", err)
	}
}

// TestVersionedCacheKeys: v1 keys hash the bare kind (byte-compatible with
// every pre-versioning key), later versions hash kind@vN — so the two
// versions of one kind can never share or split a cache line.
func TestVersionedCacheKeys(t *testing.T) {
	k1, err := CacheKeyAt(verSpecV1{N: 3}, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := CacheKey(verSpecV1{N: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != bare {
		t.Fatalf("v1 key %s != pre-versioning key %s", k1, bare)
	}
	canonical, _ := CanonicalSpecJSON(verSpecV1{N: 3})
	if got := CacheKeyJSON(VersionedKind("test_versioned", 1), canonical, 7); got != k1 {
		t.Fatalf("CacheKeyJSON v1 = %s, want %s", got, k1)
	}

	k2, err := CacheKeyAt(verSpecV2{Count: 3}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k2 == k1 {
		t.Fatal("v1 and v2 share a cache key")
	}
	// Even a byte-identical document must key differently across versions.
	same1 := CacheKeyJSON("test_versioned", json.RawMessage(`{"n":0}`), 7)
	same2 := CacheKeyJSON("test_versioned@v2", json.RawMessage(`{"n":0}`), 7)
	if same1 == same2 {
		t.Fatal("identical documents share a key across versions")
	}
}

// TestCatalogAndFingerprint: the catalog lists both versions with wire
// names, latest/deprecated flags, and schemas; the fingerprint covers the
// registered surface.
func TestCatalogAndFingerprint(t *testing.T) {
	entries := Catalog()
	var v1, v2 *CatalogEntry
	for i := range entries {
		if entries[i].Kind == "test_versioned" {
			switch entries[i].Version {
			case 1:
				v1 = &entries[i]
			case 2:
				v2 = &entries[i]
			}
		}
	}
	if v1 == nil || v2 == nil {
		t.Fatal("test_versioned versions missing from catalog")
	}
	if v1.Wire != "test_versioned" || !v1.Deprecated || v1.Latest {
		t.Fatalf("v1 entry = %+v", v1)
	}
	if v2.Wire != "test_versioned@v2" || v2.Deprecated || !v2.Latest {
		t.Fatalf("v2 entry = %+v", v2)
	}
	if v2.Schema == nil || v2.Schema.Properties["count"] == nil {
		t.Fatalf("v2 schema missing: %+v", v2.Schema)
	}

	fp := CatalogFingerprint()
	if len(fp) != 16 {
		t.Fatalf("fingerprint %q", fp)
	}
	if fp != CatalogFingerprint() {
		t.Fatal("fingerprint not stable")
	}

	// Catalog ordering: by kind, then version.
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if a.Kind > b.Kind || (a.Kind == b.Kind && a.Version >= b.Version) {
			t.Fatalf("catalog unsorted at %d: %s@v%d then %s@v%d", i, a.Kind, a.Version, b.Kind, b.Version)
		}
	}
}

// TestDecodeSpecAt: the persistence path decodes exact versions, mapping the
// pre-versioning record form (version 0) to v1.
func TestDecodeSpecAt(t *testing.T) {
	for _, version := range []int{0, 1} {
		spec, err := DecodeSpecAt("test_versioned", version, json.RawMessage(`{"n":5}`))
		if err != nil {
			t.Fatalf("version %d: %v", version, err)
		}
		if v1, ok := spec.(verSpecV1); !ok || v1.N != 5 {
			t.Fatalf("version %d decoded %#v", version, spec)
		}
	}
	spec, err := DecodeSpecAt("test_versioned", 2, json.RawMessage(`{"count":5}`))
	if err != nil {
		t.Fatal(err)
	}
	if v2, ok := spec.(verSpecV2); !ok || v2.Count != 5 {
		t.Fatalf("decoded %#v", spec)
	}
}

func TestRegisterSpecRejectsVersionedKindString(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind with '@' registered without panic")
		}
	}()
	RegisterSpec("bad@v1", 1, DecodeJSON[verSpecV1](), nil)
}
