package engine

import (
	"context"
	"sync"
	"testing"
	"time"

	"gameofcoins/internal/rng"
)

// gate is a reusable latch test specs block on, so watch tests control
// exactly when tasks may finish.
type gate struct {
	once sync.Once
	ch   chan struct{}
}

func (g *gate) open() { g.once.Do(func() { close(g.ch) }) }
func newGate() *gate  { return &gate{ch: make(chan struct{})} }
func (g *gate) wait(ctx context.Context) error {
	select {
	case <-g.ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TestWatchStreamsProgressAndTerminal: a watcher sees the initial snapshot,
// at least one progress update, and then the terminal status, after which
// the channel closes.
func TestWatchStreamsProgressAndTerminal(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()

	g := newGate()
	const free, total = 2, 4
	spec := Func{
		Name: "test_watch",
		N:    total,
		Task: func(ctx context.Context, i int, _ *rng.Rand) (any, error) {
			if i >= free {
				if err := g.wait(ctx); err != nil {
					return nil, err
				}
			}
			return i, nil
		},
	}
	job, err := m.Submit(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Watch(context.Background(), job.ID())
	if err != nil {
		t.Fatal(err)
	}

	var sawRunning, sawProgress bool
	var last Status
	for st := range ch {
		last = st
		if !st.State.Terminal() {
			sawRunning = true
			if st.Progress.Done > 0 {
				sawProgress = true
			}
			if st.Progress.Done >= free {
				g.open() // all ungated tasks observed; let the rest finish
			}
		}
	}
	if !sawRunning || !sawProgress {
		t.Fatalf("stream skipped states: running=%v progress=%v", sawRunning, sawProgress)
	}
	if last.State != StateDone || last.Progress.Done != total {
		t.Fatalf("terminal status = %+v", last)
	}
}

// TestWatchTerminalJobYieldsFinalStatusImmediately: watching a finished job
// delivers its terminal status and closes without blocking.
func TestWatchTerminalJobYieldsFinalStatusImmediately(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	job, err := m.Submit(Func{Name: "test_done", N: 2, Task: func(context.Context, int, *rng.Rand) (any, error) {
		return nil, nil
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	ch, err := m.Watch(context.Background(), job.ID())
	if err != nil {
		t.Fatal(err)
	}
	st, ok := <-ch
	if !ok || st.State != StateDone {
		t.Fatalf("first receive = %+v, %v", st, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after terminal status")
	}
}

// TestWatchCancelDeliversCanceledStatus: watchers of a canceled job receive
// the canceled terminal status, not a silently closed channel.
func TestWatchCancelDeliversCanceledStatus(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	g := newGate()
	defer g.open()
	job, err := m.Submit(Func{Name: "test_cancel", N: 2, Task: func(ctx context.Context, _ int, _ *rng.Rand) (any, error) {
		return nil, g.wait(ctx)
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := m.Watch(context.Background(), job.ID())
	if err != nil {
		t.Fatal(err)
	}
	job.Cancel()
	var last Status
	for st := range ch {
		last = st
	}
	if last.State != StateCanceled {
		t.Fatalf("terminal status = %+v, want canceled", last)
	}
}

// TestWatchContextCancelUnsubscribes: canceling the watcher's context closes
// its channel promptly (without a terminal status) and drops the
// subscription, while the job runs on unaffected.
func TestWatchContextCancelUnsubscribes(t *testing.T) {
	m := NewManager(New(2))
	defer m.Close()
	g := newGate()
	job, err := m.Submit(Func{Name: "test_unsub", N: 1, Task: func(ctx context.Context, _ int, _ *rng.Rand) (any, error) {
		return nil, g.wait(ctx)
	}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ch, err := m.Watch(ctx, job.ID())
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				g.open()
				if err := job.Wait(context.Background()); err != nil {
					t.Fatalf("job broken by watcher unsubscribe: %v", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("watch channel never closed after context cancel")
		}
	}
}

// TestWatchUnknownJob mirrors Get's error contract.
func TestWatchUnknownJob(t *testing.T) {
	m := NewManager(New(1))
	defer m.Close()
	if _, err := m.Watch(context.Background(), "job-404"); err == nil {
		t.Fatal("watching an unknown job succeeded")
	}
}
