// Package equilibria provides equilibrium tooling for the mining game:
//
//   - Construct: Appendix A's constructive proof of equilibrium existence —
//     add miners in descending power, each choosing its myopically best coin;
//     the resulting configuration is stable (Proposition 3).
//   - TwoDistinct: Lemma 2's construction of two different equilibria for
//     games satisfying Assumptions 1–2.
//   - Enumerate: exhaustive equilibrium enumeration for small games.
//   - BetterEquilibriumFor: Proposition 2's guarantee — for every stable s
//     there is a miner p and a stable s' with u_p(s') > u_p(s).
package equilibria

import (
	"errors"
	"fmt"
	"sort"

	"gameofcoins/internal/core"
)

// ErrNotStable is returned by constructions whose assumptions failed to
// deliver a stable configuration (e.g. TwoDistinct on a game violating
// Assumption 1 or 2).
var ErrNotStable = errors.New("equilibria: constructed configuration is not stable")

// ErrNoBetter is returned by BetterEquilibriumFor when no dominating
// equilibrium exists — impossible under Assumptions 1–2 (Proposition 2) but
// reachable for games outside those assumptions.
var ErrNoBetter = errors.New("equilibria: no equilibrium improves any miner")

// Construct builds a pure equilibrium of g by the Appendix-A induction:
// miners join in descending power order (the Game's native order), each
// picking the coin maximizing its payoff given the miners placed so far:
//
//	c = argmax_{c'} F(c') · m_p / (M_{c'}(s) + m_p)
//
// Claim 6 shows each addition preserves stability, so the result is a pure
// equilibrium. For eligibility-restricted games the argmax ranges over the
// miner's eligible coins only; stability of the result is then checked and
// ErrNotStable returned if the restriction broke the induction.
func Construct(g *core.Game) (core.Config, error) {
	n := g.NumMiners()
	s := make(core.Config, n)
	powers := make([]float64, g.NumCoins())
	for p := 0; p < n; p++ {
		mp := g.Power(p)
		best := -1
		bestU := 0.0
		for c := 0; c < g.NumCoins(); c++ {
			if !g.Eligible(p, c) {
				continue
			}
			u := g.Reward(c) * mp / (powers[c] + mp)
			if best == -1 || u > bestU {
				best, bestU = c, u
			}
		}
		if best == -1 {
			return nil, fmt.Errorf("equilibria: miner %d has no eligible coin", p)
		}
		s[p] = best
		powers[best] += mp
	}
	if g.Restricted() && !g.IsEquilibrium(s) {
		return nil, fmt.Errorf("%w: greedy construction under eligibility restrictions", ErrNotStable)
	}
	return s, nil
}

// TwoDistinct builds two different pure equilibria of g following Lemma 2:
// seed the two largest miners on the two highest-reward coins in opposite
// orders, then extend greedily as in Construct. It requires at least two
// miners and two coins, and the stability of both results relies on
// Assumptions 1–2; if either constructed configuration ends up unstable,
// ErrNotStable is returned.
func TwoDistinct(g *core.Game) (core.Config, core.Config, error) {
	if g.NumMiners() < 2 || g.NumCoins() < 2 {
		return nil, nil, errors.New("equilibria: TwoDistinct needs ≥2 miners and ≥2 coins")
	}
	// Coins sorted by decreasing reward.
	order := make([]core.CoinID, g.NumCoins())
	for c := range order {
		order[c] = c
	}
	sort.SliceStable(order, func(i, j int) bool { return g.Reward(order[i]) > g.Reward(order[j]) })
	c1, c2 := order[0], order[1]

	build := func(first, second core.CoinID) core.Config {
		n := g.NumMiners()
		s := make(core.Config, n)
		powers := make([]float64, g.NumCoins())
		s[0] = first
		powers[first] += g.Power(0)
		s[1] = second
		powers[second] += g.Power(1)
		for p := 2; p < n; p++ {
			mp := g.Power(p)
			best := 0
			bestU := 0.0
			for c := 0; c < g.NumCoins(); c++ {
				u := g.Reward(c) * mp / (powers[c] + mp)
				if c == 0 || u > bestU {
					best, bestU = c, u
				}
			}
			s[p] = best
			powers[best] += mp
		}
		return s
	}

	sA := build(c1, c2)
	sB := build(c2, c1)
	if sA.Equal(sB) {
		return nil, nil, fmt.Errorf("%w: constructions coincide", ErrNotStable)
	}
	if !g.IsEquilibrium(sA) {
		return nil, nil, fmt.Errorf("%w: first construction %v", ErrNotStable, sA)
	}
	if !g.IsEquilibrium(sB) {
		return nil, nil, fmt.Errorf("%w: second construction %v", ErrNotStable, sB)
	}
	return sA, sB, nil
}

// Enumerate returns every pure equilibrium of g in lexicographic order.
// It is exhaustive and therefore restricted to small games; it propagates
// core.ErrTooLarge beyond the enumeration limit.
func Enumerate(g *core.Game) ([]core.Config, error) {
	var out []core.Config
	err := g.EnumerateConfigs(func(s core.Config) bool {
		if g.IsEquilibrium(s) {
			out = append(out, s.Clone())
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Improvement is a Proposition 2 witness: miner Miner strictly prefers the
// equilibrium Better over the reference equilibrium.
type Improvement struct {
	Miner  core.MinerID
	Better core.Config
	Gain   float64 // u_p(Better) − u_p(reference) > 0
}

// BetterEquilibriumFor finds, for the stable configuration s, a miner and a
// different stable configuration in which that miner's payoff is strictly
// higher (Proposition 2). The search enumerates all equilibria, so it is
// limited to small games. If s is the unique equilibrium or no miner
// improves anywhere, ErrNoBetter is returned — which, per Proposition 2,
// certifies that g violates Assumption 1 or 2.
func BetterEquilibriumFor(g *core.Game, s core.Config) (Improvement, error) {
	if !g.IsEquilibrium(s) {
		return Improvement{}, fmt.Errorf("equilibria: reference %v is not stable", s)
	}
	eqs, err := Enumerate(g)
	if err != nil {
		return Improvement{}, err
	}
	base := g.Payoffs(s)
	bestGain := 0.0
	var best Improvement
	found := false
	for _, e := range eqs {
		if e.Equal(s) {
			continue
		}
		us := g.Payoffs(e)
		for p := range us {
			if gain := us[p] - base[p]; gain > bestGain {
				found = true
				bestGain = gain
				best = Improvement{Miner: p, Better: e, Gain: gain}
			}
		}
	}
	if !found {
		return Improvement{}, ErrNoBetter
	}
	return best, nil
}
