package equilibria

import (
	"errors"
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

func crowded(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{17, 19},
	)
}

// TestConstructAlwaysStable is Proposition 3 as a property: the greedy
// construction yields an equilibrium on random games.
func TestConstructAlwaysStable(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 300; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 1 + r.Intn(12), Coins: 1 + r.Intn(5)})
		if err != nil {
			t.Fatal(err)
		}
		s, err := Construct(g)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsEquilibrium(s) {
			t.Fatalf("trial %d: constructed %v is not stable", trial, s)
		}
	}
}

func TestConstructSingleMinerPicksMaxReward(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "solo", Power: 4}},
		[]core.Coin{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		[]float64{3, 9, 5},
	)
	s, err := Construct(g)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Fatalf("solo miner chose coin %d, want 1", s[0])
	}
}

func TestTwoDistinct(t *testing.T) {
	g := crowded(t)
	a, b, err := TwoDistinct(g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(b) {
		t.Fatal("constructions coincide")
	}
	if !g.IsEquilibrium(a) || !g.IsEquilibrium(b) {
		t.Fatalf("constructions not stable: %v, %v", a, b)
	}
}

func TestTwoDistinctRandomGames(t *testing.T) {
	// Lemma 2 guarantees the construction under Assumptions 1–2, so on
	// random games satisfying both it must never fail.
	r := rng.New(13)
	checked := 0
	for trial := 0; trial < 200; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 8, Coins: 2})
		if err != nil {
			t.Fatal(err)
		}
		if g.CheckNeverAlone() != nil || g.CheckGeneric() != nil {
			continue
		}
		checked++
		if _, _, err := TwoDistinct(g); err != nil {
			t.Fatalf("trial %d (assumptions hold): %v", trial, err)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d games satisfied the assumptions; generator broken?", checked)
	}
}

func TestTwoDistinctRejectsTinyGames(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "solo", Power: 1}},
		[]core.Coin{{Name: "a"}, {Name: "b"}},
		[]float64{1, 2},
	)
	if _, _, err := TwoDistinct(g); err == nil {
		t.Fatal("single-miner game accepted")
	}
}

func TestEnumerateFindsAllEquilibria(t *testing.T) {
	// Proposition 1's game: equilibria are exactly the two split configs.
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) != 2 {
		t.Fatalf("found %d equilibria: %v", len(eqs), eqs)
	}
	keys := map[string]bool{eqs[0].Key(): true, eqs[1].Key(): true}
	if !keys["0,1"] || !keys["1,0"] {
		t.Fatalf("wrong equilibria: %v", eqs)
	}
}

func TestEnumerateContainsConstruct(t *testing.T) {
	g := crowded(t)
	s, err := Construct(g)
	if err != nil {
		t.Fatal(err)
	}
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range eqs {
		if e.Equal(s) {
			return
		}
	}
	t.Fatalf("constructed equilibrium %v missing from enumeration %v", s, eqs)
}

// TestProposition2 verifies the headline claim on games satisfying both
// assumptions: every equilibrium admits a miner who strictly prefers another
// equilibrium.
func TestProposition2(t *testing.T) {
	g := crowded(t)
	if err := g.CheckNeverAlone(); err != nil {
		t.Skipf("instance violates assumption 1: %v", err)
	}
	if err := g.CheckGeneric(); err != nil {
		t.Skipf("instance violates assumption 2: %v", err)
	}
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) < 2 {
		t.Fatalf("expected ≥2 equilibria, got %d", len(eqs))
	}
	for _, e := range eqs {
		imp, err := BetterEquilibriumFor(g, e)
		if err != nil {
			t.Fatalf("equilibrium %v has no improvement: %v", e, err)
		}
		if imp.Gain <= 0 {
			t.Fatalf("non-positive gain %v", imp.Gain)
		}
		// Verify the witness.
		if got := g.Payoff(imp.Better, imp.Miner) - g.Payoff(e, imp.Miner); got <= 0 {
			t.Fatalf("witness does not improve: %v", got)
		}
	}
}

func TestProposition2RandomGames(t *testing.T) {
	r := rng.New(17)
	checked := 0
	for trial := 0; trial < 60 && checked < 20; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 6, Coins: 2})
		if err != nil {
			t.Fatal(err)
		}
		if g.CheckNeverAlone() != nil || g.CheckGeneric() != nil {
			continue
		}
		checked++
		eqs, err := Enumerate(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range eqs {
			if _, err := BetterEquilibriumFor(g, e); err != nil {
				t.Fatalf("trial %d: equilibrium %v: %v", trial, e, err)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no random game satisfied both assumptions; generator broken?")
	}
}

func TestBetterEquilibriumForRejectsUnstable(t *testing.T) {
	g := crowded(t)
	unstable := core.UniformConfig(g.NumMiners(), 0)
	if g.IsEquilibrium(unstable) {
		t.Skip("uniform config happens to be stable")
	}
	if _, err := BetterEquilibriumFor(g, unstable); err == nil {
		t.Fatal("unstable reference accepted")
	}
}

func TestBetterEquilibriumForUniqueEquilibrium(t *testing.T) {
	// One miner, one coin: a unique equilibrium, so ErrNoBetter.
	g := core.MustNewGame(
		[]core.Miner{{Name: "solo", Power: 1}},
		[]core.Coin{{Name: "only"}},
		[]float64{5},
	)
	if _, err := BetterEquilibriumFor(g, core.Config{0}); !errors.Is(err, ErrNoBetter) {
		t.Fatalf("err = %v, want ErrNoBetter", err)
	}
}

// TestObservation3AcrossEquilibria: all equilibria of an Assumption-1 game
// are globally optimal (sum of payoffs equals total reward), hence payoffs
// across equilibria form a zero-sum redistribution — the fact Claim 4's
// proof rests on.
func TestObservation3AcrossEquilibria(t *testing.T) {
	g := crowded(t)
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	total := g.TotalReward()
	for _, e := range eqs {
		got := g.SumPayoffs(e)
		if diff := got - total; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("equilibrium %v: Σu = %v, want %v", e, got, total)
		}
	}
}

func TestConstructEligibilityRestricted(t *testing.T) {
	// Restrict the largest miner to coin 1 only; construction must respect it.
	g := core.MustNewGame(
		[]core.Miner{{Name: "big", Power: 10}, {Name: "s1", Power: 2}, {Name: "s2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{10, 10},
		core.WithEligibility(func(p core.MinerID, c core.CoinID) bool { return p != 0 || c == 1 }),
	)
	s, err := Construct(g)
	if err != nil {
		// Restricted games may defeat the greedy induction; that is a
		// documented limitation, not a bug.
		if !errors.Is(err, ErrNotStable) {
			t.Fatal(err)
		}
		return
	}
	if s[0] != 1 {
		t.Fatalf("restricted miner placed on coin %d", s[0])
	}
}
