package equilibria

import "gameofcoins/internal/core"

// PayoffSpread reports, per miner, the minimum and maximum payoff the miner
// receives across a set of equilibria. Observation 3 makes the *sum*
// invariant across equilibria of Assumption-1 games, so spreads quantify
// the pure redistribution between equilibria — which is what a manipulator
// shopping for a target equilibrium (Section 5) cares about.
type PayoffSpread struct {
	Min, Max float64
}

// Spreads computes the per-miner payoff spread over the given equilibria.
// It returns nil for an empty set.
func Spreads(g *core.Game, eqs []core.Config) []PayoffSpread {
	if len(eqs) == 0 {
		return nil
	}
	out := make([]PayoffSpread, g.NumMiners())
	for i, e := range eqs {
		us := g.Payoffs(e)
		for p, u := range us {
			if i == 0 || u < out[p].Min {
				out[p].Min = u
			}
			if i == 0 || u > out[p].Max {
				out[p].Max = u
			}
		}
	}
	return out
}

// BestTargetFor returns the equilibrium in eqs maximizing miner p's payoff
// (ties to the earliest), and that payoff. It panics on an empty set.
func BestTargetFor(g *core.Game, eqs []core.Config, p core.MinerID) (core.Config, float64) {
	if len(eqs) == 0 {
		panic("equilibria: BestTargetFor on empty set")
	}
	best := eqs[0]
	bestU := g.Payoff(eqs[0], p)
	for _, e := range eqs[1:] {
		if u := g.Payoff(e, p); u > bestU {
			best, bestU = e, u
		}
	}
	return best, bestU
}
