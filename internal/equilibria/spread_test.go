package equilibria

import (
	"math"
	"testing"
)

func TestSpreads(t *testing.T) {
	g := crowded(t)
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) < 2 {
		t.Fatalf("need ≥2 equilibria, got %d", len(eqs))
	}
	spreads := Spreads(g, eqs)
	if len(spreads) != g.NumMiners() {
		t.Fatalf("spreads for %d miners", len(spreads))
	}
	anyGap := false
	for p, sp := range spreads {
		if sp.Min > sp.Max {
			t.Fatalf("miner %d: min %v > max %v", p, sp.Min, sp.Max)
		}
		if sp.Max > sp.Min {
			anyGap = true
		}
		// Bounds must be attained by some equilibrium.
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, e := range eqs {
			u := g.Payoff(e, p)
			lo = math.Min(lo, u)
			hi = math.Max(hi, u)
		}
		if lo != sp.Min || hi != sp.Max {
			t.Fatalf("miner %d spread [%v,%v], recomputed [%v,%v]", p, sp.Min, sp.Max, lo, hi)
		}
	}
	if !anyGap {
		t.Fatal("no miner has a payoff gap across distinct equilibria; suspicious under Assumption 2")
	}
	if Spreads(g, nil) != nil {
		t.Fatal("empty set should give nil")
	}
}

func TestBestTargetFor(t *testing.T) {
	g := crowded(t)
	eqs, err := Enumerate(g)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < g.NumMiners(); p++ {
		target, u := BestTargetFor(g, eqs, p)
		for _, e := range eqs {
			if g.Payoff(e, p) > u {
				t.Fatalf("miner %d: better equilibrium than reported best", p)
			}
		}
		if got := g.Payoff(target, p); got != u {
			t.Fatalf("reported payoff %v, recomputed %v", u, got)
		}
	}
}

func TestBestTargetForEmptyPanics(t *testing.T) {
	g := crowded(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty set")
		}
	}()
	BestTargetFor(g, nil, 0)
}
