// Package exact mirrors the core game in exact rational arithmetic
// (math/big.Rat via internal/numeric.Rat).
//
// The float64 engine in internal/core compares payoffs with a relative
// epsilon; near-ties — which the paper's Assumption 2 rules out in theory
// but floating point manufactures in practice — are resolved by that
// tolerance. This package recomputes the same predicates with no rounding
// at all, so tests can assert that every decision the fast engine makes
// (better-response sets, stability, equilibrium membership) agrees with
// exact arithmetic, and flag inputs where the epsilon materially matters.
package exact

import (
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/numeric"
)

// Game is the exact-arithmetic shadow of a core.Game. Construct with
// FromGame. It is safe for concurrent read use.
type Game struct {
	powers  []numeric.Rat
	rewards []numeric.Rat
	numCoin int
	src     *core.Game
}

// FromGame converts g to exact arithmetic. Every float64 is representable
// exactly as a rational, so the conversion is lossless.
func FromGame(g *core.Game) *Game {
	eg := &Game{
		powers:  make([]numeric.Rat, g.NumMiners()),
		rewards: make([]numeric.Rat, g.NumCoins()),
		numCoin: g.NumCoins(),
		src:     g,
	}
	for p := range eg.powers {
		eg.powers[p] = numeric.RatFromFloat(g.Power(p))
	}
	for c := range eg.rewards {
		eg.rewards[c] = numeric.RatFromFloat(g.Reward(c))
	}
	return eg
}

// CoinPower returns M_c(s) exactly.
func (eg *Game) CoinPower(s core.Config, c core.CoinID) numeric.Rat {
	var acc numeric.Rat
	for p, cp := range s {
		if cp == c {
			acc = acc.Add(eg.powers[p])
		}
	}
	return acc
}

// Payoff returns u_p(s) exactly.
func (eg *Game) Payoff(s core.Config, p core.MinerID) numeric.Rat {
	return eg.powers[p].Mul(eg.rewards[s[p]]).Div(eg.CoinPower(s, s[p]))
}

// PayoffAfterMove returns u_p((s₋p, c)) exactly.
func (eg *Game) PayoffAfterMove(s core.Config, p core.MinerID, c core.CoinID) numeric.Rat {
	if c == s[p] {
		return eg.Payoff(s, p)
	}
	return eg.powers[p].Mul(eg.rewards[c]).Div(eg.CoinPower(s, c).Add(eg.powers[p]))
}

// IsBetterResponse reports, exactly, whether p moving to c strictly
// improves p's payoff (and c is eligible).
func (eg *Game) IsBetterResponse(s core.Config, p core.MinerID, c core.CoinID) bool {
	if c == s[p] || !eg.src.Eligible(p, c) {
		return false
	}
	return eg.PayoffAfterMove(s, p, c).Greater(eg.Payoff(s, p))
}

// BetterResponses returns p's exact better-response coins in CoinID order.
func (eg *Game) BetterResponses(s core.Config, p core.MinerID) []core.CoinID {
	var out []core.CoinID
	cur := eg.Payoff(s, p)
	for c := 0; c < eg.numCoin; c++ {
		if c == s[p] || !eg.src.Eligible(p, c) {
			continue
		}
		if eg.PayoffAfterMove(s, p, c).Greater(cur) {
			out = append(out, c)
		}
	}
	return out
}

// IsEquilibrium reports, exactly, whether s is a pure equilibrium.
func (eg *Game) IsEquilibrium(s core.Config) bool {
	for p := range s {
		if len(eg.BetterResponses(s, p)) != 0 {
			return false
		}
	}
	return true
}

// Disagreement describes a decision where the float engine and the exact
// engine differ — evidence that the game is so close to an Assumption-2
// violation that float64 epsilon comparisons change its dynamics.
type Disagreement struct {
	Config core.Config
	Miner  core.MinerID
	Coin   core.CoinID
	Float  bool // float engine's IsBetterResponse
	Exact  bool // exact engine's IsBetterResponse
}

func (d *Disagreement) String() string {
	return fmt.Sprintf("at %v miner %d → coin %d: float=%v exact=%v",
		d.Config, d.Miner, d.Coin, d.Float, d.Exact)
}

// CrossValidate compares every better-response decision of the float engine
// against the exact engine at configuration s and returns all disagreements.
func CrossValidate(g *core.Game, s core.Config) []Disagreement {
	eg := FromGame(g)
	var out []Disagreement
	for p := range s {
		for c := 0; c < g.NumCoins(); c++ {
			if c == s[p] {
				continue
			}
			fl := g.IsBetterResponse(s, p, c)
			ex := eg.IsBetterResponse(s, p, c)
			if fl != ex {
				out = append(out, Disagreement{
					Config: s.Clone(), Miner: p, Coin: c, Float: fl, Exact: ex,
				})
			}
		}
	}
	return out
}
