package exact

import (
	"math"
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/numeric"
	"gameofcoins/internal/rng"
)

func intGame(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{17, 19, 23},
	)
}

func TestExactPayoffMatchesHandComputation(t *testing.T) {
	g := intGame(t)
	eg := FromGame(g)
	s := core.Config{0, 0, 1, 2}
	// u_p1 = 13·17/24, exactly.
	want := numeric.NewRat(13*17, 24)
	if got := eg.Payoff(s, 0); !got.Equal(want) {
		t.Fatalf("payoff = %v, want %v", got, want)
	}
	// u_p3 = 7·19/7 = 19.
	if got := eg.Payoff(s, 2); !got.Equal(numeric.RatFromInt(19)) {
		t.Fatalf("payoff = %v", got)
	}
}

func TestExactAgreesWithFloatOnIntegerGames(t *testing.T) {
	g := intGame(t)
	eg := FromGame(g)
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		for p := range s {
			fl := g.Payoff(s, p)
			ex := eg.Payoff(s, p).Float64()
			if math.Abs(fl-ex) > 1e-12*(1+math.Abs(ex)) {
				t.Fatalf("payoff mismatch at %v miner %d: float %v exact %v", s, p, fl, ex)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateCleanOnIntegerGames(t *testing.T) {
	g := intGame(t)
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		if ds := CrossValidate(g, s); len(ds) != 0 {
			t.Fatalf("disagreements at %v: %v", s, ds)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestCrossValidateRandomGames(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 100; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		if ds := CrossValidate(g, s); len(ds) != 0 {
			t.Fatalf("trial %d: engines disagree: %v", trial, ds[0].String())
		}
	}
}

func TestExactEquilibriumAgreement(t *testing.T) {
	g := intGame(t)
	eg := FromGame(g)
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		if g.IsEquilibrium(s) != eg.IsEquilibrium(s) {
			t.Fatalf("equilibrium disagreement at %v", s)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestExactDetectsNearTies(t *testing.T) {
	// Two coins engineered so a deviation changes payoff by ~1e-12 relative:
	// the float engine (eps=1e-9) treats it as a tie and suppresses the
	// better response; the exact engine sees the strict improvement. This
	// documents exactly the behaviour CrossValidate exists to flag.
	delta := 1e-12
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 1}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{2, 1 + delta},
	)
	// p2 shares c0: payoff 1. Moving to empty c1: payoff 1+delta — an exact
	// improvement below float epsilon.
	s := core.Config{0, 0}
	eg := FromGame(g)
	if !eg.IsBetterResponse(s, 1, 1) {
		t.Fatal("exact engine missed the strict improvement")
	}
	if g.IsBetterResponse(s, 1, 1) {
		t.Skip("float engine resolved the near-tie; epsilon semantics changed?")
	}
	ds := CrossValidate(g, s)
	if len(ds) == 0 {
		t.Fatal("CrossValidate failed to flag the near-tie")
	}
	if ds[0].Float || !ds[0].Exact {
		t.Fatalf("unexpected disagreement direction: %v", ds[0].String())
	}
}

func TestBetterResponsesExactSubsetBehaviour(t *testing.T) {
	g := intGame(t)
	eg := FromGame(g)
	r := rng.New(66)
	for trial := 0; trial < 50; trial++ {
		s := core.RandomConfig(r, g)
		for p := range s {
			fl := g.BetterResponses(s, p)
			ex := eg.BetterResponses(s, p)
			if len(fl) != len(ex) {
				t.Fatalf("BR length mismatch at %v miner %d: %v vs %v", s, p, fl, ex)
			}
			for i := range fl {
				if fl[i] != ex[i] {
					t.Fatalf("BR mismatch at %v miner %d: %v vs %v", s, p, fl, ex)
				}
			}
		}
	}
}

func TestEligibilityRespectedExactly(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "a", Power: 2}, {Name: "b", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 100},
		core.WithEligibility(func(p core.MinerID, c core.CoinID) bool { return p != 1 || c == 0 }),
	)
	eg := FromGame(g)
	// Miner 1 would love coin 1 but is ineligible.
	if eg.IsBetterResponse(core.Config{0, 0}, 1, 1) {
		t.Fatal("exact engine ignored eligibility")
	}
}
