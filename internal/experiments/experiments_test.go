package experiments

import (
	"strings"
	"testing"
)

// The experiment suite is the executable form of EXPERIMENTS.md: each
// report's Pass flag asserts the paper's claimed shape on a fixed seed.

func TestE1Figure1(t *testing.T) {
	rep := E1(11)
	if !rep.Pass {
		t.Fatalf("E1 failed:\n%s", rep)
	}
	if len(rep.Plots) != 2 {
		t.Fatalf("E1 should render both Figure-1 panels, got %d", len(rep.Plots))
	}
}

func TestE2DesignTrace(t *testing.T) {
	rep := E2(11)
	if !rep.Pass {
		t.Fatalf("E2 failed:\n%s", rep)
	}
	if !strings.Contains(rep.Table.String(), "stage") {
		t.Fatal("E2 table missing")
	}
}

func TestE3ExactCycle(t *testing.T) {
	rep := E3()
	if !rep.Pass {
		t.Fatalf("E3 failed:\n%s", rep)
	}
	found := false
	for _, n := range rep.Notes {
		if strings.Contains(n, "2/3") {
			found = true
		}
	}
	if !found {
		t.Fatal("E3 notes missing the exact 2/3 sum")
	}
}

func TestE4Convergence(t *testing.T) {
	rep := E4(11)
	if !rep.Pass {
		t.Fatalf("E4 failed:\n%s", rep)
	}
}

func TestE5SymmetricPotential(t *testing.T) {
	rep := E5(11)
	if !rep.Pass {
		t.Fatalf("E5 failed:\n%s", rep)
	}
}

func TestE6BetterEquilibrium(t *testing.T) {
	rep := E6(11)
	if !rep.Pass {
		t.Fatalf("E6 failed:\n%s", rep)
	}
}

func TestE7DesignTermination(t *testing.T) {
	rep := E7(11)
	if !rep.Pass {
		t.Fatalf("E7 failed:\n%s", rep)
	}
}

func TestE8ConvergenceSpeed(t *testing.T) {
	rep := E8(11)
	if !rep.Pass {
		t.Fatalf("E8 failed:\n%s", rep)
	}
}

func TestE9WhaleROI(t *testing.T) {
	rep := E9(11)
	if !rep.Pass {
		t.Fatalf("E9 failed:\n%s", rep)
	}
}

func TestE10Asymmetric(t *testing.T) {
	rep := E10(11)
	if !rep.Pass {
		t.Fatalf("E10 failed:\n%s", rep)
	}
}

func TestWhaleDemoInducesMigration(t *testing.T) {
	share, spend, err := WhaleDemo(3, 60)
	if err != nil {
		t.Fatal(err)
	}
	if share <= 0.15 {
		t.Fatalf("whale subsidy induced share %v, want > pre-existing ~0.1", share)
	}
	if spend <= 0 {
		t.Fatal("no spend recorded")
	}
}

func TestReportString(t *testing.T) {
	rep := E3()
	out := rep.String()
	for _, want := range []string{"E3", "PASS", "claim:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestAllRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in short mode")
	}
	reports := All(11)
	if len(reports) != 13 {
		t.Fatalf("All returned %d reports", len(reports))
	}
	for _, rep := range reports {
		if !rep.Pass {
			t.Errorf("%s failed:\n%s", rep.ID, rep)
		}
	}
}

func TestE11SecurityTrajectory(t *testing.T) {
	rep := E11(11)
	if !rep.Pass {
		t.Fatalf("E11 failed:\n%s", rep)
	}
}

func TestE12SimultaneousAblation(t *testing.T) {
	rep := E12(11)
	if !rep.Pass {
		t.Fatalf("E12 failed:\n%s", rep)
	}
}

func TestE13NaiveBaselineAblation(t *testing.T) {
	rep := E13(11)
	if !rep.Pass {
		t.Fatalf("E13 failed:\n%s", rep)
	}
}
