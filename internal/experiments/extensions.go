package experiments

import (
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/security"
	"gameofcoins/internal/trace"
)

// E11 quantifies the §6 "bad configurations" concern: along a reward-design
// run, how insecure do the intermediate configurations get? Stage 1 parks
// every miner on one coin, so the run necessarily transits states where the
// largest miner dominates and every other coin has zero hashrate.
func E11(seed uint64) *Report {
	rep := &Report{
		ID:    "E11",
		Title: "§6 follow-up — security of intermediate configurations",
		Claim: "open concern in the paper: dynamics may pass through configurations where one miner dominates a coin, breaking its security",
	}
	g := e2Game()
	eqs, err := equilibria.Enumerate(g)
	if err != nil || len(eqs) < 2 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("equilibria unavailable: %v", err))
		return rep
	}
	s0, sf := eqs[0], eqs[len(eqs)-1]

	var during security.Trajectory
	during.Observe(g, s0)
	// Observe every intermediate configuration with a scheduler wrapper
	// that snoops each configuration it is asked to act on.
	snoop := func() learning.Scheduler {
		return &snoopScheduler{inner: learning.NewRandom(), g: g, traj: &during}
	}
	d, err := design.NewDesigner(g, design.Options{NewScheduler: snoop})
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	res, err := d.Run(s0, sf, rng.New(seed))
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}

	startWorst := security.WorstMaxShare(g, s0)
	endWorst := security.WorstMaxShare(g, res.Final)
	tbl := trace.NewTable("metric", "value")
	tbl.AddRow("worst single-miner share at s0", startWorst)
	tbl.AddRow("worst single-miner share at sf", endWorst)
	tbl.AddRow("peak single-miner share during run", during.PeakMaxShare)
	tbl.AddRow("peak per-coin HHI during run", during.PeakHHI)
	tbl.AddRow("fraction of insecure intermediate states", during.InsecureFraction())
	rep.Table = tbl
	// Stage 1 forces everyone onto one coin: peak dominance must reach p1's
	// share of total power, far above the equilibrium levels.
	p1Share := g.Power(0) / g.TotalPower()
	rep.Pass = res.Final.Equal(sf) && during.PeakMaxShare >= p1Share && during.PeakMaxShare > endWorst
	rep.Notes = append(rep.Notes,
		"stage 1 provably transits the all-on-one-coin state: every other coin has zero hashrate and the",
		"target coin is dominated by the largest miner — the §6 'killing security for a while' scenario, quantified")
	return rep
}

// snoopScheduler wraps a scheduler and records the security trajectory of
// every configuration it is shown.
type snoopScheduler struct {
	inner learning.Scheduler
	g     *core.Game
	traj  *security.Trajectory
}

func (s *snoopScheduler) Name() string { return s.inner.Name() }

func (s *snoopScheduler) Next(g *core.Game, cfg core.Config, r *rng.Rand) (core.MinerID, core.CoinID, bool) {
	s.traj.Observe(s.g, cfg)
	return s.inner.Next(g, cfg, r)
}

// E12 is the simultaneous-update ablation: the same games that always
// converge under sequential better response can cycle forever when all
// unstable miners move at once — justifying the paper's sequential model.
func E12(seed uint64) *Report {
	rep := &Report{
		ID:    "E12",
		Title: "ablation — simultaneous vs sequential better response",
		Claim: "Theorem 1's sequential-moves assumption is necessary: simultaneous best-response updates can cycle",
	}
	r := rng.New(seed)
	const trials = 100
	cycled, converged := 0, 0
	seqOK := 0
	for trial := 0; trial < trials; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 2 + r.Intn(6), Coins: 2 + r.Intn(3)})
		if err != nil {
			continue
		}
		s0 := core.RandomConfig(r, g)
		sres, err := learning.RunSimultaneous(g, s0, 500)
		if err != nil {
			continue
		}
		if sres.Cycled {
			cycled++
		}
		if sres.Converged {
			converged++
		}
		if lres, err := learning.Run(g, s0, learning.NewRandom(), r.Split(), learning.Options{}); err == nil && lres.Converged {
			seqOK++
		}
	}
	// The canonical cycling instance (Proposition 1's game) always cycles.
	symm := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	symmRes, err := learning.RunSimultaneous(symm, core.Config{0, 0}, 100)
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	tbl := trace.NewTable("dynamic", "trials", "converged", "cycled")
	tbl.AddRow("simultaneous", trials, converged, cycled)
	tbl.AddRow("sequential (random scheduler)", trials, seqOK, 0)
	rep.Table = tbl
	rep.Pass = symmRes.Cycled && seqOK == trials && cycled > 0
	rep.Notes = append(rep.Notes,
		"the symmetric 2-miner game cycles deterministically under simultaneous updates (both miners chase the empty coin together)",
		fmt.Sprintf("random games: %d/%d cycled under simultaneous updates; sequential converged %d/%d", cycled, trials, seqOK, trials))
	return rep
}

// E13 is the design ablation: Algorithm 2's staged mechanism vs the naive
// one-shot subsidy. Staged reaches the exact target always (Theorem 2);
// naive frequently lands at the wrong equilibrium.
func E13(seed uint64) *Report {
	rep := &Report{
		ID:    "E13",
		Title: "ablation — staged reward design vs naive one-shot subsidy",
		Claim: "single-shot subsidies cannot steer the learning path; the staged mechanism is necessary for exact targeting",
	}
	r := rng.New(seed)
	stagedHits, naiveHits, pairs := 0, 0, 0
	var stagedCost, naiveCost float64
	for trial := 0; trial < 300 && pairs < 60; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 2})
		if err != nil {
			continue
		}
		strict := true
		for p := 0; p+1 < g.NumMiners(); p++ {
			if !(g.Power(p) > g.Power(p+1)) {
				strict = false
			}
		}
		if !strict {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		d, err := design.NewDesigner(g, design.Options{})
		if err != nil {
			continue
		}
		for _, s0 := range eqs {
			for _, sf := range eqs {
				if s0.Equal(sf) || pairs >= 60 {
					continue
				}
				pairs++
				if res, err := d.Run(s0, sf, r.Split()); err == nil && res.Final.Equal(sf) {
					stagedHits++
					stagedCost += res.TotalCost
				}
				if res, err := design.NaiveOneShot(g, s0, sf, learning.NewRandom(), r.Split()); err == nil {
					naiveCost += res.Cost
					if res.Reached {
						naiveHits++
					}
				}
			}
		}
	}
	tbl := trace.NewTable("mechanism", "pairs", "target reached", "mean cost")
	if pairs > 0 {
		tbl.AddRow("staged (Algorithm 2)", pairs, stagedHits, stagedCost/float64(pairs))
		tbl.AddRow("naive one-shot", pairs, naiveHits, naiveCost/float64(pairs))
	}
	rep.Table = tbl
	rep.Pass = pairs > 0 && stagedHits == pairs && naiveHits < pairs
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("staged hit rate %d/%d; naive hit rate %d/%d", stagedHits, pairs, naiveHits, pairs),
		"under the one-shot rewards sf is an equilibrium but rarely the one learning finds from s0")
	return rep
}
