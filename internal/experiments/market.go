package experiments

import (
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/manip"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/stats"
	"gameofcoins/internal/trace"
)

// E1 regenerates Figure 1: the BTC→BCH hashrate migration driven by the
// November-2017 exchange-rate swing, on the synthetic replay scenario.
func E1(seed uint64) *Report {
	rep := &Report{
		ID:    "E1",
		Title: "Figure 1 — BTC/BCH exchange rates and hashrate migration",
		Claim: "a sharp BCH/BTC rate swing pulls miners from BTC to BCH; hashrate tracks relative profitability",
	}
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    150,
		Epochs:    24 * 75,
		SpikeHour: 24 * 30,
		Seed:      seed,
	})
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	sc.Run()
	out := sc.Outcome()

	// Relative rate series for the (a) panel.
	rel := trace.NewSeries("bch/btc rate")
	btc := sc.Sim.RateSeries[sc.BTC]
	bch := sc.Sim.RateSeries[sc.BCH]
	for i := range bch.Xs {
		rel.Add(bch.Xs[i], bch.Ys[i]/btc.Ys[i])
	}
	rep.Plots = append(rep.Plots,
		trace.Plot(trace.PlotOptions{Title: "(a) BCH/BTC relative exchange rate", Width: 64, Height: 10}, rel),
		trace.Plot(trace.PlotOptions{Title: "(b) BCH hashrate share", Width: 64, Height: 10},
			sc.Sim.ShareSeries[sc.BCH]),
	)
	corr := stats.Correlation(rel.Ys, sc.Sim.ShareSeries[sc.BCH].Ys)
	tbl := trace.NewTable("metric", "value")
	tbl.AddRow("pre-spike BCH share", out.PreSpikeBCHShare)
	tbl.AddRow("peak BCH share", out.PeakBCHShare)
	tbl.AddRow("final BCH share", out.FinalBCHShare)
	tbl.AddRow("rate/share correlation", corr)
	rep.Table = tbl
	rep.Pass = out.PeakBCHShare > 1.8*out.PreSpikeBCHShare && corr > 0.5
	rep.Notes = append(rep.Notes,
		"expected shape (paper Fig. 1): share spikes with the rate swing and relaxes as RPUs equalize",
		"synthetic substitution for bitinfocharts data; see DESIGN.md §1")
	return rep
}

// E9 measures manipulation economics: the bounded reward-design cost of
// buying a preferred equilibrium versus the indefinite per-epoch payoff gain
// at the destination (§1's "finite cost, indefinite advantage").
func E9(seed uint64) *Report {
	rep := &Report{
		ID:    "E9",
		Title: "§1/§5 — whale-attack return on investment",
		Claim: "a manipulator pays a finite reward-design cost and gains a payoff advantage indefinitely",
	}
	r := rng.New(seed)
	tbl := trace.NewTable("game", "miner", "design cost", "gain/epoch", "breakeven epochs")
	rows := 0
	rep.Pass = true
	for trial := 0; trial < 200 && rows < 8; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 2})
		if err != nil {
			continue
		}
		strict := true
		for p := 0; p+1 < g.NumMiners(); p++ {
			if !(g.Power(p) > g.Power(p+1)) {
				strict = false
			}
		}
		if !strict {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		s0 := eqs[0]
		imp, err := equilibria.BetterEquilibriumFor(g, s0)
		if err != nil {
			continue
		}
		d, err := design.NewDesigner(g, design.Options{})
		if err != nil {
			continue
		}
		res, err := d.Run(s0, imp.Better, r.Split())
		if err != nil {
			rep.Notes = append(rep.Notes, fmt.Sprintf("design failed: %v", err))
			rep.Pass = false
			continue
		}
		rows++
		breakeven := res.TotalCost / imp.Gain
		tbl.AddRow(rows, fmt.Sprintf("p%d", imp.Miner+1), res.TotalCost, imp.Gain, breakeven)
		if !(res.TotalCost > 0) || !(imp.Gain > 0) {
			rep.Pass = false
		}
	}
	rep.Table = tbl
	if rows == 0 {
		rep.Pass = false
	}
	rep.Notes = append(rep.Notes,
		"cost is Σ max(0, H(c)−F(c)) per learning phase; gain is the miner's payoff delta at the bought equilibrium",
		"breakeven = epochs after which the indefinite gain exceeds the bounded cost")
	return rep
}

// WhaleDemo is used by the whale-attack example and its tests: inject a
// standing whale subsidy into a live market and report the induced
// migration. It is exported here so example code and tests share it.
func WhaleDemo(seed uint64, epochs int) (migrated float64, spend float64, err error) {
	sc, err := replay.New(replay.ScenarioParams{
		Miners:    100,
		Epochs:    1,       // built but driven manually below
		SpikeHour: 1 << 30, // never: the whale, not the market, moves rates
		Seed:      seed,
	})
	if err != nil {
		return 0, 0, err
	}
	var ledger manip.Ledger
	s := sc.Sim
	// Drive manually: subsidize BCH every epoch.
	for e := 0; e < epochs; e++ {
		if err := manip.WhaleTx(s, &ledger, sc.BCH, 40); err != nil {
			return 0, 0, err
		}
		s.Run(1)
	}
	powers := s.CoinPowers()
	total := powers[sc.BTC] + powers[sc.BCH]
	return powers[sc.BCH] / total, ledger.Total(), nil
}
