package experiments

import (
	"context"
	"fmt"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
)

// suiteEntry pairs an experiment ID with its runner so callers can select a
// subset before any experiment executes.
type suiteEntry struct {
	id string
	fn func() *Report
}

// suite enumerates the experiment functions in report order. Every
// experiment builds its own rng from the seed and touches no shared state,
// so the suite is embarrassingly parallel and — crucially — its reports are
// byte-identical whether run sequentially (Selected) or fanned across
// workers (SelectedParallel).
func suite(seed uint64) []suiteEntry {
	return []suiteEntry{
		{"E1", func() *Report { return E1(seed) }},
		{"E2", func() *Report { return E2(seed) }},
		{"E3", func() *Report { return E3() }},
		{"E4", func() *Report { return E4(seed) }},
		{"E5", func() *Report { return E5(seed) }},
		{"E6", func() *Report { return E6(seed) }},
		{"E7", func() *Report { return E7(seed) }},
		{"E8", func() *Report { return E8(seed) }},
		{"E9", func() *Report { return E9(seed) }},
		{"E10", func() *Report { return E10(seed) }},
		{"E11", func() *Report { return E11(seed) }},
		{"E12", func() *Report { return E12(seed) }},
		{"E13", func() *Report { return E13(seed) }},
	}
}

// selectEntries keeps the suite entries whose ID is in only (suite order);
// a nil or empty filter selects everything. Unknown IDs select nothing.
func selectEntries(seed uint64, only map[string]bool) []suiteEntry {
	entries := suite(seed)
	if len(only) == 0 {
		return entries
	}
	var kept []suiteEntry
	for _, e := range entries {
		if only[e.id] {
			kept = append(kept, e)
		}
	}
	return kept
}

// Selected runs the experiments whose IDs are in only (nil/empty = all)
// sequentially and returns the reports in suite order.
func Selected(seed uint64, only map[string]bool) []*Report {
	entries := selectEntries(seed, only)
	reports := make([]*Report, len(entries))
	for i, e := range entries {
		reports[i] = e.fn()
	}
	return reports
}

// SelectedParallel runs the experiments whose IDs are in only (nil/empty =
// all) across the given number of workers via the concurrent experiment
// engine, returning reports in suite order. The reports are identical to
// Selected's; only wall-clock time changes.
func SelectedParallel(ctx context.Context, seed uint64, workers int, only map[string]bool) ([]*Report, error) {
	entries := selectEntries(seed, only)
	spec := engine.Func{
		Name: "experiment_suite",
		N:    len(entries),
		Task: func(_ context.Context, i int, _ *rng.Rand) (any, error) {
			return entries[i].fn(), nil
		},
	}
	res, err := engine.New(workers).Run(ctx, spec, seed, nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	raw := res.([]any)
	reports := make([]*Report, len(raw))
	for i, r := range raw {
		reports[i] = r.(*Report)
	}
	return reports, nil
}

// AllParallel runs the full E1–E13 suite across workers; see
// SelectedParallel.
func AllParallel(ctx context.Context, seed uint64, workers int) ([]*Report, error) {
	return SelectedParallel(ctx, seed, workers, nil)
}
