// Package experiments implements the E1–E13 experiment suite indexed in
// DESIGN.md §6: one function per paper artifact (figure, proposition, theorem,
// or discussion follow-up), each returning a Report with the table/series
// the paper-shaped output needs. cmd/gocbench renders reports to the
// terminal; bench_test.go wraps them in testing.B benchmarks; EXPERIMENTS.md
// records the measured shapes against the paper's claims.
package experiments

import (
	"fmt"
	"strings"

	"gameofcoins/internal/trace"
)

// Report is one experiment's output.
type Report struct {
	ID    string
	Title string
	// Claim is the paper statement under test.
	Claim string
	// Table is the primary tabular result (may be nil).
	Table *trace.Table
	// Plots are pre-rendered ASCII charts.
	Plots []string
	// Notes carry measured-vs-expected commentary for EXPERIMENTS.md.
	Notes []string
	// Pass reports whether the measured shape matches the paper's claim.
	Pass bool
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	status := "PASS"
	if !r.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(&b, "== %s: %s [%s]\n", r.ID, r.Title, status)
	fmt.Fprintf(&b, "claim: %s\n\n", r.Claim)
	if r.Table != nil {
		b.WriteString(r.Table.String())
		b.WriteByte('\n')
	}
	for _, p := range r.Plots {
		b.WriteString(p)
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// All runs every experiment sequentially with the given seed and returns
// the reports in order. AllParallel (parallel.go) is the same suite fanned
// across the concurrent experiment engine; Selected/SelectedParallel run
// ID-filtered subsets.
func All(seed uint64) []*Report {
	return Selected(seed, nil)
}
