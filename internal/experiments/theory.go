package experiments

import (
	"fmt"
	"math"

	"gameofcoins/internal/core"
	"gameofcoins/internal/design"
	"gameofcoins/internal/equilibria"
	"gameofcoins/internal/learning"
	"gameofcoins/internal/numeric"
	"gameofcoins/internal/potential"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/stats"
	"gameofcoins/internal/trace"
)

// e2Game returns the reference game used by the design-trace experiments:
// strictly descending powers, two equilibria, Assumptions 1–2 satisfied.
func e2Game() *core.Game {
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 23},
			{Name: "p2", Power: 17},
			{Name: "p3", Power: 13},
			{Name: "p4", Power: 11},
			{Name: "p5", Power: 7},
			{Name: "p6", Power: 5},
			{Name: "p7", Power: 3},
			{Name: "p8", Power: 2},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{29, 31, 37},
	)
}

// E2 regenerates Figure 2: the stage/iteration structure of Algorithm 2 on
// a concrete run, with per-stage movers, iterations, steps, and cost.
func E2(seed uint64) *Report {
	rep := &Report{
		ID:    "E2",
		Title: "Figure 2 — reward design stages and iterations",
		Claim: "Algorithm 2 moves the system s0 → sf in n stages; stage i moves the n−i+1 smallest miners onto sf.p_i, one mover per iteration",
	}
	g := e2Game()
	eqs, err := equilibria.Enumerate(g)
	if err != nil || len(eqs) < 2 {
		rep.Notes = append(rep.Notes, fmt.Sprintf("equilibria unavailable: %v (%d found)", err, len(eqs)))
		return rep
	}
	s0, sf := eqs[0], eqs[len(eqs)-1]
	d, err := design.NewDesigner(g, design.Options{CheckInvariants: true})
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	res, err := d.Run(s0, sf, rng.New(seed))
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	tbl := trace.NewTable("stage", "target coin", "iterations", "br steps", "cost")
	for _, st := range res.Stages {
		tbl.AddRow(st.Stage, fmt.Sprintf("c%d", sf[st.Stage-1]), st.Iterations, st.Steps, st.Cost)
	}
	rep.Table = tbl
	rep.Pass = res.Final.Equal(sf)
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("s0=%v  sf=%v  total steps=%d  total cost=%.4g", s0, sf, res.TotalSteps, res.TotalCost),
		"every within-stage learning phase ran with Lemma-1 Ψ invariants enabled")
	return rep
}

// E3 verifies Proposition 1's counterexample in exact arithmetic: the
// 4-cycle payoff-change sum is exactly 2/3, so no exact potential exists.
func E3() *Report {
	rep := &Report{
		ID:    "E3",
		Title: "Proposition 1 — no exact potential (exact arithmetic)",
		Claim: "for Π={2,1}, C={c1,c2}, F≡1, the unilateral 4-cycle s1→s2→s3→s4→s1 has payoff-change sum 2/3 ≠ 0",
	}
	// Exact payoffs of the four configurations, straight from the paper.
	third := numeric.NewRat(1, 3)
	twoThirds := numeric.NewRat(2, 3)
	one := numeric.RatFromInt(1)
	tbl := trace.NewTable("config", "u_p1", "u_p2")
	tbl.AddRow("s1=⟨c1,c1⟩", twoThirds.String(), third.String())
	tbl.AddRow("s2=⟨c1,c2⟩", one.String(), one.String())
	tbl.AddRow("s3=⟨c2,c2⟩", twoThirds.String(), third.String())
	tbl.AddRow("s4=⟨c2,c1⟩", one.String(), one.String())
	rep.Table = tbl
	// Cycle moves: p2: s1→s2 (Δ=1−1/3), p1: s2→s3 (Δ=2/3−1), p2: s3→s4
	// (Δ=1−1/3), p1: s4→s1 (Δ=2/3−1).
	sum := one.Sub(third).Add(twoThirds.Sub(one)).Add(one.Sub(third)).Add(twoThirds.Sub(one))
	rep.Notes = append(rep.Notes, fmt.Sprintf("exact cycle sum = %s (paper: 2/3)", sum.String()))
	// Cross-check with the float engine's generic searcher.
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c1"}, {Name: "c2"}},
		[]float64{1, 1},
	)
	w := potential.FindExactPotentialViolation(g, core.Config{0, 0}, 1e-9)
	rep.Pass = sum.Equal(numeric.NewRat(2, 3)) && w != nil && math.Abs(math.Abs(w.Sum)-2.0/3.0) < 1e-12
	if w != nil {
		rep.Notes = append(rep.Notes, fmt.Sprintf("float-engine witness sum = %.6g", w.Sum))
	}
	return rep
}

// E4 is the Theorem 1 sweep: steps-to-equilibrium distribution of random
// better-response learning over random games of growing size.
func E4(seed uint64) *Report {
	rep := &Report{
		ID:    "E4",
		Title: "Theorem 1 — better-response learning always converges",
		Claim: "every better-response learning converges to a pure equilibrium, for any miner powers and coin rewards",
	}
	r := rng.New(seed)
	tbl := trace.NewTable("miners", "coins", "runs", "converged", "steps mean", "steps p95", "steps max")
	rep.Pass = true
	for _, n := range []int{4, 8, 16, 32, 64} {
		for _, m := range []int{2, 4, 8} {
			const runs = 30
			var steps []float64
			conv := 0
			for i := 0; i < runs; i++ {
				g, err := core.RandomGame(r, core.GenSpec{Miners: n, Coins: m})
				if err != nil {
					rep.Notes = append(rep.Notes, err.Error())
					rep.Pass = false
					continue
				}
				res, err := learning.Run(g, core.RandomConfig(r, g), learning.NewRandom(), r.Split(), learning.Options{})
				if err != nil {
					rep.Pass = false
					rep.Notes = append(rep.Notes, fmt.Sprintf("n=%d m=%d: %v", n, m, err))
					continue
				}
				if res.Converged && g.IsEquilibrium(res.Final) {
					conv++
				}
				steps = append(steps, float64(res.Steps))
			}
			sum := stats.Summarize(steps)
			tbl.AddRow(n, m, runs, conv, sum.Mean, sum.P95, sum.Max)
			if conv != runs {
				rep.Pass = false
			}
		}
	}
	rep.Table = tbl
	rep.Notes = append(rep.Notes, "expected shape: 100% convergence everywhere; steps grow with n and m")
	return rep
}

// E5 verifies Appendix B: in symmetric games the closed-form potential
// Σ 1/M_c strictly decreases along the realized improving path.
func E5(seed uint64) *Report {
	rep := &Report{
		ID:    "E5",
		Title: "Appendix B — symmetric-case ordinal potential",
		Claim: "with equal coin rewards, H(s)=Σ_c 1/M_c(s) strictly decreases on every better-response step",
	}
	r := rng.New(seed)
	miners := make([]core.Miner, 12)
	for i := range miners {
		miners[i] = core.Miner{Name: fmt.Sprintf("p%d", i), Power: 0.5 + 20*r.Float64()}
	}
	g := core.MustNewGame(miners,
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}, {Name: "c3"}},
		[]float64{10, 10, 10, 10})
	series := trace.NewSeries("Σ 1/M_c")
	violations := 0
	prev := core.RandomConfig(r, g)
	step := 0
	if sum, empty := potential.SymmetricPotential(g, prev); empty == 0 {
		series.Add(0, sum)
	}
	res, err := learning.Run(g, prev, learning.NewRandom(), r, learning.Options{
		Observer: func(_ learning.Move, s core.Config) {
			step++
			if !potential.SymmetricLess(g, prev, s) {
				violations++
			}
			if sum, empty := potential.SymmetricPotential(g, s); empty == 0 {
				series.Add(float64(step), sum)
			}
			prev = s.Clone()
		},
	})
	if err != nil {
		rep.Notes = append(rep.Notes, err.Error())
		return rep
	}
	rep.Pass = violations == 0 && res.Converged
	rep.Plots = append(rep.Plots, trace.Plot(trace.PlotOptions{
		Title: "symmetric potential along the improving path", Width: 64, Height: 12,
	}, series))
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("steps=%d violations=%d converged=%v", res.Steps, violations, res.Converged))
	return rep
}

// E6 tests Proposition 2 exhaustively on sampled games: for every
// equilibrium of a game satisfying Assumptions 1–2 there is a miner who
// strictly prefers another equilibrium.
func E6(seed uint64) *Report {
	rep := &Report{
		ID:    "E6",
		Title: "Proposition 2 — there is often a better equilibrium",
		Claim: "under Assumptions 1–2, every stable configuration is dominated for some miner by another stable configuration",
	}
	r := rng.New(seed)
	tbl := trace.NewTable("games", "equilibria", "with better eq", "mean gain")
	games, eqCount, improved := 0, 0, 0
	var gains []float64
	for trial := 0; trial < 400 && games < 25; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 6, Coins: 2})
		if err != nil {
			continue
		}
		if g.CheckNeverAlone() != nil || g.CheckGeneric() != nil {
			continue
		}
		games++
		eqs, err := equilibria.Enumerate(g)
		if err != nil {
			continue
		}
		for _, e := range eqs {
			eqCount++
			imp, err := equilibria.BetterEquilibriumFor(g, e)
			if err == nil {
				improved++
				gains = append(gains, imp.Gain)
			}
		}
	}
	tbl.AddRow(games, eqCount, improved, stats.Mean(gains))
	rep.Table = tbl
	rep.Pass = games > 0 && eqCount > 0 && improved == eqCount
	rep.Notes = append(rep.Notes, "expected shape: 100% of equilibria admit a strictly-better equilibrium for some miner")
	return rep
}

// E7 is the Theorem 2 sweep: the reward design mechanism terminates at the
// desired equilibrium for every sampled (s0, sf) pair.
func E7(seed uint64) *Report {
	rep := &Report{
		ID:    "E7",
		Title: "Theorem 2 — reward design always reaches the target",
		Claim: "Algorithm 2 moves any initial equilibrium to any desired equilibrium in finitely many iterations per stage",
	}
	r := rng.New(seed)
	tbl := trace.NewTable("games", "pairs", "reached", "mean iters/stage", "mean cost", "mean steps")
	games, pairs, reached := 0, 0, 0
	var iters, costs, steps []float64
	for trial := 0; trial < 200 && games < 12; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 2})
		if err != nil {
			continue
		}
		strict := true
		for p := 0; p+1 < g.NumMiners(); p++ {
			if !(g.Power(p) > g.Power(p+1)) {
				strict = false
			}
		}
		if !strict {
			continue
		}
		eqs, err := equilibria.Enumerate(g)
		if err != nil || len(eqs) < 2 {
			continue
		}
		games++
		d, err := design.NewDesigner(g, design.Options{CheckInvariants: true})
		if err != nil {
			continue
		}
		for _, s0 := range eqs {
			for _, sf := range eqs {
				if s0.Equal(sf) {
					continue
				}
				pairs++
				res, err := d.Run(s0, sf, r.Split())
				if err != nil {
					rep.Notes = append(rep.Notes, fmt.Sprintf("pair failed: %v", err))
					continue
				}
				if res.Final.Equal(sf) {
					reached++
				}
				var it float64
				for _, st := range res.Stages {
					it += float64(st.Iterations)
				}
				iters = append(iters, it/float64(len(res.Stages)))
				costs = append(costs, res.TotalCost)
				steps = append(steps, float64(res.TotalSteps))
			}
		}
	}
	tbl.AddRow(games, pairs, reached, stats.Mean(iters), stats.Mean(costs), stats.Mean(steps))
	rep.Table = tbl
	rep.Pass = pairs > 0 && reached == pairs
	rep.Notes = append(rep.Notes, "expected shape: 100% of pairs reached; iterations per stage stay small")
	return rep
}

// E8 answers the paper's §6 open question empirically: convergence speed by
// scheduler as a function of the number of miners.
func E8(seed uint64) *Report {
	rep := &Report{
		ID:    "E8",
		Title: "§6 follow-up — convergence speed by scheduler",
		Claim: "open question in the paper: how fast is better-response convergence under specific markets/orders?",
	}
	r := rng.New(seed)
	sizes := []int{4, 8, 16, 32, 64}
	tbl := trace.NewTable(append([]string{"miners"}, schedulerNames()...)...)
	plots := map[string]*trace.Series{}
	for _, name := range schedulerNames() {
		plots[name] = trace.NewSeries(name)
	}
	rep.Pass = true
	for _, n := range sizes {
		row := []any{n}
		for _, name := range schedulerNames() {
			const runs = 15
			var steps []float64
			for i := 0; i < runs; i++ {
				g, err := core.RandomGame(r, core.GenSpec{Miners: n, Coins: 4})
				if err != nil {
					rep.Pass = false
					continue
				}
				res, err := learning.Run(g, core.RandomConfig(r, g), schedulerByName(name), r.Split(), learning.Options{})
				if err != nil {
					rep.Pass = false
					continue
				}
				steps = append(steps, float64(res.Steps))
			}
			mean := stats.Mean(steps)
			row = append(row, mean)
			plots[name].Add(float64(n), mean)
		}
		tbl.AddRow(row...)
	}
	rep.Table = tbl
	var series []*trace.Series
	for _, name := range schedulerNames() {
		series = append(series, plots[name])
	}
	rep.Plots = append(rep.Plots, trace.Plot(trace.PlotOptions{
		Title: "mean steps to equilibrium vs miners", Width: 64, Height: 14,
	}, series...))
	// Shape check: every scheduler's mean steps grow with n, and max-gain
	// should beat min-gain at the largest size.
	first, last := plots["max-gain"].Ys[0], plots["max-gain"].Ys[len(plots["max-gain"].Ys)-1]
	if !(last > first) {
		rep.Pass = false
	}
	if !(plots["min-gain"].Ys[len(sizes)-1] >= plots["max-gain"].Ys[len(sizes)-1]) {
		rep.Notes = append(rep.Notes, "warning: adversarial scheduler did not dominate greedy at max size")
	}
	slope, _ := stats.LinearFit(plots["random"].Xs, plots["random"].Ys)
	rep.Notes = append(rep.Notes, fmt.Sprintf("random-scheduler growth ≈ %.2f steps per added miner", slope))
	return rep
}

func schedulerNames() []string {
	return []string{"round-robin", "random", "max-gain", "min-gain", "smallest-first", "largest-first"}
}

func schedulerByName(name string) learning.Scheduler {
	s, err := learning.SchedulerByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// E10 probes the §6 asymmetric extension: random eligibility-restricted
// games, measuring empirical convergence (the paper leaves the theory open).
func E10(seed uint64) *Report {
	rep := &Report{
		ID:    "E10",
		Title: "§6 follow-up — asymmetric (restricted) mining",
		Claim: "open question in the paper: convergence when some coins are minable only by subsets of miners",
	}
	r := rng.New(seed)
	const trials = 120
	converged := 0
	var steps []float64
	for trial := 0; trial < trials; trial++ {
		nm, nc := 4+r.Intn(6), 2+r.Intn(3)
		miners := make([]core.Miner, nm)
		for i := range miners {
			miners[i] = core.Miner{Name: fmt.Sprintf("p%d", i), Power: 0.5 + 10*r.Float64()}
		}
		coins := make([]core.Coin, nc)
		rewards := make([]float64, nc)
		for c := range coins {
			coins[c] = core.Coin{Name: fmt.Sprintf("c%d", c)}
			rewards[c] = 1 + 30*r.Float64()
		}
		masks := make([]int, nm)
		for p := range masks {
			masks[p] = 1 + r.Intn(1<<nc-1)
		}
		g, err := core.NewGame(miners, coins, rewards,
			core.WithEligibility(func(p core.MinerID, c core.CoinID) bool {
				return masks[p]&(1<<c) != 0
			}))
		if err != nil {
			continue
		}
		res, err := learning.Run(g, core.RandomConfig(r, g), learning.NewRandom(), r.Split(), learning.Options{})
		if err == nil && res.Converged && g.IsEquilibrium(res.Final) {
			converged++
			steps = append(steps, float64(res.Steps))
		}
	}
	tbl := trace.NewTable("trials", "converged", "steps mean", "steps max")
	sum := stats.Summarize(steps)
	tbl.AddRow(trials, converged, sum.Mean, sum.Max)
	rep.Table = tbl
	rep.Pass = converged == trials
	rep.Notes = append(rep.Notes,
		"the ordinal-potential proof does not depend on which moves are *available*, only that taken moves improve RPU;",
		"restricting move sets preserves every improving step's potential increase, so convergence extends — observed 100% here")
	return rep
}
