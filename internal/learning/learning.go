// Package learning implements better-response dynamics over games from
// internal/core.
//
// Theorem 1 of "Game of Coins" quantifies over *arbitrary* better-response
// learning: whenever any miner can improve, some miner takes some improving
// step, in any order. The package therefore separates the dynamics engine
// (Run) from the choice of which improving move to take (Scheduler), and
// ships a family of schedulers including deliberately adversarial ones; the
// test suite asserts convergence for all of them, which is the executable
// form of the theorem.
package learning

import (
	"errors"
	"fmt"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// Move is one improving step: miner Miner moved From → To, changing their
// payoff PayoffBefore → PayoffAfter.
type Move struct {
	Miner        core.MinerID
	From, To     core.CoinID
	PayoffBefore float64
	PayoffAfter  float64
}

// Scheduler selects the next better-response step. Implementations may keep
// state across calls within one Run (e.g. a round-robin cursor) but must be
// reset or freshly constructed per Run. Next returns ok=false iff no miner
// has a better response, i.e. s is a pure equilibrium.
type Scheduler interface {
	// Next picks an improving move in s, or reports ok=false at equilibrium.
	Next(g *core.Game, s core.Config, r *rng.Rand) (p core.MinerID, c core.CoinID, ok bool)
	// Name identifies the scheduler in traces and experiment tables.
	Name() string
}

// ErrStepLimit is returned by Run when MaxSteps is exhausted before reaching
// an equilibrium. Theorem 1 guarantees this never fires for a correct
// scheduler and a generous limit; its presence is a safety net against
// scheduler bugs (e.g. returning non-improving moves, which would cycle).
var ErrStepLimit = errors.New("learning: step limit reached before convergence")

// ErrBadMove is returned by Run when a scheduler proposes a move that is not
// a better response — a scheduler bug that would invalidate Theorem 1's
// premise.
var ErrBadMove = errors.New("learning: scheduler proposed a non-improving move")

// Options configure a Run.
type Options struct {
	// MaxSteps caps the number of better-response steps; 0 means the default
	// of 1000·|Π|·|C| + 1000, far above observed convergence times.
	MaxSteps int
	// RecordMoves retains the full move sequence in Result.Moves.
	RecordMoves bool
	// Observer, if non-nil, is invoked after every applied move with the
	// move and the resulting configuration. The configuration must not be
	// retained or mutated.
	Observer func(Move, core.Config)
	// Invariant, if non-nil, is checked after every applied move; a non-nil
	// error aborts the run. Reward design tests use this to enforce the
	// Ψ₁–Ψ₅ invariants of Lemma 1.
	Invariant func(core.Config) error
}

// Result reports the outcome of a Run.
type Result struct {
	Final     core.Config
	Steps     int
	Converged bool
	Moves     []Move // populated iff Options.RecordMoves
	Scheduler string
}

// Run executes better-response learning in g from s0 under the given
// scheduler until equilibrium. It never mutates s0. By Theorem 1 the
// dynamics converge for every scheduler that returns genuine better
// responses; Run verifies each proposed move and returns ErrBadMove
// otherwise.
func Run(g *core.Game, s0 core.Config, sched Scheduler, r *rng.Rand, opts Options) (Result, error) {
	if err := g.ValidateConfig(s0); err != nil {
		return Result{}, fmt.Errorf("learning: initial config: %w", err)
	}
	maxSteps := opts.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1000*g.NumMiners()*g.NumCoins() + 1000
	}
	s := s0.Clone()
	res := Result{Scheduler: sched.Name()}
	for step := 0; step < maxSteps; step++ {
		p, c, ok := sched.Next(g, s, r)
		if !ok {
			res.Final = s
			res.Converged = true
			return res, nil
		}
		if !g.IsBetterResponse(s, p, c) {
			return Result{}, fmt.Errorf("%w: miner %d to coin %d in %v", ErrBadMove, p, c, s)
		}
		mv := Move{
			Miner:        p,
			From:         s[p],
			To:           c,
			PayoffBefore: g.Payoff(s, p),
		}
		s[p] = c
		mv.PayoffAfter = g.Payoff(s, p)
		res.Steps++
		if opts.RecordMoves {
			res.Moves = append(res.Moves, mv)
		}
		if opts.Observer != nil {
			opts.Observer(mv, s)
		}
		if opts.Invariant != nil {
			if err := opts.Invariant(s); err != nil {
				return Result{}, fmt.Errorf("learning: invariant after step %d: %w", res.Steps, err)
			}
		}
	}
	res.Final = s
	return res, fmt.Errorf("%w: %d steps under %s", ErrStepLimit, maxSteps, sched.Name())
}
