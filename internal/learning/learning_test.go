package learning

import (
	"errors"
	"fmt"
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/potential"
	"gameofcoins/internal/rng"
)

func testGame(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
			{Name: "p6", Power: 2},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{17, 19, 23},
	)
}

func TestRunConvergesAllSchedulers(t *testing.T) {
	g := testGame(t)
	for _, sched := range AllSchedulers() {
		t.Run(sched.Name(), func(t *testing.T) {
			r := rng.New(1)
			res, err := Run(g, core.UniformConfig(g.NumMiners(), 0), sched, r, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatal("did not converge")
			}
			if !g.IsEquilibrium(res.Final) {
				t.Fatalf("final config %v not an equilibrium", res.Final)
			}
			if res.Scheduler != sched.Name() {
				t.Fatalf("scheduler name %q", res.Scheduler)
			}
		})
	}
}

// TestTheorem1RandomGames is the headline convergence test: every scheduler
// converges on every random game from every random start.
func TestTheorem1RandomGames(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 40; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 3 + r.Intn(8), Coins: 2 + r.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		s0 := core.RandomConfig(r, g)
		for _, sched := range AllSchedulers() {
			res, err := Run(g, s0, sched, r.Split(), Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sched.Name(), err)
			}
			if !g.IsEquilibrium(res.Final) {
				t.Fatalf("trial %d %s: non-equilibrium final", trial, sched.Name())
			}
		}
	}
}

// TestPotentialMonotoneDuringRun: the ordinal potential strictly increases
// along the realized improving path, for every scheduler.
func TestPotentialMonotoneDuringRun(t *testing.T) {
	g := testGame(t)
	for _, sched := range AllSchedulers() {
		prev := core.UniformConfig(g.NumMiners(), 1)
		bad := false
		_, err := Run(g, prev, sched, rng.New(3), Options{
			Observer: func(_ Move, s core.Config) {
				if !potential.Less(g, prev, s) {
					bad = true
				}
				prev = s.Clone()
			},
		})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if bad {
			t.Fatalf("%s: potential not strictly increasing", sched.Name())
		}
	}
}

func TestRunDoesNotMutateInitialConfig(t *testing.T) {
	g := testGame(t)
	s0 := core.UniformConfig(g.NumMiners(), 0)
	orig := s0.Clone()
	if _, err := Run(g, s0, NewRoundRobin(), rng.New(1), Options{}); err != nil {
		t.Fatal(err)
	}
	if !s0.Equal(orig) {
		t.Fatal("Run mutated s0")
	}
}

func TestRunFromEquilibriumIsNoop(t *testing.T) {
	g := testGame(t)
	res, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRoundRobin(), rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(g, res.Final, NewRandom(), rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Steps != 0 || !res2.Final.Equal(res.Final) {
		t.Fatalf("restart from equilibrium moved: %+v", res2)
	}
}

func TestRunRecordsMoves(t *testing.T) {
	g := testGame(t)
	res, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRoundRobin(), rng.New(1), Options{RecordMoves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != res.Steps {
		t.Fatalf("moves %d != steps %d", len(res.Moves), res.Steps)
	}
	for i, mv := range res.Moves {
		if mv.PayoffAfter <= mv.PayoffBefore {
			t.Fatalf("move %d not improving: %+v", i, mv)
		}
		if mv.From == mv.To {
			t.Fatalf("move %d is a self-move", i)
		}
	}
}

func TestRunStepLimit(t *testing.T) {
	g := testGame(t)
	_, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewMinGain(), rng.New(1), Options{MaxSteps: 1})
	if !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want ErrStepLimit", err)
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	g := testGame(t)
	if _, err := Run(g, core.Config{0}, NewRoundRobin(), rng.New(1), Options{}); err == nil {
		t.Fatal("short config accepted")
	}
}

// badScheduler proposes a non-improving move to exercise ErrBadMove.
type badScheduler struct{}

func (badScheduler) Name() string { return "bad" }
func (badScheduler) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	// Propose miner 0 moving to its own coin's worst alternative
	// unconditionally; at an equilibrium this is not improving.
	for c := 0; c < g.NumCoins(); c++ {
		if c != s[0] {
			return 0, c, true
		}
	}
	return 0, 0, false
}

func TestRunDetectsBadScheduler(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "a", Power: 2}, {Name: "b", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{100, 1},
	)
	// Start at the equilibrium-ish config where a move by miner 0 to coin 1
	// is strictly worse.
	_, err := Run(g, core.Config{0, 0}, badScheduler{}, rng.New(1), Options{})
	if !errors.Is(err, ErrBadMove) {
		t.Fatalf("err = %v, want ErrBadMove", err)
	}
}

func TestInvariantAborts(t *testing.T) {
	g := testGame(t)
	sentinel := errors.New("sentinel")
	calls := 0
	_, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRoundRobin(), rng.New(1), Options{
		Invariant: func(core.Config) error {
			calls++
			if calls == 2 {
				return sentinel
			}
			return nil
		},
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("invariant called %d times", calls)
	}
}

func TestObserverSeesEveryStep(t *testing.T) {
	g := testGame(t)
	seen := 0
	res, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRandom(), rng.New(5), Options{
		Observer: func(Move, core.Config) { seen++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != res.Steps {
		t.Fatalf("observer saw %d of %d steps", seen, res.Steps)
	}
}

func TestSchedulersAgreeAtEquilibrium(t *testing.T) {
	g := testGame(t)
	res, err := Run(g, core.UniformConfig(g.NumMiners(), 2), NewMaxGain(), rng.New(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range AllSchedulers() {
		if _, _, ok := sched.Next(g, res.Final, rng.New(9)); ok {
			t.Fatalf("%s proposes a move at equilibrium", sched.Name())
		}
	}
}

func TestDeterministicSchedulersReproducible(t *testing.T) {
	g := testGame(t)
	for _, mk := range []func() Scheduler{
		func() Scheduler { return NewRoundRobin() },
		func() Scheduler { return NewMaxGain() },
		func() Scheduler { return NewMinGain() },
		func() Scheduler { return NewSmallestFirst() },
		func() Scheduler { return NewLargestFirst() },
	} {
		a, err := Run(g, core.UniformConfig(g.NumMiners(), 0), mk(), rng.New(1), Options{RecordMoves: true})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(g, core.UniformConfig(g.NumMiners(), 0), mk(), rng.New(1), Options{RecordMoves: true})
		if err != nil {
			t.Fatal(err)
		}
		if a.Steps != b.Steps || !a.Final.Equal(b.Final) {
			t.Fatalf("%s not reproducible", a.Scheduler)
		}
		for i := range a.Moves {
			if a.Moves[i] != b.Moves[i] {
				t.Fatalf("%s move %d differs", a.Scheduler, i)
			}
		}
	}
}

func TestRandomSchedulerSeedReproducible(t *testing.T) {
	g := testGame(t)
	a, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRandom(), rng.New(77), Options{RecordMoves: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(g, core.UniformConfig(g.NumMiners(), 0), NewRandom(), rng.New(77), Options{RecordMoves: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatal("random scheduler not seed-reproducible")
	}
	for i := range a.Moves {
		if a.Moves[i] != b.Moves[i] {
			t.Fatalf("move %d differs", i)
		}
	}
}

// TestConvergenceWithEligibility: the asymmetric (§6) extension also
// converges empirically for all schedulers.
func TestConvergenceWithEligibility(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 20; trial++ {
		nm, nc := 4+r.Intn(5), 2+r.Intn(3)
		miners := make([]core.Miner, nm)
		for i := range miners {
			miners[i] = core.Miner{Name: fmt.Sprintf("p%d", i), Power: 0.5 + 10*r.Float64()}
		}
		coins := make([]core.Coin, nc)
		rewards := make([]float64, nc)
		for c := range coins {
			coins[c] = core.Coin{Name: fmt.Sprintf("c%d", c)}
			rewards[c] = 1 + 20*r.Float64()
		}
		// Each miner may mine a random non-empty subset of coins.
		masks := make([]int, nm)
		for p := range masks {
			masks[p] = 1 + r.Intn(1<<nc-1)
		}
		g, err := core.NewGame(miners, coins, rewards,
			core.WithEligibility(func(p core.MinerID, c core.CoinID) bool {
				return masks[p]&(1<<c) != 0
			}))
		if err != nil {
			t.Fatal(err)
		}
		s0 := core.RandomConfig(r, g)
		for _, sched := range AllSchedulers() {
			res, err := Run(g, s0, sched, r.Split(), Options{})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sched.Name(), err)
			}
			if !g.IsEquilibrium(res.Final) {
				t.Fatalf("trial %d %s: final not equilibrium", trial, sched.Name())
			}
		}
	}
}
