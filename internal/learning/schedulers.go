package learning

import (
	"fmt"
	"math"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// RoundRobin cycles over miners in MinerID order, and whenever the miner
// under the cursor has a better response it plays that miner's *best*
// response. It is the classic fictitious-play-style update order.
type RoundRobin struct {
	cursor int
}

// NewRoundRobin returns a fresh round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (rr *RoundRobin) Name() string { return "round-robin" }

// Next implements Scheduler.
func (rr *RoundRobin) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	n := g.NumMiners()
	for i := 0; i < n; i++ {
		p := (rr.cursor + i) % n
		if c, ok := g.BestResponse(s, p); ok {
			rr.cursor = (p + 1) % n
			return p, c, true
		}
	}
	return 0, 0, false
}

// Random picks a uniformly random (miner, improving coin) pair each step —
// the natural model of uncoordinated selfish miners.
type Random struct{}

// NewRandom returns the uniform-random scheduler.
func NewRandom() Random { return Random{} }

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Next implements Scheduler.
func (Random) Next(g *core.Game, s core.Config, r *rng.Rand) (core.MinerID, core.CoinID, bool) {
	type move struct {
		p core.MinerID
		c core.CoinID
	}
	var moves []move
	for p := 0; p < g.NumMiners(); p++ {
		for _, c := range g.BetterResponses(s, p) {
			moves = append(moves, move{p, c})
		}
	}
	if len(moves) == 0 {
		return 0, 0, false
	}
	m := moves[r.Intn(len(moves))]
	return m.p, m.c, true
}

// MaxGain greedily plays the single improving move with the largest absolute
// payoff gain — the "most eager miner" model.
type MaxGain struct{}

// NewMaxGain returns the greedy max-gain scheduler.
func NewMaxGain() MaxGain { return MaxGain{} }

// Name implements Scheduler.
func (MaxGain) Name() string { return "max-gain" }

// Next implements Scheduler.
func (MaxGain) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	bestGain := 0.0
	var bp core.MinerID
	var bc core.CoinID
	found := false
	for p := 0; p < g.NumMiners(); p++ {
		cur := g.Payoff(s, p)
		for _, c := range g.BetterResponses(s, p) {
			gain := g.PayoffAfterMove(s, p, c) - cur
			if !found || gain > bestGain {
				found, bestGain, bp, bc = true, gain, p, c
			}
		}
	}
	return bp, bc, found
}

// MinGain adversarially plays the improving move with the *smallest* payoff
// gain, maximizing the length of the improving path. Theorem 1 must hold
// even for this scheduler; experiment E8 uses it as the worst-case series.
type MinGain struct{}

// NewMinGain returns the adversarial min-gain scheduler.
func NewMinGain() MinGain { return MinGain{} }

// Name implements Scheduler.
func (MinGain) Name() string { return "min-gain" }

// Next implements Scheduler.
func (MinGain) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	bestGain := math.Inf(1)
	var bp core.MinerID
	var bc core.CoinID
	found := false
	for p := 0; p < g.NumMiners(); p++ {
		cur := g.Payoff(s, p)
		for _, c := range g.BetterResponses(s, p) {
			gain := g.PayoffAfterMove(s, p, c) - cur
			if gain < bestGain {
				found, bestGain, bp, bc = true, gain, p, c
			}
		}
	}
	return bp, bc, found
}

// SmallestFirst always moves the least powerful unstable miner (to its best
// response). Small miners are the most volatile in practice — they chase
// RPU hardest — and the §5 reward design argument is built around moving
// small miners first.
type SmallestFirst struct{}

// NewSmallestFirst returns the smallest-miner-first scheduler.
func NewSmallestFirst() SmallestFirst { return SmallestFirst{} }

// Name implements Scheduler.
func (SmallestFirst) Name() string { return "smallest-first" }

// Next implements Scheduler. Miners are sorted by descending power, so the
// smallest is the highest MinerID.
func (SmallestFirst) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	for p := g.NumMiners() - 1; p >= 0; p-- {
		if c, ok := g.BestResponse(s, p); ok {
			return p, c, true
		}
	}
	return 0, 0, false
}

// LargestFirst always moves the most powerful unstable miner.
type LargestFirst struct{}

// NewLargestFirst returns the largest-miner-first scheduler.
func NewLargestFirst() LargestFirst { return LargestFirst{} }

// Name implements Scheduler.
func (LargestFirst) Name() string { return "largest-first" }

// Next implements Scheduler.
func (LargestFirst) Next(g *core.Game, s core.Config, _ *rng.Rand) (core.MinerID, core.CoinID, bool) {
	for p := 0; p < g.NumMiners(); p++ {
		if c, ok := g.BestResponse(s, p); ok {
			return p, c, true
		}
	}
	return 0, 0, false
}

// AllSchedulers returns one fresh instance of every scheduler in the
// package, for exhaustive convergence testing (Theorem 1 quantifies over all
// of them).
func AllSchedulers() []Scheduler {
	return []Scheduler{
		NewRoundRobin(),
		NewRandom(),
		NewMaxGain(),
		NewMinGain(),
		NewSmallestFirst(),
		NewLargestFirst(),
	}
}

// SchedulerByName returns a fresh instance of the built-in scheduler with
// the given Name. It is the one lookup shared by the experiment suite and
// the engine, so valid names cannot diverge between them.
func SchedulerByName(name string) (Scheduler, error) {
	for _, s := range AllSchedulers() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("learning: unknown scheduler %q", name)
}
