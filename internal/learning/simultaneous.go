package learning

import (
	"gameofcoins/internal/core"
)

// SimultaneousResult reports a RunSimultaneous execution.
type SimultaneousResult struct {
	Final     core.Config
	Rounds    int
	Converged bool
	// Cycled reports that the dynamics revisited a configuration without
	// converging — the behaviour Theorem 1 rules out for *sequential*
	// better response but which simultaneous updates exhibit.
	Cycled bool
}

// RunSimultaneous runs the natural-but-wrong variant of the dynamics in
// which, each round, every unstable miner simultaneously moves to its best
// response computed against the *current* configuration.
//
// This is an ablation, not part of the paper's model: Theorem 1's ordinal
// potential argument applies to one-miner-at-a-time improving steps, and
// simultaneous updates break it — two miners can chase the same
// high-RPU coin, overshoot, and chase each other back forever. The
// two-miner symmetric game cycles under this dynamic (see tests and
// experiment E12), which is precisely why the paper's "some miner will take
// a step" sequential model matters.
func RunSimultaneous(g *core.Game, s0 core.Config, maxRounds int) (SimultaneousResult, error) {
	if err := g.ValidateConfig(s0); err != nil {
		return SimultaneousResult{}, err
	}
	if maxRounds <= 0 {
		maxRounds = 1000
	}
	s := s0.Clone()
	seen := map[string]int{s.Key(): 0}
	var res SimultaneousResult
	for round := 1; round <= maxRounds; round++ {
		next := s.Clone()
		moved := false
		for p := range s {
			if c, ok := g.BestResponse(s, p); ok {
				next[p] = c
				moved = true
			}
		}
		if !moved {
			res.Final = s
			res.Rounds = round - 1
			res.Converged = true
			return res, nil
		}
		s = next
		res.Rounds = round
		if _, dup := seen[s.Key()]; dup {
			res.Final = s
			res.Cycled = true
			return res, nil
		}
		seen[s.Key()] = round
	}
	res.Final = s
	return res, nil
}
