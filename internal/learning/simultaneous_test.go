package learning

import (
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// TestSimultaneousCyclesOnSymmetricGame: the two-miner symmetric game
// cycles forever under simultaneous best response — both miners chase the
// empty coin together, recreating the congestion they fled. This is the
// ablation that motivates the paper's sequential model.
func TestSimultaneousCyclesOnSymmetricGame(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	res, err := RunSimultaneous(g, core.Config{0, 0}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("expected a cycle, converged at %v", res.Final)
	}
	if !res.Cycled {
		t.Fatalf("cycle not detected in %d rounds", res.Rounds)
	}
}

// TestSequentialConvergesWhereSimultaneousCycles: the same game and start
// converge under every sequential scheduler (Theorem 1).
func TestSequentialConvergesWhereSimultaneousCycles(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	for _, sched := range AllSchedulers() {
		res, err := Run(g, core.Config{0, 0}, sched, rng.New(1), Options{})
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if !res.Converged || !g.IsEquilibrium(res.Final) {
			t.Fatalf("%s: did not converge", sched.Name())
		}
	}
}

func TestSimultaneousConvergesFromEquilibrium(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{1, 1},
	)
	res, err := RunSimultaneous(g, core.Config{0, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 0 {
		t.Fatalf("equilibrium start should converge immediately: %+v", res)
	}
}

func TestSimultaneousSometimesConverges(t *testing.T) {
	// With very asymmetric rewards the simultaneous dynamic can still
	// settle; ensure the happy path works too.
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 5}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{100, 1},
	)
	res, err := RunSimultaneous(g, core.Config{1, 1}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("expected convergence: %+v", res)
	}
	if !g.IsEquilibrium(res.Final) {
		t.Fatalf("final %v not an equilibrium", res.Final)
	}
}

func TestSimultaneousValidatesConfig(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}},
		[]core.Coin{{Name: "c0"}},
		[]float64{1},
	)
	if _, err := RunSimultaneous(g, core.Config{0, 0}, 10); err == nil {
		t.Fatal("invalid config accepted")
	}
}
