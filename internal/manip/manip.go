// Package manip implements the manipulation primitives of "Game of Coins":
// whale transactions (fee injection that raises a coin's weight until
// collected) and exchange-rate pumps, together with a cost ledger so
// experiments can compare the manipulator's bounded spend against the
// indefinite payoff gain of the equilibrium it buys (§1, §5).
package manip

import (
	"errors"
	"fmt"

	"gameofcoins/internal/sim"
)

// Event is one recorded manipulation action.
type Event struct {
	Epoch int
	Kind  string
	Coin  int
	Cost  float64
}

// Ledger accumulates manipulation spending.
type Ledger struct {
	events []Event
	total  float64
}

// Total returns the cumulative manipulation cost.
func (l *Ledger) Total() float64 { return l.total }

// Events returns a copy of the recorded actions.
func (l *Ledger) Events() []Event { return append([]Event(nil), l.events...) }

func (l *Ledger) record(e Event) {
	l.events = append(l.events, e)
	l.total += e.Cost
}

// WhaleTx injects a whale transaction of the given fee (in the coin's own
// units) into coin c of the simulator, charging the fiat cost
// fee·rate to the ledger. The fee inflates the coin's weight until the next
// block collects it — the paper's "whale transactions" channel [22].
func WhaleTx(s *sim.Simulator, l *Ledger, coin int, fee float64) error {
	coins := s.Coins()
	if coin < 0 || coin >= len(coins) {
		return fmt.Errorf("manip: invalid coin %d", coin)
	}
	if fee <= 0 {
		return errors.New("manip: non-positive whale fee")
	}
	if err := coins[coin].Chain.InjectFees(fee); err != nil {
		return err
	}
	l.record(Event{
		Epoch: s.Epoch(),
		Kind:  "whale-tx",
		Coin:  coin,
		Cost:  fee * coins[coin].Rate.Rate(),
	})
	return nil
}

// ApplyPump multiplies the pending weight of coin c by injecting the
// equivalent whale fee: a pump by factor f on a coin whose weight is W
// raises it to f·W for roughly one epoch. The fiat cost charged is
// (f−1)·W·depth. This models rate manipulation through its effect on the
// weight — the only channel the game observes — without reaching into the
// rate process.
func ApplyPump(s *sim.Simulator, l *Ledger, coin int, factor, depth float64) error {
	coins := s.Coins()
	if coin < 0 || coin >= len(coins) {
		return fmt.Errorf("manip: invalid coin %d", coin)
	}
	if factor <= 1 {
		return errors.New("manip: pump factor must exceed 1")
	}
	if depth <= 0 {
		return errors.New("manip: non-positive depth")
	}
	cm := coins[coin]
	w := cm.Weight()
	// Extra weight needed: (factor−1)·W fiat/hour; the coin market converts
	// that into the pending-fee volume that achieves it.
	extraCoin, err := cm.FeesForExtraWeight((factor - 1) * w)
	if err != nil {
		return err
	}
	if err := cm.Chain.InjectFees(extraCoin); err != nil {
		return err
	}
	l.record(Event{
		Epoch: s.Epoch(),
		Kind:  "pump",
		Coin:  coin,
		Cost:  (factor - 1) * w * depth,
	})
	return nil
}
