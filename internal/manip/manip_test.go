package manip

import (
	"testing"

	"gameofcoins/internal/chain"
	"gameofcoins/internal/market"
	"gameofcoins/internal/mining"
	"gameofcoins/internal/sim"
)

func newSim(t *testing.T) *sim.Simulator {
	t.Helper()
	mk := func(name string) *market.CoinMarket {
		ch, err := chain.New(chain.Params{
			Name:               name,
			TargetBlockSeconds: 600,
			RetargetWindow:     144,
			MaxRetargetFactor:  4,
			BlockSubsidy:       10,
			InitialDifficulty:  600,
		})
		if err != nil {
			t.Fatal(err)
		}
		cm, err := market.NewCoinMarket(ch, market.Constant(2), 0.5, 600)
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	s, err := sim.New(sim.Config{
		Coins: []*market.CoinMarket{mk("a"), mk("b")},
		Agents: []mining.Agent{
			{Name: "m1", Power: 3, Policy: mining.BetterResponse{}},
			{Name: "m2", Power: 2, Policy: mining.BetterResponse{}},
			{Name: "m3", Power: 1, Policy: mining.BetterResponse{}},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWhaleTxRaisesWeightAndCharges(t *testing.T) {
	s := newSim(t)
	var l Ledger
	w0 := s.Coins()[1].Weight()
	if err := WhaleTx(s, &l, 1, 50); err != nil {
		t.Fatal(err)
	}
	if got := s.Coins()[1].Weight(); got <= w0 {
		t.Fatalf("weight %v did not rise from %v", got, w0)
	}
	// Cost = fee × rate = 50 × 2.
	if l.Total() != 100 {
		t.Fatalf("ledger total = %v, want 100", l.Total())
	}
	evs := l.Events()
	if len(evs) != 1 || evs[0].Kind != "whale-tx" || evs[0].Coin != 1 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestWhaleTxValidation(t *testing.T) {
	s := newSim(t)
	var l Ledger
	if err := WhaleTx(s, &l, 5, 1); err == nil {
		t.Fatal("invalid coin accepted")
	}
	if err := WhaleTx(s, &l, 0, 0); err == nil {
		t.Fatal("zero fee accepted")
	}
	if l.Total() != 0 {
		t.Fatal("failed actions charged the ledger")
	}
}

func TestApplyPumpRaisesWeightByFactor(t *testing.T) {
	s := newSim(t)
	var l Ledger
	w0 := s.Coins()[0].Weight()
	if err := ApplyPump(s, &l, 0, 1.5, 1); err != nil {
		t.Fatal(err)
	}
	w1 := s.Coins()[0].Weight()
	if ratio := w1 / w0; ratio < 1.45 || ratio > 1.55 {
		t.Fatalf("pump ratio = %v, want ≈1.5", ratio)
	}
	// Cost = (factor−1)·W·depth = 0.5·w0·1.
	if got := l.Total(); got < 0.49*w0 || got > 0.51*w0 {
		t.Fatalf("cost = %v, want ≈%v", got, 0.5*w0)
	}
}

func TestApplyPumpValidation(t *testing.T) {
	s := newSim(t)
	var l Ledger
	if err := ApplyPump(s, &l, 0, 1.0, 1); err == nil {
		t.Fatal("factor 1 accepted")
	}
	if err := ApplyPump(s, &l, 0, 2, 0); err == nil {
		t.Fatal("zero depth accepted")
	}
	if err := ApplyPump(s, &l, 9, 2, 1); err == nil {
		t.Fatal("invalid coin accepted")
	}
}

func TestWhaleAttractsMiners(t *testing.T) {
	// A large standing whale subsidy on coin b must pull hashrate there.
	s := newSim(t)
	var l Ledger
	s.OnEpoch(func(_ int, sm *sim.Simulator) {
		// Re-inject every epoch to keep the weight inflated.
		_ = WhaleTx(sm, &l, 1, 200)
	})
	_ = WhaleTx(s, &l, 1, 200)
	s.Run(30)
	powers := s.CoinPowers()
	if powers[1] <= powers[0] {
		t.Fatalf("whale-subsidized coin did not attract the majority: %v", powers)
	}
	if l.Total() <= 0 {
		t.Fatal("no cost recorded")
	}
}
