// Package market models the economic side of a multi-coin mining market:
// fiat exchange-rate processes, per-coin weight computation (the reward
// function F the game consumes), and a whattomine-style profitability index.
//
// A coin's weight in the paper is "the reward it divides among its miners",
// which in practice depends on its transaction rate, transaction fees, and
// fiat exchange rate (§1). Weight here is fiat issuance per unit time:
//
//	F(c) = (block subsidy + average fees per block) · rate(c) / block time
//
// computed from the live chain state, so hashrate migration feeds back into
// weights through difficulty retargeting exactly as it does in reality.
package market

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"gameofcoins/internal/chain"
	"gameofcoins/internal/rng"
)

// RateProcess evolves a coin's fiat exchange rate in simulation time.
// Implementations are stepped by the simulator; Rate returns the current
// value.
type RateProcess interface {
	// Rate returns the current exchange rate (fiat per coin).
	Rate() float64
	// Step advances the process by dt seconds.
	Step(dt float64, r *rng.Rand)
}

// Constant is a flat exchange rate.
type Constant float64

// Rate implements RateProcess.
func (c Constant) Rate() float64 { return float64(c) }

// Step implements RateProcess.
func (Constant) Step(float64, *rng.Rand) {}

// GBM is geometric Brownian motion: dS = μS dt + σS dW, the standard model
// for fiat crypto prices over short horizons.
type GBM struct {
	S     float64 // current rate
	Mu    float64 // drift per second
	Sigma float64 // volatility per √second
}

// NewGBM returns a GBM starting at s0.
func NewGBM(s0, muPerSecond, sigmaPerSqrtSecond float64) *GBM {
	return &GBM{S: s0, Mu: muPerSecond, Sigma: sigmaPerSqrtSecond}
}

// Rate implements RateProcess.
func (g *GBM) Rate() float64 { return g.S }

// Step implements RateProcess using the exact log-normal increment.
func (g *GBM) Step(dt float64, r *rng.Rand) {
	if dt <= 0 {
		return
	}
	z := r.NormFloat64()
	g.S *= math.Exp((g.Mu-0.5*g.Sigma*g.Sigma)*dt + g.Sigma*math.Sqrt(dt)*z)
}

// Jump is a scheduled multiplicative shock: at Time, the rate is multiplied
// by Factor. This is how replay scenarios encode events like the
// November 12, 2017 BCH spike.
type Jump struct {
	Time   float64
	Factor float64
}

// JumpDiffusion is a GBM with scheduled deterministic jumps.
type JumpDiffusion struct {
	gbm   GBM
	jumps []Jump
	now   float64
	next  int
}

// NewJumpDiffusion returns a jump-diffusion starting at s0 with the given
// scheduled jumps (sorted by time internally).
func NewJumpDiffusion(s0, mu, sigma float64, jumps []Jump) *JumpDiffusion {
	js := append([]Jump(nil), jumps...)
	sort.Slice(js, func(i, j int) bool { return js[i].Time < js[j].Time })
	return &JumpDiffusion{gbm: GBM{S: s0, Mu: mu, Sigma: sigma}, jumps: js}
}

// Rate implements RateProcess.
func (jd *JumpDiffusion) Rate() float64 { return jd.gbm.S }

// Step implements RateProcess.
func (jd *JumpDiffusion) Step(dt float64, r *rng.Rand) {
	end := jd.now + dt
	for jd.next < len(jd.jumps) && jd.jumps[jd.next].Time <= end {
		j := jd.jumps[jd.next]
		jd.gbm.Step(j.Time-jd.now, r)
		jd.gbm.S *= j.Factor
		jd.now = j.Time
		jd.next++
	}
	jd.gbm.Step(end-jd.now, r)
	jd.now = end
}

// Piecewise is a deterministic piecewise-linear rate path given as (time,
// rate) knots; it interpolates linearly and holds the last value. Replay
// scenarios use it for calibrated historical shapes.
type Piecewise struct {
	Times []float64
	Rates []float64
	now   float64
}

// NewPiecewise builds a piecewise path. Knots must be strictly increasing in
// time and non-empty.
func NewPiecewise(times, rates []float64) (*Piecewise, error) {
	if len(times) == 0 || len(times) != len(rates) {
		return nil, errors.New("market: piecewise needs equal non-empty knots")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("market: knot times not increasing at %d", i)
		}
	}
	return &Piecewise{Times: append([]float64(nil), times...), Rates: append([]float64(nil), rates...)}, nil
}

// Rate implements RateProcess.
func (pw *Piecewise) Rate() float64 {
	t := pw.now
	if t <= pw.Times[0] {
		return pw.Rates[0]
	}
	last := len(pw.Times) - 1
	if t >= pw.Times[last] {
		return pw.Rates[last]
	}
	i := sort.SearchFloat64s(pw.Times, t)
	if pw.Times[i] == t {
		return pw.Rates[i]
	}
	lo, hi := i-1, i
	frac := (t - pw.Times[lo]) / (pw.Times[hi] - pw.Times[lo])
	return pw.Rates[lo]*(1-frac) + pw.Rates[hi]*frac
}

// Step implements RateProcess.
func (pw *Piecewise) Step(dt float64, _ *rng.Rand) { pw.now += dt }

// CoinMarket couples one chain with its exchange-rate process, a baseline
// fee flow, and the protocol constants weight computation needs.
type CoinMarket struct {
	Chain *chain.Chain
	Rate  RateProcess
	// FeePerBlock is the steady-state fee volume collected by each block,
	// in the chain's own coin, on top of whale injections.
	FeePerBlock float64

	targetBlockSeconds float64
}

// NewCoinMarket builds a CoinMarket for the chain. targetBlockSeconds must
// match the chain's Params (the chain package does not expose it); the
// block subsidy is read live from the chain, so halvings flow into weights
// automatically.
func NewCoinMarket(ch *chain.Chain, rate RateProcess, feePerBlock, targetBlockSeconds float64) (*CoinMarket, error) {
	if ch == nil || rate == nil {
		return nil, errors.New("market: nil chain or rate")
	}
	if feePerBlock < 0 || targetBlockSeconds <= 0 {
		return nil, errors.New("market: invalid coin market constants")
	}
	return &CoinMarket{
		Chain:              ch,
		Rate:               rate,
		FeePerBlock:        feePerBlock,
		targetBlockSeconds: targetBlockSeconds,
	}, nil
}

// Weight returns the coin's current weight F(c): expected fiat issuance per
// hour at the protocol's target block rate (difficulty retargeting drives
// realized production toward it). Whale fees pending on the chain raise the
// weight until they are collected — the §5 manipulation channel — and
// subsidy halvings lower it.
func (cm *CoinMarket) Weight() float64 {
	blocksPerHour := 3600 / cm.targetBlockSeconds
	coinPerBlock := cm.Chain.Subsidy() + cm.FeePerBlock + cm.Chain.PendingFees()
	return coinPerBlock * blocksPerHour * cm.Rate.Rate()
}

// FeesForExtraWeight returns the pending-fee injection (in coin units) that
// raises Weight() by deltaW fiat/hour at the current exchange rate. It
// errors when the rate is non-positive (no fee volume can move the weight).
func (cm *CoinMarket) FeesForExtraWeight(deltaW float64) (float64, error) {
	if deltaW < 0 {
		return 0, errors.New("market: negative weight delta")
	}
	rate := cm.Rate.Rate()
	if rate <= 0 {
		return 0, errors.New("market: non-positive exchange rate")
	}
	blocksPerHour := 3600 / cm.targetBlockSeconds
	return deltaW / (blocksPerHour * rate), nil
}
