package market

import (
	"math"
	"testing"

	"gameofcoins/internal/chain"
	"gameofcoins/internal/rng"
)

func TestConstantRate(t *testing.T) {
	c := Constant(42)
	c.Step(100, rng.New(1))
	if c.Rate() != 42 {
		t.Fatal("constant rate changed")
	}
}

func TestGBMZeroDrift(t *testing.T) {
	// With μ=0 the expected rate stays at S0; check over many paths.
	r := rng.New(2)
	var sum float64
	const paths = 5000
	for i := 0; i < paths; i++ {
		g := NewGBM(100, 0, 0.01)
		for step := 0; step < 100; step++ {
			g.Step(1, r)
		}
		sum += g.Rate()
	}
	mean := sum / paths
	if math.Abs(mean-100)/100 > 0.02 {
		t.Fatalf("GBM mean %v drifted from 100", mean)
	}
}

func TestGBMPositiveDrift(t *testing.T) {
	r := rng.New(3)
	g := NewGBM(1, 0.001, 0)
	for i := 0; i < 1000; i++ {
		g.Step(1, r)
	}
	want := math.Exp(0.001 * 1000)
	if math.Abs(g.Rate()-want)/want > 1e-9 {
		t.Fatalf("deterministic GBM = %v, want %v", g.Rate(), want)
	}
}

func TestGBMIgnoresNonPositiveDt(t *testing.T) {
	g := NewGBM(5, 1, 1)
	g.Step(0, rng.New(1))
	g.Step(-1, rng.New(1))
	if g.Rate() != 5 {
		t.Fatal("non-positive dt changed the rate")
	}
}

func TestJumpDiffusionAppliesJumps(t *testing.T) {
	jd := NewJumpDiffusion(10, 0, 0, []Jump{{Time: 50, Factor: 3}, {Time: 10, Factor: 2}})
	r := rng.New(4)
	jd.Step(9, r)
	if jd.Rate() != 10 {
		t.Fatalf("rate before first jump = %v", jd.Rate())
	}
	jd.Step(2, r) // crosses t=10
	if jd.Rate() != 20 {
		t.Fatalf("rate after first jump = %v", jd.Rate())
	}
	jd.Step(100, r) // crosses t=50
	if jd.Rate() != 60 {
		t.Fatalf("rate after second jump = %v", jd.Rate())
	}
}

func TestJumpDiffusionJumpsAreSorted(t *testing.T) {
	// Constructed with unsorted jumps; both must apply in time order (the
	// previous test crosses them one Step at a time; here both in one Step).
	jd := NewJumpDiffusion(1, 0, 0, []Jump{{Time: 5, Factor: 3}, {Time: 2, Factor: 2}})
	jd.Step(10, rng.New(5))
	if jd.Rate() != 6 {
		t.Fatalf("rate = %v, want 6", jd.Rate())
	}
}

func TestPiecewise(t *testing.T) {
	pw, err := NewPiecewise([]float64{0, 10, 20}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	if pw.Rate() != 1 {
		t.Fatalf("rate at 0 = %v", pw.Rate())
	}
	pw.Step(5, r)
	if got := pw.Rate(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("rate at 5 = %v, want 2 (midpoint)", got)
	}
	pw.Step(5, r)
	if got := pw.Rate(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("rate at 10 = %v, want 3 (knot)", got)
	}
	pw.Step(100, r)
	if got := pw.Rate(); got != 2 {
		t.Fatalf("rate past end = %v, want 2 (held)", got)
	}
}

func TestPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise(nil, nil); err == nil {
		t.Fatal("empty knots accepted")
	}
	if _, err := NewPiecewise([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Fatal("non-increasing times accepted")
	}
	if _, err := NewPiecewise([]float64{0}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func newTestChain(t *testing.T) *chain.Chain {
	t.Helper()
	ch, err := chain.New(chain.Params{
		Name:               "x",
		TargetBlockSeconds: 600,
		RetargetWindow:     100,
		MaxRetargetFactor:  4,
		BlockSubsidy:       6.25,
		InitialDifficulty:  600,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestCoinMarketWeight(t *testing.T) {
	ch := newTestChain(t)
	cm, err := NewCoinMarket(ch, Constant(10000), 0.5, 600)
	if err != nil {
		t.Fatal(err)
	}
	// 6 blocks/hour · (6.25 + 0.5) coin/block · 10000 fiat/coin
	want := 6 * 6.75 * 10000.0
	if got := cm.Weight(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("weight = %v, want %v", got, want)
	}
	// Whale fees raise the weight.
	if err := ch.InjectFees(10); err != nil {
		t.Fatal(err)
	}
	if got := cm.Weight(); got <= want {
		t.Fatalf("weight ignores pending fees: %v", got)
	}
}

func TestNewCoinMarketValidation(t *testing.T) {
	ch := newTestChain(t)
	if _, err := NewCoinMarket(nil, Constant(1), 0, 600); err == nil {
		t.Fatal("nil chain accepted")
	}
	if _, err := NewCoinMarket(ch, nil, 0, 600); err == nil {
		t.Fatal("nil rate accepted")
	}
	if _, err := NewCoinMarket(ch, Constant(1), -1, 600); err == nil {
		t.Fatal("negative fees accepted")
	}
	if _, err := NewCoinMarket(ch, Constant(1), 0, 0); err == nil {
		t.Fatal("zero block time accepted")
	}
}

func TestProfitabilityIndex(t *testing.T) {
	weights := []float64{600, 600}
	powers := []float64{100, 50}
	// A 10-power miner: coin 1 is less crowded, so more profitable.
	idx := ProfitabilityIndex(weights, powers, 10, 0)
	if idx[0].Coin != 1 {
		t.Fatalf("top coin = %d, want 1", idx[0].Coin)
	}
	if idx[0].ProfitPerHour <= idx[1].ProfitPerHour {
		t.Fatal("index not sorted by profit")
	}
	// Revenue math: 600·10/60 = 100 on coin 1.
	if math.Abs(idx[0].ProfitPerHour-100) > 1e-9 {
		t.Fatalf("profit = %v, want 100", idx[0].ProfitPerHour)
	}
}

func TestProfitabilityIndexCosts(t *testing.T) {
	idx := ProfitabilityIndex([]float64{100}, []float64{0}, 1, 150)
	if idx[0].ProfitPerHour >= 0 {
		t.Fatalf("electricity cost ignored: %v", idx[0].ProfitPerHour)
	}
	// Zero-power miner earns nothing.
	idx = ProfitabilityIndex([]float64{100}, []float64{10}, 0, 0)
	if idx[0].ProfitPerHour != 0 {
		t.Fatalf("zero-power profit = %v", idx[0].ProfitPerHour)
	}
}

func TestCoinMarketWeightTracksHalving(t *testing.T) {
	ch, err := chain.New(chain.Params{
		Name:               "halver",
		TargetBlockSeconds: 600,
		RetargetWindow:     100,
		MaxRetargetFactor:  4,
		BlockSubsidy:       8,
		HalvingInterval:    5,
		InitialDifficulty:  600,
	})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := NewCoinMarket(ch, Constant(1), 0, 600)
	if err != nil {
		t.Fatal(err)
	}
	w0 := cm.Weight() // 6 blocks/h · 8 coin · 1
	if math.Abs(w0-48) > 1e-9 {
		t.Fatalf("pre-halving weight = %v", w0)
	}
	r := rng.New(12)
	for ch.Height() < 5 {
		ch.Advance(r, 60, 1)
	}
	if cm.Weight() >= w0 {
		t.Fatalf("weight %v did not drop after halving (was %v)", cm.Weight(), w0)
	}
}
