package market

import "sort"

// ProfitEntry is one row of the profitability index: a coin and the fiat
// profit per hour a miner would earn there right now.
type ProfitEntry struct {
	Coin          int
	ProfitPerHour float64
}

// ProfitabilityIndex is the whattomine-style ranking (§1 [10]): given the
// current coin weights (fiat/hour) and the total power on each coin, it
// ranks coins by the profit a miner with the given power and hourly
// electricity cost would earn after joining. The joining miner's power is
// added to the coin's denominator, matching the game's PayoffAfterMove.
func ProfitabilityIndex(weights, coinPowers []float64, minerPower, costPerHour float64) []ProfitEntry {
	out := make([]ProfitEntry, len(weights))
	for c := range weights {
		revenue := 0.0
		if minerPower > 0 {
			revenue = weights[c] * minerPower / (coinPowers[c] + minerPower)
		}
		out[c] = ProfitEntry{Coin: c, ProfitPerHour: revenue - costPerHour}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].ProfitPerHour > out[j].ProfitPerHour })
	return out
}
