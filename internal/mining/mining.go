// Package mining models miner agents in a live market: each agent has
// hashrate, an hourly operating cost, and a switching policy that decides —
// from the current coin weights and hashrate distribution — whether to move
// to another coin.
//
// Policies are deliberately boundedly rational: the paper only assumes
// better-response behaviour (move somewhere strictly better, eventually),
// and real miners add hysteresis (switching has operational cost) and
// laziness (they do not re-evaluate every second). The simulator in
// internal/sim drives agents once per epoch in random order.
package mining

import (
	"errors"
	"fmt"

	"gameofcoins/internal/rng"
)

// Agent is one miner in the market simulation.
type Agent struct {
	Name string
	// Power is the agent's hashrate in arbitrary units (shared with the
	// chains' difficulty unit).
	Power float64
	// CostPerHour is the fiat operating cost; it shifts profitability but
	// cancels out of *comparisons* between coins, so it matters only for
	// participation decisions (not modeled: agents never power off).
	CostPerHour float64
	// Policy decides switches.
	Policy Policy
}

// Decision is the input a policy sees: current weights (fiat/hour per coin)
// and the total power currently mining each coin, including the agent.
type Decision struct {
	Current    int       // agent's current coin
	Weights    []float64 // F(c), fiat per hour
	CoinPowers []float64 // M_c including the agent's own power at Current
	Power      float64   // agent's own power
}

// revenueStay is the agent's fiat/hour if it stays put.
func (d Decision) revenueStay() float64 {
	return d.Weights[d.Current] * d.Power / d.CoinPowers[d.Current]
}

// revenueMove is the agent's fiat/hour after moving to coin c.
func (d Decision) revenueMove(c int) float64 {
	return d.Weights[c] * d.Power / (d.CoinPowers[c] + d.Power)
}

// Policy selects the agent's next coin. Returning Current means "stay".
type Policy interface {
	Decide(d Decision, r *rng.Rand) int
	Name() string
}

// BetterResponse switches to the best coin whenever the relative gain
// exceeds Hysteresis (e.g. 0.01 = move only for >1% improvement); 0 gives
// the paper's pure better-response miner.
type BetterResponse struct {
	Hysteresis float64
}

// Name implements Policy.
func (p BetterResponse) Name() string { return fmt.Sprintf("better-response(h=%g)", p.Hysteresis) }

// Decide implements Policy.
func (p BetterResponse) Decide(d Decision, _ *rng.Rand) int {
	stay := d.revenueStay()
	best, bestRev := d.Current, stay
	for c := range d.Weights {
		if c == d.Current {
			continue
		}
		if rev := d.revenueMove(c); rev > bestRev {
			best, bestRev = c, rev
		}
	}
	if best != d.Current && bestRev > stay*(1+p.Hysteresis) {
		return best
	}
	return d.Current
}

// Sticky wraps another policy but only re-evaluates with probability
// Activity each epoch — the lazy miner who checks whattomine occasionally.
type Sticky struct {
	Inner    Policy
	Activity float64 // probability of re-evaluating per epoch, in (0, 1]
}

// Name implements Policy.
func (p Sticky) Name() string { return fmt.Sprintf("sticky(%.2f, %s)", p.Activity, p.Inner.Name()) }

// Decide implements Policy.
func (p Sticky) Decide(d Decision, r *rng.Rand) int {
	if r.Float64() >= p.Activity {
		return d.Current
	}
	return p.Inner.Decide(d, r)
}

// Loyal never switches; it models protocol loyalists or contract-bound
// hashrate and serves as a control group in experiments.
type Loyal struct{}

// Name implements Policy.
func (Loyal) Name() string { return "loyal" }

// Decide implements Policy.
func (Loyal) Decide(d Decision, _ *rng.Rand) int { return d.Current }

// ValidateAgents checks a fleet for use in the simulator.
func ValidateAgents(agents []Agent) error {
	if len(agents) == 0 {
		return errors.New("mining: no agents")
	}
	for i, a := range agents {
		if !(a.Power > 0) {
			return fmt.Errorf("mining: agent %d (%s) has non-positive power", i, a.Name)
		}
		if a.Policy == nil {
			return fmt.Errorf("mining: agent %d (%s) has no policy", i, a.Name)
		}
		if a.CostPerHour < 0 {
			return fmt.Errorf("mining: agent %d (%s) has negative cost", i, a.Name)
		}
	}
	return nil
}
