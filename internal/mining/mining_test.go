package mining

import (
	"testing"

	"gameofcoins/internal/rng"
)

func decision() Decision {
	return Decision{
		Current:    0,
		Weights:    []float64{100, 300},
		CoinPowers: []float64{10, 10},
		Power:      5,
	}
}

func TestBetterResponseMovesToBetterCoin(t *testing.T) {
	// Stay: 100·5/10 = 50. Move: 300·5/15 = 100.
	p := BetterResponse{}
	if got := p.Decide(decision(), rng.New(1)); got != 1 {
		t.Fatalf("Decide = %d, want 1", got)
	}
}

func TestBetterResponseStaysWhenBest(t *testing.T) {
	d := decision()
	d.Weights = []float64{300, 100}
	if got := (BetterResponse{}).Decide(d, rng.New(1)); got != 0 {
		t.Fatalf("Decide = %d, want 0", got)
	}
}

func TestBetterResponseHysteresis(t *testing.T) {
	// Gain from moving: stay 50 vs move 300·5/15 = 100 → +100%. A 200%
	// hysteresis blocks it; a 50% hysteresis allows it.
	d := decision()
	if got := (BetterResponse{Hysteresis: 2.0}).Decide(d, rng.New(1)); got != 0 {
		t.Fatalf("high hysteresis moved: %d", got)
	}
	if got := (BetterResponse{Hysteresis: 0.5}).Decide(d, rng.New(1)); got != 1 {
		t.Fatalf("low hysteresis stayed: %d", got)
	}
}

func TestBetterResponseSelfCongestion(t *testing.T) {
	// The mover's own power must congest the destination: weight 110 on an
	// empty coin vs staying at 100 alone. Stay: 100·5/5 = 100. Move:
	// 110·5/(0+5) = 110 → should move. But with destination power 10:
	// 110·5/15 ≈ 36.7 → should stay.
	d := Decision{Current: 0, Weights: []float64{100, 110}, CoinPowers: []float64{5, 0}, Power: 5}
	if got := (BetterResponse{}).Decide(d, rng.New(1)); got != 1 {
		t.Fatalf("empty destination: got %d", got)
	}
	d.CoinPowers = []float64{5, 10}
	if got := (BetterResponse{}).Decide(d, rng.New(1)); got != 0 {
		t.Fatalf("congested destination: got %d", got)
	}
}

func TestStickyActivityGate(t *testing.T) {
	r := rng.New(7)
	moved := 0
	const trials = 2000
	p := Sticky{Activity: 0.25, Inner: BetterResponse{}}
	for i := 0; i < trials; i++ {
		if p.Decide(decision(), r) != 0 {
			moved++
		}
	}
	// Moves only when active: expect ≈ 25%.
	if moved < trials/5 || moved > trials/3 {
		t.Fatalf("sticky moved %d/%d times, want ≈25%%", moved, trials)
	}
}

func TestLoyalNeverMoves(t *testing.T) {
	d := decision()
	d.Weights = []float64{1, 1e9}
	if got := (Loyal{}).Decide(d, rng.New(1)); got != 0 {
		t.Fatalf("loyal moved: %d", got)
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{BetterResponse{}, Sticky{Inner: BetterResponse{}, Activity: 0.5}, Loyal{}} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}

func TestValidateAgents(t *testing.T) {
	good := []Agent{{Name: "a", Power: 1, Policy: Loyal{}}}
	if err := ValidateAgents(good); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]Agent{
		"empty":         {},
		"zero power":    {{Name: "a", Power: 0, Policy: Loyal{}}},
		"nil policy":    {{Name: "a", Power: 1}},
		"negative cost": {{Name: "a", Power: 1, Policy: Loyal{}, CostPerHour: -1}},
	}
	for name, agents := range cases {
		if err := ValidateAgents(agents); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
