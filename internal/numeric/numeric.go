// Package numeric provides the two number systems used by the library:
//
//   - tolerant float64 comparison helpers for the fast simulation engine, and
//   - an exact rational type (a thin convenience wrapper over math/big.Rat)
//     for the verification engine in internal/exact.
//
// The paper's Assumption 2 ("generic game") rules out exact payoff ties; in
// floating point, near-ties are a real hazard, so the fast engine compares
// with a relative epsilon and the test suite cross-checks decisions against
// exact arithmetic.
package numeric

import (
	"fmt"
	"math"
	"math/big"
)

// Eps is the default relative tolerance for float comparisons. Mining powers
// and rewards in realistic units span ~12 orders of magnitude; 1e-9 relative
// keeps comparisons exact for the ratios the game computes while absorbing
// accumulated rounding.
const Eps = 1e-9

// Less reports whether a < b beyond relative tolerance eps.
func Less(a, b, eps float64) bool {
	return b-a > eps*scale(a, b)
}

// Greater reports whether a > b beyond relative tolerance eps.
func Greater(a, b, eps float64) bool {
	return a-b > eps*scale(a, b)
}

// Equal reports whether a and b are within relative tolerance eps.
func Equal(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps*scale(a, b)
}

func scale(a, b float64) float64 {
	s := math.Max(math.Abs(a), math.Abs(b))
	if s < 1 {
		return 1
	}
	return s
}

// Rat is an immutable exact rational number. The zero value is 0.
// All operations allocate a fresh result; operands are never mutated, which
// keeps the exact engine trivially safe to share across goroutines that only
// read.
type Rat struct {
	v *big.Rat
}

// NewRat returns the rational p/q. It panics if q == 0.
func NewRat(p, q int64) Rat {
	if q == 0 {
		panic("numeric: zero denominator")
	}
	return Rat{v: big.NewRat(p, q)}
}

// RatFromInt returns the rational n/1.
func RatFromInt(n int64) Rat {
	return Rat{v: big.NewRat(n, 1)}
}

// RatFromFloat converts a float64 exactly (every finite float64 is rational).
// It panics on NaN or ±Inf, which have no rational value.
func RatFromFloat(f float64) Rat {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		panic(fmt.Sprintf("numeric: cannot convert %v to rational", f))
	}
	return Rat{v: r}
}

func (r Rat) rat() *big.Rat {
	if r.v == nil {
		return new(big.Rat)
	}
	return r.v
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat { return Rat{v: new(big.Rat).Add(r.rat(), o.rat())} }

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat { return Rat{v: new(big.Rat).Sub(r.rat(), o.rat())} }

// Mul returns r * o.
func (r Rat) Mul(o Rat) Rat { return Rat{v: new(big.Rat).Mul(r.rat(), o.rat())} }

// Div returns r / o. It panics if o is zero.
func (r Rat) Div(o Rat) Rat {
	if o.Sign() == 0 {
		panic("numeric: division by zero")
	}
	return Rat{v: new(big.Rat).Quo(r.rat(), o.rat())}
}

// Cmp returns -1, 0, or +1 according to the sign of r - o.
func (r Rat) Cmp(o Rat) int { return r.rat().Cmp(o.rat()) }

// Less reports r < o.
func (r Rat) Less(o Rat) bool { return r.Cmp(o) < 0 }

// Greater reports r > o.
func (r Rat) Greater(o Rat) bool { return r.Cmp(o) > 0 }

// Equal reports r == o.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// Sign returns -1, 0, or +1 according to the sign of r.
func (r Rat) Sign() int { return r.rat().Sign() }

// Float64 returns the nearest float64 to r.
func (r Rat) Float64() float64 {
	f, _ := r.rat().Float64()
	return f
}

// String renders r as p/q (or an integer when q == 1).
func (r Rat) String() string { return r.rat().RatString() }

// SumRats returns the exact sum of the given rationals.
func SumRats(rs []Rat) Rat {
	acc := new(big.Rat)
	for _, r := range rs {
		acc.Add(acc, r.rat())
	}
	return Rat{v: acc}
}
