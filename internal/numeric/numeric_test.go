package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFloatComparators(t *testing.T) {
	tests := []struct {
		name                 string
		a, b, eps            float64
		less, greater, equal bool
	}{
		{"clearly less", 1, 2, Eps, true, false, false},
		{"clearly greater", 2, 1, Eps, false, true, false},
		{"identical", 5, 5, Eps, false, false, true},
		{"within eps", 1, 1 + 1e-12, Eps, false, false, true},
		{"just outside eps", 1, 1 + 1e-6, Eps, true, false, false},
		{"large scale within eps", 1e12, 1e12 + 1, Eps, false, false, true},
		{"large scale outside eps", 1e12, 1.1e12, Eps, true, false, false},
		{"tiny magnitudes use absolute floor", 1e-15, 2e-15, Eps, false, false, true},
		{"negative ordering", -2, -1, Eps, true, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Less(tt.a, tt.b, tt.eps); got != tt.less {
				t.Errorf("Less(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.less)
			}
			if got := Greater(tt.a, tt.b, tt.eps); got != tt.greater {
				t.Errorf("Greater(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.greater)
			}
			if got := Equal(tt.a, tt.b, tt.eps); got != tt.equal {
				t.Errorf("Equal(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.equal)
			}
		})
	}
}

func TestComparatorTrichotomyProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		n := 0
		if Less(a, b, Eps) {
			n++
		}
		if Greater(a, b, Eps) {
			n++
		}
		if Equal(a, b, Eps) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatArithmetic(t *testing.T) {
	half := NewRat(1, 2)
	third := NewRat(1, 3)
	if got := half.Add(third); !got.Equal(NewRat(5, 6)) {
		t.Errorf("1/2 + 1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2 - 1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2 * 1/3 = %v", got)
	}
	if got := half.Div(third); !got.Equal(NewRat(3, 2)) {
		t.Errorf("(1/2) / (1/3) = %v", got)
	}
}

func TestRatZeroValueIsZero(t *testing.T) {
	var z Rat
	if z.Sign() != 0 {
		t.Fatalf("zero value sign = %d", z.Sign())
	}
	if got := z.Add(RatFromInt(3)); !got.Equal(RatFromInt(3)) {
		t.Fatalf("0 + 3 = %v", got)
	}
}

func TestRatComparisons(t *testing.T) {
	a, b := NewRat(2, 3), NewRat(3, 4)
	if !a.Less(b) || a.Greater(b) || a.Equal(b) {
		t.Fatal("2/3 vs 3/4 comparison wrong")
	}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatal("Cmp wrong")
	}
}

func TestRatDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	NewRat(1, 2).Div(Rat{})
}

func TestNewRatZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRat(1,0) did not panic")
		}
	}()
	NewRat(1, 0)
}

func TestRatFromFloatExact(t *testing.T) {
	if got := RatFromFloat(0.5); !got.Equal(NewRat(1, 2)) {
		t.Fatalf("RatFromFloat(0.5) = %v", got)
	}
	if got := RatFromFloat(0.1).Float64(); got != 0.1 {
		t.Fatalf("round trip of 0.1 = %v", got)
	}
}

func TestRatFromFloatPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RatFromFloat(NaN) did not panic")
		}
	}()
	RatFromFloat(math.NaN())
}

func TestRatImmutability(t *testing.T) {
	a := NewRat(1, 2)
	_ = a.Add(NewRat(1, 2))
	if !a.Equal(NewRat(1, 2)) {
		t.Fatal("Add mutated its receiver")
	}
}

func TestSumRats(t *testing.T) {
	rs := []Rat{NewRat(1, 2), NewRat(1, 3), NewRat(1, 6)}
	if got := SumRats(rs); !got.Equal(RatFromInt(1)) {
		t.Fatalf("sum = %v", got)
	}
	if got := SumRats(nil); got.Sign() != 0 {
		t.Fatalf("empty sum = %v", got)
	}
}

func TestRatArithmeticAgreesWithFloatProperty(t *testing.T) {
	f := func(a, b int16, q1, q2 uint8) bool {
		d1, d2 := int64(q1)+1, int64(q2)+1
		ra := NewRat(int64(a), d1)
		rb := NewRat(int64(b), d2)
		sum := ra.Add(rb).Float64()
		want := float64(a)/float64(d1) + float64(b)/float64(d2)
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRatString(t *testing.T) {
	if got := NewRat(3, 6).String(); got != "1/2" {
		t.Fatalf("String = %q", got)
	}
	if got := RatFromInt(4).String(); got != "4" {
		t.Fatalf("String = %q", got)
	}
}
