// Package potential implements the potential-function machinery of
// "Game of Coins":
//
//   - Theorem 1's ordinal potential: the lexicographically ordered list of
//     ⟨RPU_c(s), c⟩ pairs, whose rank in the ordered set of all lists strictly
//     increases along every better-response step;
//   - Appendix B's closed-form ordinal potential Σ_c 1/M_c(s) for the
//     symmetric case (all coin rewards equal);
//   - Proposition 1's exact-potential refutation: a searcher for unilateral
//     4-cycles whose payoff-change sum is non-zero, which by Monderer &
//     Shapley (1996) certifies that no exact potential exists.
//
// The paper defines the ordinal potential H(s) as the *rank* of list(s) in
// the ordered set L of all lists. Ranks require materializing L (exponential
// in |Π|), but the ordering they induce is exactly the lexicographic order
// on lists, so the library exposes the comparator Less and materializes
// ranks only for small games (tests use Ranks to confirm the two views
// agree).
package potential

import (
	"math"
	"sort"

	"gameofcoins/internal/core"
)

// ListEntry is one element of list(s): the pair ⟨RPU_c(s), c⟩.
type ListEntry struct {
	RPU  float64
	Coin core.CoinID
}

// List returns list(s): the coins of g with their RPUs in s, sorted
// lexicographically from smallest to largest (by RPU, ties by coin ID).
// Empty coins carry RPU = +Inf and therefore sort last.
func List(g *core.Game, s core.Config) []ListEntry {
	rpus := g.RPUs(s)
	out := make([]ListEntry, len(rpus))
	for c, r := range rpus {
		out[c] = ListEntry{RPU: r, Coin: c}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].RPU != out[j].RPU {
			return out[i].RPU < out[j].RPU
		}
		return out[i].Coin < out[j].Coin
	})
	return out
}

// Compare lexicographically compares two lists of equal length, returning
// -1, 0, or +1. Entries compare by (RPU, Coin). Comparing lists from
// different games (different lengths) is a programming error and panics.
func Compare(a, b []ListEntry) int {
	if len(a) != len(b) {
		panic("potential: comparing lists of different games")
	}
	for i := range a {
		switch {
		case a[i].RPU < b[i].RPU:
			return -1
		case a[i].RPU > b[i].RPU:
			return 1
		case a[i].Coin < b[i].Coin:
			return -1
		case a[i].Coin > b[i].Coin:
			return 1
		}
	}
	return 0
}

// Less reports whether list(s) < list(s') in the ordinal-potential order.
// Theorem 1 states this strictly increases along every better-response step.
func Less(g *core.Game, s, sp core.Config) bool {
	return Compare(List(g, s), List(g, sp)) < 0
}

// Ranks materializes the paper's H(s) = rank(list(s)) for every
// configuration of a small game: the returned map sends Config.Key() to the
// rank (1-based) of its list in the ordered set L of all lists. Distinct
// configurations with identical lists share a rank, exactly as in the paper.
// It returns core.ErrTooLarge for games whose state space exceeds the
// enumeration limit.
func Ranks(g *core.Game) (map[string]int, error) {
	type item struct {
		key  string
		list []ListEntry
	}
	var items []item
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		items = append(items, item{key: s.Key(), list: List(g, s)})
		return true
	}); err != nil {
		return nil, err
	}
	sort.Slice(items, func(i, j int) bool { return Compare(items[i].list, items[j].list) < 0 })
	ranks := make(map[string]int, len(items))
	rank := 0
	for i, it := range items {
		if i == 0 || Compare(items[i-1].list, it.list) != 0 {
			rank++
		}
		ranks[it.key] = rank
	}
	return ranks, nil
}

// Symmetric reports whether all coin rewards of g are equal, the premise of
// Appendix B.
func Symmetric(g *core.Game) bool {
	r := g.Rewards()
	for c := 1; c < len(r); c++ {
		if r[c] != r[0] {
			return false
		}
	}
	return true
}

// SymmetricPotential returns Appendix B's potential H(s) = Σ_c 1/M_c(s),
// summing over occupied coins, together with the number of empty coins.
// An empty coin contributes the limit 1/0 = +Inf to the paper's sum; rather
// than collapsing configurations with any empty coin to a single +Inf value,
// the pair (Empty, Sum) carries the full order: in symmetric games a better
// response never vacates a coin (a lone miner already earns the coin's full
// reward), so Empty never increases, and Proposition 4's algebra shows Sum
// strictly decreases whenever Empty is unchanged. SymmetricLess implements
// that lexicographic comparison.
func SymmetricPotential(g *core.Game, s core.Config) (sum float64, empty int) {
	for _, m := range g.CoinPowers(s) {
		if m == 0 {
			empty++
			continue
		}
		sum += 1 / m
	}
	return sum, empty
}

// SymmetricLess reports whether the Appendix-B potential of sp is strictly
// below that of s, i.e. whether s → sp is consistent with a better-response
// step in a symmetric game.
func SymmetricLess(g *core.Game, s, sp core.Config) bool {
	sum, empty := SymmetricPotential(g, s)
	sumP, emptyP := SymmetricPotential(g, sp)
	if emptyP != empty {
		return emptyP < empty
	}
	return sumP < sum
}

// CycleWitness is a closed 4-cycle of unilateral deviations by two miners
// whose payoff-change sum is non-zero — a certificate that the game has no
// exact potential (Monderer & Shapley 1996, Theorem 2.8).
//
// The cycle visits, starting from Base:
//
//	s¹ = Base  →(P moves to CoinP)  s² →(Q moves to CoinQ) s³
//	   →(P moves back)             s⁴ →(Q moves back)      s¹
type CycleWitness struct {
	Base         core.Config
	P, Q         core.MinerID
	CoinP, CoinQ core.CoinID // destinations of the two deviations
	Sum          float64     // Σ payoff changes around the cycle (≠ 0)
}

// CycleSum computes the payoff-change sum around the 4-cycle described by w
// in game g. A game with an exact potential has sum 0 for every such cycle.
func CycleSum(g *core.Game, w CycleWitness) float64 {
	s1 := w.Base
	s2 := g.Apply(s1, w.P, w.CoinP)
	s3 := g.Apply(s2, w.Q, w.CoinQ)
	s4 := g.Apply(s3, w.P, s1[w.P])
	// Changes: P: s1→s2 and s3→s4; Q: s2→s3 and s4→s1.
	return (g.Payoff(s2, w.P) - g.Payoff(s1, w.P)) +
		(g.Payoff(s3, w.Q) - g.Payoff(s2, w.Q)) +
		(g.Payoff(s4, w.P) - g.Payoff(s3, w.P)) +
		(g.Payoff(s1, w.Q) - g.Payoff(s4, w.Q))
}

// FindExactPotentialViolation searches for a 4-cycle with non-zero payoff
// sum, proving g has no exact potential (Proposition 1 generalized). It
// scans all miner pairs and coin pairs starting from the configuration where
// everyone mines coin 0, plus all-pairs over a caller-provided base, and
// returns the first witness whose |sum| exceeds tol, or nil if none found.
func FindExactPotentialViolation(g *core.Game, base core.Config, tol float64) *CycleWitness {
	n, m := g.NumMiners(), g.NumCoins()
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			for cp := 0; cp < m; cp++ {
				if cp == base[p] || !g.Eligible(p, cp) {
					continue
				}
				for cq := 0; cq < m; cq++ {
					if cq == base[q] || !g.Eligible(q, cq) {
						continue
					}
					w := CycleWitness{Base: base, P: p, Q: q, CoinP: cp, CoinQ: cq}
					if sum := CycleSum(g, w); math.Abs(sum) > tol {
						w.Sum = sum
						return &w
					}
				}
			}
		}
	}
	return nil
}
