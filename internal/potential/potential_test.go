package potential

import (
	"math"
	"testing"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

func prop1Game(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 2}, {Name: "p2", Power: 1}},
		[]core.Coin{{Name: "c1"}, {Name: "c2"}},
		[]float64{1, 1},
	)
}

func genericGame(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 13},
			{Name: "p2", Power: 11},
			{Name: "p3", Power: 7},
			{Name: "p4", Power: 5},
			{Name: "p5", Power: 3},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}, {Name: "c2"}},
		[]float64{17, 19, 23},
	)
}

func TestListSortedAndComplete(t *testing.T) {
	g := genericGame(t)
	s := core.Config{0, 0, 1, 1, 2}
	list := List(g, s)
	if len(list) != g.NumCoins() {
		t.Fatalf("list has %d entries", len(list))
	}
	seen := map[core.CoinID]bool{}
	for i, e := range list {
		seen[e.Coin] = true
		if i > 0 {
			prev := list[i-1]
			if e.RPU < prev.RPU || (e.RPU == prev.RPU && e.Coin < prev.Coin) {
				t.Fatalf("list not sorted at %d: %+v", i, list)
			}
		}
	}
	if len(seen) != g.NumCoins() {
		t.Fatal("list missing coins")
	}
}

func TestListEmptyCoinSortsLast(t *testing.T) {
	g := genericGame(t)
	s := core.UniformConfig(5, 0)
	list := List(g, s)
	last := list[len(list)-1]
	if !math.IsInf(last.RPU, 1) {
		t.Fatalf("empty coin should sort last with +Inf, got %+v", list)
	}
}

func TestCompare(t *testing.T) {
	a := []ListEntry{{1, 0}, {2, 1}}
	b := []ListEntry{{1, 0}, {3, 1}}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Fatal("Compare wrong")
	}
	// Tie on RPU broken by coin ID.
	c := []ListEntry{{1, 1}, {2, 1}}
	if Compare(a, c) != -1 {
		t.Fatal("coin tie-break wrong")
	}
}

func TestComparePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare([]ListEntry{{1, 0}}, nil)
}

// TestTheorem1OrdinalIncrease is the main property: every better-response
// step strictly increases the ordinal potential (Less order), over many
// random games, configurations, and steps.
func TestTheorem1OrdinalIncrease(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 300; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 6, Coins: 4})
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		for p := 0; p < g.NumMiners(); p++ {
			for _, c := range g.BetterResponses(s, p) {
				sp := g.Apply(s, p, c)
				if !Less(g, s, sp) {
					t.Fatalf("ordinal potential did not increase:\n s=%v list=%v\n s'=%v list=%v",
						s, List(g, s), sp, List(g, sp))
				}
				if Less(g, sp, s) {
					t.Fatal("Less not antisymmetric")
				}
			}
		}
	}
}

// TestRanksAgreeWithLess: for a small game, the materialized rank ordering
// must agree with the lexicographic comparator.
func TestRanksAgreeWithLess(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 5}, {Name: "p2", Power: 3}, {Name: "p3", Power: 2}},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{7, 11},
	)
	ranks, err := Ranks(g)
	if err != nil {
		t.Fatal(err)
	}
	var configs []core.Config
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		configs = append(configs, s.Clone())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, a := range configs {
		for _, b := range configs {
			cmp := Compare(List(g, a), List(g, b))
			ra, rb := ranks[a.Key()], ranks[b.Key()]
			switch {
			case cmp < 0 && !(ra < rb):
				t.Fatalf("rank order disagrees: %v vs %v", a, b)
			case cmp == 0 && ra != rb:
				t.Fatalf("equal lists, different ranks: %v vs %v", a, b)
			case cmp > 0 && !(ra > rb):
				t.Fatalf("rank order disagrees: %v vs %v", a, b)
			}
		}
	}
}

func TestRanksStrictIncreaseAlongBetterResponse(t *testing.T) {
	g := prop1Game(t)
	ranks, err := Ranks(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.EnumerateConfigs(func(s core.Config) bool {
		for p := 0; p < g.NumMiners(); p++ {
			for _, c := range g.BetterResponses(s, p) {
				sp := g.Apply(s, p, c)
				if !(ranks[sp.Key()] > ranks[s.Key()]) {
					t.Fatalf("H did not increase: %v (%d) -> %v (%d)",
						s, ranks[s.Key()], sp, ranks[sp.Key()])
				}
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetric(t *testing.T) {
	if !Symmetric(prop1Game(t)) {
		t.Fatal("equal rewards should be symmetric")
	}
	if Symmetric(genericGame(t)) {
		t.Fatal("distinct rewards reported symmetric")
	}
}

// TestAppendixBPotentialDecreases: in symmetric games the closed-form
// potential Σ 1/M_c strictly decreases along better-response steps
// (Proposition 4).
func TestAppendixBPotentialDecreases(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 200; trial++ {
		nm := 3 + r.Intn(5)
		nc := 2 + r.Intn(3)
		miners := make([]core.Miner, nm)
		for i := range miners {
			miners[i] = core.Miner{Name: "p", Power: 0.5 + 10*r.Float64()}
		}
		coins := make([]core.Coin, nc)
		rewards := make([]float64, nc)
		for c := range coins {
			coins[c] = core.Coin{Name: "c"}
			rewards[c] = 3 // symmetric
		}
		g, err := core.NewGame(miners, coins, rewards)
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		for p := 0; p < nm; p++ {
			for _, c := range g.BetterResponses(s, p) {
				sp := g.Apply(s, p, c)
				if !SymmetricLess(g, s, sp) {
					sum, empty := SymmetricPotential(g, s)
					sumP, emptyP := SymmetricPotential(g, sp)
					t.Fatalf("symmetric potential did not decrease: (%v,%d) -> (%v,%d)",
						sum, empty, sumP, emptyP)
				}
			}
		}
	}
}

// TestProposition1Cycle reproduces the paper's exact counterexample: the
// 4-cycle s¹→s²→s³→s⁴→s¹ has payoff-change sum 2/3 ≠ 0.
func TestProposition1Cycle(t *testing.T) {
	g := prop1Game(t)
	w := CycleWitness{
		Base:  core.Config{0, 0}, // s¹ = ⟨c1, c1⟩
		P:     0,                 // p1 moves to c2 → s²... (see below)
		Q:     1,
		CoinP: 1,
		CoinQ: 1,
	}
	// The paper's cycle moves p2 first (s²=⟨c1,c2⟩); ours moves p1 first,
	// which is the same cycle traversed from a different corner; |sum| must
	// still be 2/3.
	sum := CycleSum(g, w)
	if math.Abs(math.Abs(sum)-2.0/3.0) > 1e-12 {
		t.Fatalf("cycle sum = %v, want ±2/3", sum)
	}
}

func TestFindExactPotentialViolation(t *testing.T) {
	g := prop1Game(t)
	w := FindExactPotentialViolation(g, core.Config{0, 0}, 1e-9)
	if w == nil {
		t.Fatal("no violation found for Proposition 1 game")
	}
	if math.Abs(w.Sum) < 1e-9 {
		t.Fatalf("witness sum too small: %v", w.Sum)
	}
	// Recomputing the sum from the witness must agree.
	if got := CycleSum(g, *w); math.Abs(got-w.Sum) > 1e-12 {
		t.Fatalf("witness sum %v does not recompute: %v", w.Sum, got)
	}
}

func TestFindExactPotentialViolationSingleMiner(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{{Name: "solo", Power: 1}},
		[]core.Coin{{Name: "a"}, {Name: "b"}},
		[]float64{1, 2},
	)
	// With one miner there are no two-player cycles; search must return nil.
	if w := FindExactPotentialViolation(g, core.Config{0}, 1e-9); w != nil {
		t.Fatalf("unexpected witness %+v", w)
	}
}

// TestNoExactPotentialGenerically: random multi-miner games essentially
// always admit a violating cycle, confirming the game class is not an exact
// potential game.
func TestNoExactPotentialGenerically(t *testing.T) {
	r := rng.New(5)
	found := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 4, Coins: 3})
		if err != nil {
			t.Fatal(err)
		}
		if FindExactPotentialViolation(g, core.RandomConfig(r, g), 1e-9) != nil {
			found++
		}
	}
	if found < trials*9/10 {
		t.Fatalf("violations found in only %d/%d games", found, trials)
	}
}
