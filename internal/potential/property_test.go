package potential

import (
	"testing"
	"testing/quick"

	"gameofcoins/internal/core"
	"gameofcoins/internal/rng"
)

// TestCompareIsTotalOrder checks with testing/quick that Compare behaves as
// a total order on random lists: antisymmetric, reflexive on equals, and
// transitive.
func TestCompareIsTotalOrder(t *testing.T) {
	gen := func(seed uint32, n int) []ListEntry {
		r := rng.New(uint64(seed))
		out := make([]ListEntry, n)
		for i := range out {
			out[i] = ListEntry{RPU: float64(r.Intn(5)), Coin: core.CoinID(r.Intn(3))}
		}
		return out
	}
	f := func(a, b, c uint32, nRaw uint8) bool {
		n := 1 + int(nRaw%4)
		la, lb, lc := gen(a, n), gen(b, n), gen(c, n)
		// Antisymmetry.
		if Compare(la, lb) != -Compare(lb, la) {
			return false
		}
		// Reflexivity.
		if Compare(la, la) != 0 {
			return false
		}
		// Transitivity: la ≤ lb ≤ lc ⇒ la ≤ lc.
		if Compare(la, lb) <= 0 && Compare(lb, lc) <= 0 && Compare(la, lc) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestListInvariantUnderMinerPermutation: list(s) depends only on the
// power-per-coin aggregates, so permuting which same-power miners sit where
// must not change it.
func TestListInvariantUnderMinerPermutation(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{
			{Name: "a", Power: 4}, {Name: "b", Power: 4},
			{Name: "c", Power: 2}, {Name: "d", Power: 2},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{5, 7},
	)
	// Swapping the two power-4 miners (indices 0,1) and the two power-2
	// miners (indices 2,3) preserves the list.
	s1 := core.Config{0, 1, 0, 1}
	s2 := core.Config{1, 0, 1, 0}
	if Compare(List(g, s1), List(g, s2)) != 0 {
		t.Fatalf("lists differ under same-power permutation:\n%v\n%v", List(g, s1), List(g, s2))
	}
}

// TestLessIsIrreflexive: no configuration is below itself.
func TestLessIsIrreflexive(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 100; trial++ {
		g, err := core.RandomGame(r, core.GenSpec{Miners: 5, Coins: 3})
		if err != nil {
			t.Fatal(err)
		}
		s := core.RandomConfig(r, g)
		if Less(g, s, s) {
			t.Fatal("Less(s, s) true")
		}
	}
}
