// Package replay builds the synthetic November-2017 BTC/Bitcoin-Cash
// scenario that regenerates Figure 1 of "Game of Coins".
//
// The paper's Figure 1 shows (a) the BTC and BCH fiat exchange rates around
// November 12, 2017, when the BCH price roughly tripled against its
// pre-spike level while BTC dipped, and (b) the corresponding hashrate
// series, where a large miner cohort rushed from BTC to BCH and back as the
// rate swing made BCH temporarily more profitable per hash.
//
// We do not have the authors' scraped data (bitinfocharts); the substitution
// (DESIGN.md §1) is a calibrated synthetic path: piecewise-linear rate
// curves reproducing the qualitative shape — flat, spike over ~2 days,
// partial retracement — driving a fleet of Zipf-powered profit-chasing
// miners over two PoW chains with BTC-like parameters. What the experiment
// must reproduce is the *mechanism*: hashrate share tracking relative
// profitability with the characteristic overshoot-and-relax shape.
package replay

import (
	"fmt"

	"gameofcoins/internal/chain"
	"gameofcoins/internal/market"
	"gameofcoins/internal/mining"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/sim"
)

// ScenarioParams tune the synthetic replay.
type ScenarioParams struct {
	Miners       int     // fleet size (default 200)
	ZipfExponent float64 // hashrate concentration (default 1.1)
	Epochs       int     // simulation length in hours (default 24*120 ≈ 4 months)
	SpikeHour    int     // hour at which the BCH rate begins to spike (default 1200)
	SpikeFactor  float64 // peak BCH rate relative to baseline (default 3.2)
	Activity     float64 // per-epoch probability an agent re-evaluates (default 0.15)
	Hysteresis   float64 // relative gain required to switch (default 0.02)
	Seed         uint64
}

func (p *ScenarioParams) fill() {
	if p.Miners == 0 {
		p.Miners = 200
	}
	if p.ZipfExponent == 0 {
		p.ZipfExponent = 1.1
	}
	if p.Epochs == 0 {
		p.Epochs = 24 * 120
	}
	if p.SpikeHour == 0 {
		p.SpikeHour = 1200
	}
	if p.SpikeFactor == 0 {
		p.SpikeFactor = 3.2
	}
	if p.Activity == 0 {
		p.Activity = 0.15
	}
	if p.Hysteresis == 0 {
		p.Hysteresis = 0.02
	}
}

// Scenario is a ready-to-run Figure-1 replay.
type Scenario struct {
	Sim    *sim.Simulator
	Params ScenarioParams
	// BTC and BCH are coin indices into the simulator.
	BTC, BCH int
}

// New builds the scenario. The BCH rate path is piecewise linear:
// baseline 0.18 (of BTC's unit price) until SpikeHour, tripling over ~36
// hours, oscillating at the top for ~2 days, then retracing about half of
// the spike — the November-2017 shape. BTC's own rate dips ~15% during the
// event, as it did.
func New(p ScenarioParams) (*Scenario, error) {
	p.fill()
	btcChain, err := chain.New(chain.Params{
		Name:               "btc",
		TargetBlockSeconds: 600,
		RetargetWindow:     2016,
		MaxRetargetFactor:  4,
		BlockSubsidy:       12.5,
		InitialDifficulty:  600, // calibrated so unit fleet power ≈ target rate
	})
	if err != nil {
		return nil, err
	}
	bchChain, err := chain.New(chain.Params{
		Name:               "bch",
		TargetBlockSeconds: 600,
		// BCH ran an emergency difficulty adjustment: much faster retargets.
		RetargetWindow:    144,
		MaxRetargetFactor: 4,
		BlockSubsidy:      12.5,
		InitialDifficulty: 120,
	})
	if err != nil {
		return nil, err
	}

	spike := float64(p.SpikeHour)
	base := 0.18
	peak := base * p.SpikeFactor
	settle := base + (peak-base)*0.45
	bchPath, err := market.NewPiecewise(
		[]float64{0, spike * 3600, (spike + 36) * 3600, (spike + 60) * 3600, (spike + 84) * 3600, (spike + 180) * 3600},
		[]float64{base, base, peak, peak * 0.8, peak * 0.95, settle},
	)
	if err != nil {
		return nil, err
	}
	btcPath, err := market.NewPiecewise(
		[]float64{0, spike * 3600, (spike + 36) * 3600, (spike + 120) * 3600},
		[]float64{1.0, 1.0, 0.85, 1.0},
	)
	if err != nil {
		return nil, err
	}

	btcMarket, err := market.NewCoinMarket(btcChain, btcPath, 0.8, 600)
	if err != nil {
		return nil, err
	}
	bchMarket, err := market.NewCoinMarket(bchChain, bchPath, 0.2, 600)
	if err != nil {
		return nil, err
	}

	powers := rng.Zipf(p.Miners, p.ZipfExponent, 1.0)
	agents := make([]mining.Agent, p.Miners)
	assignment := make([]int, p.Miners)
	for i := range agents {
		agents[i] = mining.Agent{
			Name:  fmt.Sprintf("m%d", i),
			Power: powers[i],
			Policy: mining.Sticky{
				Activity: p.Activity,
				Inner:    mining.BetterResponse{Hysteresis: p.Hysteresis},
			},
		}
		// Start everyone on BTC except a small native BCH cohort (~10% of
		// miners), seeding the pre-spike split.
		if i%10 == 9 {
			assignment[i] = 1
		}
	}

	s, err := sim.New(sim.Config{
		Coins:        []*market.CoinMarket{btcMarket, bchMarket},
		Agents:       agents,
		Assignment:   assignment,
		EpochSeconds: 3600,
		Seed:         p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{Sim: s, Params: p, BTC: 0, BCH: 1}, nil
}

// Run executes the full scenario.
func (sc *Scenario) Run() { sc.Sim.Run(sc.Params.Epochs) }

// Outcome summarizes the migration the scenario produced.
type Outcome struct {
	PreSpikeBCHShare float64 // mean BCH hashrate share before the spike
	PeakBCHShare     float64 // max share during/after the spike
	FinalBCHShare    float64 // share at the end of the run
}

// Outcome computes the migration summary from the recorded series.
func (sc *Scenario) Outcome() Outcome {
	shares := sc.Sim.ShareSeries[sc.BCH]
	var out Outcome
	pre := 0.0
	preN := 0
	for i := range shares.Xs {
		x, y := shares.Xs[i], shares.Ys[i]
		if int(x) < sc.Params.SpikeHour {
			pre += y
			preN++
		}
		if y > out.PeakBCHShare {
			out.PeakBCHShare = y
		}
	}
	if preN > 0 {
		out.PreSpikeBCHShare = pre / float64(preN)
	}
	if n := shares.Len(); n > 0 {
		out.FinalBCHShare = shares.Ys[n-1]
	}
	return out
}
