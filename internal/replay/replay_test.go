package replay

import (
	"testing"

	"gameofcoins/internal/stats"
)

func smallParams() ScenarioParams {
	return ScenarioParams{
		Miners:    80,
		Epochs:    24 * 30, // one month
		SpikeHour: 240,
		Seed:      7,
	}
}

func TestScenarioBuilds(t *testing.T) {
	sc, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if sc.BTC == sc.BCH {
		t.Fatal("coin indices collide")
	}
	if got := len(sc.Sim.Agents()); got != 80 {
		t.Fatalf("agents = %d", got)
	}
}

func TestDefaultsFilled(t *testing.T) {
	sc, err := New(ScenarioParams{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Params.Miners != 200 || sc.Params.SpikeFactor != 3.2 {
		t.Fatalf("defaults not filled: %+v", sc.Params)
	}
}

// TestFigure1Shape is experiment E1's acceptance test: the BCH hashrate
// share must (a) start low, (b) spike substantially after the rate spike,
// and (c) the share series must correlate positively with the BCH/BTC
// relative rate.
func TestFigure1Shape(t *testing.T) {
	sc, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	sc.Run()
	out := sc.Outcome()
	if out.PreSpikeBCHShare > 0.25 {
		t.Fatalf("pre-spike BCH share %v too high", out.PreSpikeBCHShare)
	}
	if out.PeakBCHShare < out.PreSpikeBCHShare*1.8 {
		t.Fatalf("no migration spike: pre %v peak %v", out.PreSpikeBCHShare, out.PeakBCHShare)
	}
	// Correlate share with relative rate.
	shares := sc.Sim.ShareSeries[sc.BCH].Ys
	bch := sc.Sim.RateSeries[sc.BCH].Ys
	btc := sc.Sim.RateSeries[sc.BTC].Ys
	rel := make([]float64, len(bch))
	for i := range rel {
		rel[i] = bch[i] / btc[i]
	}
	if corr := stats.Correlation(rel, shares); corr < 0.5 {
		t.Fatalf("share/rate correlation %v < 0.5", corr)
	}
}

func TestOutcomeOnUnrunScenario(t *testing.T) {
	sc, err := New(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	out := sc.Outcome()
	if out.PreSpikeBCHShare != 0 || out.PeakBCHShare != 0 || out.FinalBCHShare != 0 {
		t.Fatalf("outcome of empty run = %+v", out)
	}
}

func TestScenarioDeterministic(t *testing.T) {
	run := func() Outcome {
		sc, err := New(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		sc.Run()
		return sc.Outcome()
	}
	if run() != run() {
		t.Fatal("scenario not reproducible under fixed seed")
	}
}
