// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// Reproducibility is a first-class requirement for the experiment harness:
// every experiment in EXPERIMENTS.md is regenerated from a fixed seed, and
// sub-simulations (per-coin chains, per-miner decisions) draw from
// independent streams split off a parent generator so that adding a consumer
// never perturbs the draws seen by existing consumers.
//
// The generator is PCG-XSH-RR 64/32 extended to 64-bit output by combining
// two 32-bit outputs; it is fast, has a 2^64 period per stream, and supports
// 2^63 independent streams selected by the increment.
package rng

import "math"

const (
	pcgMultiplier = 6364136223846793005
	pcgDefaultInc = 1442695040888963407
)

// Rand is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; split independent streams instead of sharing one.
type Rand struct {
	state uint64
	inc   uint64
}

// New returns a generator seeded with seed on the default stream.
func New(seed uint64) *Rand {
	return NewStream(seed, 0)
}

// NewStream returns a generator seeded with seed on the given stream.
// Distinct stream values yield statistically independent sequences.
func NewStream(seed, stream uint64) *Rand {
	r := &Rand{inc: (stream << 1) | 1}
	r.state = 0
	r.next32()
	r.state += seed
	r.next32()
	return r
}

// Split derives a new independent generator from r. The parent advances by
// two draws, so splitting is itself deterministic.
func (r *Rand) Split() *Rand {
	seed := r.Uint64()
	stream := r.Uint64() >> 1
	return NewStream(seed, stream)
}

// Fork returns the i-th child generator of r WITHOUT advancing r: it is a
// pure function of (r's current state, i). Distinct i yield independent
// streams.
//
// Fork is the primitive the concurrent experiment engine builds on: a parent
// generator is forked once per task index, so every task sees the same
// stream no matter how many workers run the tasks or in which order they are
// scheduled. Split, by contrast, advances the parent and therefore couples a
// child's stream to how many siblings were split before it.
func (r *Rand) Fork(i uint64) *Rand {
	seed := splitmix64(r.state ^ splitmix64(i+0x632be59bd9b4e019))
	stream := splitmix64(seed^r.inc) >> 1
	return NewStream(seed, stream)
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-mixed bijection used
// to derive decorrelated (seed, stream) pairs for Fork.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (r *Rand) next32() uint32 {
	old := r.state
	r.state = old*pcgMultiplier + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	hi := uint64(r.next32())
	lo := uint64(r.next32())
	return hi<<32 | lo
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching the
// contract of math/rand.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.boundedUint64(uint64(n)))
}

// boundedUint64 returns a uniform value in [0, bound) using Lemire's
// debiased multiply-shift rejection method.
func (r *Rand) boundedUint64(bound uint64) uint64 {
	// Rejection zone to remove modulo bias.
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % bound
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exp returns an exponential variate with the given rate (events per unit
// time). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	return r.ExpFloat64() / rate
}

// Zipf returns n weights following a Zipf distribution with exponent s,
// normalized to sum to total. Zipf-distributed mining power is the standard
// model for hashrate concentration.
func Zipf(n int, s, total float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] = w[i] / sum * total
	}
	return w
}
