package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 identical draws", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 1)
	b := NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 1 and 2 of the same seed collided %d/100 times", same)
	}
}

func TestSplitIsDeterministicAndIndependent(t *testing.T) {
	parent1 := New(9)
	parent2 := New(9)
	c1 := parent1.Split()
	c2 := parent2.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
	// A second split must differ from the first.
	d := parent1.Split()
	c := New(9).Split()
	diff := false
	for i := 0; i < 32; i++ {
		if d.Uint64() != c.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("consecutive splits produced identical streams")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]int)
	for i := 0; i < 30000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
		seen[v]++
	}
	for v := 0; v < 7; v++ {
		if seen[v] == 0 {
			t.Fatalf("Intn(7) never produced %d", v)
		}
		// Each bucket should be near 30000/7 ≈ 4285.
		if seen[v] < 3800 || seen[v] > 4800 {
			t.Fatalf("Intn(7) bucket %d count %d is biased", v, seen[v])
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation %v", p)
			}
			seen[v] = true
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v too far from 1", variance)
	}
}

func TestExpMoments(t *testing.T) {
	r := New(10)
	const n = 200000
	rate := 2.5
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("exp mean %v too far from %v", mean, 1/rate)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestZipf(t *testing.T) {
	w := Zipf(10, 1.0, 100)
	if len(w) != 10 {
		t.Fatalf("len = %d", len(w))
	}
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d non-positive: %v", i, v)
		}
		if i > 0 && v > w[i-1] {
			t.Fatalf("weights not decreasing at %d: %v > %v", i, v, w[i-1])
		}
		sum += v
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Fatalf("weights sum %v != 100", sum)
	}
	if Zipf(0, 1, 1) != nil {
		t.Fatal("Zipf(0) should be nil")
	}
}

func TestBoundedUint64Property(t *testing.T) {
	r := New(11)
	f := func(bound uint16) bool {
		if bound == 0 {
			return true
		}
		v := r.boundedUint64(uint64(bound))
		return v < uint64(bound)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a, b := New(7), New(7)
	_ = a.Fork(0)
	_ = a.Fork(1)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Fork advanced the parent (draw %d)", i)
		}
	}
}

func TestForkOrderAndWorkerCountIndependence(t *testing.T) {
	// The stream of child i must depend only on (parent state, i) — never on
	// how many other children were forked first or in which order. This is
	// exactly the property the engine relies on for worker-count-independent
	// results.
	const children = 32
	want := make([][]uint64, children)
	parent := New(42)
	for i := 0; i < children; i++ {
		c := parent.Fork(uint64(i))
		for j := 0; j < 8; j++ {
			want[i] = append(want[i], c.Uint64())
		}
	}
	// Fork in reverse order, interleaving draws, from a fresh parent.
	parent = New(42)
	kids := make([]*Rand, children)
	for i := children - 1; i >= 0; i-- {
		kids[i] = parent.Fork(uint64(i))
	}
	for j := 0; j < 8; j++ {
		for i := 0; i < children; i++ {
			if got := kids[i].Uint64(); got != want[i][j] {
				t.Fatalf("child %d draw %d: got %#x want %#x", i, j, got, want[i][j])
			}
		}
	}
}

func TestForkChildrenDistinct(t *testing.T) {
	parent := New(3)
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 1000; i++ {
		v := parent.Fork(i).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("children %d and %d share first draw %#x", prev, i, v)
		}
		seen[v] = i
	}
}

func TestForkDiffersFromParentStream(t *testing.T) {
	parent := New(9)
	child := parent.Fork(0)
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Fork(0).Uint64() == child.Uint64() {
			// parent state unchanged, so Fork(0) repeats child's stream —
			// but child has advanced; only the first draw may collide.
			same++
		}
	}
	if same > 1 {
		t.Fatalf("child stream looks degenerate: %d collisions", same)
	}
}
