// Package schedbench is the engine scheduler's tail-latency benchmark: a
// skewed-cost sweep — many cheap tasks plus one fat straggler arriving last,
// the adversarial shape ISSUE'd straight from the Game-of-Coins sweeps,
// where one DesignSweep pair can cost orders of magnitude more than another
// — run twice on fresh engines, once in FIFO submission order (the spec
// hides its costs) and once size-aware (the spec implements engine.Sizer, so
// the dispatcher orders longest-processing-time-first). It reports makespan
// and per-task completion-latency percentiles for both, plus a concurrent
// long+short phase measuring cross-job fair share and the dispatcher's steal
// count.
//
// Task costs are wall-clock sleeps, not CPU burns: scheduling quality is a
// function of *when* tasks start, so sleeping makes the measured ratios
// hardware-independent and CI-stable. cmd/gocbench -sched emits the report
// as JSON (scripts/bench.sh writes it to BENCH_sched.json), and the root
// BenchmarkSchedTailLatency surfaces the same numbers under `go test
// -bench`.
package schedbench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
)

// Options size the benchmark. The zero value selects the defaults noted per
// field.
type Options struct {
	// Workers is the engine worker count (default 8 — the acceptance
	// configuration).
	Workers int
	// SmallTasks is the number of cheap tasks (default 63).
	SmallTasks int
	// Small and Large are the cheap/fat task durations before scaling
	// (defaults 10ms and 90ms: the fat task equals the cheap work one
	// worker-slot short of the pool, the shape where LPT's win is largest).
	Small, Large time.Duration
	// Scale multiplies every task duration (default 1; tests shrink it).
	Scale float64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.SmallTasks <= 0 {
		o.SmallTasks = 63
	}
	if o.Small <= 0 {
		o.Small = 10 * time.Millisecond
	}
	if o.Large <= 0 {
		o.Large = 90 * time.Millisecond
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// VariantStats are one scheduling policy's measurements over the skewed
// sweep: total makespan and per-task completion latency percentiles (time
// from job start to each task's completion — the tail is what a progress
// watcher experiences).
type VariantStats struct {
	MakespanMS float64 `json:"makespan_ms"`
	P50TaskMS  float64 `json:"p50_task_ms"`
	P99TaskMS  float64 `json:"p99_task_ms"`
}

// FairShareStats measure the concurrent-jobs phase: a long job is submitted
// first, a short job once the long one is running. Under fair share the
// short job's wall clock stays near its own work; under FIFO feeding it
// would have inherited the long job's.
type FairShareStats struct {
	ShortJobMS float64 `json:"short_job_ms"`
	LongJobMS  float64 `json:"long_job_ms"`
}

// Report is the benchmark's JSON document.
type Report struct {
	Workers   int            `json:"workers"`
	Tasks     int            `json:"tasks"`
	FIFO      VariantStats   `json:"fifo"`
	LPT       VariantStats   `json:"lpt"`
	Speedup   float64        `json:"speedup"` // FIFO makespan / LPT makespan
	Steals    uint64         `json:"steals"`  // from the fair-share phase
	FairShare FairShareStats `json:"fair_share"`
}

func (r Report) String() string {
	return fmt.Sprintf(
		"sched: %d workers, %d tasks: makespan fifo=%.1fms lpt=%.1fms (%.2fx), p99 fifo=%.1fms lpt=%.1fms; fair share: short=%.1fms long=%.1fms, %d steals",
		r.Workers, r.Tasks, r.FIFO.MakespanMS, r.LPT.MakespanMS, r.Speedup,
		r.FIFO.P99TaskMS, r.LPT.P99TaskMS,
		r.FairShare.ShortJobMS, r.FairShare.LongJobMS, r.Steals)
}

// sleepSpec is the skewed sweep: task i sleeps costs[i] and records its
// completion offset. It deliberately hides its costs from the engine —
// the FIFO baseline. It bends the Spec purity contract (tasks record
// timestamps) the way a benchmark harness may: each index is written once.
type sleepSpec struct {
	name  string
	costs []time.Duration
	done  []time.Duration
	start time.Time
}

func (s *sleepSpec) Kind() string { return s.name }
func (s *sleepSpec) Tasks() int   { return len(s.costs) }
func (s *sleepSpec) RunTask(ctx context.Context, i int, _ *rng.Rand) (any, error) {
	t := time.NewTimer(s.costs[i])
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	s.done[i] = time.Since(s.start)
	return i, nil
}
func (s *sleepSpec) Aggregate(results []any) (any, error) { return len(results), nil }

// sizedSleepSpec is the same sweep with its costs exposed: the dispatcher
// orders it longest-processing-time-first.
type sizedSleepSpec struct{ *sleepSpec }

func (s sizedSleepSpec) TaskCost(i int) float64 { return float64(s.costs[i]) }

var _ engine.Sizer = sizedSleepSpec{}

// skewedCosts builds the adversarial arrival order: SmallTasks cheap tasks
// followed by one fat straggler at the highest index — exactly the job shape
// where FIFO feeding leaves the whole pool idling behind one task.
func skewedCosts(o Options) []time.Duration {
	costs := make([]time.Duration, o.SmallTasks+1)
	for i := 0; i < o.SmallTasks; i++ {
		costs[i] = time.Duration(float64(o.Small) * o.Scale)
	}
	costs[o.SmallTasks] = time.Duration(float64(o.Large) * o.Scale)
	return costs
}

func runVariant(workers int, spec *sleepSpec, sized bool) (VariantStats, error) {
	eng := engine.New(workers)
	spec.start = time.Now()
	var toRun engine.Spec = spec
	if sized {
		toRun = sizedSleepSpec{spec}
	}
	if _, err := eng.Run(context.Background(), toRun, 1, nil); err != nil {
		return VariantStats{}, err
	}
	makespan := time.Since(spec.start)
	lat := append([]time.Duration(nil), spec.done...)
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	// Percentile ranks round up, so p99 of 64 tasks is the slowest task —
	// the straggler whose completion time is the whole tail story.
	pct := func(p float64) float64 {
		i := int(math.Ceil(p * float64(len(lat)-1)))
		return float64(lat[i]) / float64(time.Millisecond)
	}
	return VariantStats{
		MakespanMS: float64(makespan) / float64(time.Millisecond),
		P50TaskMS:  pct(0.50),
		P99TaskMS:  pct(0.99),
	}, nil
}

// Run executes the benchmark and returns its report.
func Run(opts Options) (Report, error) {
	o := opts.withDefaults()
	costs := skewedCosts(o)
	rep := Report{Workers: o.Workers, Tasks: len(costs)}

	fifo := &sleepSpec{name: "sched_fifo", costs: costs, done: make([]time.Duration, len(costs))}
	var err error
	if rep.FIFO, err = runVariant(o.Workers, fifo, false); err != nil {
		return rep, err
	}
	lpt := &sleepSpec{name: "sched_lpt", costs: costs, done: make([]time.Duration, len(costs))}
	if rep.LPT, err = runVariant(o.Workers, lpt, true); err != nil {
		return rep, err
	}
	if rep.LPT.MakespanMS > 0 {
		rep.Speedup = rep.FIFO.MakespanMS / rep.LPT.MakespanMS
	}

	// Fair-share phase: a long uniform job first, a short one once the long
	// job occupies the pool. Both on one engine, so the dispatcher must
	// split the workers and finishing workers steal across jobs.
	eng := engine.New(o.Workers)
	longCosts := make([]time.Duration, 4*o.Workers)
	for i := range longCosts {
		longCosts[i] = time.Duration(float64(o.Small) * o.Scale)
	}
	long := &sleepSpec{name: "sched_long", costs: longCosts, done: make([]time.Duration, len(longCosts))}
	shortCosts := make([]time.Duration, o.Workers/2+1)
	for i := range shortCosts {
		shortCosts[i] = time.Duration(float64(o.Small) * o.Scale / 2)
	}
	shortSpec := &sleepSpec{name: "sched_short", costs: shortCosts, done: make([]time.Duration, len(shortCosts))}
	longErr := make(chan error, 1)
	long.start = time.Now()
	go func() {
		_, err := eng.Run(context.Background(), sizedSleepSpec{long}, 1, nil)
		longErr <- err
	}()
	// Let the long job sink into the pool before the short job arrives.
	time.Sleep(time.Duration(float64(o.Small) * o.Scale / 2))
	shortStart := time.Now()
	if _, err := eng.Run(context.Background(), sizedSleepSpec{shortSpec}, 1, nil); err != nil {
		return rep, err
	}
	rep.FairShare.ShortJobMS = float64(time.Since(shortStart)) / float64(time.Millisecond)
	if err := <-longErr; err != nil {
		return rep, err
	}
	rep.FairShare.LongJobMS = float64(time.Since(long.start)) / float64(time.Millisecond)
	rep.Steals = eng.Stats().Steals
	return rep, nil
}
