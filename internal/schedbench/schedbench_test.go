package schedbench

import "testing"

// TestRunShape runs a scaled-down benchmark and checks the report is
// internally coherent; the full-scale ≥1.3× acceptance number is recorded by
// scripts/bench.sh into BENCH_sched.json, not asserted here (CI machines
// under load shouldn't fail the suite on a timing ratio).
func TestRunShape(t *testing.T) {
	rep, err := Run(Options{Scale: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 8 || rep.Tasks != 64 {
		t.Fatalf("report sized wrong: %+v", rep)
	}
	for _, v := range []VariantStats{rep.FIFO, rep.LPT} {
		if v.MakespanMS <= 0 || v.P50TaskMS <= 0 || v.P99TaskMS < v.P50TaskMS || v.MakespanMS < v.P99TaskMS {
			t.Fatalf("incoherent variant stats: %+v", v)
		}
	}
	if rep.Speedup <= 1 {
		t.Fatalf("LPT no faster than FIFO on the skewed sweep: %+v", rep)
	}
	if rep.FairShare.ShortJobMS <= 0 || rep.FairShare.LongJobMS <= rep.FairShare.ShortJobMS {
		t.Fatalf("fair-share phase incoherent: %+v", rep.FairShare)
	}
	if rep.Steals == 0 {
		t.Fatal("concurrent phase recorded no steals")
	}
	if rep.String() == "" {
		t.Fatal("empty summary")
	}
}
