// Package security quantifies the decentralization concern raised in the
// paper's discussion (§6): learning dynamics — and especially reward-design
// manipulation — can pass through "bad" configurations in which one miner
// holds a dominant position in a coin, "killing (at least for a while) the
// basic guarantee of non-manipulation (security) for that coin".
//
// The package computes the standard concentration metrics per coin:
//
//   - MaxShare: the largest single miner's fraction of the coin's power
//     (≥ 0.5 ⇒ a 51% attacker exists);
//   - HHI: the Herfindahl–Hirschman index Σ share², the economists'
//     concentration measure;
//   - Nakamoto coefficient: the minimum number of miners jointly controlling
//     more than half the coin's power.
//
// Experiment E11 tracks these along reward-design runs and shows the
// mechanism transits maximally-insecure states (stage 1 parks *all* miners
// on one coin, leaving every other coin with zero security and the target
// coin dominated by p₁).
package security

import (
	"math"
	"sort"

	"gameofcoins/internal/core"
)

// CoinReport is the security snapshot of one coin in one configuration.
type CoinReport struct {
	Coin     core.CoinID
	Miners   int
	Power    float64
	MaxShare float64
	HHI      float64
	// Nakamoto is the minimum number of miners controlling > 50% of the
	// coin's power; 0 for an empty coin.
	Nakamoto int
}

// Snapshot computes per-coin security metrics for configuration s.
func Snapshot(g *core.Game, s core.Config) []CoinReport {
	reports := make([]CoinReport, g.NumCoins())
	shares := make([][]float64, g.NumCoins())
	for c := range reports {
		reports[c].Coin = c
	}
	for p, c := range s {
		power := g.Power(p)
		reports[c].Miners++
		reports[c].Power += power
		shares[c] = append(shares[c], power)
	}
	for c := range reports {
		r := &reports[c]
		if r.Power == 0 {
			continue
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(shares[c])))
		var cum float64
		for i, power := range shares[c] {
			share := power / r.Power
			r.HHI += share * share
			if share > r.MaxShare {
				r.MaxShare = share
			}
			cum += power
			if r.Nakamoto == 0 && cum > r.Power/2 {
				r.Nakamoto = i + 1
			}
		}
	}
	return reports
}

// WorstMaxShare returns the highest single-miner dominance across all
// non-empty coins of s (1 means some coin is fully controlled by one miner).
func WorstMaxShare(g *core.Game, s core.Config) float64 {
	worst := 0.0
	for _, r := range Snapshot(g, s) {
		if r.Power > 0 && r.MaxShare > worst {
			worst = r.MaxShare
		}
	}
	return worst
}

// Insecure reports whether any non-empty coin of s has a single miner with
// more than half its power (a 51% attacker).
func Insecure(g *core.Game, s core.Config) bool {
	return WorstMaxShare(g, s) > 0.5
}

// Trajectory summarizes security along a sequence of configurations (e.g.
// the improving path of a learning run or a design run).
type Trajectory struct {
	// Steps is the number of configurations observed.
	Steps int
	// InsecureSteps counts configurations with a 51% attacker on some coin.
	InsecureSteps int
	// PeakMaxShare is the worst single-miner dominance seen anywhere.
	PeakMaxShare float64
	// PeakHHI is the worst per-coin HHI seen anywhere.
	PeakHHI float64
}

// Observe folds one configuration into the trajectory.
func (t *Trajectory) Observe(g *core.Game, s core.Config) {
	t.Steps++
	worst := 0.0
	for _, r := range Snapshot(g, s) {
		if r.Power == 0 {
			continue
		}
		if r.MaxShare > worst {
			worst = r.MaxShare
		}
		if r.HHI > t.PeakHHI {
			t.PeakHHI = r.HHI
		}
	}
	if worst > t.PeakMaxShare {
		t.PeakMaxShare = worst
	}
	if worst > 0.5 {
		t.InsecureSteps++
	}
}

// InsecureFraction is the fraction of observed configurations with a 51%
// attacker; NaN before any observation.
func (t *Trajectory) InsecureFraction() float64 {
	if t.Steps == 0 {
		return math.NaN()
	}
	return float64(t.InsecureSteps) / float64(t.Steps)
}
