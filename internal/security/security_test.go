package security

import (
	"math"
	"testing"

	"gameofcoins/internal/core"
)

func game(t *testing.T) *core.Game {
	t.Helper()
	return core.MustNewGame(
		[]core.Miner{
			{Name: "p1", Power: 6},
			{Name: "p2", Power: 3},
			{Name: "p3", Power: 2},
			{Name: "p4", Power: 1},
		},
		[]core.Coin{{Name: "c0"}, {Name: "c1"}},
		[]float64{10, 10},
	)
}

func TestSnapshotBasic(t *testing.T) {
	g := game(t)
	// p1 (6) alone on c0; p2,p3,p4 (3,2,1) on c1.
	s := core.Config{0, 1, 1, 1}
	reps := Snapshot(g, s)
	c0, c1 := reps[0], reps[1]
	if c0.Miners != 1 || c0.Power != 6 || c0.MaxShare != 1 || c0.HHI != 1 || c0.Nakamoto != 1 {
		t.Fatalf("c0 = %+v", c0)
	}
	if c1.Miners != 3 || c1.Power != 6 {
		t.Fatalf("c1 = %+v", c1)
	}
	if math.Abs(c1.MaxShare-0.5) > 1e-12 {
		t.Fatalf("c1 max share = %v", c1.MaxShare)
	}
	wantHHI := 0.25 + (2.0/6)*(2.0/6) + (1.0/6)*(1.0/6)
	if math.Abs(c1.HHI-wantHHI) > 1e-12 {
		t.Fatalf("c1 HHI = %v, want %v", c1.HHI, wantHHI)
	}
	// 3+2 = 5 > 3 needed for majority of 6.
	if c1.Nakamoto != 2 {
		t.Fatalf("c1 Nakamoto = %d", c1.Nakamoto)
	}
}

func TestSnapshotEmptyCoin(t *testing.T) {
	g := game(t)
	s := core.UniformConfig(4, 0)
	reps := Snapshot(g, s)
	if reps[1].Power != 0 || reps[1].Nakamoto != 0 || reps[1].HHI != 0 {
		t.Fatalf("empty coin report = %+v", reps[1])
	}
	if reps[0].Miners != 4 {
		t.Fatalf("c0 = %+v", reps[0])
	}
}

func TestWorstMaxShareAndInsecure(t *testing.T) {
	g := game(t)
	// Balanced-ish: p1 alone is 100% of c0 → insecure.
	if !Insecure(g, core.Config{0, 1, 1, 1}) {
		t.Fatal("lone-miner coin not flagged insecure")
	}
	// p1+p4 (6+1) vs p2+p3 (3+2): p1 holds 6/7 of c0 → insecure.
	if got := WorstMaxShare(g, core.Config{0, 1, 1, 0}); math.Abs(got-6.0/7) > 1e-12 {
		t.Fatalf("worst share = %v", got)
	}
	// All together: p1 holds 6/12 = 0.5, not > 0.5 → secure.
	if Insecure(g, core.UniformConfig(4, 0)) {
		t.Fatal("exact-half dominance flagged insecure")
	}
}

func TestTrajectory(t *testing.T) {
	g := game(t)
	var tr Trajectory
	if !math.IsNaN(tr.InsecureFraction()) {
		t.Fatal("empty trajectory fraction should be NaN")
	}
	tr.Observe(g, core.UniformConfig(4, 0)) // secure (0.5 exactly)
	tr.Observe(g, core.Config{0, 1, 1, 1})  // insecure (lone p1)
	if tr.Steps != 2 || tr.InsecureSteps != 1 {
		t.Fatalf("trajectory = %+v", tr)
	}
	if got := tr.InsecureFraction(); got != 0.5 {
		t.Fatalf("fraction = %v", got)
	}
	if tr.PeakMaxShare != 1 {
		t.Fatalf("peak share = %v", tr.PeakMaxShare)
	}
	if tr.PeakHHI != 1 {
		t.Fatalf("peak HHI = %v", tr.PeakHHI)
	}
}

func TestHHIBounds(t *testing.T) {
	g := core.MustNewGame(
		[]core.Miner{
			{Name: "a", Power: 1}, {Name: "b", Power: 1},
			{Name: "c", Power: 1}, {Name: "d", Power: 1},
		},
		[]core.Coin{{Name: "c0"}},
		[]float64{1},
	)
	reps := Snapshot(g, core.UniformConfig(4, 0))
	// Four equal miners: HHI = 4·(1/4)² = 1/4, Nakamoto = 3 (need > 50%).
	if math.Abs(reps[0].HHI-0.25) > 1e-12 {
		t.Fatalf("HHI = %v", reps[0].HHI)
	}
	if reps[0].Nakamoto != 3 {
		t.Fatalf("Nakamoto = %d", reps[0].Nakamoto)
	}
	if reps[0].MaxShare != 0.25 {
		t.Fatalf("MaxShare = %v", reps[0].MaxShare)
	}
}
