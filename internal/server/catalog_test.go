// Catalog v3 tests: versioned spec introspection over GET /v2/specs, schema
// enforcement on submission, version pinning and coexistence, and batch
// submission — all through the public client SDK, like v2_test.go.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"gameofcoins/client"
	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
)

// pairSpecV1 and pairSpecV2 are two coexisting wire formats of one kind:
// the acceptance scenario for the catalog redesign. v2 renames the field
// and doubles the work — a breaking change that pre-versioning would have
// either broken old clients or silently split cache behavior.
type pairSpecV1 struct {
	N int `json:"n"`
}

func (s pairSpecV1) Kind() string { return "test_pair" }
func (s pairSpecV1) Tasks() int   { return 1 }
func (s pairSpecV1) RunTask(_ context.Context, _ int, _ *rng.Rand) (any, error) {
	return s.N, nil
}
func (s pairSpecV1) Aggregate(results []any) (any, error) { return results[0], nil }

type pairSpecV2 struct {
	Count int `json:"count"`
}

func (s pairSpecV2) Kind() string { return "test_pair" }
func (s pairSpecV2) Tasks() int   { return 1 }
func (s pairSpecV2) RunTask(_ context.Context, _ int, _ *rng.Rand) (any, error) {
	return s.Count * 2, nil
}
func (s pairSpecV2) Aggregate(results []any) (any, error) { return results[0], nil }

func init() {
	engine.RegisterSpec("test_pair", 1, engine.DecodeJSON[pairSpecV1](),
		engine.SchemaObject(map[string]*engine.Schema{"n": engine.SchemaInt("value")}))
	engine.RegisterSpec("test_pair", 2, engine.DecodeJSON[pairSpecV2](),
		engine.SchemaObject(map[string]*engine.Schema{"count": engine.SchemaInt("value")}))
}

// TestSpecCatalogEndpoints: GET /v2/specs serves the full catalog with
// fingerprint and schemas, GET /v2/specs/{kind} one entry (latest or
// pinned), and /healthz reports the same fingerprint plus build info.
func TestSpecCatalogEndpoints(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	cat, err := c.Catalog(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Fingerprint != engine.CatalogFingerprint() {
		t.Fatalf("fingerprint %q != registry's %q", cat.Fingerprint, engine.CatalogFingerprint())
	}
	byWire := map[string]engine.CatalogEntry{}
	for _, e := range cat.Specs {
		byWire[e.Wire] = e
	}
	ls, ok := byWire["learn_sweep"]
	if !ok || ls.Version != 1 || !ls.Latest || ls.Schema == nil {
		t.Fatalf("learn_sweep catalog entry = %+v", ls)
	}
	if ls.Schema.Properties["runs"] == nil || ls.Schema.Properties["runs"].Type != "integer" {
		t.Fatalf("learn_sweep schema lost its runs field: %+v", ls.Schema)
	}
	if e := byWire["test_pair@v2"]; !e.Latest || e.Version != 2 {
		t.Fatalf("test_pair@v2 entry = %+v", e)
	}
	if e := byWire["test_pair"]; e.Latest || e.Version != 1 {
		t.Fatalf("test_pair (v1) entry = %+v", e)
	}

	// Single-entry endpoint: bare kind resolves to latest, pins work, and
	// unknown/malformed kinds 404/400.
	if e, err := c.Spec(ctx, "test_pair"); err != nil || e.Version != 2 {
		t.Fatalf("Spec(test_pair) = %+v, %v", e, err)
	}
	if e, err := c.Spec(ctx, "test_pair@v1"); err != nil || e.Version != 1 || e.Schema.Properties["n"] == nil {
		t.Fatalf("Spec(test_pair@v1) = %+v, %v", e, err)
	}
	var apiErr *client.APIError
	if _, err := c.Spec(ctx, "nope_sweep"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown kind err = %v", err)
	}
	if _, err := c.Spec(ctx, "test_pair@vx"); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed pin err = %v", err)
	}

	// /healthz: build info + the same fingerprint.
	var hz struct {
		Status      string `json:"status"`
		Version     string `json:"version"`
		Go          string `json:"go"`
		Fingerprint string `json:"catalog_fingerprint"`
		Kinds       int    `json:"kinds"`
	}
	if err := json.Unmarshal(rawGet(t, base+"/healthz"), &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Version != server.Version || hz.Go == "" {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.Fingerprint != cat.Fingerprint || hz.Kinds != len(engine.SpecKinds()) {
		t.Fatalf("healthz fingerprint/kinds drifted from catalog: %+v", hz)
	}
}

// TestVersionCoexistence: a bare kind runs the latest version, @vN pins —
// both versions runnable side by side with distinct cache lines — and
// pinning v1 shares the bare-kind-era cache line exactly.
func TestVersionCoexistence(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	// Latest (v2): field "count", result doubled.
	h2, err := c.Submit(ctx, "test_pair", 4, pairSpecV2{Count: 21})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := h2.Wait(ctx); err != nil || st.State != engine.StateDone {
		t.Fatalf("v2 job: %+v, %v", st, err)
	}
	var got int
	if err := h2.Result(ctx, &got); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("v2 result = %d, want 42", got)
	}

	// Pinned v1: field "n", result as-is; its own job and cache line.
	h1, err := c.Submit(ctx, "test_pair", 4, pairSpecV1{N: 21}, client.AtVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := h1.Wait(ctx); err != nil || st.State != engine.StateDone {
		t.Fatalf("v1 job: %+v, %v", st, err)
	}
	if err := h1.Result(ctx, &got); err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("v1 result = %d, want 21", got)
	}
	if h1.Submitted.Status.ID == h2.Submitted.Status.ID {
		t.Fatal("v1 and v2 submissions shared a job")
	}

	// The v1 document under the latest version is a schema mismatch: 422
	// with the field's JSON pointer.
	_, err = c.Submit(ctx, "test_pair", 4, pairSpecV1{N: 21})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("v1 doc under v2 err = %v, want 422", err)
	}

	// Re-pinning v1 dedupes onto the v1 job — @v1 and the pre-versioning
	// bare form are one cache line (the golden corpus pins the bare half).
	h1b, err := c.Submit(ctx, "test_pair", 4, pairSpecV1{N: 21}, client.AtVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	if !h1b.Submitted.Cached || h1b.Submitted.Status.ID != h1.Submitted.Status.ID {
		t.Fatalf("repinned v1 missed the cache: %+v", h1b.Submitted)
	}
}

// TestBatchSubmit: one POST /v2/batch mixes successes, a dedupe pair, an
// unknown kind, and a schema mismatch; results come back index-aligned with
// per-item codes, and the good items run to completion.
func TestBatchSubmit(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	items := []client.BatchItem{
		{Kind: "toy_sum", Seed: 31, Spec: toySpec{N: 4}},
		{Kind: "toy_sum", Seed: 31, Spec: toySpec{N: 4}}, // identical: dedupes onto item 0's job
		{Kind: "bogus_sweep", Seed: 1, Spec: map[string]any{}},
		{Kind: "toy_sum", Seed: 31, Spec: map[string]any{"m": 4}}, // schema mismatch
		{Kind: "toy_sum", Seed: 32, Spec: toySpec{N: 5}},
	}
	results, err := c.SubmitBatch(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Err != nil || results[1].Err != nil || results[4].Err != nil {
		t.Fatalf("good items errored: %v %v %v", results[0].Err, results[1].Err, results[4].Err)
	}
	// Items 0 and 1 dedupe onto one job with distinct handles.
	j0, j1 := results[0].Handle.Submitted.Status.ID, results[1].Handle.Submitted.Status.ID
	if j0 != j1 {
		t.Fatalf("identical batch items ran separate jobs %s, %s", j0, j1)
	}
	if results[0].Handle.ID() == results[1].Handle.ID() {
		t.Fatal("identical batch items shared a handle")
	}
	if !results[1].Handle.Submitted.Cached {
		t.Fatal("second identical item not marked cached")
	}
	var be *client.BatchError
	if !errors.As(results[2].Err, &be) || be.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind item err = %v", results[2].Err)
	}
	if !errors.As(results[3].Err, &be) || be.StatusCode != http.StatusUnprocessableEntity || be.Path != "/m" {
		t.Fatalf("schema mismatch item err = %v", results[3].Err)
	}

	// The handles are live: wait and fetch like any single submission.
	for _, i := range []int{0, 4} {
		h := results[i].Handle
		if st, err := h.Wait(ctx); err != nil || st.State != engine.StateDone {
			t.Fatalf("item %d: %+v, %v", i, st, err)
		}
		var sum int
		if err := h.Result(ctx, &sum); err != nil {
			t.Fatal(err)
		}
		want := 12 // 2*(0+1+2+3)
		if i == 4 {
			want = 20 // 2*(0+1+2+3+4)
		}
		if sum != want {
			t.Fatalf("item %d result = %d, want %d", i, sum, want)
		}
	}

	// Handle refcount sanity: releasing one of the deduped handles leaves
	// the other's job (and cached result) intact.
	if err := results[0].Handle.Release(ctx); err != nil {
		t.Fatal(err)
	}
	if jh, err := results[1].Handle.Status(ctx); err != nil || jh.State != engine.StateDone {
		t.Fatalf("surviving handle: %+v, %v", jh, err)
	}

	// A malformed *envelope* inside the batch (typo'd field, wrong shape)
	// errors its own slot only — per-item isolation covers decode failures,
	// not just registry-level ones.
	resp, err := http.Post(base+"/v2/batch", "application/json", bytes.NewReader([]byte(
		`{"jobs":[{"kind":"toy_sum","seed":41,"spec":{"n":2}},{"knd":"toy_sum","seed":1},"not-an-object"]}`)))
	if err != nil {
		t.Fatal(err)
	}
	var mixed struct {
		Results []server.BatchResult `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&mixed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(mixed.Results) != 3 {
		t.Fatalf("mixed batch: status %d, results %+v", resp.StatusCode, mixed.Results)
	}
	if mixed.Results[0].Job == nil || mixed.Results[0].Error != "" {
		t.Fatalf("good item next to a typo'd envelope failed: %+v", mixed.Results[0])
	}
	for _, i := range []int{1, 2} {
		if mixed.Results[i].Job != nil || mixed.Results[i].Code != http.StatusBadRequest {
			t.Fatalf("malformed envelope item %d = %+v, want per-item 400", i, mixed.Results[i])
		}
	}

	// Batch-level rejections: empty and oversized bodies, and an unknown
	// field on the batch wrapper itself.
	for name, body := range map[string]string{
		"empty":    `{"jobs":[]}`,
		"unknown":  `{"jbos":[]}`,
		"too_many": `{"jobs":[` + repeatEnvelopes(server.MaxBatchJobs+1) + `]}`,
	} {
		resp, err := http.Post(base+"/v2/batch", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s batch: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func repeatEnvelopes(n int) string {
	one := `{"kind":"toy_sum","seed":1,"spec":{"n":1}}`
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(one)
	}
	return buf.String()
}

// TestV1SubmissionsResolveLatest: the legacy flat API rides the same
// versioned registry — its translated envelopes carry bare kinds, so v1
// requests always run the latest version and share its cache lines.
func TestV1SubmissionsResolveLatest(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	gen := core.GenSpec{Miners: 4, Coins: 2}
	v1req := server.JobRequest{Type: "equilibrium_sweep", Seed: 14, Gen: &gen, Games: 5}
	body, _ := json.Marshal(v1req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitV1Done(t, base, st.ID)

	// An explicitly @v1-pinned v2 submission of the same job hits the v1
	// cache entry: bare (what translateV1 produces) and @v1 are one line.
	h, err := c.Submit(ctx, "equilibrium_sweep", 14,
		engine.EquilibriumSweep{Gen: gen, Games: 5}, client.AtVersion(1))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Submitted.Cached || h.Submitted.Status.ID != st.ID {
		t.Fatalf("@v1 pin missed the v1-submitted cache entry: %+v", h.Submitted)
	}
}
