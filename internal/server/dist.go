package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
)

// The /dist endpoints are the coordinator's wire surface — gocworker's whole
// protocol (see internal/dist):
//
//	POST /dist/join    JoinRequest → JoinResponse; 409 on a catalog
//	                   fingerprint mismatch (a drifted worker must not
//	                   compute wrong-version tasks)
//	POST /dist/lease   LeaseRequest → Lease, or 204 when no distributable
//	                   job has pending work; 404 for an unknown worker
//	                   (the worker re-joins)
//	POST /dist/report  ReportRequest → ReportResponse; 410 for an unknown
//	                   or expired lease (the worker drops it)
//
// The fleet itself is observable in GET /healthz under "dist".

// FingerprintHeader optionally pins a /v2 submission to a catalog
// fingerprint: a client that captured the catalog once can assert every
// later submission still targets the same spec surface, and a mismatch
// (server upgraded, client pointed at a different replica) is refused with
// 409 instead of silently resolving kinds against a drifted catalog.
const FingerprintHeader = "X-Catalog-Fingerprint"

// checkFingerprint enforces FingerprintHeader when present; it reports
// false after writing the 409.
func (s *Server) checkFingerprint(w http.ResponseWriter, r *http.Request) bool {
	fp := r.Header.Get(FingerprintHeader)
	if fp == "" || fp == engine.CatalogFingerprint() {
		return true
	}
	writeJSON(w, http.StatusConflict, map[string]string{
		"error":       fmt.Sprintf("catalog fingerprint mismatch: client pinned %s, server serves %s", fp, engine.CatalogFingerprint()),
		"fingerprint": engine.CatalogFingerprint(),
	})
	return false
}

// pinnedKind is the always-pinned wire form of (kind, version) — unlike
// engine.VersionedKind, which keeps v1 bare for wire compatibility, a job's
// remote identity must pin explicitly: a bare kind resolves to *latest* on
// the worker, which would silently recompute a v1 job under v2 semantics
// the day a v2 registers. Legacy records with version 0 ran v1 semantics.
func pinnedKind(kind string, version int) string {
	if version <= 0 {
		version = 1
	}
	return fmt.Sprintf("%s@v%d", kind, version)
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

func (s *Server) handleDistJoin(w http.ResponseWriter, r *http.Request) {
	var req dist.JoinRequest
	if !decodeInto(w, r, &req) {
		return
	}
	resp, err := s.fleet.Join(req)
	if err != nil {
		if errors.Is(err, dist.ErrFingerprint) {
			writeError(w, http.StatusConflict, err)
			return
		}
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDistLease(w http.ResponseWriter, r *http.Request) {
	var req dist.LeaseRequest
	if !decodeInto(w, r, &req) {
		return
	}
	lease, err := s.fleet.Lease(req)
	switch {
	case errors.Is(err, dist.ErrUnknownWorker):
		writeError(w, http.StatusNotFound, err)
	case err != nil:
		writeError(w, http.StatusInternalServerError, err)
	case lease == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		writeJSON(w, http.StatusOK, lease)
	}
}

func (s *Server) handleDistReport(w http.ResponseWriter, r *http.Request) {
	var rep dist.ReportRequest
	if !decodeInto(w, r, &rep) {
		return
	}
	resp, err := s.fleet.Report(rep)
	switch {
	case errors.Is(err, dist.ErrUnknownLease):
		writeError(w, http.StatusGone, err)
	case err != nil:
		// Undecodable results or a vanished run: the coordinator already
		// requeued the lease's tasks for local recompute; the worker only
		// needs to know the lease is dead.
		writeError(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}
