// Distributed-execution tests over the real HTTP surface: the /dist
// endpoints' status-code mapping, the /v2 fingerprint gate, and a full
// coordinator + remote-worker round trip through httptest.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
)

// wireSleepSpec is a slow, distributable test kind: tasks sleep ~2ms so a
// remote worker reliably gets leases even on a fast machine, and each task
// draws from its forked stream so any mis-forking on the remote side would
// change the result bytes.
type wireSleepSpec struct {
	N int `json:"n"`
}

type wireSleepTask struct {
	Index int     `json:"index"`
	U     uint64  `json:"u"`
	F     float64 `json:"f"`
}

func (s wireSleepSpec) Kind() string { return "dist_http_sleep" }
func (s wireSleepSpec) Tasks() int   { return s.N }
func (s wireSleepSpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("n must be positive")
	}
	return nil
}

func (s wireSleepSpec) RunTask(ctx context.Context, i int, r *rng.Rand) (any, error) {
	t := time.NewTimer(2 * time.Millisecond)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-t.C:
	}
	return wireSleepTask{Index: i, U: r.Uint64(), F: r.Float64()}, nil
}

func (s wireSleepSpec) Aggregate(results []any) (any, error) {
	out := make([]wireSleepTask, len(results))
	for i, r := range results {
		t, ok := r.(wireSleepTask)
		if !ok {
			return nil, fmt.Errorf("task %d: unexpected type %T", i, r)
		}
		out[i] = t
	}
	return out, nil
}

func (s wireSleepSpec) EncodeTaskResult(res any) (json.RawMessage, error) { return json.Marshal(res) }

func (s wireSleepSpec) DecodeTaskResult(raw json.RawMessage) (any, error) {
	var v wireSleepTask
	if err := json.Unmarshal(raw, &v); err != nil {
		return nil, err
	}
	return v, nil
}

func init() {
	engine.RegisterSpec("dist_http_sleep", 1, func(raw json.RawMessage) (engine.Spec, error) {
		var s wireSleepSpec
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, err
		}
		return s, nil
	}, nil)
}

// distServer starts a gocserve with few local workers and a fast-polling
// coordinator, so remote workers see work quickly in tests.
func distServer(t *testing.T, workers int) string {
	t.Helper()
	s, err := server.NewWithOptions(workers, server.Options{
		Dist: dist.Config{LeaseTTL: time.Second, MaxLeaseTasks: 16, PollInterval: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// TestV2FingerprintGate: a pinned submission against a matching catalog goes
// through; a drifted pin is refused with 409 before any job is created.
func TestV2FingerprintGate(t *testing.T) {
	base := v2Server(t)
	ctx := context.Background()

	good := client.New(base, client.WithFingerprint(engine.CatalogFingerprint()))
	h, err := good.Submit(ctx, "equilibrium_sweep", 5, map[string]any{
		"gen": map[string]any{"Miners": 3, "Coins": 2}, "games": 4,
	})
	if err != nil {
		t.Fatalf("pinned submit with matching fingerprint: %v", err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}

	bad := client.New(base, client.WithFingerprint("catalog-of-another-binary"))
	_, err = bad.Submit(ctx, "equilibrium_sweep", 5, map[string]any{
		"gen": map[string]any{"Miners": 3, "Coins": 2}, "games": 4,
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusConflict {
		t.Fatalf("drifted pin: got %v, want APIError 409", err)
	}
}

// TestDistHTTPErrorMapping locks in the transport contract: 409/404/410 on
// the wire come back as the dist sentinel errors workers switch on.
func TestDistHTTPErrorMapping(t *testing.T) {
	base := distServer(t, 2)
	tr := dist.NewHTTP(base)

	if _, err := tr.Join(dist.JoinRequest{Fingerprint: "drifted"}); !errors.Is(err, dist.ErrFingerprint) {
		t.Fatalf("drifted join: got %v, want ErrFingerprint", err)
	}
	if _, err := tr.Lease(dist.LeaseRequest{WorkerID: "w-999"}); !errors.Is(err, dist.ErrUnknownWorker) {
		t.Fatalf("unknown worker lease: got %v, want ErrUnknownWorker", err)
	}

	join, err := tr.Join(dist.JoinRequest{Name: "t", Fingerprint: engine.CatalogFingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := tr.Lease(dist.LeaseRequest{WorkerID: join.WorkerID})
	if err != nil || lease != nil {
		t.Fatalf("idle lease: got (%v, %v), want (nil, nil) — the 204 path", lease, err)
	}
	if _, err := tr.Report(dist.ReportRequest{WorkerID: join.WorkerID, LeaseID: "l-999", Done: true}); !errors.Is(err, dist.ErrUnknownLease) {
		t.Fatalf("unknown lease report: got %v, want ErrUnknownLease", err)
	}
}

// TestDistHTTPEndToEnd runs the real thing in-process: a one-local-worker
// coordinator, a remote gocworker loop over the HTTP transport, and a job
// whose result must be byte-identical to an undistributed server's.
func TestDistHTTPEndToEnd(t *testing.T) {
	spec := wireSleepSpec{N: 80}
	const seed = 9

	// Reference bytes from a server with no fleet attached.
	refBase := v2Server(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	refClient := client.New(refBase)
	rh, err := refClient.Submit(ctx, "dist_http_sleep", seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	want := rawGet(t, refBase+"/v2/jobs/"+rh.ID()+"/result")

	// The distributed run: starve the coordinator locally (1 worker) and let
	// a remote runner carry real load over HTTP.
	base := distServer(t, 1)
	rctx, rcancel := context.WithCancel(ctx)
	defer rcancel()
	runner := &dist.Runner{Transport: dist.NewHTTP(base), Name: "e2e", Workers: 2}
	go runner.Run(rctx)

	h, err := client.New(base).Submit(ctx, "dist_http_sleep", seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	got := rawGet(t, base+"/v2/jobs/"+h.ID()+"/result")
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed result differs from undistributed reference:\n%s\n%s", got, want)
	}

	// The fleet must actually have carried work (80 × 2ms on one local
	// worker leaves the remote ~160ms of lease opportunity at a 2ms poll).
	var health struct {
		Dist dist.Stats `json:"dist"`
	}
	if err := json.Unmarshal(rawGet(t, base+"/healthz"), &health); err != nil {
		t.Fatal(err)
	}
	if health.Dist.Granted == 0 || health.Dist.Completed == 0 {
		t.Fatalf("fleet carried no work: %+v", health.Dist)
	}
}
