// Pre-versioning data-directory test: a gocserve -data DIR written by the
// PR 3-era server — job records with no "version" field — must rehydrate
// through the versioned registry as v1, serve its recorded results
// byte-identically, and share cache lines with @v1-pinned resubmissions.
// The records come from the golden corpus (internal/engine/testdata), so
// the on-disk fixture and the unit-level compat gate can never drift apart.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
)

func TestRehydratePreVersioningDataDir(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "engine", "testdata", "wire_corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the records as raw bytes — the fixture must hit the disk exactly
	// as PR 3 wrote it, not re-marshalled through today's (versioned) types.
	var corp struct {
		JobRecords []json.RawMessage `json:"job_records"`
	}
	if err := json.Unmarshal(raw, &corp); err != nil {
		t.Fatal(err)
	}
	if len(corp.JobRecords) == 0 {
		t.Fatal("corpus has no job records")
	}

	// Forge the PR 3-era data directory: one {"op":"job","job":{...}} line
	// per record, verbatim.
	dir := t.TempDir()
	var log bytes.Buffer
	type oldRec struct {
		ID     string          `json:"id"`
		Key    string          `json:"key"`
		Kind   string          `json:"kind"`
		Seed   uint64          `json:"seed"`
		Spec   json.RawMessage `json:"spec"`
		Result json.RawMessage `json:"result"`
	}
	var recs []oldRec
	for _, rec := range corp.JobRecords {
		if bytes.Contains(rec, []byte(`"version"`)) {
			t.Fatalf("corpus record is not pre-versioning: %s", rec)
		}
		line, err := json.Marshal(map[string]json.RawMessage{
			"op":  json.RawMessage(`"job"`),
			"job": rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		log.Write(line)
		log.WriteByte('\n')
		var or oldRec
		if err := json.Unmarshal(rec, &or); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, or)
	}
	if err := os.WriteFile(filepath.Join(dir, "log.jsonl"), log.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	p := openPersistent(t, dir, false)
	c := client.New(p.URL)
	ctx := context.Background()

	for _, or := range recs {
		// The recorded result is served byte-identically under the original
		// job ID.
		var served struct {
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(rawGet(t, p.URL+"/v1/jobs/"+or.ID+"/result"), &served); err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := json.Compact(&want, or.Result); err != nil {
			t.Fatal(err)
		}
		if err := json.Compact(&got, served.Result); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("%s: served result drifted from the PR 3 record:\n%s\n%s", or.ID, &got, &want)
		}

		// A @v1-pinned resubmission of the recorded spec hits the
		// rehydrated cache entry — version-less records key as v1.
		h, err := c.Submit(ctx, or.Kind, or.Seed, or.Spec, client.AtVersion(1))
		if err != nil {
			t.Fatal(err)
		}
		if !h.Submitted.Cached || h.Submitted.Status.ID != or.ID {
			t.Fatalf("%s: @v1 resubmit missed the rehydrated entry: %+v", or.ID, h.Submitted)
		}
		// And so does a bare-kind one (what a PR 3 client still sends).
		h2, err := c.Submit(ctx, or.Kind, or.Seed, or.Spec)
		if err != nil {
			t.Fatal(err)
		}
		if !h2.Submitted.Cached || h2.Submitted.Status.ID != or.ID {
			t.Fatalf("%s: bare-kind resubmit missed the rehydrated entry: %+v", or.ID, h2.Submitted)
		}
		if st := h2.Submitted.Status; st.Kind != or.Kind || !st.State.Terminal() {
			t.Fatalf("%s: rehydrated status = %+v", or.ID, st)
		}
	}

	// The rehydrated jobs are engine-visible under their original IDs with
	// full progress (Restore path), not recomputing.
	for _, or := range recs {
		var st engine.Status
		if err := json.Unmarshal(rawGet(t, p.URL+"/v1/jobs/"+or.ID), &st); err != nil {
			t.Fatal(err)
		}
		if st.State != engine.StateDone || st.Progress.Done != st.Progress.Total || st.Progress.Total == 0 {
			t.Fatalf("%s: status after rehydration = %+v", or.ID, st)
		}
	}
}
