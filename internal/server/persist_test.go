// Persistence tests: restart recovery through a real file-backed store, the
// v1-cancel/resubmit race regression, and the submit error-mapping surface.
// External test package like v2_test.go, so the server is exercised through
// its public constructors and the client SDK.
package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/core"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/rng"
	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
)

// stubbornSpec blocks its tasks on a per-Name latch and deliberately
// ignores ctx — the shape of a task deep in a compute kernel that cannot
// observe cancellation mid-step. Cancel leaves the job non-terminal until
// the gate opens, which is exactly the window the v1-cancel race needs.
type stubbornSpec struct {
	Name string `json:"name"`
	N    int    `json:"n"`
}

func (s stubbornSpec) Kind() string { return "test_stubborn" }
func (s stubbornSpec) Tasks() int   { return s.N }
func (s stubbornSpec) RunTask(_ context.Context, i int, _ *rng.Rand) (any, error) {
	<-gateChan(s.Name)
	return i, nil
}
func (s stubbornSpec) Aggregate(results []any) (any, error) { return len(results), nil }

// badMarshalSpec decodes from the wire fine but cannot re-encode: the
// canonical-JSON step fails, which must surface as a 500 (server fault),
// not the 400 every other submit failure maps to.
type badMarshalSpec struct{}

func (badMarshalSpec) Kind() string { return "test_badmarshal" }
func (badMarshalSpec) Tasks() int   { return 1 }
func (badMarshalSpec) RunTask(_ context.Context, i int, _ *rng.Rand) (any, error) {
	return i, nil
}
func (badMarshalSpec) Aggregate(results []any) (any, error) { return len(results), nil }
func (badMarshalSpec) MarshalJSON() ([]byte, error) {
	return nil, errors.New("deliberately unmarshalable")
}

func init() {
	engine.RegisterSpec("test_stubborn", 1, engine.DecodeJSON[stubbornSpec](), nil)
	engine.RegisterSpec("test_badmarshal", 1, func(json.RawMessage) (engine.Spec, error) {
		return badMarshalSpec{}, nil
	}, nil)
}

// TestV1CancelRetractsCacheEntry is the regression test for the
// cancel/resubmit race: v1 DELETE must retract the job's cache entries in
// the same critical section that cancels it. Before the fix, the entry was
// only retracted by an asynchronous goroutine after the job reached a
// terminal state, so an identical submission racing the cancel attached to
// the dying job and received a canceled, resultless job.
func TestV1CancelRetractsCacheEntry(t *testing.T) {
	base := v2Server(t)
	c := client.New(base)
	ctx := context.Background()

	spec := stubbornSpec{Name: "cancelrace-" + strconv.Itoa(time.Now().Nanosecond()), N: 1}
	defer openGate(spec.Name)
	h1, err := c.Submit(ctx, "test_stubborn", 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	jobID := h1.Submitted.Status.ID

	// Cancel via v1. The task ignores ctx, so the job is canceled but still
	// non-terminal — deterministically inside the old race window.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/jobs/"+jobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v1 DELETE: %d", resp.StatusCode)
	}

	// An identical submission must NOT attach to the dying job.
	h2, err := c.Submit(ctx, "test_stubborn", 3, spec)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Submitted.Cached || h2.Submitted.Status.ID == jobID {
		t.Fatalf("identical submission attached to the canceled job: %+v", h2.Submitted)
	}

	// The fresh job computes a real result once unblocked.
	openGate(spec.Name)
	st, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != engine.StateDone {
		t.Fatalf("fresh job ended %s", st.State)
	}
	var n int
	if err := h2.Result(ctx, &n); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("result = %d, want 1", n)
	}
}

// TestSubmitErrorMapping: client mistakes stay 400; internal encoding
// failures are 500 on both API surfaces.
func TestSubmitErrorMapping(t *testing.T) {
	base := v2Server(t)
	cases := []struct {
		name, path, body string
		want             int
	}{
		{"v2_unknown_kind", "/v2/jobs", `{"kind":"bogus","seed":1}`, http.StatusBadRequest},
		{"v2_invalid_spec", "/v2/jobs", `{"kind":"equilibrium_sweep","seed":1,"spec":{"games":0}}`, http.StatusBadRequest},
		{"v2_unknown_game", "/v2/jobs", `{"kind":"learn_sweep","seed":1,"spec":{"game_id":"g-nope","runs":3}}`, http.StatusBadRequest},
		{"v2_marshal_failure", "/v2/jobs", `{"kind":"test_badmarshal","seed":1}`, http.StatusInternalServerError},
		{"v1_unknown_type", "/v1/jobs", `{"type":"bogus"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(base+tc.path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Fatalf("error body undecodable: %v %+v", err, e)
			}
		})
	}
}

// ---- restart recovery ----

// persistentServer opens (or reopens) a server on the given data directory.
// Shutdown order mirrors gocserve: listener, server, then store.
type persistentServer struct {
	s   *server.Server
	ts  *httptest.Server
	st  *store.File
	URL string
}

func openPersistent(t *testing.T, dir string, failInterrupted bool) *persistentServer {
	t.Helper()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.NewWithOptions(4, server.Options{Store: st, FailInterrupted: failInterrupted})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	p := &persistentServer{s: s, ts: ts, st: st, URL: ts.URL}
	t.Cleanup(p.shutdown)
	return p
}

func (p *persistentServer) shutdown() {
	if p.ts == nil {
		return
	}
	p.ts.Close()
	p.s.Close()
	p.st.Close()
	p.ts = nil
}

// waitRecordState polls the store until the job's record reaches the given
// state — the terminal record is written asynchronously after the job
// finishes, so tests must not tear the store down before it lands.
func waitRecordState(t *testing.T, st *store.File, jobID, state string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if rec, ok := snap.Jobs[jobID]; ok && rec.State == state {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never persisted state %q", jobID, state)
}

// TestRestartServesCachedResults: results computed before a shutdown are
// served byte-identically — same job IDs, same bytes, cached:true — after a
// fresh process rehydrates the same data directory, for both a built-in
// kind (typed result codec) and a custom kind with no codec (raw-JSON
// round-trip). Games and v2 handles survive too.
func TestRestartServesCachedResults(t *testing.T) {
	dir := t.TempDir()
	p1 := openPersistent(t, dir, false)
	c1 := client.New(p1.URL)
	ctx := context.Background()

	game := core.MustNewGame(
		[]core.Miner{{Name: "p1", Power: 13}, {Name: "p2", Power: 7}, {Name: "p3", Power: 5}},
		[]core.Coin{{Name: "btc"}, {Name: "bch"}},
		[]float64{17, 9},
	)
	gameID, err := c1.RegisterGame(ctx, game)
	if err != nil {
		t.Fatal(err)
	}

	// A built-in sweep by game reference over v1…
	v1req := server.JobRequest{Type: "learn_sweep", Seed: 11, GameID: gameID,
		Schedulers: []string{"random"}, Runs: 8}
	body, _ := json.Marshal(v1req)
	resp, err := http.Post(p1.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st1 engine.Status
	if err := json.NewDecoder(resp.Body).Decode(&st1); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitV1Done(t, p1.URL, st1.ID)

	// …and a custom kind (no result codec registered) over v2.
	h, err := c1.Submit(ctx, "toy_sum", 9, toySpec{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	toyJobID := h.Submitted.Status.ID

	learnBefore := rawGet(t, p1.URL+"/v1/jobs/"+st1.ID+"/result")
	toyBefore := rawGet(t, p1.URL+"/v2/jobs/"+h.ID()+"/result")

	waitRecordState(t, p1.st, st1.ID, store.JobDone)
	waitRecordState(t, p1.st, toyJobID, store.JobDone)
	p1.shutdown()

	p2 := openPersistent(t, dir, false)

	// The registered game came back.
	var back core.Game
	if err := json.Unmarshal(rawGet(t, p2.URL+"/v1/games/"+gameID), &back); err != nil {
		t.Fatal(err)
	}
	if back.NumMiners() != 3 {
		t.Fatalf("rehydrated game has %d miners", back.NumMiners())
	}

	// Results are served from the rehydrated cache, byte-identical, under
	// the original job IDs — including through the pre-restart v2 handle.
	if got := rawGet(t, p2.URL+"/v1/jobs/"+st1.ID+"/result"); !bytes.Equal(got, learnBefore) {
		t.Fatalf("learn result differs after restart:\n%s\n%s", got, learnBefore)
	}
	if got := rawGet(t, p2.URL+"/v2/jobs/"+h.ID()+"/result"); !bytes.Equal(got, toyBefore) {
		t.Fatalf("toy result differs after restart:\n%s\n%s", got, toyBefore)
	}

	// Identical resubmissions hit the rehydrated cache, flagged as such.
	var st2 engine.Status
	resp2, err := http.Post(p2.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !st2.Cached || st2.ID != st1.ID || st2.State != engine.StateDone {
		t.Fatalf("v1 resubmit after restart missed the cache: %+v", st2)
	}
	c2 := client.New(p2.URL)
	h2, err := c2.Submit(ctx, "toy_sum", 9, toySpec{N: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Submitted.Cached || h2.Submitted.Status.ID != toyJobID {
		t.Fatalf("v2 resubmit after restart missed the cache: %+v", h2.Submitted)
	}
}

// TestRestartResubmitsInterruptedJobs: a job mid-run at shutdown keeps its
// "submitted" record, and the next process life resubmits it under its
// original ID, spec, and seed; pre-restart handles watch it to completion.
func TestRestartResubmitsInterruptedJobs(t *testing.T) {
	dir := t.TempDir()
	p1 := openPersistent(t, dir, false)
	c1 := client.New(p1.URL)
	ctx := context.Background()

	spec := gatedSpec{Name: "restart-" + strconv.Itoa(time.Now().Nanosecond()), N: 3}
	defer openGate(spec.Name)
	h, err := c1.Submit(ctx, "test_gated", 5, spec)
	if err != nil {
		t.Fatal(err)
	}
	jobID := h.Submitted.Status.ID
	p1.shutdown() // cancels the running job, but the record stays "submitted"

	p2 := openPersistent(t, dir, false)
	// The job is back under its original ID, running (blocked on the gate),
	// and the pre-restart handle still resolves to it.
	if st := statusV1(t, p2.URL, jobID); st.State.Terminal() {
		t.Fatalf("interrupted job not resubmitted: %+v", st)
	}
	var jh server.JobHandle
	if err := json.Unmarshal(rawGet(t, p2.URL+"/v2/jobs/"+h.ID()), &jh); err != nil {
		t.Fatal(err)
	}
	if jh.Status.ID != jobID {
		t.Fatalf("rehydrated handle points at %s, want %s", jh.Status.ID, jobID)
	}

	openGate(spec.Name)
	final := waitV1Terminal(t, p2.URL, jobID)
	if final.State != engine.StateDone {
		t.Fatalf("recomputed job ended %s: %s", final.State, final.Error)
	}
	var res struct {
		Result int `json:"result"`
	}
	if err := json.Unmarshal(rawGet(t, p2.URL+"/v1/jobs/"+jobID+"/result"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Result != spec.N {
		t.Fatalf("recomputed result = %d, want %d", res.Result, spec.N)
	}
}

// TestRestartRecomputesUnreadableResult: a done record whose stored result
// document no longer decodes (a result codec changed across an upgrade) is
// recomputed from its spec and seed instead of being destroyed — the same
// recovery path interrupted jobs take.
func TestRestartRecomputesUnreadableResult(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := engine.EquilibriumSweep{Gen: core.GenSpec{Miners: 4, Coins: 2}, Games: 5}
	raw, err := engine.CanonicalSpecJSON(spec)
	if err != nil {
		t.Fatal(err)
	}
	key, err := engine.CacheKey(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := store.JobRecord{ID: "job-1", Key: key, Kind: spec.Kind(), Seed: 3, Tasks: 5,
		Spec: raw, State: store.JobDone,
		Result: json.RawMessage(`{"games":"not-an-int"}`)} // rejected by the codec
	if err := st.PutJob(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	p := openPersistent(t, dir, false)
	final := waitV1Terminal(t, p.URL, "job-1")
	if final.State != engine.StateDone {
		t.Fatalf("unreadable-result job ended %s (%s), want recomputed done", final.State, final.Error)
	}
	var res struct {
		Result engine.EquilibriumSweepResult `json:"result"`
	}
	if err := json.Unmarshal(rawGet(t, p.URL+"/v1/jobs/job-1/result"), &res); err != nil {
		t.Fatal(err)
	}
	if res.Result.Games != 5 {
		t.Fatalf("recomputed result = %+v", res.Result)
	}
}

// TestRestartFailInterrupted: with the flag set, an interrupted job is
// marked failed instead of recomputing; its result is Gone and an identical
// resubmission starts a fresh job.
func TestRestartFailInterrupted(t *testing.T) {
	dir := t.TempDir()
	p1 := openPersistent(t, dir, false)
	c1 := client.New(p1.URL)
	ctx := context.Background()

	spec := gatedSpec{Name: "failint-" + strconv.Itoa(time.Now().Nanosecond()), N: 2}
	defer openGate(spec.Name)
	h, err := c1.Submit(ctx, "test_gated", 6, spec)
	if err != nil {
		t.Fatal(err)
	}
	jobID := h.Submitted.Status.ID
	p1.shutdown()

	p2 := openPersistent(t, dir, true)
	st := statusV1(t, p2.URL, jobID)
	if st.State != engine.StateFailed || !strings.Contains(st.Error, "interrupted") {
		t.Fatalf("status = %+v, want failed/interrupted", st)
	}
	resp, err := http.Get(p2.URL + "/v1/jobs/" + jobID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("result of failed-interrupted job: %d, want 410", resp.StatusCode)
	}

	// Resubmission is a fresh job, not a cache hit on the corpse.
	c2 := client.New(p2.URL)
	h2, err := c2.Submit(ctx, "test_gated", 6, spec)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Submitted.Cached || h2.Submitted.Status.ID == jobID {
		t.Fatalf("resubmit attached to the failed-interrupted job: %+v", h2.Submitted)
	}
	openGate(spec.Name)
	if st, err := h2.Wait(ctx); err != nil || st.State != engine.StateDone {
		t.Fatalf("fresh job: %+v, %v", st, err)
	}
}
