// Watch-reconnect test: the SDK's SSE stream must survive a server restart
// mid-job — reconnect with backoff and Last-Event-ID instead of silently
// closing — and ride the rehydrated (resubmitted) job to its terminal
// status. External test package like v2_test.go.
package server_test

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"testing"
	"time"

	"gameofcoins/client"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/server"
	"gameofcoins/internal/store"
)

// restartableServer serves a server.Server on a fixed address so a client
// can reconnect to the "same server" across an in-process restart —
// httptest picks a fresh port per instance, which would defeat the point.
type restartableServer struct {
	s  *server.Server
	hs *http.Server
	ln net.Listener
}

func startOn(t *testing.T, addr string, st store.Store) *restartableServer {
	t.Helper()
	var ln net.Listener
	var err error
	// The previous instance just closed this address; rebinding can race the
	// kernel briefly, so retry for a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s, err := server.NewWithOptions(2, server.Options{Store: st})
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	go hs.Serve(ln)
	return &restartableServer{s: s, hs: hs, ln: ln}
}

// stop kills the HTTP server abruptly — open SSE connections drop without a
// terminal event, exactly the mid-job cut the reconnect logic exists for —
// then closes the engine server (whose store keeps the job "submitted").
func (r *restartableServer) stop() {
	r.hs.Close()
	r.s.Close()
}

// TestWatchReconnectsAcrossRestart: a client watches a job, the server dies
// mid-job and comes back on the same address and store, the interrupted job
// is resubmitted server-side, and the SAME Watch channel delivers the
// terminal status — no reconnect logic in the caller.
func TestWatchReconnectsAcrossRestart(t *testing.T) {
	st := store.NewMem()

	// Pick a free port, then serve on it so the restart can rebind it.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	srv1 := startOn(t, addr, st)
	c := client.New("http://" + addr)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Half the tasks complete immediately (progress flows pre-restart), the
	// rest block on the gate until after the restart.
	spec := gatedSpec{Name: "reconnect-" + strconv.Itoa(time.Now().Nanosecond()), N: 4, Free: 2}
	defer openGate(spec.Name)
	h, err := c.Submit(ctx, "test_gated", 6, spec)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := h.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Drain the stream in the background, recording what arrives; the
	// channel must stay open across the restart and close only after the
	// terminal status.
	type watchEnd struct {
		last     engine.Status
		statuses int
	}
	done := make(chan watchEnd, 1)
	go func() {
		var end watchEnd
		for st := range ch {
			end.last = st
			end.statuses++
		}
		done <- end
	}()

	// Wait until the free tasks' progress has been observed server-side, so
	// the cut happens demonstrably mid-job.
	waitProgress := func() {
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			jh, err := h.Status(ctx)
			if err == nil && jh.Progress.Done >= spec.Free {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Error("free tasks never progressed")
	}
	waitProgress()

	srv1.stop()
	select {
	case end := <-done:
		t.Fatalf("watch channel closed on server death: %+v", end)
	case <-time.After(300 * time.Millisecond):
		// Good: the watch is retrying while the server is gone.
	}

	// Restart on the same address and store: the handle rehydrates, the
	// interrupted job resubmits under its original ID, and — once the gate
	// opens — completes deterministically.
	srv2 := startOn(t, addr, st)
	defer srv2.stop()
	openGate(spec.Name)

	end := <-done
	if !end.last.State.Terminal() || end.last.State != engine.StateDone {
		t.Fatalf("terminal status after restart = %+v", end.last)
	}
	if end.last.ID != h.Submitted.Status.ID {
		t.Fatalf("watch ended on job %s, submitted %s", end.last.ID, h.Submitted.Status.ID)
	}
	if end.statuses == 0 {
		t.Fatal("no statuses delivered at all")
	}

	// The handle still resolves for results too.
	var n int
	if err := h.Result(ctx, &n); err != nil {
		t.Fatal(err)
	}
	if n != spec.N {
		t.Fatalf("result = %d, want %d", n, spec.N)
	}
}
