package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
)

// TestHealthzReportsEngineStats: the liveness probe carries the engine's
// scheduler snapshot, so queue pressure is observable without enumerating
// jobs.
func TestHealthzReportsEngineStats(t *testing.T) {
	s := New(3)
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })
	var body struct {
		Status string            `json:"status"`
		Engine engine.SchedStats `json:"engine"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, http.StatusOK, &body)
	if body.Status != "ok" || body.Engine.Workers != 3 {
		t.Fatalf("healthz = %+v, want status ok with 3 engine workers", body)
	}
	if body.Engine.ActiveJobs != 0 || body.Engine.QueuedTasks != 0 {
		t.Fatalf("idle server reports scheduler load: %+v", body.Engine)
	}
}

// TestV2StatusCarriesQueueCounts: a running job's v2 status exposes the
// scheduler's per-job view — tasks still queued (and, after completions
// start, tasks running) — and a terminal status drops both back to zero.
func TestV2StatusCarriesQueueCounts(t *testing.T) {
	s := New(1) // one worker: the queue is always the remainder
	ts := httptest.NewServer(s)
	t.Cleanup(func() { ts.Close(); s.Close() })

	env, err := engine.CanonicalSpecJSON(engine.ReplaySweep{
		Runs:   300,
		Params: replay.ScenarioParams{Miners: 30, Epochs: 24 * 10, SpikeHour: 24 * 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	var jh JobHandle
	doJSON(t, http.MethodPost, ts.URL+"/v2/jobs",
		map[string]any{"kind": "replay_sweep", "seed": 5, "spec": env},
		http.StatusCreated, &jh)
	// The submit snapshot is taken before the worker can drain a 300-task
	// queue: the whole job reads as queued.
	if !jh.State.Terminal() && jh.Progress.Queued == 0 {
		t.Fatalf("submit snapshot exposes no queue: %+v", jh.Progress)
	}

	sawQueued := false
	deadline := time.Now().Add(60 * time.Second)
	var st JobHandle
	for time.Now().Before(deadline) {
		// Decode into a fresh struct each poll: queued/running are omitempty,
		// so a reused target would carry stale counts into later snapshots.
		st = JobHandle{}
		doJSON(t, http.MethodGet, ts.URL+"/v2/jobs/"+jh.Handle, nil, http.StatusOK, &st)
		if st.State.Terminal() {
			break
		}
		if st.Progress.Queued > 0 {
			sawQueued = true
		}
		time.Sleep(time.Millisecond)
	}
	if !st.State.Terminal() {
		t.Fatal("job never finished")
	}
	if !sawQueued {
		t.Fatal("no running snapshot exposed a queued count")
	}
	if st.State != engine.StateDone || st.Progress.Done != 300 {
		t.Fatalf("terminal status = %+v", st.Status)
	}
	if st.Progress.Queued != 0 || st.Progress.Running != 0 {
		t.Fatalf("terminal status still reports scheduler load: %+v", st.Progress)
	}
}
