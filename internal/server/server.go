// Package server implements the gocserve HTTP JSON API: game registration,
// asynchronous job submission onto the concurrent experiment engine, status
// polling, cancellation, and result retrieval.
//
// Endpoints (all JSON):
//
//	POST   /v1/games            register a game (core.Game wire form) → {id}
//	GET    /v1/games/{id}       fetch a registered game
//	POST   /v1/jobs             submit a job spec → job status (may be cached)
//	GET    /v1/jobs             list all job statuses
//	GET    /v1/jobs/{id}        poll one job's status and progress
//	GET    /v1/jobs/{id}/result fetch a finished job's result
//	                            (409 while running, 410 if failed/canceled)
//	DELETE /v1/jobs/{id}        cancel a running job (the returned snapshot
//	                            may still read "running"; poll for the
//	                            terminal state)
//
// Deduplication means a job can be shared: identical submissions attach to
// the same job ID, and DELETE cancels that job for every attached client —
// the same way invalidating a shared cache entry affects all its readers.
// Clients that must not share fate should vary the seed (or use /v2, whose
// handles reference-count shared jobs).
//
//	GET    /healthz             liveness probe: build info (server version,
//	                            Go runtime), the catalog fingerprint —
//	                            replicas serving different spec surfaces are
//	                            distinguishable at a glance — and the engine
//	                            scheduler snapshot (workers, active jobs,
//	                            queued/running tasks, steal count)
//
// Job statuses (v1 and v2) carry the scheduler's per-job view in "progress":
// alongside done/total, "running" counts the job's tasks executing on
// workers and "queued" its tasks still waiting in the run queue, as of the
// job's last completed task.
//
// The v2 API is the self-describing envelope form: a job arrives as
// {"kind": ..., "seed": ..., "spec": {...}} and is resolved purely through
// the engine's versioned spec registry (engine.RegisterSpec) — the server
// never switches on job kinds, so new spec types plug in without server
// edits. Kinds are versioned: "kind" resolves to the latest registered
// version, "kind@vN" pins one, and each version's JSON-Schema is served from
// the catalog so clients can validate before submitting. The server itself
// validates every submission against the resolved version's schema and
// rejects shape mismatches with 422 and a JSON-pointer "path" into the spec
// document. POST returns a per-client *handle* (h-N) that reference-counts
// the underlying deduplicated job: DELETE releases one client's interest and
// cancels the job only when the last handle is released.
//
//	GET    /v2/specs                  full spec catalog: every registered
//	                                  kind@version with its schema, latest/
//	                                  deprecated flags, and the catalog
//	                                  fingerprint
//	GET    /v2/specs/{kind}           one catalog entry ("kind" = latest,
//	                                  "kind@vN" = pinned)
//	POST   /v2/jobs                   submit a JobEnvelope → JobHandle
//	POST   /v2/batch                  submit up to MaxBatchJobs envelopes in
//	                                  one request → per-item handles/errors,
//	                                  in request order, sharing the dedupe/
//	                                  refcount path; rate limits are charged
//	                                  per item (partial throttles 429 only
//	                                  their own slots, with retry_after hints)
//	GET    /v2/jobs/{handle}          poll the handle's job status
//	GET    /v2/jobs/{handle}/result   fetch the finished job's result;
//	                                  ?range=lo-hi serves the per-task result
//	                                  documents of [lo,hi) from the job's
//	                                  result ledger — mid-run, as soon as the
//	                                  span is computed (400 malformed/out of
//	                                  bounds, 409 not yet complete, 410 no
//	                                  ledger); oversized spans stream chunked
//	GET    /v2/jobs/{handle}/events   stream progress + terminal status (SSE:
//	                                  "progress" events, "result-range" events
//	                                  as the result ledger's watermark
//	                                  advances, then one "end"; "id:" carries
//	                                  "done.watermark" and a reconnect's
//	                                  Last-Event-ID suppresses already-seen
//	                                  progress and resumes ranges without a
//	                                  skip or duplicate)
//	DELETE /v2/jobs/{handle}          release the handle; cancels the job
//	                                  only if no other handle remains
//
// The v1 endpoints are kept by translation: a v1 JobRequest is rewritten
// into a v2 envelope and follows the same registry path (v1 DELETE still
// cancels the job outright — refcounting is a v2 notion). A job a v1
// client submitted or attached to is *pinned*: v1 clients hold no handles,
// so releasing the last v2 handle never cancels it — only an explicit v1
// DELETE (or shutdown) does. The handle table itself is bounded by
// MaxHandles; past the cap the oldest handles are evicted (they 404
// afterwards) without canceling their jobs.
//
// Results are cached keyed by (canonical job spec, seed): resubmitting an
// identical spec returns a completed job instantly. The cache is sound
// because every job is a deterministic function of its spec and seed — the
// engine's worker pool cannot perturb results.
//
// Persistence is pluggable (internal/store): every game registration, job
// submission, finished result, handle mint/release, and v1 pin is mirrored
// into a Store, and NewWithOptions rehydrates the whole state on startup —
// finished jobs reappear as servable cached results under their original
// IDs, and jobs that were mid-run when the process stopped are resubmitted
// under their original spec and seed (determinism makes the rerun
// byte-identical) or, with Options.FailInterrupted, marked failed. Without
// a store (New, or a nil Options.Store) persistence is disabled entirely —
// exactly the old behavior, at the old cost.
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gameofcoins/internal/core"
	"gameofcoins/internal/dist"
	"gameofcoins/internal/engine"
	"gameofcoins/internal/replay"
	"gameofcoins/internal/store"
	"gameofcoins/internal/traffic"
)

// JobRequest is the wire form of a job submission. Type selects the engine
// spec; the remaining fields parameterize it (unused fields are ignored).
type JobRequest struct {
	// Type is one of learn_sweep, design_sweep, replay_sweep,
	// equilibrium_sweep.
	Type string `json:"type"`
	// Seed roots the job's deterministic randomness.
	Seed uint64 `json:"seed"`
	// GameID references a game registered via POST /v1/games (learn_sweep
	// only; empty means random games from Gen).
	GameID string `json:"game_id,omitempty"`
	// Gen parameterizes random game generation.
	Gen *core.GenSpec `json:"gen,omitempty"`
	// Schedulers, Runs, MaxSteps parameterize learn_sweep.
	Schedulers []string `json:"schedulers,omitempty"`
	Runs       int      `json:"runs,omitempty"`
	MaxSteps   int      `json:"max_steps,omitempty"`
	// Pairs parameterizes design_sweep.
	Pairs int `json:"pairs,omitempty"`
	// Games parameterizes equilibrium_sweep.
	Games int `json:"games,omitempty"`
	// Replay parameterizes replay_sweep (Seed inside is ignored; per-run
	// seeds derive from the job seed).
	Replay *replay.ScenarioParams `json:"replay,omitempty"`
}

// JobHandle is the wire form of a per-client job handle (the v2 POST and
// GET responses). Handle names this client's claim on the job; Clients is
// the number of live handles sharing it. The embedded Status describes the
// underlying (possibly shared) job.
type JobHandle struct {
	Handle  string `json:"handle"`
	Clients int    `json:"clients"`
	// Client is the authenticated identity the handle was minted for;
	// omitted on an open (keyless) server.
	Client string `json:"client,omitempty"`
	engine.Status
}

// Server is the gocserve HTTP handler. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	manager *engine.Manager
	mux     *http.ServeMux
	store   store.Store         // nil: persistence disabled entirely
	fleet   *dist.Coordinator   // lease-based remote worker coordinator (/dist/*)
	traffic *traffic.Controller // admission control: auth, rate limit, quota policy

	// Store writes go through a single ordered queue drained by one
	// background goroutine: ops are enqueued while s.mu is held — so the
	// log order matches the in-memory mutation order exactly — but the I/O
	// itself (which may compact and fsync the whole log) never runs under
	// s.mu and can never stall a request.
	pmu       sync.Mutex
	pops      []func() // guarded by pmu
	pkick     chan struct{}
	pstop     chan struct{}
	pdone     chan struct{}
	pstopOnce sync.Once

	// Persist failures are recorded, not dropped: a store write that errors
	// leaves the on-disk log behind memory, which the next restart silently
	// recomputes — invisible unless counted. /healthz surfaces both fields.
	persistFails   atomic.Uint64
	persistLastErr atomic.Value // string: most recent store-write error

	mu      sync.Mutex
	closing bool                  // guarded by mu; set by Close: suppress terminal records for shutdown-canceled jobs
	games   map[string]*core.Game // guarded by mu
	cache   map[string]string     // guarded by mu; cache key → ID of the job holding the result

	// Per-client handles (v2). A handle is one client's reference to a
	// deduplicated job; refs counts live handles per job so releasing a
	// handle cancels the job only when no other client still wants it.
	// v1pin marks jobs a v1 client submitted or attached to: v1 clients are
	// unaccountable (no handles), so a job they touched is never canceled by
	// v2 refcounting — only an explicit v1 DELETE or shutdown stops it.
	handles       map[string]string   // guarded by mu; handle id → job id
	handleOrder   []string            // guarded by mu; handle ids in mint order, for eviction
	refs          map[string]int      // guarded by mu; job id → live handle count
	v1pin         map[string]struct{} // guarded by mu; job id → attached via v1
	nextHandle    uint64              // guarded by mu
	handleSweepAt int                 // guarded by mu; pruneHandlesLocked's next sweep threshold

	// owners records which authenticated client each handle was minted for
	// (handles minted anonymously — open server, rehydrated handles — are
	// absent). Ownership gates DELETE when a keyring is enforced: releasing
	// another client's claim on a shared job would let one tenant cancel
	// another's work. Deliberately in-memory only: after a restart rehydrated
	// handles are ownerless, which fails open to the pre-traffic semantics.
	owners map[string]string // guarded by mu
}

// MaxHandles caps the v2 handle table. Handles are minted per client and
// many clients never DELETE, so unlike the result cache the table is not
// bounded by job retention; past the cap the oldest handles are evicted
// (404 on later use) *without* canceling their jobs.
const MaxHandles = 4 * engine.DefaultRetention

// Options configure a Server beyond the worker count.
type Options struct {
	// Store persists games, jobs, results, and handles across restarts.
	// nil disables persistence entirely — no mirroring, no extra result
	// copies, which is the historical (and New's) behavior. store.NewMem
	// gives a process-local store for in-process restart scenarios.
	Store store.Store
	// FailInterrupted controls rehydration of jobs that were mid-run when
	// the previous process stopped: false (default) resubmits them under
	// their original ID, spec, and seed — determinism recomputes the
	// identical result — while true marks them failed ("interrupted by
	// server restart") so nothing recomputes without an explicit resubmit.
	FailInterrupted bool
	// Dist tunes the remote-worker coordinator (lease TTL, lease sizing).
	// The zero value selects dist's defaults; the coordinator itself is
	// always on — with no workers joined it grants nothing and costs one
	// idle goroutine.
	Dist dist.Config
	// Traffic is the admission controller: API-key auth, per-client
	// submission rate limits, and the in-flight cost share cap pushed into
	// the engine's fair-share dispatcher. nil runs the server open and
	// unlimited — exactly the pre-traffic behavior.
	Traffic *traffic.Controller
}

// New returns a server running jobs on an engine with the given worker
// count (<= 0 selects GOMAXPROCS) and no persistence.
func New(workers int) *Server {
	s, err := NewWithOptions(workers, Options{})
	if err != nil {
		// Unreachable: only a Store can fail construction.
		panic(err)
	}
	return s
}

// NewWithOptions returns a server persisting to opts.Store, rehydrated from
// whatever state the store already holds. Construction fails only if the
// store cannot be read.
func NewWithOptions(workers int, opts Options) (*Server, error) {
	s := &Server{
		manager: engine.NewManager(engine.New(workers)),
		mux:     http.NewServeMux(),
		store:   opts.Store,
		traffic: opts.Traffic,
		games:   map[string]*core.Game{},
		cache:   map[string]string{},
		handles: map[string]string{},
		refs:    map[string]int{},
		v1pin:   map[string]struct{}{},
		owners:  map[string]string{},
	}
	if s.traffic == nil {
		s.traffic = traffic.New(traffic.Config{})
	}
	// The quota policy lives in the engine's take path; push it there once.
	s.manager.Engine().SetClientShares(s.traffic.MaxShare(), nil)
	if s.store != nil {
		s.pkick = make(chan struct{}, 1)
		s.pstop = make(chan struct{})
		s.pdone = make(chan struct{})
		if err := s.rehydrate(opts.FailInterrupted); err != nil {
			return nil, err
		}
		go s.persistLoop()
	}
	// The coordinator comes up after rehydration: interrupted jobs are
	// already resubmitted with full pending queues by then, which is exactly
	// how leases "rehydrate" — every previously leased task is simply
	// pending again, and stale reports from surviving workers get 410.
	s.fleet = dist.New(s.manager.Engine(), opts.Dist)
	s.routes()
	return s, nil
}

// enqueuePersist queues one store write for the background drain. Callers
// may hold s.mu: enqueueing never blocks and never touches the disk, and
// because mutations enqueue in the order they are applied to the in-memory
// tables, the log sees the same total order. A no-op without a store.
//
// After Close has stopped the drain, the op runs inline instead (callers at
// that point — watchJob goroutines recording a job that finished during
// shutdown — are already off the request path). A write that slips through
// the remaining hairline race is only ever a terminal record, and losing
// one is benign: the record stays "submitted" and the next life recomputes
// the identical result.
// recordPersist tallies a store-write failure instead of dropping it: the
// persist queue has no request to fail, so the error surfaces as a counter
// and last-error string in /healthz. The in-memory tables stay authoritative
// for this life; the on-disk log is behind, which the next restart resolves
// by recomputing — the counter is what makes that drift observable.
func (s *Server) recordPersist(err error) {
	if err == nil {
		return
	}
	s.persistFails.Add(1)
	s.persistLastErr.Store(err.Error())
}

func (s *Server) enqueuePersist(op func()) {
	if s.store == nil {
		return
	}
	select {
	case <-s.pstop:
		op()
		return
	default:
	}
	s.pmu.Lock()
	s.pops = append(s.pops, op)
	s.pmu.Unlock()
	select {
	case s.pkick <- struct{}{}:
	default:
	}
}

// persistLoop drains the write queue until Close, then flushes what is left
// so a graceful shutdown loses nothing that was enqueued.
func (s *Server) persistLoop() {
	defer close(s.pdone)
	for {
		select {
		case <-s.pkick:
			s.drainPersist()
		case <-s.pstop:
			s.drainPersist()
			return
		}
	}
}

func (s *Server) drainPersist() {
	for {
		s.pmu.Lock()
		ops := s.pops
		s.pops = nil
		s.pmu.Unlock()
		if len(ops) == 0 {
			return
		}
		for _, op := range ops {
			op()
		}
	}
}

// rehydrate reloads the store's state into a freshly constructed (not yet
// shared) server: games, then jobs in creation order so the manager's
// eviction order matches the original life, then handles and pins against
// the jobs that actually came back.
func (s *Server) rehydrate(failInterrupted bool) error {
	snap, err := s.store.Load()
	if err != nil {
		return fmt.Errorf("server: load store: %w", err)
	}
	for id, g := range snap.Games {
		//goclint:allow lockguard -- pre-publication: rehydrate runs inside NewWithOptions before the server is shared
		s.games[id] = g
	}
	jobs := make([]store.JobRecord, 0, len(snap.Jobs))
	for _, rec := range snap.Jobs {
		jobs = append(jobs, rec)
	}
	sort.Slice(jobs, func(i, k int) bool { return idLess(jobs[i].ID, jobs[k].ID, "job-") })
	// Rehydration mutates the server's tables without s.mu (nothing else
	// can see the server yet) — so the completion watchers of resubmitted
	// jobs, which DO take s.mu and mutate s.cache the moment their job
	// ends, must not start until every table below is fully built. Collect
	// them and attach last.
	var watch []watchStart
	for _, rec := range jobs {
		watch = append(watch, s.rehydrateJob(rec, failInterrupted, snap.Ranges[rec.ID])...)
	}
	handles := make([]string, 0, len(snap.Handles))
	for h := range snap.Handles {
		handles = append(handles, h)
	}
	sort.Slice(handles, func(i, k int) bool { return idLess(handles[i], handles[k], "h-") })
	for _, h := range handles {
		jobID := snap.Handles[h]
		if _, err := s.manager.Get(jobID); err != nil {
			continue // the job did not come back; the handle would dangle
		}
		s.handles[h] = jobID
		s.handleOrder = append(s.handleOrder, h)
		s.refs[jobID]++
	}
	s.nextHandle = snap.NextHandle
	for jobID := range snap.Pins {
		if _, err := s.manager.Get(jobID); err == nil {
			s.v1pin[jobID] = struct{}{}
		}
	}
	for _, w := range watch {
		s.watchJob(w.job, w.rec)
	}
	return nil
}

// watchStart is a deferred watchJob call: rehydration collects these and
// attaches them only after the server's tables are fully built.
type watchStart struct {
	job *engine.Job
	rec store.JobRecord
}

// rehydrateJob revives one job record. Terminal jobs are restored as-is
// (done jobs re-enter the result cache; the record's result document decodes
// through the registry's result codec, so the served bytes are identical to
// the pre-restart ones). A record still marked submitted was interrupted
// mid-run — and a done record whose result document no longer decodes (a
// codec changed across the upgrade) is treated the same way: the stored
// spec and seed deterministically recompute the result, so nothing is
// destroyed. Nothing here is fatal: a record that cannot be revived at all
// (kind no longer registered, corrupt spec) becomes a failed job that says
// why, not a startup abort.
func (s *Server) rehydrateJob(rec store.JobRecord, failInterrupted bool, ranges []store.RangeRecord) []watchStart {
	switch rec.State {
	case store.JobDone:
		res, err := engine.DecodeResult(rec.Kind, rec.Version, rec.Result)
		if err != nil {
			return s.recomputeJob(rec, failInterrupted,
				fmt.Sprintf("stored result unreadable after restart: %v", err), ranges)
		}
		if j, err := s.manager.Restore(rec.ID, rec.Kind, rec.Tasks, res, engine.StateDone, ""); err == nil {
			//goclint:allow lockguard -- pre-publication: rehydrateJob runs under rehydrate before the server is shared
			s.cache[rec.Key] = rec.ID
			// Persisted per-task ranges rebuild the result ledger, so ?range
			// fetches and resumed result streams survive the restart.
			prefill, _ := flattenRanges(rec.Tasks, ranges)
			j.PrefillResults(prefill)
		}
	case store.JobFailed:
		_, _ = s.manager.Restore(rec.ID, rec.Kind, rec.Tasks, nil, engine.StateFailed, rec.Error)
	case store.JobCanceled:
		_, _ = s.manager.Restore(rec.ID, rec.Kind, rec.Tasks, nil, engine.StateCanceled, rec.Error)
	case store.JobSubmitted:
		return s.recomputeJob(rec, failInterrupted, "interrupted by server restart", ranges)
	}
	return nil
}

// recomputeJob reruns a job record under its original ID, spec, and seed —
// the recovery path for interrupted jobs and for done records whose stored
// result can no longer be decoded. Persisted result ranges from the previous
// life prefill the engine's result ledger, so only the missing suffix of
// tasks actually recomputes — and determinism makes the reassembled result
// byte-identical to an uninterrupted run. With failInterrupted set (or when
// the spec itself cannot be revived) the job is restored as failed instead,
// with reason explaining why. The returned watchStart (if any) must be
// attached by the caller once rehydration has finished building the tables.
// flattenRanges turns persisted range records into a task-indexed document
// map (entries outside [0, tasks) dropped) plus the store's contiguous
// coverage from 0 — the point above which nothing is persisted yet.
func flattenRanges(tasks int, ranges []store.RangeRecord) (map[int]json.RawMessage, int) {
	var prefill map[int]json.RawMessage
	from := 0
	for _, rr := range ranges {
		for k, doc := range rr.Results {
			if i := rr.Lo + k; i >= 0 && i < tasks {
				if prefill == nil {
					prefill = make(map[int]json.RawMessage, len(rr.Results))
				}
				prefill[i] = doc
			}
		}
		if rr.Lo <= from && rr.End() > from {
			from = rr.End()
		}
	}
	return prefill, from
}

func (s *Server) recomputeJob(rec store.JobRecord, failInterrupted bool, reason string, ranges []store.RangeRecord) []watchStart {
	restoreFailed := func(msg string) {
		if _, err := s.manager.Restore(rec.ID, rec.Kind, rec.Tasks, nil, engine.StateFailed, msg); err == nil {
			rec.State = store.JobFailed
			rec.Error = msg
			rec.Result = nil
			s.recordPersist(s.store.PutJob(rec))
		}
	}
	if failInterrupted {
		restoreFailed(reason)
		return nil
	}
	// Records written before the catalog redesign carry no version (0);
	// DecodeSpecAt maps that to v1, the pre-versioning wire format, so old
	// data directories recompute under exactly the semantics they ran with.
	spec, err := engine.DecodeSpecAt(rec.Kind, rec.Version, rec.Spec)
	if err != nil {
		restoreFailed(fmt.Sprintf("%s; not recomputable: %v", reason, err))
		return nil
	}
	// Persisted ranges become the engine's prefill: the decoded documents
	// land in the new job's results and ledger before any task runs, so the
	// scheduler only executes the uncovered suffix. from is the store's
	// contiguous coverage — the watcher resumes persisting above it instead
	// of rewriting spans the log already holds.
	prefill, from := flattenRanges(rec.Tasks, ranges)
	job, err := s.manager.SubmitJobOpts(rec.ID, spec, rec.Seed, engine.SubmitOptions{
		Remote: &engine.RemoteInfo{
			WireKind: pinnedKind(rec.Kind, rec.Version),
			Spec:     rec.Spec,
			Seed:     rec.Seed,
		},
		Prefill: prefill,
	})
	if err != nil {
		restoreFailed(fmt.Sprintf("%s; not recomputable: %v", reason, err))
		return nil
	}
	// Back to "submitted" in the store too, so a crash during the recompute
	// is itself recoverable (and the stale result document is dropped).
	rec.State = store.JobSubmitted
	rec.Result = nil
	rec.Error = ""
	s.recordPersist(s.store.PutJob(rec))
	//goclint:allow lockguard -- pre-publication: recomputeJob runs under rehydrate before the server is shared
	s.cache[rec.Key] = rec.ID
	s.watchRanges(job, rec.ID, from, spec)
	return []watchStart{{job: job, rec: rec}}
}

// idLess orders prefixed sequence IDs ("job-2" < "job-10") by mint age
// through the engine's shared parser, so rehydration order and the store's
// own eviction order agree: foreign (non-numeric) IDs count as sequence 0 —
// older than every minted ID — and tie-break by string.
func idLess(a, b, prefix string) bool {
	na, aok := engine.ParseSeq(a, prefix)
	nb, bok := engine.ParseSeq(b, prefix)
	switch {
	case aok && bok:
		return na < nb
	case aok != bok:
		return bok // the foreign ID (sequence 0) sorts first
	default:
		return a < b
	}
}

// routes registers the endpoint table. Admission control (protect) wraps
// everything except three surfaces: /healthz and the spec catalog stay open
// so probes and clients can discover the server before holding a key, and
// /dist/* stays open because the worker fleet sits inside the trust boundary
// (it is fingerprint-gated separately). Submission endpoints additionally
// charge the client's rate-limit bucket (the `true` rows).
func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/games", s.protect(s.handleCreateGame, false))
	s.mux.HandleFunc("GET /v1/games/{id}", s.protect(s.handleGetGame, false))
	s.mux.HandleFunc("POST /v1/jobs", s.protect(s.handleCreateJob, true))
	s.mux.HandleFunc("GET /v1/jobs", s.protect(s.handleListJobs, false))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.protect(s.handleJobStatus, false))
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.protect(s.handleJobResult, false))
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.protect(s.handleCancelJob, false))
	s.mux.HandleFunc("GET /v2/specs", s.handleListSpecs)
	s.mux.HandleFunc("GET /v2/specs/{kind}", s.handleSpecEntry)
	s.mux.HandleFunc("POST /v2/jobs", s.protect(s.handleCreateJobV2, true))
	// Batch admission is per item, not per request: the handler charges the
	// client's bucket once per envelope, so a partial throttle 429s only the
	// items past the budget (each with its own Retry-After hint) instead of
	// the whole batch costing a single token.
	s.mux.HandleFunc("POST /v2/batch", s.protect(s.handleCreateBatch, false))
	s.mux.HandleFunc("GET /v2/jobs/{handle}", s.protect(s.handleHandleStatus, false))
	s.mux.HandleFunc("GET /v2/jobs/{handle}/result", s.protect(s.handleHandleResult, false))
	s.mux.HandleFunc("GET /v2/jobs/{handle}/events", s.protect(s.handleHandleEvents, false))
	s.mux.HandleFunc("DELETE /v2/jobs/{handle}", s.protect(s.handleReleaseHandle, false))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /dist/join", s.handleDistJoin)
	s.mux.HandleFunc("POST /dist/lease", s.handleDistLease)
	s.mux.HandleFunc("POST /dist/report", s.handleDistReport)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running job. In-flight requests still get coherent
// (canceled) statuses; call during graceful shutdown after the listener
// stops accepting connections. Jobs canceled by Close keep their
// "submitted" store records — a shutdown is an interruption, not a verdict
// — so the next process life resubmits them. Close does not close the
// store (the caller owns it).
func (s *Server) Close() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	// Stop the coordinator before the manager: outstanding leases requeue
	// into their jobs first, so no report or expiry sweep races the mass
	// cancellation below and workers' next reports find their leases gone.
	s.fleet.Close()
	s.manager.Close()
	if s.store != nil {
		// Stop the persistence drain and wait for its final flush, so
		// everything enqueued before Close is on disk by the time the
		// caller closes the store; the extra drain catches ops that raced
		// the loop's exit (enqueuePersist runs post-stop ops inline).
		s.pstopOnce.Do(func() { close(s.pstop) })
		<-s.pdone
		s.drainPersist()
	}
}

func (s *Server) handleCreateGame(w http.ResponseWriter, r *http.Request) {
	var g core.Game
	if err := json.NewDecoder(r.Body).Decode(&g); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode game: %w", err))
		return
	}
	id, err := gameID(&g)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// Persist before publishing (synchronously — registration is rare and
	// durability-or-500 is the contract here): a game that is registered
	// but not durable would break job records referencing it after a
	// restart.
	if s.store != nil {
		if err := s.store.PutGame(id, &g); err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("persist game: %w", err))
			return
		}
	}
	s.mu.Lock()
	s.games[id] = &g
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{
		"id":     id,
		"miners": g.NumMiners(),
		"coins":  g.NumCoins(),
	})
}

func (s *Server) handleGetGame(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	g, ok := s.games[r.PathValue("id")]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown game"))
		return
	}
	writeJSON(w, http.StatusOK, g)
}

// resolveGame is the engine.GameResolver hook the registry path uses: spec
// kinds that reference games by ID (engine.GameRefSpec) are resolved against
// the server's registered games without the registry knowing the server.
func (s *Server) resolveGame(id string) (*core.Game, error) {
	s.mu.Lock()
	g, ok := s.games[id]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("unknown game %q", id)
	}
	return g, nil
}

// submitEnvelope is the single path every job submission takes, v1 or v2:
// decode through the spec registry, resolve game references, dedupe against
// the result cache, submit. It returns the (possibly shared) job and whether
// the submission was answered by an existing cache entry. With mint set (v2)
// it also mints a per-client handle *inside the dedup critical section* —
// minting later would let a concurrent last-handle DELETE cancel the job
// between the cache lookup and the refcount increment.
//
// client is the authenticated identity the submission runs as ("" when the
// server is open); it attributes the job in the engine's quota accounting and
// owns the minted handle. The envelope's priority class becomes the job's
// fair-share urgency weight. Neither enters the cache key: a cache hit
// attaches the client to the job as-is, keeping the original submitter's
// attribution and priority (dedup shares the computation, not the claim).
func (s *Server) submitEnvelope(env engine.JobEnvelope, mint bool, client string) (*engine.Job, bool, JobHandle, error) {
	var jh JobHandle
	class, err := parsePriority(env.Priority)
	if err != nil {
		return nil, false, jh, err
	}
	// ResolveEnvelope is the whole registry path: version resolution ("kind"
	// → latest, "kind@vN" pinned), schema validation (a mismatch surfaces as
	// a *engine.SchemaError, which handlers map to 422 with the error's
	// JSON-pointer path), then the version's decoder.
	rs, err := engine.ResolveEnvelope(env)
	if err != nil {
		return nil, false, jh, err
	}
	spec, err := engine.ResolveSpec(rs.Spec, s.resolveGame)
	if err != nil {
		return nil, false, jh, err
	}
	canonical, err := engine.CanonicalSpecJSON(spec)
	if err != nil {
		// A spec that decoded from the wire but cannot re-encode is the
		// server's problem (a broken Marshaler, non-finite floats built by a
		// decoder), not the client's: surface it as a 500, not a 400.
		return nil, false, jh, internalError{err}
	}
	// The key hashes the *versioned* wire kind — bare for v1, so every
	// pre-versioning cache entry and data directory stays valid, and two
	// versions of one kind can never share a cache line.
	key := engine.CacheKeyJSON(rs.WireKind(), canonical, env.Seed)
	// Check-and-reserve is one critical section: concurrent identical
	// submissions either all see the same cached job or exactly one of them
	// submits and publishes the key the others then hit. (Lock order is
	// server.mu → manager/job mutexes; the manager never calls back into
	// the server, so this cannot deadlock.)
	s.mu.Lock()
	if cachedID, hit := s.cache[key]; hit {
		// Point the client at the job already computing (or holding) this
		// result — identical submissions attach to the same job, whether it
		// is still running or long done, so duplicates are never recomputed
		// and the job table doesn't grow. A dangling entry (job evicted,
		// failed, or canceled) falls through to a fresh submission.
		if job, err := s.manager.Get(cachedID); err == nil {
			// Read Status before Result: if the snapshot is non-terminal the
			// job is servable regardless of what happens next, and if it is
			// terminal the result is already set (finish() stores both under
			// one lock) — the reverse order could misread a job finishing
			// between the two calls as failed and recompute it.
			st := job.Status()
			if _, hasResult := job.Result(); hasResult || !st.State.Terminal() {
				if mint {
					jh = s.mintHandleLocked(job.ID(), client)
				} else {
					s.pinV1Locked(job.ID())
				}
				s.mu.Unlock()
				return job, true, jh, nil
			}
		}
		delete(s.cache, key)
	}
	// Every envelope submission is distributable: the canonical document and
	// versioned wire kind are the job's wire identity, and remote workers
	// resolve the pinned kind through their (fingerprint-verified) registry.
	// Client and weight ride along for quota accounting and priority — pure
	// scheduling inputs, invisible to the job's result and cache identity.
	job, err := s.manager.SubmitJobOpts("", spec, env.Seed, engine.SubmitOptions{
		Remote: &engine.RemoteInfo{
			WireKind: pinnedKind(rs.Kind, rs.Version),
			Spec:     canonical,
			Seed:     env.Seed,
		},
		Client: client,
		Weight: class.Weight(),
	})
	if err != nil {
		s.mu.Unlock()
		return nil, false, jh, err
	}
	rec := store.JobRecord{
		ID:      job.ID(),
		Key:     key,
		Kind:    rs.Kind,
		Version: rs.Version,
		Seed:    env.Seed,
		Tasks:   spec.Tasks(),
		Spec:    canonical,
		State:   store.JobSubmitted,
	}
	// Persistence of the job table is best-effort: a store hiccup costs
	// durability of this record, not the submission (the job still runs).
	// Enqueued before the mint/pin below so the log always carries a job
	// record ahead of the handle/pin ops that reference it — what the
	// store's garbage collection keys on.
	s.enqueuePersist(func() { s.recordPersist(s.store.PutJob(rec)) })
	// Publish the key before releasing the lock so no identical submission
	// can slip between submit and publish; retract it if the job fails or
	// is canceled.
	s.cache[key] = job.ID()
	if mint {
		jh = s.mintHandleLocked(job.ID(), client)
	} else {
		s.pinV1Locked(job.ID())
	}
	s.pruneCacheLocked()
	s.mu.Unlock()
	s.watchJob(job, rec)
	s.watchRanges(job, job.ID(), 0, spec)
	return job, false, jh, nil
}

// watchJob follows job to its terminal state, then persists the terminal
// record and retracts the cache entry of a resultless end. Shutdown is the
// exception: jobs the manager canceled because the whole server is closing
// keep their "submitted" record, which is exactly what makes the next
// process life resubmit them.
func (s *Server) watchJob(job *engine.Job, rec store.JobRecord) {
	go func() {
		<-job.Done()
		if res, ok := job.Result(); ok {
			if s.store == nil {
				return
			}
			if b, err := json.Marshal(res); err == nil {
				rec.State = store.JobDone
				rec.Result = b
				rec.Error = ""
				s.enqueuePersist(func() { s.recordPersist(s.store.PutJob(rec)) })
			}
			// A result that cannot be marshalled also cannot be served; the
			// record stays "submitted" and a restart recomputes it.
			return
		}
		s.mu.Lock()
		if s.cache[rec.Key] == job.ID() {
			delete(s.cache, rec.Key)
		}
		closing := s.closing
		s.mu.Unlock()
		if closing || s.store == nil {
			return
		}
		st := job.Status()
		rec.State = store.JobFailed
		if st.State == engine.StateCanceled {
			rec.State = store.JobCanceled
		}
		rec.Error = st.Error
		rec.Result = nil
		s.enqueuePersist(func() { s.recordPersist(s.store.PutJob(rec)) })
	}()
}

// watchRanges incrementally persists a running job's result ledger: it
// follows the job's status stream and, each time the contiguous-prefix
// watermark advances, appends the new span [last, watermark) to the store as
// a range record. from is where persistence resumes (the store's existing
// coverage after a restart; 0 for fresh jobs). The goroutine exits with the
// status stream — the job's terminal record then either subsumes the spans
// (done: the aggregate persists and clears them) or leaves them as the next
// life's prefill (shutdown-canceled jobs keep their "submitted" record). A
// no-op without a store or for specs without per-task wire codecs.
func (s *Server) watchRanges(job *engine.Job, jobID string, from int, spec engine.Spec) {
	if s.store == nil {
		return
	}
	if _, ok := spec.(engine.TaskCoder); !ok {
		return
	}
	go func() {
		last := from
		persist := func(wm int) {
			if wm <= last {
				return
			}
			docs, err := job.ResultRange(last, wm)
			if err != nil {
				return
			}
			lo := last
			last = wm
			s.enqueuePersist(func() { s.recordPersist(s.store.PutJobRange(jobID, lo, docs)) })
		}
		for st := range job.Watch(context.Background()) {
			persist(st.Progress.Watermark)
		}
		// The final status snapshot can predate the last few recorded tasks
		// (Watch coalesces); catch the tail so a shutdown-canceled job's
		// record covers everything that actually computed.
		persist(job.Watermark())
	}()
}

// pinV1Locked marks a job as v1-attached (see v1pin) and enqueues the pin's
// persistence. Callers hold s.mu.
func (s *Server) pinV1Locked(jobID string) {
	if _, dup := s.v1pin[jobID]; dup {
		return
	}
	s.v1pin[jobID] = struct{}{}
	s.enqueuePersist(func() { s.recordPersist(s.store.PutPin(jobID)) })
}

// mintHandleLocked creates a fresh handle claiming jobID and enqueues its
// persistence — enqueueing under s.mu is what keeps a mint and a later
// eviction of the same handle in log order. Callers must hold s.mu; the
// returned JobHandle carries the handle id and refcount (the job status is
// filled in outside the lock).
func (s *Server) mintHandleLocked(jobID, client string) JobHandle {
	s.nextHandle++
	handle := fmt.Sprintf("h-%d", s.nextHandle)
	s.handles[handle] = jobID
	s.handleOrder = append(s.handleOrder, handle)
	s.refs[jobID]++
	if client != "" {
		s.owners[handle] = client
	}
	s.enqueuePersist(func() { s.recordPersist(s.store.PutHandle(handle, jobID)) })
	s.pruneHandlesLocked()
	return JobHandle{Handle: handle, Clients: s.refs[jobID], Client: client}
}

// internalError marks a submission failure that is the server's fault —
// encoding, storage — rather than the client's. Handlers map it to 500
// where a plain error means 400.
type internalError struct{ err error }

func (e internalError) Error() string { return e.err.Error() }
func (e internalError) Unwrap() error { return e.err }

// submitErrorCode classifies a submitEnvelope (or translateV1) failure:
// schema mismatches — the document's shape diverges from the resolved
// version's published schema — are 422 (the request was well-formed JSON,
// the entity just doesn't match the catalog contract); other client errors
// — unknown kind, malformed or invalid spec, unknown game — are 400;
// internal encoding failures are 500.
func submitErrorCode(err error) int {
	var ie internalError
	if errors.As(err, &ie) {
		return http.StatusInternalServerError
	}
	var se *engine.SchemaError
	if errors.As(err, &se) {
		return http.StatusUnprocessableEntity
	}
	return http.StatusBadRequest
}

// submitErrorParts classifies a submission failure into the (code, message,
// path) triple both the single-submit response and batch items carry — one
// classifier, so the two surfaces can never diverge.
func submitErrorParts(err error) (code int, msg, path string) {
	code = submitErrorCode(err)
	msg = err.Error()
	var se *engine.SchemaError
	if errors.As(err, &se) {
		path = se.Path
	}
	return code, msg, path
}

// writeSubmitError writes a submission failure with its mapped status code;
// schema mismatches additionally carry the JSON-pointer "path" into the
// spec document so clients can point at the offending field.
func writeSubmitError(w http.ResponseWriter, err error) {
	code, msg, path := submitErrorParts(err)
	body := map[string]string{"error": msg}
	if path != "" {
		body["path"] = path
	}
	writeJSON(w, code, body)
}

func (s *Server) handleCreateJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job request: %w", err))
		return
	}
	env, err := translateV1(req)
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	job, cached, _, err := s.submitEnvelope(env, false, clientFrom(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	st := job.Status()
	st.Cached = cached
	writeJSON(w, http.StatusCreated, st)
}

// translateV1 rewrites the legacy flat JobRequest into a self-describing v2
// envelope; from there v1 submissions follow the registry path exactly like
// v2 ones, so the two APIs can never drift (same specs, same cache keys).
func translateV1(req JobRequest) (engine.JobEnvelope, error) {
	gen := core.GenSpec{}
	if req.Gen != nil {
		gen = *req.Gen
	}
	var spec engine.Spec
	switch req.Type {
	case "learn_sweep":
		// A set GameID rides through as a reference; ResolveGames swaps it
		// for the game and clears Gen (a fixed game overrides the generator).
		spec = engine.LearnSweep{
			GameID:     req.GameID,
			Gen:        gen,
			Schedulers: req.Schedulers,
			Runs:       req.Runs,
			MaxSteps:   req.MaxSteps,
		}
	case "design_sweep":
		spec = engine.DesignSweep{Gen: gen, Pairs: req.Pairs}
	case "replay_sweep":
		sw := engine.ReplaySweep{Runs: req.Runs}
		if req.Replay != nil {
			sw.Params = *req.Replay
		}
		spec = sw
	case "equilibrium_sweep":
		spec = engine.EquilibriumSweep{Gen: gen, Games: req.Games}
	default:
		return engine.JobEnvelope{}, fmt.Errorf("unknown job type %q", req.Type)
	}
	raw, err := engine.CanonicalSpecJSON(spec)
	if err != nil {
		// The request decoded fine; failing to re-encode it is on us.
		return engine.JobEnvelope{}, internalError{err}
	}
	return engine.JobEnvelope{Kind: spec.Kind(), Seed: req.Seed, Spec: raw}, nil
}

func (s *Server) handleListJobs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.manager.Statuses())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJobResult(w, job)
}

// writeJobResult serves a job's result with the shared v1/v2 semantics:
// 409 while running, 410 for terminal-but-resultless (failed/canceled).
func writeJobResult(w http.ResponseWriter, job *engine.Job) {
	st := job.Status()
	if !st.State.Terminal() {
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is %s", st.ID, st.State))
		return
	}
	res, ok := job.Result()
	if !ok {
		// Terminal but resultless (failed or canceled): 410, not 409, so
		// clients that retry on "still running" don't poll forever.
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     st.ID,
		"kind":   st.Kind,
		"result": res,
	})
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	job, err := s.manager.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	// With auth enforced, v1 cancel is ownership-gated like v2 release: job
	// IDs are enumerable via GET /v1/jobs, so without this any tenant could
	// tear down another's running work. The job's engine attribution names
	// the original submitter (dedup attaches later clients without
	// reassigning it); unattributed jobs (rehydrated from a previous life)
	// stay cancelable by any authenticated client, exactly like ownerless
	// handles.
	enforced := s.traffic.Enforced()
	client := clientFrom(r)
	if enforced {
		if owner := job.Client(); owner != "" && owner != client {
			writeError(w, http.StatusForbidden, fmt.Errorf("job %s belongs to another client", job.ID()))
			return
		}
	}
	// Retract the job's cache entries inside the critical section, exactly
	// like the v2 last-handle release path — without this a concurrent
	// identical submission could attach to the dying job between Cancel and
	// the asynchronous post-Done retraction, and receive a canceled,
	// resultless job.
	s.mu.Lock()
	if enforced {
		// Even the submitter may not yank a job out from under other tenants
		// still holding live v2 handles on it — that is what refcounted
		// release is for. Checked in the same critical section as the cache
		// retraction so no handle can mint between the check and the cancel.
		for h, id := range s.handles {
			if id != job.ID() {
				continue
			}
			if owner, owned := s.owners[h]; owned && owner != client {
				s.mu.Unlock()
				writeError(w, http.StatusConflict, fmt.Errorf("job %s is claimed by another client's handle", job.ID()))
				return
			}
		}
	}
	s.retractCacheLocked(job)
	s.mu.Unlock()
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Status())
}

// retractCacheLocked removes every cache entry pointing at a job that is
// about to be canceled, so no concurrent identical submission can attach to
// it. A finished job keeps its entries — its cached result stays servable
// and Cancel is a no-op on it. Callers hold s.mu.
func (s *Server) retractCacheLocked(job *engine.Job) {
	if _, done := job.Result(); done {
		return
	}
	for k, id := range s.cache {
		if id == job.ID() {
			delete(s.cache, k)
		}
	}
}

// ---- v2: versioned spec catalog, envelopes, handles, batch, SSE ----

// handleListSpecs serves the full spec catalog: every registered
// kind@version with its JSON-Schema and latest/deprecated flags, the
// catalog fingerprint, and — kept for older clients — the flat kind list.
func (s *Server) handleListSpecs(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"fingerprint": engine.CatalogFingerprint(),
		"kinds":       engine.SpecKinds(),
		"specs":       engine.Catalog(),
	})
}

// handleSpecEntry serves one catalog entry: a bare kind names its latest
// version, "kind@vN" pins one.
func (s *Server) handleSpecEntry(w http.ResponseWriter, r *http.Request) {
	wire := r.PathValue("kind")
	kind, version, err := engine.ParseKindVersion(wire)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	for _, e := range engine.Catalog() {
		if e.Kind != kind {
			continue
		}
		if version == 0 && e.Latest || version == e.Version {
			writeJSON(w, http.StatusOK, e)
			return
		}
	}
	writeError(w, http.StatusNotFound, fmt.Errorf("unknown spec %q", wire))
}

// handleHealthz is the liveness probe, extended with build identity — the
// server version, the Go runtime, and the catalog fingerprint (hash of the
// registered kinds@versions), so replica drift in the accepted wire surface
// is observable without submitting anything — and with the engine's
// scheduler snapshot (worker cap, active jobs, queued/running task counts,
// cumulative steals), so queue pressure is observable without enumerating
// jobs.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{
		"status":              "ok",
		"version":             Version,
		"go":                  runtime.Version(),
		"catalog_fingerprint": engine.CatalogFingerprint(),
		"kinds":               len(engine.SpecKinds()),
		"engine":              s.manager.Engine().Stats(),
		"dist":                s.fleet.Stats(),
		"traffic":             s.traffic.Stats(),
	}
	if n := s.persistFails.Load(); n > 0 {
		body["persist_failures"] = n
		if msg, _ := s.persistLastErr.Load().(string); msg != "" {
			body["persist_last_error"] = msg
		}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleCreateJobV2(w http.ResponseWriter, r *http.Request) {
	if !s.checkFingerprint(w, r) {
		return
	}
	var env engine.JobEnvelope
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode job envelope: %w", err))
		return
	}
	// Every POST mints a fresh handle, cache hit or not: the handle is this
	// client's claim on the (possibly shared) job, and the refcount is what
	// keeps one client's DELETE from canceling another's work.
	job, cached, jh, err := s.submitEnvelope(env, true, clientFrom(r))
	if err != nil {
		writeSubmitError(w, err)
		return
	}
	jh.Status = job.Status()
	jh.Cached = cached
	writeJSON(w, http.StatusCreated, jh)
}

// MaxBatchJobs caps the envelopes one POST /v2/batch request may carry. The
// cap bounds the worst-case work a single request can enqueue (each item is
// its own job, each already bounded by engine.MaxTasksPerJob) without making
// a sweep-of-sweeps multi-round-trip.
const MaxBatchJobs = 256

// BatchRequest is the wire form of POST /v2/batch: up to MaxBatchJobs
// envelopes submitted in one request.
type BatchRequest struct {
	Jobs []engine.JobEnvelope `json:"jobs"`
}

// BatchResult is one item of the POST /v2/batch response, index-aligned with
// the request's jobs array: either the minted handle (exactly what a single
// POST /v2/jobs would have returned) or the item's error with the status
// code the single-submit path would have used — and, for schema mismatches,
// the JSON-pointer path into that item's spec document. Rate-limited items
// (code 429) additionally carry RetryAfter, the per-item analogue of the
// Retry-After header a single throttled submission gets.
type BatchResult struct {
	Job   *JobHandle `json:"job,omitempty"`
	Error string     `json:"error,omitempty"`
	Code  int        `json:"code,omitempty"`
	Path  string     `json:"path,omitempty"`
	// RetryAfter is the throttle backoff hint in whole seconds (ceiling,
	// minimum 1), present only on 429 items: how long until the limiter
	// will have accrued the client's next token.
	RetryAfter int `json:"retry_after,omitempty"`
}

// handleCreateBatch submits a batch of envelopes through the same
// dedupe/refcount path as single submissions, one item at a time in request
// order — so minted handle IDs are ordered like the request, identical
// items within one batch dedupe onto one job (each with its own handle),
// and one bad item costs only its own slot, never the batch. To keep that
// isolation total, items are decoded individually: a malformed envelope (a
// typo'd field, the wrong JSON shape) errors its own slot exactly like an
// unknown kind would, instead of failing the whole request's decode.
func (s *Server) handleCreateBatch(w http.ResponseWriter, r *http.Request) {
	if !s.checkFingerprint(w, r) {
		return
	}
	var req struct {
		Jobs []json.RawMessage `json:"jobs"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode batch request: %w", err))
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("batch needs at least one job"))
		return
	}
	if len(req.Jobs) > MaxBatchJobs {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d jobs exceeds the cap of %d", len(req.Jobs), MaxBatchJobs))
		return
	}
	client := clientFrom(r)
	results := make([]BatchResult, len(req.Jobs))
	for i, raw := range req.Jobs {
		// Per-item admission: each envelope spends one token, exactly what
		// it would cost submitted alone, so a batch cannot outrun the rate
		// limit by packing. Items past the budget fail only their own slot,
		// with the same Retry-After signal a single 429 carries.
		if retryAfter, admitted := s.traffic.Admit(client); !admitted {
			results[i] = BatchResult{
				Error:      "submission rate limit exceeded",
				Code:       http.StatusTooManyRequests,
				RetryAfter: retryAfterSecs(retryAfter),
			}
			continue
		}
		submitItem := func() (JobHandle, error) {
			var env engine.JobEnvelope
			idec := json.NewDecoder(bytes.NewReader(raw))
			idec.DisallowUnknownFields()
			if err := idec.Decode(&env); err != nil {
				return JobHandle{}, fmt.Errorf("decode job envelope: %w", err)
			}
			job, cached, jh, err := s.submitEnvelope(env, true, clientFrom(r))
			if err != nil {
				return JobHandle{}, err
			}
			jh.Status = job.Status()
			jh.Cached = cached
			return jh, nil
		}
		jh, err := submitItem()
		if err != nil {
			code, msg, path := submitErrorParts(err)
			results[i] = BatchResult{Error: msg, Code: code, Path: path}
			continue
		}
		results[i] = BatchResult{Job: &jh}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// foreignHandleError marks an access to a handle minted for a different
// client; handlers map it to 403 where other resolution failures are 404.
type foreignHandleError struct{ handle string }

func (e foreignHandleError) Error() string {
	return fmt.Sprintf("handle %q belongs to another client", e.handle)
}

// writeHandleError maps a jobForHandle failure: a foreign handle is 403,
// anything else (unknown handle, evicted job) 404.
func writeHandleError(w http.ResponseWriter, err error) {
	var fe foreignHandleError
	if errors.As(err, &fe) {
		writeError(w, http.StatusForbidden, err)
		return
	}
	writeError(w, http.StatusNotFound, err)
}

// jobForHandle resolves a handle to its job and the job's live handle count,
// enforcing ownership: a handle minted for one client is forbidden to every
// other, on reads as much as release — handles are sequential ("h-1",
// "h-2", ...), so without this any authenticated tenant could enumerate
// them and read other tenants' statuses and results. Ownerless handles
// (open server, or rehydrated from a previous life) stay readable by any
// authenticated client, matching the release rule.
func (s *Server) jobForHandle(handle, client string) (*engine.Job, int, error) {
	s.mu.Lock()
	jobID, ok := s.handles[handle]
	owner, owned := s.owners[handle]
	clients := s.refs[jobID]
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("unknown handle %q", handle)
	}
	if owned && owner != client {
		return nil, 0, foreignHandleError{handle}
	}
	job, err := s.manager.Get(jobID)
	if err != nil {
		return nil, 0, err
	}
	return job, clients, nil
}

func (s *Server) handleHandleStatus(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	job, clients, err := s.jobForHandle(handle, clientFrom(r))
	if err != nil {
		writeHandleError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, JobHandle{Handle: handle, Clients: clients, Status: job.Status()})
}

func (s *Server) handleHandleResult(w http.ResponseWriter, r *http.Request) {
	job, _, err := s.jobForHandle(r.PathValue("handle"), clientFrom(r))
	if err != nil {
		writeHandleError(w, err)
		return
	}
	if rng := r.URL.Query().Get("range"); rng != "" {
		writeResultRange(w, job, rng)
		return
	}
	writeJobResult(w, job)
}

// maxBufferedResultBody is the largest range-GET payload served through the
// buffering writeJSON path; bigger bodies stream document-by-document over
// chunked transfer instead of being assembled in one allocation.
const maxBufferedResultBody = 256 << 10

// writeResultRange serves ?range=lo-hi from the job's result ledger: the
// TaskCoder documents of tasks [lo, hi), servable mid-run as soon as the
// span is fully computed. Error mapping: a malformed or out-of-bounds range
// is 400, a span not yet fully computed is 409 (retry after the watermark
// passes hi), and a job without a ledger — non-TaskCoder spec, or restored
// terminal from a previous life — is 410 (no per-task documents will ever
// exist for it).
func writeResultRange(w http.ResponseWriter, job *engine.Job, rng string) {
	tr, err := engine.ParseTaskRange(rng)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	docs, err := job.ResultRange(tr.Lo, tr.Hi)
	if err != nil {
		switch {
		case errors.Is(err, engine.ErrBadRange):
			writeError(w, http.StatusBadRequest, err)
		case errors.Is(err, engine.ErrRangeIncomplete):
			writeError(w, http.StatusConflict, err)
		case errors.Is(err, engine.ErrNoLedger):
			writeError(w, http.StatusGone, err)
		default:
			writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	st := job.Status()
	size := 0
	for _, d := range docs {
		size += len(d) + 1
	}
	if size <= maxBufferedResultBody {
		writeJSON(w, http.StatusOK, map[string]any{
			"id":      st.ID,
			"kind":    st.Kind,
			"lo":      tr.Lo,
			"hi":      tr.Hi,
			"total":   st.Progress.Total,
			"results": docs,
		})
		return
	}
	// Oversized body: stream it. No Content-Length is set, so net/http
	// switches to chunked transfer; flushing per batch bounds the server-side
	// buffer regardless of how large the span is. The documents are
	// pre-encoded canonical JSON, so the body is assembled by concatenation —
	// no re-marshalling of a huge intermediate value.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"id":%q,"kind":%q,"lo":%d,"hi":%d,"total":%d,"results":[`,
		st.ID, st.Kind, tr.Lo, tr.Hi, st.Progress.Total)
	for i, d := range docs {
		if i > 0 {
			buf.WriteByte(',')
		}
		//goclint:allow errdrop -- bytes.Buffer writes cannot fail
		buf.Write(d)
		if buf.Len() >= maxBufferedResultBody {
			if _, err := w.Write(buf.Bytes()); err != nil {
				return // client hung up; nothing recoverable
			}
			buf.Reset()
			if fl != nil {
				fl.Flush()
			}
		}
	}
	//goclint:allow errdrop -- bytes.Buffer writes cannot fail
	buf.WriteString("]}")
	//goclint:allow errdrop -- headers are sent; a failed body write is the client hanging up
	_, _ = w.Write(buf.Bytes())
}

// handleHandleEvents streams the job's status as server-sent events: a
// "progress" event per observed snapshot (coalesced to the latest for slow
// consumers), a "result-range" event each time the result ledger's
// contiguous-prefix watermark advances — its data is {"id","lo","hi"}, the
// newly completed task span, fetchable immediately via ?range=lo-hi — and a
// final "end" event carrying the terminal status, after which the stream
// closes. Backed by engine.Manager.Watch.
//
// Each event carries an "id:" line holding "done.watermark" — the snapshot's
// progress counter and the ledger watermark it reflects — so a client that
// reconnects after a dropped stream can send the standard Last-Event-ID
// header and have both progress it already saw suppressed AND the watermark
// resumed exactly where it left off: the first result-range event after a
// reconnect starts at the acknowledged watermark, never skipping or
// duplicating a span. A bare integer Last-Event-ID (pre-watermark clients)
// still suppresses progress and replays ranges from 0 — duplicates, never
// gaps. The terminal event is never suppressed (progress counters reset if a
// restart recomputes the job, so a stale ID must not swallow the ending).
func (s *Server) handleHandleEvents(w http.ResponseWriter, r *http.Request) {
	job, _, err := s.jobForHandle(r.PathValue("handle"), clientFrom(r))
	if err != nil {
		writeHandleError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("response writer cannot stream"))
		return
	}
	lastSeen, lastWM := -1, 0
	if lev := r.Header.Get("Last-Event-ID"); lev != "" {
		donePart, wmPart, composite := strings.Cut(lev, ".")
		if n, err := strconv.Atoi(donePart); err == nil {
			lastSeen = n
			if composite {
				if wm, err := strconv.Atoi(wmPart); err == nil && wm > 0 {
					lastWM = wm
				}
			}
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	// Watch unsubscribes itself when the client disconnects (r.Context()).
	for st := range job.Watch(r.Context()) {
		// Watermark advances surface before the status event that carries
		// them, each as one span [lastWM, wm) — coalesced snapshots coalesce
		// the spans too, so a slow consumer sees fewer, wider ranges.
		if wm := st.Progress.Watermark; wm > lastWM {
			fmt.Fprintf(w, "id: %d.%d\nevent: result-range\ndata: {\"id\":%q,\"lo\":%d,\"hi\":%d}\n\n",
				st.Progress.Done, wm, st.ID, lastWM, wm)
			lastWM = wm
			fl.Flush()
		}
		event := "progress"
		if st.State.Terminal() {
			event = "end"
		} else if st.Progress.Done <= lastSeen {
			continue
		}
		b, err := json.Marshal(st)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "id: %d.%d\nevent: %s\ndata: %s\n\n", st.Progress.Done, lastWM, event, b)
		fl.Flush()
	}
}

func (s *Server) handleReleaseHandle(w http.ResponseWriter, r *http.Request) {
	handle := r.PathValue("handle")
	client := clientFrom(r)
	s.mu.Lock()
	jobID, ok := s.handles[handle]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown handle %q", handle))
		return
	}
	// With auth enforced, only the handle's owner may release it: a release
	// can cancel the shared job, and one tenant must not be able to tear
	// down another's work. Ownerless handles (rehydrated from a previous
	// life) stay releasable by any authenticated client.
	if owner, owned := s.owners[handle]; owned && owner != client {
		s.mu.Unlock()
		writeError(w, http.StatusForbidden, fmt.Errorf("handle %q belongs to another client", handle))
		return
	}
	delete(s.handles, handle)
	delete(s.owners, handle)
	s.persistHandleRemovalLocked(handle)
	s.refs[jobID]--
	remaining := s.refs[jobID]
	var job *engine.Job
	if j, err := s.manager.Get(jobID); err == nil {
		job = j
	}
	// Cancel only when no v2 handle remains AND no v1 client ever attached:
	// v1 clients hold no handles, so a v1-touched job must outlive v2
	// refcounting (a v1 DELETE can still cancel it explicitly).
	_, pinned := s.v1pin[jobID]
	cancel := remaining <= 0 && !pinned
	if remaining <= 0 {
		delete(s.refs, jobID)
	}
	if cancel && job != nil {
		// About to cancel: retract cache entries inside this critical
		// section so a concurrent identical submission submits fresh
		// instead of attaching to a job being torn down.
		s.retractCacheLocked(job)
	}
	s.mu.Unlock()
	resp := JobHandle{Handle: handle, Clients: remaining}
	if job != nil {
		if cancel {
			// Last interested client is gone: cancel the shared job (a no-op
			// if it already finished).
			job.Cancel()
		}
		resp.Status = job.Status()
	}
	writeJSON(w, http.StatusOK, resp)
}

// persistHandleRemovalLocked enqueues the persistence of a handle's removal
// (release or eviction). Enqueued under s.mu like the mint, so the log
// order of a handle's PutHandle and DeleteHandle always matches the
// in-memory order — a removed handle can never "resurrect" in the store.
func (s *Server) persistHandleRemovalLocked(handle string) {
	s.enqueuePersist(func() { s.recordPersist(s.store.DeleteHandle(handle)) })
}

// pruneHandlesLocked bounds the v2 handle bookkeeping. Handles are minted
// per client and many clients never DELETE, so unlike the result cache the
// table is not bounded by job retention. Two passes: drop handles whose job
// the Manager evicted, then compact handleOrder and — past MaxHandles —
// evict the oldest handles outright, *without* canceling their jobs (forced
// eviction is a memory bound, not a cancellation signal; the job keeps
// running and its result stays cached, but the evicted handle 404s).
//
// The sweep triggers on handleOrder's length, not the handle table's:
// released and evicted handle ids linger in handleOrder until compaction,
// so keying the trigger on it bounds handleOrder's own growth under
// submit→release churn (where the table itself stays small). Triggering on
// doubling since the last sweep — and evicting down to half the cap rather
// than to the cap, so a full table cannot re-trigger on every mint — keeps
// the amortized cost per mint O(1). Callers must hold s.mu.
func (s *Server) pruneHandlesLocked() {
	limit := s.handleSweepAt
	if limit < 2*engine.DefaultRetention {
		limit = 2 * engine.DefaultRetention
	}
	if limit > MaxHandles {
		limit = MaxHandles
	}
	if len(s.handleOrder) <= limit {
		return
	}
	for h, id := range s.handles {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.handles, h)
			delete(s.owners, h)
			s.persistHandleRemovalLocked(h)
			if s.refs[id]--; s.refs[id] <= 0 {
				delete(s.refs, id)
			}
		}
	}
	target := len(s.handles)
	if target > MaxHandles {
		target = MaxHandles / 2
	}
	kept := s.handleOrder[:0]
	for _, h := range s.handleOrder {
		id, ok := s.handles[h]
		if !ok {
			continue // released, or dropped by the evicted-job pass
		}
		if len(s.handles) > target {
			delete(s.handles, h)
			delete(s.owners, h)
			s.persistHandleRemovalLocked(h)
			if s.refs[id]--; s.refs[id] <= 0 {
				delete(s.refs, id)
			}
			continue
		}
		kept = append(kept, h)
	}
	s.handleOrder = kept
	s.handleSweepAt = 2 * len(s.handleOrder)
}

// pruneCacheLocked drops cache entries whose job the Manager has evicted.
// The Manager caps tracked jobs (engine.DefaultRetention), so without this
// sweep a steady stream of distinct specs would grow the cache forever
// while its entries dangle. Sweeping only past double the job cap keeps the
// amortized cost per submission O(1). Callers must hold s.mu.
func (s *Server) pruneCacheLocked() {
	if len(s.cache) <= 2*engine.DefaultRetention {
		return
	}
	for k, id := range s.cache {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.cache, k)
		}
	}
	// v1 pins are per-job like cache entries, so the same sweep bounds them.
	for id := range s.v1pin {
		if _, err := s.manager.Get(id); err != nil {
			delete(s.v1pin, id)
		}
	}
}

// gameID derives the content-addressed game identifier: a hash of the
// canonical wire form, so the same game always registers under the same ID.
func gameID(g *core.Game) (string, error) {
	b, err := json.Marshal(g)
	if err != nil {
		return "", fmt.Errorf("hash game: %w", err)
	}
	sum := sha256.Sum256(b)
	return "g-" + hex.EncodeToString(sum[:8]), nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	// Encode to a buffer before touching the ResponseWriter: the status
	// header can be written only once, so a marshal failure discovered
	// while streaming would emit a truncated body under the already-sent
	// success code. Buffering turns that into a clean 500.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		buf.Reset()
		code = http.StatusInternalServerError
		enc = json.NewEncoder(&buf)
		enc.SetIndent("", "  ")
		//goclint:allow errdrop -- encoding a flat map[string]string cannot fail
		_ = enc.Encode(map[string]string{"error": "encode response: " + err.Error()})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//goclint:allow errdrop -- headers are sent; a failed body write is the client hanging up
	_, _ = w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
